//! Offline stand-in for the `criterion` crate.
//!
//! The build container cannot reach the crates.io registry, so the workspace
//! vendors the API subset its benches use: `criterion_group!`/
//! `criterion_main!`, benchmark groups with throughput/sample-size knobs, and
//! `Bencher::iter`. Measurement is deliberately simple — a short warm-up
//! followed by `sample_size` timed iterations, reporting the best observed
//! time (robust to scheduler noise) plus derived throughput. No statistics,
//! plots, or baselines; the goal is that `cargo bench` compiles, runs, and
//! prints something useful.

use std::fmt::Display;
use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct BenchmarkId {
    function_name: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            function_name: function_name.into(),
            parameter: parameter.to_string(),
        }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            function_name: String::new(),
            parameter: parameter.to_string(),
        }
    }

    fn label(&self) -> String {
        match (self.function_name.is_empty(), self.parameter.is_empty()) {
            (false, false) => format!("{}/{}", self.function_name, self.parameter),
            (false, true) => self.function_name.clone(),
            _ => self.parameter.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function_name: s.to_string(),
            parameter: String::new(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function_name: s,
            parameter: String::new(),
        }
    }
}

pub struct Bencher {
    /// Best (minimum) per-iteration wall time observed across samples.
    best: Duration,
    samples: usize,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed run (JIT-free in Rust, but touches caches and
        // lazily-initialised state so the first timed sample is not an outlier).
        std::hint::black_box(routine());
        let mut best = Duration::MAX;
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            let elapsed = start.elapsed();
            if elapsed < best {
                best = elapsed;
            }
        }
        self.best = best;
    }

    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        std::hint::black_box(routine(setup()));
        let mut best = Duration::MAX;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            let elapsed = start.elapsed();
            if elapsed < best {
                best = elapsed;
            }
        }
        self.best = best;
    }
}

#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} us", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

fn report(group: &str, label: &str, best: Duration, throughput: Option<Throughput>) {
    let name = if group.is_empty() {
        label.to_string()
    } else {
        format!("{group}/{label}")
    };
    let rate = throughput.map(|t| {
        let secs = best.as_secs_f64().max(1e-12);
        match t {
            Throughput::Elements(n) => format!("  ({:.1} Melem/s)", n as f64 / secs / 1e6),
            Throughput::Bytes(n) => format!("  ({:.1} MiB/s)", n as f64 / secs / (1 << 20) as f64),
        }
    });
    println!(
        "bench {name:<48} best {:>12}{}",
        fmt_duration(best),
        rate.unwrap_or_default()
    );
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
            sample_size,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            best: Duration::ZERO,
            samples: self.sample_size,
        };
        f(&mut b);
        report("", &id.label(), b.best, None);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            best: Duration::ZERO,
            samples: self.sample_size,
        };
        f(&mut b);
        report(&self.name, &id.label(), b.best, self.throughput);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            best: Duration::ZERO,
            samples: self.sample_size,
        };
        f(&mut b, input);
        report(&self.name, &id.label(), b.best, self.throughput);
        self
    }

    pub fn finish(self) {}
}

/// Re-export for benches that use `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
