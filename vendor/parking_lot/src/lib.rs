//! Offline stand-in for the `parking_lot` crate.
//!
//! The build container has no network access to the crates.io registry, so
//! the workspace vendors the small API surface it actually uses: `Mutex`
//! with panic-free `lock()` (parking_lot mutexes are not poisoned; we match
//! that by recovering the guard from a poisoned std mutex).

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Like `parking_lot::Mutex::lock`: never returns a poison error. If a
    /// previous holder panicked we still hand out the guard, matching
    /// parking_lot's no-poisoning semantics.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn lock_survives_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the mutex");
        })
        .join();
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }
}
