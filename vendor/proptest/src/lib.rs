//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach the crates.io registry, so the workspace
//! vendors the API subset its property tests actually use:
//!
//! - the `proptest! { #![proptest_config(..)] #[test] fn name(x in strategy, y: type) {..} }`
//!   macro (including `mut` bindings and typed `Arbitrary` parameters),
//! - `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`,
//! - integer/float range strategies, tuple strategies, `any::<T>()`,
//!   `.prop_map(..)`, `prop::collection::vec`, `prop::option::of`,
//!   `prop::sample::select`, and regex-literal string strategies limited to
//!   the subset `[class]{m,n}` / `\PC{m,n}` / literals that the tests use.
//!
//! Differences from real proptest: no shrinking (a failing case reports the
//! case index and the assertion message, not a minimised input), and the RNG
//! is a fixed-seed splitmix64 stream per test (deterministic across runs;
//! override with `PROPTEST_RNG_SEED`). `PROPTEST_CASES` caps the case count.

pub mod test_runner {
    /// Error produced by `prop_assert*` inside a generated test case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        pub fn fail<S: Into<String>>(message: S) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }

        pub fn reject<S: Into<String>>(message: S) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Subset of proptest's `Config`: only `cases` matters here.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }

        #[doc(hidden)]
        pub fn effective_cases(&self) -> u32 {
            match std::env::var("PROPTEST_CASES") {
                Ok(v) => v.parse().unwrap_or(self.cases).min(self.cases),
                Err(_) => self.cases,
            }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Deterministic splitmix64 stream. One instance per generated test fn,
    /// seeded from the test's full module path so different tests explore
    /// different inputs while each test is reproducible run-to-run.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn for_test(name: &str) -> Self {
            let seed = match std::env::var("PROPTEST_RNG_SEED") {
                Ok(v) => v.parse().unwrap_or(0xcafe_f00d_d15e_a5e5),
                // FNV-1a over the test path gives a stable per-test seed.
                Err(_) => name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                    (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
                }),
            };
            TestRng { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            // Multiply-shift rejection-free mapping (Lemire); bias is
            // negligible for test-data generation.
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform f64 in [0, 1).
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// Generates values of `Self::Value`. Unlike real proptest there is no
    /// value-tree/shrinking machinery — `generate` draws a sample directly.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { source: self, map }
        }

        fn prop_filter<F>(self, _whence: &'static str, filter: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                source: self,
                filter,
            }
        }
    }

    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.map)(self.source.generate(rng))
        }
    }

    pub struct Filter<S, F> {
        source: S,
        filter: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.source.generate(rng);
                if (self.filter)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 consecutive samples");
        }
    }

    /// `Just(v)`: always yields a clone of `v`.
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                    if span > u64::MAX as u128 {
                        // Full-width inclusive range: every bit pattern valid.
                        rng.next_u64() as $t
                    } else {
                        (*self.start() as i128 + rng.below(span as u64) as i128) as $t
                    }
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident/$idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A/0)
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
        (A/0, B/1, C/2, D/3, E/4)
        (A/0, B/1, C/2, D/3, E/4, F/5)
    }

    /// Strategy produced by [`crate::arbitrary::any`].
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `&str` literals act as regex-subset string strategies (see crate docs).
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_from_pattern(self, rng)
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Any;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite values only; sufficient for numeric test data.
            rng.unit_f64() * 2e9 - 1e9
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod string {
    use crate::test_runner::TestRng;

    /// Printable characters used for `\PC` (roughly: any non-control char).
    /// ASCII printable plus a few multi-byte code points so UTF-8 handling in
    /// lexers gets exercised.
    fn printable_chars() -> Vec<(char, char)> {
        vec![(' ', '~'), ('¡', '¿'), ('λ', 'λ'), ('é', 'é')]
    }

    enum Piece {
        /// Inclusive char ranges to draw from uniformly (by range, then char).
        Class(Vec<(char, char)>),
        Literal(char),
    }

    struct Element {
        piece: Piece,
        min: usize,
        max: usize,
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<(char, char)> {
        let mut set = Vec::new();
        let mut pending: Option<char> = None;
        loop {
            let c = chars.next().expect("unterminated [class] in pattern");
            match c {
                ']' => break,
                '\\' => {
                    if let Some(p) = pending.take() {
                        set.push((p, p));
                    }
                    let esc = chars.next().expect("dangling escape in class");
                    pending = Some(esc);
                }
                '-' if pending.is_some() && chars.peek() != Some(&']') => {
                    let lo = pending.take().unwrap();
                    let hi = chars.next().unwrap();
                    assert!(lo <= hi, "inverted class range {lo}-{hi}");
                    set.push((lo, hi));
                }
                _ => {
                    if let Some(p) = pending.take() {
                        set.push((p, p));
                    }
                    pending = Some(c);
                }
            }
        }
        if let Some(p) = pending {
            set.push((p, p));
        }
        assert!(!set.is_empty(), "empty [class] in pattern");
        set
    }

    /// Parse `{m,n}` / `{m}` if present; defaults to exactly one occurrence.
    fn parse_counts(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (usize, usize) {
        if chars.peek() != Some(&'{') {
            return (1, 1);
        }
        chars.next();
        let mut spec = String::new();
        for c in chars.by_ref() {
            if c == '}' {
                break;
            }
            spec.push(c);
        }
        match spec.split_once(',') {
            Some((m, n)) => (
                m.trim().parse().expect("bad {m,n} bound"),
                n.trim().parse().expect("bad {m,n} bound"),
            ),
            None => {
                let m = spec.trim().parse().expect("bad {m} bound");
                (m, m)
            }
        }
    }

    fn parse(pattern: &str) -> Vec<Element> {
        let mut chars = pattern.chars().peekable();
        let mut elements = Vec::new();
        while let Some(c) = chars.next() {
            let piece = match c {
                '[' => Piece::Class(parse_class(&mut chars)),
                '\\' => match chars.next().expect("dangling escape in pattern") {
                    'P' => {
                        // Only `\PC` (non-control) is supported.
                        let class = chars.next();
                        assert_eq!(class, Some('C'), "unsupported \\P class {class:?}");
                        Piece::Class(printable_chars())
                    }
                    'd' => Piece::Class(vec![('0', '9')]),
                    'w' => Piece::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
                    other => Piece::Literal(other),
                },
                other => Piece::Literal(other),
            };
            let (min, max) = parse_counts(&mut chars);
            elements.push(Element { piece, min, max });
        }
        elements
    }

    fn draw(set: &[(char, char)], rng: &mut TestRng) -> char {
        let (lo, hi) = set[rng.below(set.len() as u64) as usize];
        char::from_u32(lo as u32 + rng.below((hi as u32 - lo as u32 + 1) as u64) as u32)
            .expect("class range produced an invalid code point")
    }

    pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for el in parse(pattern) {
            let count = el.min + rng.below((el.max - el.min + 1) as u64) as usize;
            for _ in 0..count {
                match &el.piece {
                    Piece::Class(set) => out.push(draw(set, rng)),
                    Piece::Literal(c) => out.push(*c),
                }
            }
        }
        out
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = Strategy::generate(&self.size, rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct OptionStrategy<S>(S);

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct Select<T: Clone>(Vec<T>);

    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

/// Binds one `proptest!` parameter per step:
/// `x in strategy`, `mut x in strategy`, or `x: Type` (via [`arbitrary::Arbitrary`]).
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, mut $var:ident in $strat:expr $(, $($rest:tt)*)?) => {
        #[allow(unused_mut)]
        let mut $var = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng $(, $($rest)*)?);
    };
    ($rng:ident, $var:ident in $strat:expr $(, $($rest:tt)*)?) => {
        let $var = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng $(, $($rest)*)?);
    };
    ($rng:ident, mut $var:ident : $ty:ty $(, $($rest:tt)*)?) => {
        #[allow(unused_mut)]
        let mut $var: $ty = <$ty as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng $(, $($rest)*)?);
    };
    ($rng:ident, $var:ident : $ty:ty $(, $($rest:tt)*)?) => {
        let $var: $ty = <$ty as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng $(, $($rest)*)?);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ({$cfg:expr}) => {};
    ({$cfg:expr} $(#[$attr:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for __case in 0..__config.effective_cases() {
                $crate::__proptest_bind!(__rng, $($params)*);
                let __outcome = (move || -> ::core::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(__err) = __outcome {
                    panic!(
                        "proptest case {}/{} failed: {}",
                        __case + 1,
                        __config.effective_cases(),
                        __err
                    );
                }
            }
        }
        $crate::__proptest_fns!({$cfg} $($rest)*);
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!({$cfg} $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!({$crate::test_runner::Config::default()} $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_pattern_subset() {
        let mut rng = crate::test_runner::TestRng::for_test("string_pattern_subset");
        for _ in 0..200 {
            let s = crate::string::generate_from_pattern("[a-z0-9_ ,.()='\\*]{0,60}", &mut rng);
            assert!(s.len() <= 60);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "_ ,.()='*".contains(c)));
            let t = crate::string::generate_from_pattern("\\PC{0,120}", &mut rng);
            assert!(t.chars().count() <= 120);
            assert!(t.chars().all(|c| !c.is_control()));
            let u = crate::string::generate_from_pattern("[ab%_]{0,6}", &mut rng);
            assert!(u.chars().all(|c| "ab%_".contains(c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(
            a in -8i64..24,
            b in 1u64..u64::MAX,
            c in 0.0f64..2.5,
            mut v in prop::collection::vec((-10i64..10, any::<i16>().prop_map(i64::from)), 0..120),
            opt in prop::option::of(0usize..50),
            pick in prop::sample::select(vec!["x", "y"]),
            seed: u64,
            flag: bool,
        ) {
            prop_assert!((-8..24).contains(&a));
            prop_assert!(b >= 1);
            prop_assert!((0.0..2.5).contains(&c));
            prop_assert!(v.len() < 120);
            v.push((0, 0));
            for (k, val) in &v {
                prop_assert!((-10..=10).contains(k), "key {} out of range", k);
                prop_assert!(*val >= i64::from(i16::MIN) && *val <= i64::from(i16::MAX));
            }
            if let Some(l) = opt {
                prop_assert!(l < 50);
            }
            prop_assert!(pick == "x" || pick == "y");
            let _ = seed.wrapping_add(flag as u64);
        }
    }
}
