//! Cross-crate integration: multi-operator pipelines combining scans,
//! filters, projections, several joins, aggregation, sorting and late
//! materialization — verified against hand-computed answers.

use joinstudy::core::{Engine, JoinAlgo, JoinType, Plan};
use joinstudy::exec::expr::Expr;
use joinstudy::exec::ops::{AggFunc, AggSpec, SortKey};
use joinstudy::storage::table::{Schema, Table, TableBuilder};
use joinstudy::storage::types::{DataType, Decimal, Value};
use std::sync::Arc;

fn sales_tables() -> (Arc<Table>, Arc<Table>) {
    // products: (pid, price), sales: (pid, qty)
    let pschema = Schema::of(&[("pid", DataType::Int64), ("price", DataType::Decimal)]);
    let mut p = TableBuilder::new(pschema);
    for (pid, cents) in [(1i64, 1000i64), (2, 250), (3, 99), (4, 50000)] {
        p.push_row(&[Value::Int64(pid), Value::Decimal(Decimal(cents))]);
    }
    let sschema = Schema::of(&[("pid", DataType::Int64), ("qty", DataType::Int64)]);
    let mut s = TableBuilder::new(sschema);
    for (pid, qty) in [(1i64, 2i64), (1, 3), (2, 10), (3, 1), (9, 100)] {
        s.push_row(&[Value::Int64(pid), Value::Int64(qty)]);
    }
    (Arc::new(p.finish()), Arc::new(s.finish()))
}

#[test]
fn filtered_join_group_sort_end_to_end() {
    let (products, sales) = sales_tables();
    for algo in [JoinAlgo::Bhj, JoinAlgo::Rj, JoinAlgo::Brj] {
        // Revenue per product, products costing > 1.00, sorted by revenue.
        let plan = Plan::scan(
            &products,
            &["pid", "price"],
            Some(Expr::col(1).gt(Expr::dec(Decimal::from_int(1)))),
        )
        .join(
            Plan::scan(&sales, &["pid", "qty"], None),
            algo,
            JoinType::Inner,
            &[0],
            &[0],
        )
        // columns: [pid, price, pid, qty] → revenue = price * qty
        .map(
            vec![Expr::col(0), Expr::col(1).mul(Expr::col(3).to_decimal())],
            &["pid", "revenue"],
        )
        .aggregate(&[0], vec![AggSpec::new(AggFunc::Sum, 1, "revenue")])
        .sort(vec![SortKey::desc(1)], None);
        let t = Engine::new(2).run(&plan);
        // pid 1: 10.00 * 5 = 50.00; pid 2: 2.50 * 10 = 25.00.
        // pid 3 filtered out (0.99), pid 4 has no sales, pid 9 unknown.
        assert_eq!(t.num_rows(), 2, "{algo:?}");
        assert_eq!(t.column_by_name("pid").as_i64(), &[1, 2]);
        assert_eq!(t.column_by_name("revenue").as_i64(), &[5000, 2500]);
    }
}

#[test]
fn anti_join_finds_products_without_sales() {
    let (products, sales) = sales_tables();
    for algo in [JoinAlgo::Bhj, JoinAlgo::Rj, JoinAlgo::Brj] {
        let plan = Plan::scan(&products, &["pid"], None)
            .join(
                Plan::scan(&sales, &["pid"], None),
                algo,
                JoinType::BuildAnti,
                &[0],
                &[0],
            )
            .sort(vec![SortKey::asc(0)], None);
        let t = Engine::new(2).run(&plan);
        assert_eq!(t.column(0).as_i64(), &[4], "{algo:?}");
    }
}

#[test]
fn three_way_join_chain_with_mixed_algorithms() {
    // region -> nation -> city chain with a different algorithm per join.
    let mk = |pairs: &[(i64, i64)]| -> Arc<Table> {
        let schema = Schema::of(&[("id", DataType::Int64), ("parent", DataType::Int64)]);
        let mut b = TableBuilder::new(schema);
        for &(id, parent) in pairs {
            b.push_row(&[Value::Int64(id), Value::Int64(parent)]);
        }
        Arc::new(b.finish())
    };
    let regions = mk(&[(1, 0), (2, 0)]);
    let nations = mk(&[(10, 1), (11, 1), (12, 2)]);
    let cities = mk(&[(100, 10), (101, 10), (102, 11), (103, 12), (104, 99)]);

    for (a1, a2) in [
        (JoinAlgo::Bhj, JoinAlgo::Rj),
        (JoinAlgo::Rj, JoinAlgo::Brj),
        (JoinAlgo::Brj, JoinAlgo::Bhj),
    ] {
        let rn = Plan::scan(&regions, &["id"], None).join(
            Plan::scan(&nations, &["id", "parent"], None),
            a1,
            JoinType::Inner,
            &[0],
            &[1],
        );
        // rn schema: [r.id, n.id, n.parent]
        let rnc = rn.join(
            Plan::scan(&cities, &["id", "parent"], None),
            a2,
            JoinType::Inner,
            &[1],
            &[1],
        );
        let plan = rnc.aggregate(&[], vec![AggSpec::new(AggFunc::CountStar, 0, "cnt")]);
        let t = Engine::new(2).run(&plan);
        // Cities 100..103 resolve through the chain; 104 dangles.
        assert_eq!(t.column_by_name("cnt").as_i64(), &[4], "{a1:?}+{a2:?}");
    }
}

#[test]
fn late_materialization_roundtrip_with_strings() {
    let schema = Schema::of(&[("id", DataType::Int64), ("label", DataType::Str)]);
    let mut b = TableBuilder::new(schema);
    for i in 0..1000i64 {
        b.push_row(&[Value::Int64(i), Value::Str(format!("label-{i}"))]);
    }
    let table = Arc::new(b.finish());

    let plan = Plan::scan_tid(&table, &["id"], Some(Expr::col(0).ge(Expr::i64(995))))
        .late_load(&table, 1, &["label"])
        .sort(vec![SortKey::asc(0)], None);
    let t = Engine::new(2).run(&plan);
    assert_eq!(t.num_rows(), 5);
    assert_eq!(t.column(2).as_str().get(0), "label-995");
    assert_eq!(t.column(2).as_str().get(4), "label-999");
}

#[test]
fn string_keyed_join() {
    let schema = Schema::of(&[("name", DataType::Str), ("v", DataType::Int64)]);
    let mk = |rows: &[(&str, i64)]| -> Arc<Table> {
        let mut b = TableBuilder::new(schema.clone());
        for &(n, v) in rows {
            b.push_row(&[Value::Str(n.into()), Value::Int64(v)]);
        }
        Arc::new(b.finish())
    };
    let left = mk(&[("alpha", 1), ("beta", 2), ("gamma", 3)]);
    let right = mk(&[("beta", 20), ("beta", 21), ("delta", 40)]);
    for algo in [JoinAlgo::Bhj, JoinAlgo::Rj, JoinAlgo::Brj] {
        let plan = Plan::scan(&left, &["name", "v"], None)
            .join(
                Plan::scan(&right, &["name", "v"], None),
                algo,
                JoinType::Inner,
                &[0],
                &[0],
            )
            .sort(vec![SortKey::asc(3)], None);
        let t = Engine::new(2).run(&plan);
        assert_eq!(t.num_rows(), 2, "{algo:?}");
        assert_eq!(t.column(0).as_str().get(0), "beta");
        assert_eq!(t.column(3).as_i64(), &[20, 21]);
    }
}

#[test]
fn empty_inputs_through_full_pipelines() {
    let schema = Schema::of(&[("k", DataType::Int64)]);
    let empty = Arc::new(Table::empty(schema.clone()));
    let mut b = TableBuilder::new(schema);
    b.push_row(&[Value::Int64(1)]);
    let one = Arc::new(b.finish());

    for algo in [JoinAlgo::Bhj, JoinAlgo::Rj, JoinAlgo::Brj] {
        for (build, probe, expected) in
            [(&empty, &one, 0i64), (&one, &empty, 0), (&empty, &empty, 0)]
        {
            let plan = Plan::scan(build, &["k"], None)
                .join(
                    Plan::scan(probe, &["k"], None),
                    algo,
                    JoinType::Inner,
                    &[0],
                    &[0],
                )
                .aggregate(&[], vec![AggSpec::new(AggFunc::CountStar, 0, "cnt")]);
            let t = Engine::new(2).run(&plan);
            assert_eq!(t.column_by_name("cnt").as_i64(), &[expected], "{algo:?}");
        }
    }
}
