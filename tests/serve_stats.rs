//! Serving telemetry under concurrency: N TCP clients drive a mixed
//! workload, and afterwards `jsys.statements` must account for every
//! statement exactly once (call counts sum to N×M — the conservation
//! invariant from the statement-statistics design), a `METRICS` scrape
//! must parse as valid Prometheus text exposition, and the active-query
//! registry must drain to empty.

use joinstudy::sql::server::Client;
use joinstudy::sql::stats::validate_exposition;
use joinstudy::sql::{ServerConfig, SqlServer};
use std::net::TcpListener;
use std::sync::Arc;

const TABLES: [&str; 4] = ["nation", "supplier", "customer", "orders"];

/// M statements per client: SELECTs (some sharing fingerprints across
/// clients, some per-client literals), a SET, and a failing statement.
fn script(client: usize) -> Vec<String> {
    vec![
        "SET join_algo = adaptive".to_string(),
        "SELECT count(*) FROM customer, nation WHERE c_nationkey = n_nationkey".to_string(),
        format!(
            "SELECT count(*) FROM orders WHERE o_custkey = {}",
            client + 1
        ),
        "SELECT count(*) FROM supplier, nation WHERE s_nationkey = n_nationkey".to_string(),
        "SELECT * FROM nosuch".to_string(),
        format!("SELECT count(*) FROM customer WHERE c_custkey > {client}"),
    ]
}

fn parse_rows(response: &str) -> Vec<Vec<String>> {
    let mut lines = response.lines();
    let header = lines.next().expect("response header");
    assert!(
        header.starts_with("OK "),
        "expected OK response: {response}"
    );
    lines.next(); // column-name line
    lines
        .take_while(|l| *l != ".")
        .map(|l| l.split('\t').map(str::to_string).collect())
        .collect()
}

#[test]
fn statement_stats_conserve_counts_across_clients() {
    let data = joinstudy::tpch::generate(0.01, 7);
    let clients = 6usize;
    let per_client = script(0).len();

    let mut server = SqlServer::new(ServerConfig {
        threads: 4,
        pool_bytes: 1 << 30,
        query_bytes: 64 << 20,
        min_grant_bytes: 8 << 20,
        ..ServerConfig::default()
    });
    for name in TABLES {
        server.register(name, Arc::clone(data.table(name)));
    }
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let handle = Arc::new(server).spawn(listener).expect("spawn server");
    let addr = handle.addr();

    std::thread::scope(|scope| {
        for c in 0..clients {
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for stmt in script(c) {
                    // A mid-run METRICS scrape from one client must be
                    // valid exposition even while others are executing.
                    if c == 0 {
                        let scrape = client.query("METRICS").expect("scrape");
                        let body = scrape.trim_end_matches(".\n").trim_end_matches("\n.");
                        let series = validate_exposition(body)
                            .unwrap_or_else(|e| panic!("invalid exposition: {e}"));
                        assert!(series > 0, "scrape should carry at least one sample");
                    }
                    client.query(&stmt).expect("round trip");
                }
                client.query(".quit").ok();
            });
        }
    });

    // Conservation: a fresh connection reads the shared statlog. The read
    // snapshots *before* recording itself, so the sum of calls is exactly
    // clients × statements-per-client.
    let mut observer = Client::connect(addr).expect("connect observer");
    let resp = observer
        .query("SELECT fingerprint, calls, errors FROM jsys.statements")
        .expect("jsys.statements");
    let rows = parse_rows(&resp);
    let total_calls: i64 = rows.iter().map(|r| r[1].parse::<i64>().unwrap()).sum();
    let total_errors: i64 = rows.iter().map(|r| r[2].parse::<i64>().unwrap()).sum();
    assert_eq!(
        total_calls,
        (clients * per_client) as i64,
        "every statement recorded exactly once: {rows:?}"
    );
    // One deliberately failing statement per client.
    assert_eq!(total_errors, clients as i64);

    // The shared-fingerprint SELECT folded across all clients.
    let folded = rows
        .iter()
        .find(|r| r[0].contains("from customer, nation"))
        .expect("shared fingerprint row");
    assert_eq!(folded[1].parse::<i64>().unwrap(), clients as i64);

    // Per-client literals folded into one parameterized fingerprint.
    let param = rows
        .iter()
        .find(|r| r[0].contains("o_custkey = ?"))
        .expect("parameterized fingerprint row");
    assert_eq!(param[1].parse::<i64>().unwrap(), clients as i64);

    // All clients are gone: only the observer's own statement is active.
    let resp = observer
        .query("SELECT conn, state FROM jsys.active_queries")
        .expect("jsys.active_queries");
    assert_eq!(parse_rows(&resp).len(), 1);

    // Post-run scrape still parses and reflects the recorded statements.
    let scrape = observer.query("METRICS").expect("final scrape");
    let body = scrape.trim_end_matches(".\n").trim_end_matches("\n.");
    validate_exposition(body).expect("final scrape parses");
    assert!(
        body.contains("joinstudy_statements_recorded"),
        "scrape should carry the statement-log gauge: {body}"
    );

    observer.query(".quit").ok();
    handle.stop();
}
