//! Multi-client equivalence: N concurrent TCP clients driving the SQL
//! server through a mixed TPC-H workload must get responses byte-equal
//! to a serial single-session run of the same statements.
//!
//! This is the correctness contract for the shared worker pool: morsels
//! of different queries interleave on the same workers, sessions share
//! one admission pool, and yet every client observes exactly the results
//! it would have gotten alone. The comparison covers the full wire
//! framing (`OK <rows> <cols>`, header, rows, `.`), including `SET`
//! acknowledgements, session-local DDL/DML, and `ERR` responses.
//!
//! Runs the whole matrix under a 1-worker pool and a multi-worker pool:
//! a pool with one thread must still make progress with eight concurrent
//! sessions (fair round-robin, no deadlock), and a wide pool must not
//! perturb results (exact Decimal/i64 aggregates, total ORDER BY).

use joinstudy::sql::server::{encode_error, encode_table, Client};
use joinstudy::sql::{ServerConfig, Session, SqlServer};
use std::net::TcpListener;
use std::sync::Arc;

const TABLES: [&str; 8] = [
    "region", "nation", "supplier", "part", "partsupp", "customer", "orders", "lineitem",
];

/// Each client runs one of these scripts (rotating by client index).
/// Every statement is deterministic under any worker count: aggregates
/// are exact (i64 counts, fixed-point Decimal sums) and multi-row
/// results carry a total ORDER BY.
fn script(client: usize) -> Vec<String> {
    let algo = ["adaptive", "bhj", "rj", "brj", "hybrid"][client % 5];
    let mut stmts = vec![
        format!("SET join_algo = {algo}"),
        "SELECT count(*) FROM lineitem, orders WHERE l_orderkey = o_orderkey".to_string(),
        "SELECT o_orderpriority, count(*) FROM orders \
         GROUP BY o_orderpriority ORDER BY o_orderpriority"
            .to_string(),
        "SELECT count(*), sum(l_extendedprice) FROM lineitem \
         WHERE l_shipdate > DATE '1995-03-15'"
            .to_string(),
        "SELECT n_name, count(*) FROM customer, nation WHERE c_nationkey = n_nationkey \
         GROUP BY n_name ORDER BY n_name"
            .to_string(),
        "SELECT count(*) FROM supplier, nation WHERE s_nationkey = n_nationkey;".to_string(),
    ];
    // Session-local DDL/DML: each connection owns its catalog view, so
    // concurrent clients creating the same table name must not collide.
    stmts.push("CREATE TABLE scratch (k BIGINT NOT NULL, v BIGINT NOT NULL)".to_string());
    stmts.push(format!(
        "INSERT INTO scratch VALUES (1, {c}), (2, {c2}), (3, {c3})",
        c = client,
        c2 = client * 10,
        c3 = client * 100
    ));
    stmts.push("SELECT k, v FROM scratch ORDER BY k".to_string());
    // An error statement: ERR framing must match the serial run too.
    stmts.push("SELECT * FROM nosuch".to_string());
    stmts.push(
        "SELECT o_orderkey, sum(l_extendedprice * (1 - l_discount)) AS revenue \
         FROM customer, orders, lineitem \
         WHERE c_mktsegment = 'BUILDING' AND c_custkey = o_custkey AND l_orderkey = o_orderkey \
         AND o_orderdate < DATE '1995-03-15' AND l_shipdate > DATE '1995-03-15' \
         GROUP BY o_orderkey ORDER BY revenue DESC, o_orderkey LIMIT 5"
            .to_string(),
    );
    stmts
}

/// Serial reference: the same script through a plain single-threaded
/// session, rendered with the server's own wire encoding.
fn serial_reference(data: &joinstudy::tpch::TpchData, client: usize) -> Vec<String> {
    let mut session = Session::new(1);
    for name in TABLES {
        session.register(name, Arc::clone(data.table(name)));
    }
    script(client)
        .iter()
        .map(|stmt| match session.execute(stmt.trim_end_matches(';')) {
            Ok(table) => encode_table(&table),
            Err(e) => encode_error(&e),
        })
        .collect()
}

#[test]
fn concurrent_clients_match_serial_run() {
    let data = joinstudy::tpch::generate(0.01, 42);
    let clients = 8;

    // Expected responses are thread-count independent; compute once.
    let expected: Vec<Vec<String>> = (0..clients).map(|c| serial_reference(&data, c)).collect();

    for pool_threads in [1, 4] {
        let mut server = SqlServer::new(ServerConfig {
            threads: pool_threads,
            // Generous pool: grants never shrink, budgets never bind, so
            // plans (and therefore results) match the serial run exactly.
            pool_bytes: 1 << 30,
            query_bytes: 64 << 20,
            min_grant_bytes: 8 << 20,
            ..ServerConfig::default()
        });
        for name in TABLES {
            server.register(name, Arc::clone(data.table(name)));
        }
        let admission = server.admission();
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let handle = Arc::new(server).spawn(listener).expect("spawn server");
        let addr = handle.addr();

        std::thread::scope(|scope| {
            for (c, want) in expected.iter().enumerate() {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    for (q, (stmt, want)) in script(c).iter().zip(want).enumerate() {
                        let got = client.query(stmt).expect("round trip");
                        assert_eq!(
                            &got, want,
                            "client {c} stmt {q} ({pool_threads}-thread pool): {stmt}"
                        );
                    }
                    client.query(".quit").ok();
                });
            }
        });

        // Every grant was returned: the admission pool is whole again.
        assert_eq!(
            admission.available(),
            admission.total(),
            "admission pool leaked budget ({pool_threads}-thread pool)"
        );
        assert_eq!(admission.queued(), 0);
        handle.stop();
    }
}
