//! Property-based cross-validation: every join algorithm × every join
//! variant must agree with a naive nested-loop reference on arbitrary
//! inputs — the load-bearing correctness property of the whole study.

use joinstudy::core::{Engine, JoinAlgo, JoinType, Plan};
use joinstudy::storage::column::ColumnData;
use joinstudy::storage::table::{Schema, Table, TableBuilder};
use joinstudy::storage::types::{DataType, Value};
use proptest::prelude::*;
use std::sync::Arc;

fn kv_table(rows: &[(i64, i64)]) -> Arc<Table> {
    let schema = Schema::of(&[("k", DataType::Int64), ("v", DataType::Int64)]);
    let mut b = TableBuilder::with_capacity(schema, rows.len());
    *b.column_mut(0) = ColumnData::Int64(rows.iter().map(|r| r.0).collect());
    *b.column_mut(1) = ColumnData::Int64(rows.iter().map(|r| r.1).collect());
    Arc::new(b.finish())
}

/// Naive reference for every join variant. Output rows are rendered as
/// strings (NULL-aware) and sorted.
fn reference(build: &[(i64, i64)], probe: &[(i64, i64)], kind: JoinType) -> Vec<String> {
    let mut out = Vec::new();
    match kind {
        JoinType::Inner => {
            for b in build {
                for p in probe {
                    if b.0 == p.0 {
                        out.push(format!("{}|{}|{}|{}", b.0, b.1, p.0, p.1));
                    }
                }
            }
        }
        JoinType::ProbeOuter => {
            for p in probe {
                let mut any = false;
                for b in build {
                    if b.0 == p.0 {
                        out.push(format!("{}|{}|{}|{}", b.0, b.1, p.0, p.1));
                        any = true;
                    }
                }
                if !any {
                    out.push(format!("NULL|NULL|{}|{}", p.0, p.1));
                }
            }
        }
        JoinType::ProbeSemi | JoinType::ProbeAnti | JoinType::ProbeMark => {
            for p in probe {
                let any = build.iter().any(|b| b.0 == p.0);
                match kind {
                    JoinType::ProbeSemi if any => out.push(format!("{}|{}", p.0, p.1)),
                    JoinType::ProbeAnti if !any => out.push(format!("{}|{}", p.0, p.1)),
                    JoinType::ProbeMark => out.push(format!("{}|{}|{}", p.0, p.1, any)),
                    _ => {}
                }
            }
        }
        JoinType::BuildSemi | JoinType::BuildAnti => {
            for b in build {
                let any = probe.iter().any(|p| p.0 == b.0);
                if (kind == JoinType::BuildSemi) == any {
                    out.push(format!("{}|{}", b.0, b.1));
                }
            }
        }
    }
    out.sort();
    out
}

fn run_join(
    build: &[(i64, i64)],
    probe: &[(i64, i64)],
    algo: JoinAlgo,
    kind: JoinType,
    threads: usize,
) -> Vec<String> {
    let bt = kv_table(build);
    let pt = kv_table(probe);
    let plan = Plan::scan(&bt, &["k", "v"], None).join(
        Plan::scan(&pt, &["k", "v"], None),
        algo,
        kind,
        &[0],
        &[0],
    );
    let t = Engine::new(threads).run(&plan);
    let mut rows: Vec<String> = (0..t.num_rows())
        .map(|r| {
            (0..t.num_columns())
                .map(|c| match t.row(r)[c].clone() {
                    Value::Null => "NULL".to_string(),
                    v => v.to_string(),
                })
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    rows.sort();
    rows
}

/// Key distributions that stress duplicates and misses.
fn rows_strategy() -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec((-8i64..24, any::<i16>().prop_map(i64::from)), 0..120)
}

const ALL_KINDS: [JoinType; 7] = [
    JoinType::Inner,
    JoinType::ProbeSemi,
    JoinType::ProbeAnti,
    JoinType::ProbeMark,
    JoinType::ProbeOuter,
    JoinType::BuildSemi,
    JoinType::BuildAnti,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_algorithms_match_nested_loop(
        build in rows_strategy(),
        probe in rows_strategy(),
    ) {
        for kind in ALL_KINDS {
            let expected = reference(&build, &probe, kind);
            for algo in [JoinAlgo::Bhj, JoinAlgo::Rj, JoinAlgo::Brj] {
                let got = run_join(&build, &probe, algo, kind, 1);
                prop_assert_eq!(&got, &expected, "{:?} {:?}", algo, kind);
            }
        }
    }

    #[test]
    fn parallel_execution_is_equivalent(
        build in rows_strategy(),
        probe in rows_strategy(),
    ) {
        for kind in [JoinType::Inner, JoinType::ProbeAnti, JoinType::BuildAnti] {
            for algo in [JoinAlgo::Bhj, JoinAlgo::Brj] {
                let serial = run_join(&build, &probe, algo, kind, 1);
                let parallel = run_join(&build, &probe, algo, kind, 4);
                prop_assert_eq!(&serial, &parallel, "{:?} {:?}", algo, kind);
            }
        }
    }

    #[test]
    fn duplicate_heavy_inner_join_counts(
        // All keys identical: worst-case N×M duplication.
        build_n in 1usize..40,
        probe_n in 1usize..40,
    ) {
        let build: Vec<(i64, i64)> = (0..build_n as i64).map(|i| (7, i)).collect();
        let probe: Vec<(i64, i64)> = (0..probe_n as i64).map(|i| (7, i)).collect();
        for algo in [JoinAlgo::Bhj, JoinAlgo::Rj, JoinAlgo::Brj] {
            let got = run_join(&build, &probe, algo, JoinType::Inner, 2);
            prop_assert_eq!(got.len(), build_n * probe_n, "{:?}", algo);
        }
    }
}

#[test]
fn mark_join_null_free_semantics() {
    // Mark join: every probe row appears exactly once with a correct flag.
    let build = vec![(1, 0), (2, 0)];
    let probe = vec![(2, 10), (3, 11), (2, 12)];
    for algo in [JoinAlgo::Bhj, JoinAlgo::Rj] {
        let got = run_join(&build, &probe, algo, JoinType::ProbeMark, 1);
        assert_eq!(got, vec!["2|10|true", "2|12|true", "3|11|false"]);
    }
}
