//! Mid-query disconnect hygiene: a client that vanishes while its
//! spilling hybrid join is running must leave nothing behind — the
//! watchdog cancels the session's [`QueryContext`], the join unwinds
//! through the normal error path, spill files are removed by their
//! directory guards, and the admission grant is returned by RAII.
//!
//! Also exercises the spill fault shim through the server: an armed
//! `read:eio` fault must surface as a framed `ERR` response (the
//! connection survives), again with zero orphan spill files and the
//! admission pool byte-for-byte whole.
//!
//! Both scenarios run under a 1-worker pool and a multi-worker pool;
//! they share one `#[test]` because the fault shim is process-global.

use joinstudy::core::spill::fault;
use joinstudy::sql::server::Client;
use joinstudy::sql::{ServerConfig, SqlServer};
use joinstudy::storage::column::ColumnData;
use joinstudy::storage::table::{Schema, Table, TableBuilder};
use joinstudy::storage::types::DataType;
use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn kv_table(prefix: &str, rows: usize, key_mod: i64) -> Arc<Table> {
    let schema = Schema::of(&[
        (format!("{prefix}k").as_str(), DataType::Int64),
        (format!("{prefix}v").as_str(), DataType::Int64),
    ]);
    let mut b = TableBuilder::with_capacity(schema, rows);
    *b.column_mut(0) = ColumnData::Int64((0..rows as i64).map(|i| i % key_mod).collect());
    *b.column_mut(1) = ColumnData::Int64((0..rows as i64).collect());
    Arc::new(b.finish())
}

/// The heavy statement: a hybrid join whose ~480 KiB build side cannot
/// fit the 256 KiB admission grant, so it must spill.
const HEAVY: &str = "SELECT count(*) FROM build_t, probe_t WHERE bk = pk";

fn wait_until(what: &str, deadline: Duration, mut cond: impl FnMut() -> bool) {
    let t0 = Instant::now();
    while !cond() {
        assert!(t0.elapsed() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn orphans(dir: &std::path::Path) -> Vec<std::path::PathBuf> {
    std::fs::read_dir(dir)
        .map(|rd| rd.flatten().map(|e| e.path()).collect())
        .unwrap_or_default()
}

#[test]
fn disconnect_and_fault_leak_nothing() {
    let build = kv_table("b", 60_000, 3_000);
    let probe = kv_table("p", 120_000, 6_000);
    let spill_written = joinstudy::exec::registry::global().counter("spill.write_bytes");

    for pool_threads in [1, 4] {
        let mut server = SqlServer::new(ServerConfig {
            threads: pool_threads,
            pool_bytes: 1 << 20,
            // 256 KiB grants force the hybrid join out of core.
            query_bytes: 256 * 1024,
            min_grant_bytes: 64 * 1024,
            ..ServerConfig::default()
        });
        server.register("build_t", Arc::clone(&build));
        server.register("probe_t", Arc::clone(&probe));
        let admission = server.admission();
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let handle = Arc::new(server).spawn(listener).expect("spawn server");
        let addr = handle.addr();

        let spill_base = std::env::temp_dir().join(format!(
            "joinstudy-serve-disconnect-{}-{pool_threads}",
            std::process::id()
        ));
        std::fs::create_dir_all(&spill_base).unwrap();
        let set_spill = format!("SET spill_dir = '{}'", spill_base.display());

        // Sanity: the workload completes and spills when the client stays.
        let written_before = spill_written.get();
        let mut client = Client::connect(addr).expect("connect");
        assert!(client
            .query("SET join_algo = hybrid")
            .unwrap()
            .starts_with("OK"));
        assert!(client.query(&set_spill).unwrap().starts_with("OK"));
        let response = client.query(HEAVY).expect("heavy join round trip");
        assert!(
            response.starts_with("OK 1 1"),
            "heavy join should succeed under a 256 KiB grant: {}",
            response.lines().next().unwrap_or("")
        );
        assert!(
            spill_written.get() > written_before,
            "a ~960 KiB build under a 256 KiB grant must take the spill path"
        );
        drop(client);

        // Scenario A: the client fires the heavy join and vanishes. The
        // watchdog cancels the query; everything must be reclaimed.
        let mut client = Client::connect(addr).expect("connect");
        client.query("SET join_algo = hybrid").unwrap();
        client.query(&set_spill).unwrap();
        // Snapshot *after* the SETs: they go through admission too, so an
        // earlier snapshot lets this wait pass before the heavy statement
        // is even admitted — and scenario B would then race against the
        // still-running abandoned query.
        let admitted_before = admission.admitted();
        client
            .fire_and_disconnect(HEAVY)
            .expect("fire and disconnect");

        wait_until(
            "the abandoned query to be admitted",
            Duration::from_secs(30),
            || admission.admitted() > admitted_before,
        );
        // Admitted and the pool is whole again: the abandoned statement's
        // grant was held for its entire execution, so this pair of
        // conditions means it has genuinely finished, not merely queued.
        wait_until(
            "the abandoned grant to return",
            Duration::from_secs(30),
            || admission.available() == admission.total(),
        );
        // The grant came back through RAII (zero leaked budget), and the
        // spill directory guard removed every run directory.
        wait_until(
            "spill cleanup after disconnect",
            Duration::from_secs(30),
            || orphans(&spill_base).is_empty(),
        );
        assert_eq!(admission.queued(), 0);

        // Scenario B: an injected read fault. The server shares this
        // process, so the shim reaches its spill I/O. The client stays
        // connected and must get a framed ERR, not a dropped session.
        fault::set_for_test(fault::FaultSpec::parse("read:eio"));
        let mut client = Client::connect(addr).expect("connect");
        client.query("SET join_algo = hybrid").unwrap();
        client.query(&set_spill).unwrap();
        let response = client.query(HEAVY).expect("faulted round trip");
        fault::set_for_test(None);
        assert!(
            response.starts_with("ERR"),
            "armed read fault must surface as ERR ({pool_threads}-thread pool): {}",
            response.lines().next().unwrap_or("")
        );
        // The session survives the error: the next statement still runs.
        let after = client.query("SELECT count(*) FROM build_t").unwrap();
        assert!(
            after.starts_with("OK 1 1"),
            "session must survive a spill fault"
        );
        drop(client);

        wait_until(
            "grants to return after the fault",
            Duration::from_secs(30),
            || admission.available() == admission.total(),
        );
        let left = orphans(&spill_base);
        assert!(left.is_empty(), "orphan spill files after fault: {left:?}");

        handle.stop();
        std::fs::remove_dir_all(&spill_base).ok();
    }
}
