//! # joinstudy — to partition, or not to partition?
//!
//! A full Rust reproduction of *Bandle, Giceva, Neumann: "To Partition, or
//! Not to Partition, That is the Join Question in a Real System"*
//! (SIGMOD 2021): a vectorized, morsel-driven query engine hosting three
//! drop-in-interchangeable hash joins — the buffered non-partitioned hash
//! join (BHJ), the radix join (RJ), and the Bloom-filtered radix join
//! (BRJ) — plus the TPC-H evaluation harness and every microbenchmark from
//! the paper's §5.
//!
//! This facade crate re-exports the study's layers:
//!
//! * [`storage`] — columnar tables, morsels, deterministic data generation,
//! * [`exec`] — batches, expressions, pipelines, the morsel scheduler,
//! * [`core`] — the joins themselves and the physical-plan compiler,
//! * [`baseline`] — stand-alone Balkesen-style PRJ/NPJ baselines,
//! * [`tpch`] — data generator + all join-bearing TPC-H query plans,
//! * [`sql`] — a small SQL frontend (the paper's microbenchmark statements
//!   run verbatim).
//!
//! ## Quickstart
//!
//! ```
//! use joinstudy::core::{Engine, JoinAlgo, JoinType, Plan};
//! use joinstudy::exec::ops::{AggFunc, AggSpec};
//! use joinstudy::storage::table::{Schema, TableBuilder};
//! use joinstudy::storage::types::{DataType, Value};
//! use std::sync::Arc;
//!
//! // Two tiny relations...
//! let schema = Schema::of(&[("k", DataType::Int64)]);
//! let mut b = TableBuilder::new(schema.clone());
//! for k in 0..100 {
//!     b.push_row(&[Value::Int64(k)]);
//! }
//! let build = Arc::new(b.finish());
//! let mut p = TableBuilder::new(schema);
//! for k in 0..1000 {
//!     p.push_row(&[Value::Int64(k % 200)]);
//! }
//! let probe = Arc::new(p.finish());
//!
//! // ...joined with the radix join, counted.
//! let plan = Plan::scan(&build, &["k"], None)
//!     .join(Plan::scan(&probe, &["k"], None), JoinAlgo::Rj, JoinType::Inner, &[0], &[0])
//!     .aggregate(&[], vec![AggSpec::new(AggFunc::CountStar, 0, "cnt")]);
//! let result = Engine::new(2).run(&plan);
//! assert_eq!(result.column_by_name("cnt").as_i64()[0], 500);
//! ```

pub use joinstudy_baseline as baseline;
pub use joinstudy_core as core;
pub use joinstudy_exec as exec;
pub use joinstudy_sql as sql;
pub use joinstudy_storage as storage;
pub use joinstudy_tpch as tpch;
