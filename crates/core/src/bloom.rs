//! Register-blocked Bloom filter — the probe-side semi-join reducer of the
//! Bloom radix join (BRJ, §4.7).
//!
//! Following Lang et al. ("Performance-optimal filtering"), the filter is
//! partitioned into register-sized (64-bit) blocks: each key touches exactly
//! one block, so a probe costs at most one cache miss. Blocks are
//! additionally *partition-aligned*: every radix partition owns a private,
//! equally-sized range of blocks, so the filter can be built during the
//! build side's second partitioning pass without any synchronization — two
//! partitions can never share a block (§4.7).
//!
//! Bit placement uses hash bits 16..40 and block selection bits 40..56,
//! both disjoint from the low bits consumed by radix partitioning.

use std::sync::atomic::{AtomicU64, Ordering};

/// Bits budgeted per build key. 16 bits/key with k = 4 sectors keeps the
/// false-positive rate in the low single digits, which is what makes the
/// BRJ "around 40% faster for 5% foreign-key join partners" (§4.7).
pub const BITS_PER_KEY: usize = 16;

/// Number of bits set per key.
const K: usize = 4;

/// A partition-aligned, register-blocked Bloom filter.
pub struct BlockedBloom {
    words: Vec<AtomicU64>,
    /// Words per partition (power of two).
    words_per_partition: usize,
    word_mask: u64,
    partitions: usize,
}

impl BlockedBloom {
    /// Size the filter for `total_keys` build tuples spread over
    /// `partitions` radix partitions. Every partition receives the same
    /// power-of-two block count (uniform layout keeps the probe mask a
    /// single constant; skewed partitions trade a slightly higher FPR).
    pub fn new(partitions: usize, total_keys: usize) -> BlockedBloom {
        assert!(partitions > 0);
        let keys_per_part = total_keys.div_ceil(partitions).max(1);
        let words_per_partition = (keys_per_part * BITS_PER_KEY)
            .div_ceil(64)
            .next_power_of_two();
        let total_words = words_per_partition * partitions;
        let mut words = Vec::with_capacity(total_words);
        words.resize_with(total_words, || AtomicU64::new(0));
        BlockedBloom {
            words,
            words_per_partition,
            word_mask: (words_per_partition - 1) as u64,
            partitions,
        }
    }

    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// Total filter size in bytes.
    pub fn byte_size(&self) -> usize {
        self.words.len() * 8
    }

    /// The word index a hash maps to within partition `p`.
    #[inline]
    fn word_index(&self, p: usize, hash: u64) -> usize {
        debug_assert!(p < self.partitions);
        p * self.words_per_partition + ((hash >> 40) & self.word_mask) as usize
    }

    /// The K-bit mask a hash sets/tests within its block. Sector bits come
    /// from hash bits 16..40 (6 bits each).
    #[inline]
    fn bit_mask(hash: u64) -> u64 {
        let mut mask = 0u64;
        let mut h = hash >> 16;
        for _ in 0..K {
            mask |= 1u64 << (h & 63);
            h >>= 6;
        }
        mask
    }

    /// Insert a key (by hash) into partition `p`'s block range. Safe to call
    /// concurrently; pass-2 tasks own disjoint partitions anyway.
    #[inline]
    pub fn insert(&self, p: usize, hash: u64) {
        let idx = self.word_index(p, hash);
        self.words[idx].fetch_or(Self::bit_mask(hash), Ordering::Relaxed);
    }

    /// Test a key. False positives possible; false negatives never.
    #[inline]
    pub fn contains(&self, p: usize, hash: u64) -> bool {
        let idx = self.word_index(p, hash);
        let word = self.words[idx].load(Ordering::Relaxed);
        let mask = Self::bit_mask(hash);
        word & mask == mask
    }

    /// Batched probe: push into `sel` the index of every hash that passes
    /// the filter, deriving each hash's partition as `(p1 << bits2) | p2`
    /// (the [`crate::radix::partition_of`] bit plumbing). Equivalent to a
    /// `contains` loop; dispatched through [`crate::simd`] so AVX2 hosts
    /// gather four block words per iteration. Counts probes under
    /// `simd.bloom.*`.
    ///
    /// Must not run concurrently with [`insert`](Self::insert) — in the BRJ
    /// the build side's pass 2 completes before the probe pipeline starts.
    pub fn probe_sel(&self, bits1: u32, bits2: u32, hashes: &[u64], sel: &mut Vec<u32>) {
        sel.clear();
        debug_assert_eq!(self.partitions, 1usize << (bits1 + bits2));
        let path = crate::simd::active();
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        if path == crate::simd::SimdPath::Avx2 {
            // SAFETY: `AtomicU64` has the same layout as `u64`; no inserts
            // run concurrently (see above); every derived word index is
            // bounded by `partitions * words_per_partition == words.len()`
            // because partition and word bits are masked.
            unsafe {
                crate::simd::bloom_probe_avx2(
                    self.words.as_ptr().cast::<u64>(),
                    self.words_per_partition.trailing_zeros(),
                    self.word_mask,
                    bits1,
                    bits2,
                    hashes,
                    sel,
                );
            }
            crate::simd::note(crate::simd::Kernel::Bloom, path, hashes.len());
            return;
        }
        for (r, &h) in hashes.iter().enumerate() {
            let p = crate::radix::partition_of(h, bits1, bits2);
            if self.contains(p, h) {
                sel.push(r as u32);
            }
        }
        crate::simd::note(crate::simd::Kernel::Bloom, path, hashes.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::hash_u64;

    #[test]
    fn no_false_negatives() {
        let parts = 16;
        let n = 10_000u64;
        let bloom = BlockedBloom::new(parts, n as usize);
        for k in 0..n {
            let h = hash_u64(k);
            let p = (h as usize) & (parts - 1);
            bloom.insert(p, h);
        }
        for k in 0..n {
            let h = hash_u64(k);
            let p = (h as usize) & (parts - 1);
            assert!(bloom.contains(p, h), "false negative for key {k}");
        }
    }

    #[test]
    fn false_positive_rate_is_low() {
        let parts = 16;
        let n = 100_000u64;
        let bloom = BlockedBloom::new(parts, n as usize);
        for k in 0..n {
            let h = hash_u64(k);
            bloom.insert((h as usize) & (parts - 1), h);
        }
        let probes = 100_000u64;
        let mut fp = 0usize;
        for k in n..n + probes {
            let h = hash_u64(k);
            if bloom.contains((h as usize) & (parts - 1), h) {
                fp += 1;
            }
        }
        let rate = fp as f64 / probes as f64;
        // Register-blocked with 16 bits/key and k=4: expect low single
        // digits; be generous to stay robust.
        assert!(rate < 0.08, "false-positive rate too high: {rate}");
    }

    #[test]
    fn empty_filter_rejects_everything() {
        let bloom = BlockedBloom::new(4, 1000);
        for k in 0..1000u64 {
            let h = hash_u64(k);
            assert!(!bloom.contains((h as usize) & 3, h));
        }
    }

    #[test]
    fn partitions_are_isolated() {
        let bloom = BlockedBloom::new(8, 8 * 64);
        let h = hash_u64(42);
        bloom.insert(3, h);
        assert!(bloom.contains(3, h));
        for p in 0..8 {
            if p != 3 {
                assert!(!bloom.contains(p, h), "leak into partition {p}");
            }
        }
    }

    #[test]
    fn sizing_scales_with_keys_and_partitions() {
        let small = BlockedBloom::new(4, 1_000);
        let big = BlockedBloom::new(4, 100_000);
        assert!(big.byte_size() > small.byte_size());
        // ~16 bits/key → ~2 bytes/key, modulo power-of-two rounding.
        let bytes_per_key = big.byte_size() as f64 / 100_000.0;
        assert!(
            (1.0..=4.0).contains(&bytes_per_key),
            "bytes/key = {bytes_per_key}"
        );
    }

    #[test]
    fn probe_sel_matches_contains_loop() {
        let (bits1, bits2) = (3u32, 2u32);
        let parts = 1usize << (bits1 + bits2);
        let bloom = BlockedBloom::new(parts, 50_000);
        for k in 0..50_000u64 {
            let h = hash_u64(k);
            bloom.insert(crate::radix::partition_of(h, bits1, bits2), h);
        }
        // Mix of members and non-members, odd length to exercise the tail.
        let hashes: Vec<u64> = (25_000..75_001).map(hash_u64).collect();
        let mut sel = Vec::new();
        bloom.probe_sel(bits1, bits2, &hashes, &mut sel);
        let expect: Vec<u32> = hashes
            .iter()
            .enumerate()
            .filter(|(_, &h)| bloom.contains(crate::radix::partition_of(h, bits1, bits2), h))
            .map(|(r, _)| r as u32)
            .collect();
        assert_eq!(sel, expect);
        // All true members must pass (no false negatives through the batch
        // path either).
        assert!(sel.len() >= 25_000);
    }

    #[test]
    fn bit_mask_sets_at_most_k_bits() {
        for k in 0..1000u64 {
            let ones = BlockedBloom::bit_mask(hash_u64(k)).count_ones() as usize;
            assert!((1..=K).contains(&ones));
        }
    }
}
