//! Dynamic hybrid hash join (HHJ): the out-of-core join that stays correct
//! under *any* memory budget.
//!
//! Both inputs are hash-partitioned by their join keys (the same 64-bit
//! hash the in-memory joins use, consumed window-by-window so recursion
//! levels stay independent). Partitions remain memory-resident as long as
//! the [`QueryContext`] budget allows; under pressure the *largest*
//! resident partition is evicted to a [`crate::spill`] run — the
//! victim-selection trade-off from "Design Trade-offs for a Robust Dynamic
//! Hybrid Hash Join": evicting big partitions frees the most memory per
//! eviction and keeps the most partitions resident. Once spilled, a
//! partition stays spilled (no re-admission thrash).
//!
//! The join phase then processes each partition pair independently: build
//! the in-memory hash table with the ordinary [`crate::bhj`] primitives and
//! stream the probe side through it (the probe side is never materialized
//! twice). A partition whose build side *still* exceeds the budget is
//! recursively repartitioned on the next hash-bit window, up to
//! [`SpillConfig::max_depth`]; a partition that stops shrinking (degenerate
//! keys — every row identical) or exhausts the depth budget falls back to a
//! streaming block nested-loop join that processes the build side in
//! budget-sized chunks. All seven [`JoinType`]s are preserved through every
//! fallback level.

use crate::bhj::{BhjBuildSink, BhjProbeOp, BhjState, BhjUnmatchedSource};
use crate::hash::hash_columns;
use crate::join_common::{default_column, JoinType};
use crate::spill::{SpillDir, SpillFile, SpillReader, SpillWriter};
use joinstudy_exec::batch::Batch;
use joinstudy_exec::context::{BudgetLease, QueryContext};
use joinstudy_exec::error::{ExecError, ExecResult};
use joinstudy_exec::metrics::{self, MemPhase};
use joinstudy_exec::pipeline::{Emit, LocalState, Operator, Sink, Source};
use joinstudy_exec::registry;
use joinstudy_exec::trace;
use joinstudy_storage::column::ColumnData;
use joinstudy_storage::types::DataType;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Tuning knobs of the hybrid hash join.
#[derive(Debug, Clone, Copy)]
pub struct SpillConfig {
    /// log2 of the partition fan-out per level. The effective fan-out is
    /// additionally capped by the budget so open write buffers can never
    /// consume it whole (see [`SpillConfig::effective_fanout_bits`]).
    pub fanout_bits: u32,
    /// Maximum recursive-repartitioning depth; beyond it the join degrades
    /// to the streaming nested-loop fallback.
    pub max_depth: u32,
}

impl Default for SpillConfig {
    fn default() -> SpillConfig {
        SpillConfig {
            fanout_bits: 4,
            max_depth: 4,
        }
    }
}

impl SpillConfig {
    /// Fan-out bits actually used under `budget`: at most a quarter of the
    /// budget may go to open spill write buffers (one per partition, both
    /// sides), with a floor of two partitions.
    pub fn effective_fanout_bits(&self, budget: Option<usize>) -> u32 {
        let Some(budget) = budget else {
            return self.fanout_bits.max(1);
        };
        let max_buffers = (budget / 4 / crate::spill::WRITE_BUF_BYTES).max(2);
        let cap = (usize::BITS - 1 - max_buffers.leading_zeros()).max(1);
        self.fanout_bits.clamp(1, cap)
    }
}

/// Sum of a batch's accountable bytes (column payloads + validity masks).
fn batch_bytes(batch: &Batch) -> usize {
    let cols: usize = batch.columns().iter().map(|c| c.byte_size()).sum();
    let masks: usize = (0..batch.num_columns())
        .map(|i| batch.validity(i).as_ref().map_or(0, |m| m.len()))
        .sum();
    cols + masks
}

// ------------------------------------------------------- partition sink

/// One partition's staging state inside the sink.
struct SlotState {
    batches: Vec<Batch>,
    /// Accounted bytes of `batches` (held by the sink's aggregate lease).
    bytes: usize,
    /// Present once the partition has been evicted; it then stays spilled.
    writer: Option<SpillWriter>,
}

struct SinkState {
    slots: Vec<SlotState>,
    lease: BudgetLease,
}

/// Pipeline breaker that hash-partitions its input into `1 << fanout_bits`
/// partitions, spilling victims partition-by-partition when the memory
/// budget runs out.
pub struct PartitionSpillSink {
    key_cols: Vec<usize>,
    fanout_bits: u32,
    phase: MemPhase,
    side: &'static str,
    /// Resident-bytes ceiling for this sink — a quarter of the budget, so
    /// build-side residents, probe-side residents and open write buffers
    /// can coexist with headroom left for the join phase's hash tables.
    resident_cap: usize,
    ctx: Arc<QueryContext>,
    dir: Arc<SpillDir>,
    global: Mutex<SinkState>,
}

struct PartitionLocal {
    hashes: Vec<u64>,
    sels: Vec<Vec<u32>>,
}

impl PartitionSpillSink {
    pub fn new(
        key_cols: Vec<usize>,
        fanout_bits: u32,
        phase: MemPhase,
        side: &'static str,
        ctx: Arc<QueryContext>,
        dir: Arc<SpillDir>,
    ) -> PartitionSpillSink {
        let fanout = 1usize << fanout_bits;
        let slots = (0..fanout)
            .map(|_| SlotState {
                batches: Vec::new(),
                bytes: 0,
                writer: None,
            })
            .collect();
        let lease = BudgetLease::empty(&ctx);
        let resident_cap = ctx
            .memory_budget()
            .map(|b| (b / 4).max(1))
            .unwrap_or(usize::MAX);
        PartitionSpillSink {
            key_cols,
            fanout_bits,
            phase,
            side,
            resident_cap,
            ctx,
            dir,
            global: Mutex::new(SinkState { slots, lease }),
        }
    }

    /// Evict `victim`'s resident batches to its spill run, creating the run
    /// on first eviction. The victim's share of the aggregate lease is
    /// released *before* the run is created, so the write buffer's own
    /// reservation cannot deadlock against the memory it is about to free.
    fn evict(&self, state: &mut SinkState, victim: usize) -> ExecResult {
        let batches = std::mem::take(&mut state.slots[victim].batches);
        let freed = std::mem::take(&mut state.slots[victim].bytes);
        state.lease.shrink(freed);
        let slot = &mut state.slots[victim];
        if slot.writer.is_none() {
            trace::instant(format!("HHJ evict: {} p{victim} -> disk", self.side));
            slot.writer = Some(SpillWriter::create(
                &self.dir,
                &format!("{}-p{victim}", self.side),
                &self.ctx,
            )?);
            self.ctx.add_spill_partition();
            registry::global().counter("spill.partitions").inc();
        }
        let writer = slot.writer.as_mut().expect("just created");
        for b in &batches {
            writer.write_batch(b)?;
        }
        Ok(())
    }

    /// Place one partition's sub-batch: into memory if the budget allows,
    /// else evict the largest resident partition (possibly `p` itself) and
    /// retry; a partition that has spilled before appends to its run.
    fn place(&self, state: &mut SinkState, p: usize, sub: Batch) -> ExecResult {
        if state.slots[p].writer.is_some() {
            return state.slots[p]
                .writer
                .as_mut()
                .expect("checked")
                .write_batch(&sub);
        }
        let need = batch_bytes(&sub);
        loop {
            if state.lease.bytes().saturating_add(need) <= self.resident_cap {
                match state.lease.grow(need) {
                    Ok(()) => {
                        metrics::record_write(self.phase, need as u64);
                        let slot = &mut state.slots[p];
                        slot.batches.push(sub);
                        slot.bytes += need;
                        return Ok(());
                    }
                    Err(ExecError::BudgetExceeded { .. }) => {}
                    Err(e) => return Err(e),
                }
            }
            // Over the cap (or the global budget refused): evict the
            // largest resident partition — the most memory freed per spill
            // run — and retry; with nothing left to evict, spill `p`
            // itself. If even a write buffer does not fit the budget, the
            // typed error propagates.
            let victim = state
                .slots
                .iter()
                .enumerate()
                .filter(|(_, s)| s.bytes > 0)
                .max_by_key(|(_, s)| s.bytes)
                .map(|(i, _)| i);
            match victim {
                Some(v) => {
                    self.evict(state, v)?;
                    if v == p {
                        // `p` is now disk-backed; append and stop.
                        return state.slots[p]
                            .writer
                            .as_mut()
                            .expect("just evicted")
                            .write_batch(&sub);
                    }
                }
                None => {
                    if state.slots[p].writer.is_none() {
                        self.evict(state, p)?;
                    }
                    return state.slots[p]
                        .writer
                        .as_mut()
                        .expect("just evicted")
                        .write_batch(&sub);
                }
            }
        }
    }

    /// Seal the sink: finish all spill runs and hand the partitions (and
    /// the budget reservation backing the resident ones) to the caller.
    pub fn finalize(&self) -> ExecResult<SideParts> {
        let (slots, lease) = {
            let mut g = self.global.lock().unwrap();
            let slots = std::mem::take(&mut g.slots);
            let lease = std::mem::replace(&mut g.lease, BudgetLease::empty(&self.ctx));
            (slots, lease)
        };
        let mut parts = Vec::with_capacity(slots.len());
        for slot in slots {
            parts.push(Some(match slot.writer {
                Some(w) => {
                    debug_assert!(slot.batches.is_empty(), "spilled slot kept batches");
                    PartData::File(w.finish()?)
                }
                None => PartData::Mem {
                    rows: slot.batches.iter().map(|b| b.num_rows() as u64).sum(),
                    batches: slot.batches,
                    bytes: slot.bytes,
                },
            }));
        }
        // The resident bytes now belong to SideParts, released part by part.
        let owned = lease.transfer();
        debug_assert_eq!(
            owned,
            parts
                .iter()
                .map(|p| match p {
                    Some(PartData::Mem { bytes, .. }) => *bytes,
                    _ => 0,
                })
                .sum::<usize>()
        );
        Ok(SideParts {
            parts: Mutex::new(parts),
            ctx: Arc::clone(&self.ctx),
        })
    }

    /// Number of partitions currently spilled to disk.
    pub fn spilled_partitions(&self) -> usize {
        self.global
            .lock()
            .unwrap()
            .slots
            .iter()
            .filter(|s| s.writer.is_some())
            .count()
    }
}

impl Sink for PartitionSpillSink {
    fn create_local(&self) -> LocalState {
        Box::new(PartitionLocal {
            hashes: Vec::new(),
            sels: vec![Vec::new(); 1 << self.fanout_bits],
        })
    }

    fn consume(&self, local: &mut LocalState, input: Batch) -> ExecResult {
        let local = local.downcast_mut::<PartitionLocal>().expect("local type");
        let n = input.num_rows();
        if n == 0 {
            return Ok(());
        }
        let keys: Vec<&ColumnData> = self.key_cols.iter().map(|&c| input.column(c)).collect();
        hash_columns(&keys, n, &mut local.hashes);
        let mask = (1u64 << self.fanout_bits) - 1;
        for sel in &mut local.sels {
            sel.clear();
        }
        for r in 0..n {
            local.sels[(local.hashes[r] & mask) as usize].push(r as u32);
        }
        // Split outside the lock, place under one lock per input batch.
        let subs: Vec<(usize, Batch)> = local
            .sels
            .iter()
            .enumerate()
            .filter(|(_, sel)| !sel.is_empty())
            .map(|(p, sel)| (p, input.take(sel)))
            .collect();
        let mut state = self.global.lock().unwrap();
        for (p, sub) in subs {
            self.place(&mut state, p, sub)?;
        }
        Ok(())
    }
}

// ------------------------------------------------------ partition store

/// One finalized partition: memory-resident batches or a spill run.
enum PartData {
    Mem {
        batches: Vec<Batch>,
        bytes: usize,
        rows: u64,
    },
    File(SpillFile),
}

/// All partitions of one join side after partitioning, taken one-by-one by
/// the join tasks. Dropping releases the budget of untaken resident
/// partitions (spill files are reclaimed by the [`SpillDir`] guard).
pub struct SideParts {
    parts: Mutex<Vec<Option<PartData>>>,
    ctx: Arc<QueryContext>,
}

impl SideParts {
    fn take(&self, p: usize) -> PartInput {
        match self.parts.lock().unwrap()[p].take() {
            Some(PartData::Mem {
                batches,
                bytes,
                rows,
            }) => PartInput::Mem(MemPart {
                batches,
                bytes,
                rows,
                ctx: Arc::clone(&self.ctx),
            }),
            Some(PartData::File(f)) => PartInput::File(f),
            None => PartInput::Mem(MemPart::empty(&self.ctx)),
        }
    }

    /// Partition count.
    pub fn len(&self) -> usize {
        self.parts.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total spilled bytes across partitions (for plan-time details).
    pub fn spilled_bytes(&self) -> u64 {
        self.parts
            .lock()
            .unwrap()
            .iter()
            .map(|p| match p {
                Some(PartData::File(f)) => f.bytes(),
                _ => 0,
            })
            .sum()
    }

    /// Total rows across all partitions (resident + spilled).
    pub fn rows(&self) -> u64 {
        self.parts
            .lock()
            .unwrap()
            .iter()
            .map(|p| match p {
                Some(PartData::Mem { rows, .. }) => *rows,
                Some(PartData::File(f)) => f.rows(),
                None => 0,
            })
            .sum()
    }

    /// Total bytes across all partitions (resident + spilled).
    pub fn total_bytes(&self) -> u64 {
        self.parts
            .lock()
            .unwrap()
            .iter()
            .map(|p| match p {
                Some(PartData::Mem { bytes, .. }) => *bytes as u64,
                Some(PartData::File(f)) => f.bytes(),
                None => 0,
            })
            .sum()
    }

    /// Number of disk-backed partitions (for plan-time details).
    pub fn spilled_partitions(&self) -> usize {
        self.parts
            .lock()
            .unwrap()
            .iter()
            .filter(|p| matches!(p, Some(PartData::File(_))))
            .count()
    }
}

impl Drop for SideParts {
    fn drop(&mut self) {
        let parts = self.parts.lock().unwrap();
        for p in parts.iter() {
            if let Some(PartData::Mem { bytes, .. }) = p {
                self.ctx.release(*bytes);
            }
        }
    }
}

/// Memory-resident partition input with RAII budget release.
struct MemPart {
    batches: Vec<Batch>,
    bytes: usize,
    rows: u64,
    ctx: Arc<QueryContext>,
}

impl MemPart {
    fn empty(ctx: &Arc<QueryContext>) -> MemPart {
        MemPart {
            batches: Vec::new(),
            bytes: 0,
            rows: 0,
            ctx: Arc::clone(ctx),
        }
    }
}

impl Drop for MemPart {
    fn drop(&mut self) {
        self.ctx.release(self.bytes);
    }
}

/// One partition's worth of input to a join task; re-iterable any number of
/// times (chunked fallbacks stream the same side repeatedly).
enum PartInput {
    Mem(MemPart),
    File(SpillFile),
}

impl PartInput {
    fn rows(&self) -> u64 {
        match self {
            PartInput::Mem(m) => m.rows,
            PartInput::File(f) => f.rows(),
        }
    }

    fn stream<'a>(&'a self, ctx: &Arc<QueryContext>) -> ExecResult<PartStream<'a>> {
        Ok(match self {
            PartInput::Mem(m) => PartStream::Mem(m.batches.iter()),
            PartInput::File(f) => PartStream::File(SpillReader::open(f, ctx)?),
        })
    }

    /// Eagerly reclaim a consumed spill run (the dir guard is the backstop).
    fn discard(self) {
        if let PartInput::File(f) = self {
            f.remove();
        }
    }
}

enum PartStream<'a> {
    Mem(std::slice::Iter<'a, Batch>),
    File(SpillReader),
}

impl PartStream<'_> {
    fn next(&mut self) -> ExecResult<Option<Batch>> {
        match self {
            PartStream::Mem(it) => Ok(it.next().cloned()),
            PartStream::File(r) => r.read_batch(),
        }
    }
}

// ------------------------------------------------------- the join source

/// Source of the hybrid join's output pipeline: one task per partition
/// pair, each joined with the in-memory BHJ primitives, recursing or
/// degrading to the nested-loop fallback when the budget still does not
/// fit.
pub struct HybridJoinSource {
    build: SideParts,
    probe: SideParts,
    build_types: Vec<DataType>,
    build_keys: Vec<usize>,
    probe_keys: Vec<usize>,
    kind: JoinType,
    prefetch: bool,
    cfg: SpillConfig,
    fanout_bits: u32,
    ctx: Arc<QueryContext>,
    dir: Arc<SpillDir>,
    /// Unique suffix for recursion-spawned spill runs.
    seq: AtomicU64,
    /// Under a memory budget, partition pairs are joined one at a time:
    /// two concurrent tasks would race for the same headroom and turn a
    /// tight-but-sufficient budget into spurious recursion or failure.
    /// Unbudgeted runs skip the lock and keep full task parallelism.
    serial: Mutex<()>,
}

#[allow(clippy::too_many_arguments)]
impl HybridJoinSource {
    pub fn new(
        build: SideParts,
        probe: SideParts,
        build_types: Vec<DataType>,
        build_keys: Vec<usize>,
        probe_keys: Vec<usize>,
        kind: JoinType,
        prefetch: bool,
        cfg: SpillConfig,
        fanout_bits: u32,
        ctx: Arc<QueryContext>,
        dir: Arc<SpillDir>,
    ) -> HybridJoinSource {
        debug_assert_eq!(build.len(), probe.len());
        HybridJoinSource {
            build,
            probe,
            build_types,
            build_keys,
            probe_keys,
            kind,
            prefetch,
            cfg,
            fanout_bits,
            ctx,
            dir,
            seq: AtomicU64::new(0),
            serial: Mutex::new(()),
        }
    }

    /// Build the partition's hash table in memory; `Ok(None)` when the
    /// budget does not fit (the caller recurses or degrades), `Err` for
    /// everything else.
    fn try_build(&self, build: &PartInput) -> ExecResult<Option<Arc<BhjState>>> {
        let attempt = (|| {
            let sink = BhjBuildSink::new(&self.build_types, self.build_keys.clone())
                .with_context(Arc::clone(&self.ctx));
            let mut local = sink.create_local();
            let mut stream = build.stream(&self.ctx)?;
            while let Some(batch) = stream.next()? {
                sink.consume(&mut local, batch)?;
            }
            sink.finish_local(local)?;
            sink.into_state(1)
        })();
        match attempt {
            Ok(state) => Ok(Some(state)),
            Err(ExecError::BudgetExceeded { .. }) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Probe `state` with the partition's probe side, streaming output.
    /// Handles the build-preserving variants' unmatched scan; correct
    /// because each partition (and in the chunked fallback, each chunk)
    /// holds every build row exactly once.
    fn probe_into(&self, state: &Arc<BhjState>, probe: &PartInput, out: Emit) -> ExecResult {
        let op = BhjProbeOp::new(
            Arc::clone(state),
            self.probe_keys.clone(),
            self.kind,
            self.prefetch,
        );
        let mut local = op.create_local();
        let mut stream = probe.stream(&self.ctx)?;
        while let Some(batch) = stream.next()? {
            op.process(&mut local, batch, out)?;
        }
        op.flush(&mut local, out)?;
        if self.kind.preserves_build() {
            let unmatched = BhjUnmatchedSource::new(Arc::clone(state), self.kind);
            for t in 0..unmatched.task_count() {
                unmatched.poll_task(t, out)?;
            }
        }
        Ok(())
    }

    /// Join one partition pair at `depth`. `no_progress` marks a pair whose
    /// build side did not shrink in the previous split (degenerate keys):
    /// further recursion cannot help, go straight to the nested loop.
    fn join_pair(
        &self,
        build: PartInput,
        probe: PartInput,
        depth: u32,
        no_progress: bool,
        out: Emit,
    ) -> ExecResult {
        self.ctx.check()?;
        if let Some(state) = self.try_build(&build)? {
            self.probe_into(&state, &probe, out)?;
            drop(state);
            build.discard();
            probe.discard();
            return Ok(());
        }
        // Build side does not fit. Decide between another split and the
        // streaming nested loop.
        let next_shift = (depth + 1) * self.fanout_bits;
        let can_split =
            !no_progress && depth < self.cfg.max_depth && next_shift + self.fanout_bits <= 64;
        if !can_split {
            return self.block_nested_loop(build, probe, out);
        }
        trace::instant(format!(
            "HHJ recurse: repartition at depth {} ({} build rows)",
            depth + 1,
            build.rows()
        ));
        self.ctx.note_spill_depth(u64::from(depth) + 1);
        registry::global().counter("spill.recursions").inc();
        let parent_build_rows = build.rows();
        let build_keys = self.build_keys.clone();
        let probe_keys = self.probe_keys.clone();
        let sub_build = self.split(build, &build_keys, next_shift)?;
        let sub_probe = self.split(probe, &probe_keys, next_shift)?;
        for (b, p) in sub_build.into_iter().zip(sub_probe) {
            let stuck = b.rows() == parent_build_rows;
            self.join_pair(b, p, depth + 1, stuck, out)?;
        }
        Ok(())
    }

    /// Repartition one side on the hash-bit window starting at `shift`,
    /// writing each non-empty sub-partition to its own spill run. The
    /// parent input is discarded afterwards.
    fn split(
        &self,
        input: PartInput,
        key_cols: &[usize],
        shift: u32,
    ) -> ExecResult<Vec<PartInput>> {
        let fanout = 1usize << self.fanout_bits;
        let mask = (1u64 << self.fanout_bits) - 1;
        let mut writers: Vec<Option<SpillWriter>> = (0..fanout).map(|_| None).collect();
        let mut hashes = Vec::new();
        let mut sels: Vec<Vec<u32>> = vec![Vec::new(); fanout];
        let mut stream = input.stream(&self.ctx)?;
        while let Some(batch) = stream.next()? {
            let n = batch.num_rows();
            if n == 0 {
                continue;
            }
            let keys: Vec<&ColumnData> = key_cols.iter().map(|&c| batch.column(c)).collect();
            hash_columns(&keys, n, &mut hashes);
            for sel in &mut sels {
                sel.clear();
            }
            for r in 0..n {
                sels[((hashes[r] >> shift) & mask) as usize].push(r as u32);
            }
            for (s, sel) in sels.iter().enumerate() {
                if sel.is_empty() {
                    continue;
                }
                let w = match &mut writers[s] {
                    Some(w) => w,
                    slot @ None => {
                        let name = format!("sub-{}-s{s}", self.seq.fetch_add(1, Ordering::Relaxed));
                        *slot = Some(SpillWriter::create(&self.dir, &name, &self.ctx)?);
                        slot.as_mut().expect("just created")
                    }
                };
                w.write_batch(&batch.take(sel))?;
            }
        }
        drop(stream);
        input.discard();
        writers
            .into_iter()
            .map(|w| {
                Ok(match w {
                    Some(w) => PartInput::File(w.finish()?),
                    None => PartInput::Mem(MemPart::empty(&self.ctx)),
                })
            })
            .collect()
    }

    /// Streaming block nested-loop fallback: the build side is consumed in
    /// budget-sized chunks, each probed with the full probe side. Probe-
    /// preserving variants collect a cross-chunk match bitmap (charged
    /// against the budget) and emit survivors in one final probe pass.
    fn block_nested_loop(&self, build: PartInput, probe: PartInput, out: Emit) -> ExecResult {
        trace::instant(format!(
            "HHJ fallback: block nested loop ({} build rows)",
            build.rows()
        ));
        registry::global().counter("spill.bnl_fallbacks").inc();
        let needs_bitmap = matches!(
            self.kind,
            JoinType::ProbeSemi | JoinType::ProbeAnti | JoinType::ProbeMark | JoinType::ProbeOuter
        );
        let probe_rows = probe.rows() as usize;
        let mut bitmap_lease = BudgetLease::empty(&self.ctx);
        let mut matched = Vec::new();
        if needs_bitmap {
            bitmap_lease.grow(probe_rows)?;
            matched = vec![false; probe_rows];
        }

        let mut stream = build.stream(&self.ctx)?;
        let mut carry: Option<Batch> = None;
        let mut exhausted = false;
        while !exhausted {
            // Assemble one chunk: consume until the budget refuses (leaving
            // the refused batch for the next chunk) or half the budget is
            // committed (headroom for the chunk's hash table).
            let sink = BhjBuildSink::new(&self.build_types, self.build_keys.clone())
                .with_context(Arc::clone(&self.ctx));
            let mut local = sink.create_local();
            let mut chunk_rows = 0u64;
            loop {
                let batch = match carry.take() {
                    Some(b) => b,
                    None => match stream.next()? {
                        Some(b) => b,
                        None => {
                            exhausted = true;
                            break;
                        }
                    },
                };
                let rows = batch.num_rows() as u64;
                match sink.consume(&mut local, batch.clone()) {
                    Ok(()) => chunk_rows += rows,
                    Err(ExecError::BudgetExceeded { .. }) if chunk_rows > 0 => {
                        carry = Some(batch);
                        break;
                    }
                    Err(e) => return Err(e),
                }
                if let Some(budget) = self.ctx.memory_budget() {
                    if self.ctx.used().saturating_mul(2) >= budget {
                        break;
                    }
                }
            }
            if chunk_rows == 0 && exhausted {
                break;
            }
            sink.finish_local(local)?;
            let state = sink.into_state(1)?;
            self.probe_chunk(&state, &probe, &mut matched, out)?;
        }
        drop(stream);

        if needs_bitmap {
            self.emit_from_bitmap(&probe, &matched, out)?;
        }
        drop(bitmap_lease);
        build.discard();
        probe.discard();
        Ok(())
    }

    /// Probe the full probe side against one build chunk.
    fn probe_chunk(
        &self,
        state: &Arc<BhjState>,
        probe: &PartInput,
        matched: &mut [bool],
        out: Emit,
    ) -> ExecResult {
        match self.kind {
            // Build-preserving variants are correct per chunk: every build
            // row lives in exactly one chunk, so per-chunk unmatched scans
            // partition the overall answer.
            JoinType::Inner | JoinType::BuildSemi | JoinType::BuildAnti => {
                self.probe_into(state, probe, out)
            }
            JoinType::ProbeSemi | JoinType::ProbeAnti | JoinType::ProbeMark => {
                self.mark_chunk(state, probe, matched, None)
            }
            JoinType::ProbeOuter => {
                // Inner pairs stream out per chunk; unmatched probe rows are
                // resolved by the bitmap after the last chunk.
                self.mark_chunk(state, probe, matched, Some(out))
            }
        }
    }

    /// Run a `ProbeMark` pass over the probe side, OR-ing the mark column
    /// into the global bitmap. With `pairs`, additionally emit the inner
    /// matches of this chunk (the `ProbeOuter` case).
    fn mark_chunk(
        &self,
        state: &Arc<BhjState>,
        probe: &PartInput,
        matched: &mut [bool],
        mut pairs: Option<Emit>,
    ) -> ExecResult {
        let mark_op = BhjProbeOp::new(
            Arc::clone(state),
            self.probe_keys.clone(),
            JoinType::ProbeMark,
            self.prefetch,
        );
        let inner_op = BhjProbeOp::new(
            Arc::clone(state),
            self.probe_keys.clone(),
            JoinType::Inner,
            self.prefetch,
        );
        let mut mark_local = mark_op.create_local();
        let mut inner_local = inner_op.create_local();
        let mut stream = probe.stream(&self.ctx)?;
        let mut offset = 0usize;
        while let Some(batch) = stream.next()? {
            let n = batch.num_rows();
            if let Some(out) = pairs.as_mut() {
                inner_op.process(&mut inner_local, batch.clone(), out)?;
            }
            // ProbeMark preserves input order and row count, appending the
            // mark as the last column.
            mark_op.process(&mut mark_local, batch, &mut |b: Batch| {
                let marks = b.column(b.num_columns() - 1).as_bool();
                for (i, &m) in marks.iter().enumerate() {
                    if m {
                        matched[offset + i] = true;
                    }
                }
            })?;
            offset += n;
        }
        Ok(())
    }

    /// Final probe pass of the nested loop: emit the probe-preserving
    /// variants' answer from the cross-chunk bitmap.
    fn emit_from_bitmap(&self, probe: &PartInput, matched: &[bool], out: Emit) -> ExecResult {
        let mut stream = probe.stream(&self.ctx)?;
        let mut offset = 0usize;
        let mut sel = Vec::new();
        while let Some(batch) = stream.next()? {
            let n = batch.num_rows();
            let bits = &matched[offset..offset + n];
            offset += n;
            match self.kind {
                JoinType::ProbeSemi | JoinType::ProbeAnti => {
                    let keep = self.kind == JoinType::ProbeSemi;
                    sel.clear();
                    sel.extend(
                        bits.iter()
                            .enumerate()
                            .filter(|(_, &m)| m == keep)
                            .map(|(i, _)| i as u32),
                    );
                    if !sel.is_empty() {
                        out(batch.take(&sel));
                    }
                }
                JoinType::ProbeMark => {
                    let mut b = batch;
                    b.push_column(ColumnData::Bool(bits.to_vec()));
                    out(b);
                }
                JoinType::ProbeOuter => {
                    sel.clear();
                    sel.extend(
                        bits.iter()
                            .enumerate()
                            .filter(|(_, &m)| !m)
                            .map(|(i, _)| i as u32),
                    );
                    if sel.is_empty() {
                        continue;
                    }
                    let k = sel.len();
                    let pb = batch.take(&sel);
                    let mut columns = Vec::with_capacity(self.build_types.len() + pb.num_columns());
                    let mut validity = Vec::with_capacity(columns.capacity());
                    for &t in &self.build_types {
                        columns.push(default_column(t, k));
                        validity.push(Some(vec![false; k]));
                    }
                    for c in 0..pb.num_columns() {
                        validity.push(pb.validity(c).clone());
                    }
                    columns.extend(pb.into_columns());
                    out(Batch::with_validity(columns, validity));
                }
                _ => unreachable!("bitmap emission only for probe-preserving variants"),
            }
        }
        Ok(())
    }
}

impl Source for HybridJoinSource {
    fn task_count(&self) -> usize {
        self.build.len()
    }

    fn poll_task(&self, task: usize, out: Emit) -> ExecResult {
        self.ctx.check()?;
        let _serial = if self.ctx.memory_budget().is_some() {
            Some(self.serial.lock().unwrap_or_else(|p| p.into_inner()))
        } else {
            None
        };
        let _scope = trace::phase_scope(format!("HHJ join p{task}"));
        let build = self.build.take(task);
        let probe = self.probe.take(task);
        self.join_pair(build, probe, 0, false, out)
    }
}
