//! The Buffered Non-Partitioned Hash Join (BHJ).
//!
//! The paper's baseline-in-system (§4.3, §5.1.1): a global chaining hash
//! table with tagged pointers, built in parallel from materialized rows,
//! probed *inside* the probe pipeline without materializing probe tuples.
//! Relaxed operator fusion shows up as the batch-at-a-time probe: the whole
//! batch is hashed first, all bucket heads are software-prefetched, and only
//! then are the chains walked — hiding the random-access latency that
//! otherwise dominates when the hash table exceeds the caches.
//!
//! Build-preserving variants (e.g. Q22's anti join) mark matched build rows
//! through an atomic flag in the row header; a follow-up pipeline
//! ([`BhjUnmatchedSource`]) then scans the build rows and emits the
//! (un)matched ones — exactly how a real system starts the anti-join's
//! result pipeline from the hash table.

use crate::hash::hash_columns;
use crate::ht_chain::{ChainTable, RowArena};
use crate::join_common::{default_column, JoinType};
use crate::row::{RowLayout, StrHeap};
use crate::swwcb::prefetch_read;
use joinstudy_exec::batch::{Batch, BatchBuilder, BATCH_ROWS};
use joinstudy_exec::context::{BudgetLease, QueryContext};
use joinstudy_exec::error::ExecResult;
use joinstudy_exec::metrics::{self, MemPhase};
use joinstudy_exec::pipeline::{Emit, LocalState, Operator, Sink, Source};
use joinstudy_storage::column::ColumnData;
use joinstudy_storage::types::DataType;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// The materialized build side: arenas + chaining table. Kept alive behind
/// an `Arc` for as long as any probe operator holds pointers into it.
pub struct BhjState {
    pub layout: RowLayout,
    pub key_cols: Vec<usize>,
    arenas: Vec<RowArena>,
    pub heaps: Vec<StrHeap>,
    pub table: ChainTable,
    pub rows: usize,
    /// Budget reservation for the arenas + chaining table; released when the
    /// state is dropped.
    _lease: BudgetLease,
}

impl BhjState {
    /// Total bytes of materialized build rows (harness size accounting).
    pub fn byte_size(&self) -> usize {
        self.arenas.iter().map(RowArena::byte_size).sum::<usize>()
            + self.heaps.iter().map(StrHeap::byte_len).sum::<usize>()
    }

    /// Bucket-occupancy summary of the chaining table (EXPLAIN ANALYZE).
    /// Safe here because the state owns the arenas every chained row lives
    /// in, and the build phase finished when the state was constructed.
    pub fn chain_stats(&self) -> crate::ht_chain::ChainStats {
        unsafe { self.table.chain_stats() }
    }
}

struct BuildLocal {
    arena: RowArena,
    heap: StrHeap,
    heap_id: usize,
    hashes: Vec<u64>,
    /// Budget charged for this worker's arena; released if the local is
    /// dropped without reaching `finish_local` (pipeline failure).
    lease: BudgetLease,
}

struct BuildGlobal {
    arenas: Vec<RowArena>,
    heaps: Vec<(usize, StrHeap)>,
    lease: BudgetLease,
}

/// Pipeline breaker materializing the build side into row arenas.
pub struct BhjBuildSink {
    layout: RowLayout,
    key_cols: Vec<usize>,
    ctx: Arc<QueryContext>,
    next_heap_id: AtomicUsize,
    global: Mutex<BuildGlobal>,
}

impl BhjBuildSink {
    /// `types`: the build input schema's column types; `key_cols`: join-key
    /// columns within that schema.
    pub fn new(types: &[DataType], key_cols: Vec<usize>) -> BhjBuildSink {
        let ctx = QueryContext::unbounded();
        BhjBuildSink {
            layout: RowLayout::new(types, true),
            key_cols,
            next_heap_id: AtomicUsize::new(0),
            global: Mutex::new(BuildGlobal {
                arenas: Vec::new(),
                heaps: Vec::new(),
                lease: BudgetLease::empty(&ctx),
            }),
            ctx,
        }
    }

    /// Charge this sink's materialization against `ctx`'s memory budget.
    pub fn with_context(mut self, ctx: Arc<QueryContext>) -> BhjBuildSink {
        self.global.get_mut().lease = BudgetLease::empty(&ctx);
        self.ctx = ctx;
        self
    }

    /// Build the chaining hash table over all materialized rows and freeze
    /// the state. `threads` workers CAS-insert in parallel (one arena each;
    /// arenas are per-build-worker so counts are balanced). Fails if the
    /// bucket array would exceed the memory budget.
    pub fn into_state(&self, threads: usize) -> ExecResult<Arc<BhjState>> {
        let mut global = self.global.lock();
        let arenas = std::mem::take(&mut global.arenas);
        let mut heap_pairs = std::mem::take(&mut global.heaps);
        let mut lease = std::mem::replace(&mut global.lease, BudgetLease::empty(&self.ctx));
        drop(global);

        let max_id = heap_pairs
            .iter()
            .map(|(id, _)| *id)
            .max()
            .map_or(0, |m| m + 1);
        let mut heaps: Vec<StrHeap> = (0..max_id).map(|_| StrHeap::new()).collect();
        for (id, heap) in heap_pairs.drain(..) {
            heaps[id] = heap;
        }

        let rows: usize = arenas.iter().map(RowArena::rows).sum();
        let table = ChainTable::new(rows);
        lease.grow(table.num_buckets() * 8)?;
        let hash_off = self.layout.hash_offset();

        let next = AtomicUsize::new(0);
        let insert_arena = |arena: &RowArena| {
            for ptr in arena.row_ptrs() {
                unsafe {
                    let h = std::ptr::read(ptr.add(hash_off).cast::<u64>());
                    table.insert(ptr as *mut u8, h);
                }
            }
        };
        if threads <= 1 || arenas.len() <= 1 {
            for a in &arenas {
                insert_arena(a);
            }
        } else {
            std::thread::scope(|scope| {
                for _ in 0..threads.min(arenas.len()) {
                    let next = &next;
                    let arenas = &arenas;
                    let insert_arena = &insert_arena;
                    scope.spawn(move || loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= arenas.len() {
                            break;
                        }
                        insert_arena(&arenas[i]);
                    });
                }
            });
        }

        Ok(Arc::new(BhjState {
            layout: self.layout.clone(),
            key_cols: self.key_cols.clone(),
            arenas,
            heaps,
            table,
            rows,
            _lease: lease,
        }))
    }
}

impl Sink for BhjBuildSink {
    fn create_local(&self) -> LocalState {
        Box::new(BuildLocal {
            arena: RowArena::new(self.layout.stride()),
            heap: StrHeap::new(),
            heap_id: self.next_heap_id.fetch_add(1, Ordering::Relaxed),
            hashes: Vec::new(),
            lease: BudgetLease::empty(&self.ctx),
        })
    }

    fn consume(&self, local: &mut LocalState, input: Batch) -> ExecResult {
        let local = local.downcast_mut::<BuildLocal>().unwrap();
        let n = input.num_rows();
        local.lease.grow(n * self.layout.stride())?;
        let key_cols: Vec<_> = self.key_cols.iter().map(|&c| input.column(c)).collect();
        let mut hashes = std::mem::take(&mut local.hashes);
        hash_columns(&key_cols, n, &mut hashes);
        drop(key_cols);
        for r in 0..n {
            let row = local.arena.alloc_row();
            self.layout
                .encode_row(row, hashes[r], &input, r, &mut local.heap, local.heap_id);
        }
        local.hashes = hashes;
        metrics::record_write(MemPhase::Build, (n * self.layout.stride()) as u64);
        Ok(())
    }

    fn finish_local(&self, local: LocalState) -> ExecResult {
        let local = *local.downcast::<BuildLocal>().unwrap();
        let mut global = self.global.lock();
        global.arenas.push(local.arena);
        global.heaps.push((local.heap_id, local.heap));
        global.lease.absorb(local.lease);
        Ok(())
    }
}

/// The in-pipeline probe operator.
pub struct BhjProbeOp {
    state: Arc<BhjState>,
    probe_keys: Vec<usize>,
    join_type: JoinType,
    prefetch: bool,
}

struct ProbeLocal {
    hashes: Vec<u64>,
}

impl BhjProbeOp {
    pub fn new(
        state: Arc<BhjState>,
        probe_keys: Vec<usize>,
        join_type: JoinType,
        prefetch: bool,
    ) -> BhjProbeOp {
        BhjProbeOp {
            state,
            probe_keys,
            join_type,
            prefetch,
        }
    }

    /// Emit matched pairs as (build ++ probe) batches.
    fn emit_pairs(&self, input: &Batch, ptrs: &[*const u8], sel: &[u32], out: Emit) {
        debug_assert_eq!(ptrs.len(), sel.len());
        let layout = &self.state.layout;
        let mut start = 0;
        while start < ptrs.len() {
            let end = (start + BATCH_ROWS).min(ptrs.len());
            let mut columns = Vec::with_capacity(layout.num_columns() + input.num_columns());
            for c in 0..layout.num_columns() {
                let mut col = ColumnData::with_capacity(layout.types()[c], end - start);
                unsafe {
                    layout.decode_ptrs_into(&ptrs[start..end], c, &self.state.heaps, &mut col);
                }
                columns.push(col);
            }
            let probe_part = input.take(&sel[start..end]);
            columns.extend(probe_part.into_columns());
            out(Batch::new(columns));
            start = end;
        }
    }
}

impl Operator for BhjProbeOp {
    fn create_local(&self) -> LocalState {
        Box::new(ProbeLocal { hashes: Vec::new() })
    }

    fn process(&self, local: &mut LocalState, input: Batch, out: Emit) -> ExecResult {
        let local = local.downcast_mut::<ProbeLocal>().unwrap();
        let n = input.num_rows();
        let key_cols: Vec<_> = self.probe_keys.iter().map(|&c| input.column(c)).collect();
        let mut hashes = std::mem::take(&mut local.hashes);
        hash_columns(&key_cols, n, &mut hashes);
        drop(key_cols);

        // ROF stage 2: prefetch every bucket head for this batch before any
        // chain is walked.
        if self.prefetch {
            for &h in &hashes[..n] {
                prefetch_read(self.state.table.bucket_ptr(h));
            }
        }

        let layout = &self.state.layout;
        let hash_off = layout.hash_offset();
        let heaps = &self.state.heaps;

        match self.join_type {
            JoinType::Inner | JoinType::ProbeOuter => {
                let mut ptrs: Vec<*const u8> = Vec::new();
                let mut sel: Vec<u32> = Vec::new();
                let mut unmatched: Vec<u32> = Vec::new();
                for r in 0..n {
                    let h = hashes[r];
                    let head = self.state.table.head(h);
                    let mut any = false;
                    if ChainTable::tag_may_contain(head, h) {
                        let mut row = ChainTable::first_row(head);
                        while !row.is_null() {
                            unsafe {
                                let rs = std::slice::from_raw_parts(row, layout.width());
                                if std::ptr::read(row.add(hash_off).cast::<u64>()) == h
                                    && layout.keys_match_batch(
                                        rs,
                                        &self.state.key_cols,
                                        heaps,
                                        &input,
                                        &self.probe_keys,
                                        r,
                                    )
                                {
                                    ptrs.push(row);
                                    sel.push(r as u32);
                                    any = true;
                                }
                                row = ChainTable::next_row(row);
                            }
                        }
                    }
                    if !any && self.join_type == JoinType::ProbeOuter {
                        unmatched.push(r as u32);
                    }
                }
                self.emit_pairs(&input, &ptrs, &sel, out);
                if !unmatched.is_empty() {
                    // NULL-padded build columns + surviving probe columns.
                    let k = unmatched.len();
                    let mut columns = Vec::new();
                    let mut validity = Vec::new();
                    for &t in layout.types() {
                        columns.push(default_column(t, k));
                        validity.push(Some(vec![false; k]));
                    }
                    let probe_part = input.take(&unmatched);
                    for (i, col) in probe_part.into_columns().into_iter().enumerate() {
                        validity.push(
                            input
                                .validity(i)
                                .as_ref()
                                .map(|m| unmatched.iter().map(|&r| m[r as usize]).collect()),
                        );
                        columns.push(col);
                    }
                    out(Batch::with_validity(columns, validity));
                }
            }
            JoinType::ProbeSemi | JoinType::ProbeAnti | JoinType::ProbeMark => {
                let want_match = self.join_type != JoinType::ProbeAnti;
                let mut sel: Vec<u32> = Vec::new();
                let mut marks: Vec<bool> = Vec::new();
                for r in 0..n {
                    let h = hashes[r];
                    let head = self.state.table.head(h);
                    let mut any = false;
                    if ChainTable::tag_may_contain(head, h) {
                        let mut row = ChainTable::first_row(head);
                        while !row.is_null() {
                            unsafe {
                                let rs = std::slice::from_raw_parts(row, layout.width());
                                if std::ptr::read(row.add(hash_off).cast::<u64>()) == h
                                    && layout.keys_match_batch(
                                        rs,
                                        &self.state.key_cols,
                                        heaps,
                                        &input,
                                        &self.probe_keys,
                                        r,
                                    )
                                {
                                    any = true;
                                    break;
                                }
                                row = ChainTable::next_row(row);
                            }
                        }
                    }
                    if self.join_type == JoinType::ProbeMark {
                        marks.push(any);
                    } else if any == want_match {
                        sel.push(r as u32);
                    }
                }
                if self.join_type == JoinType::ProbeMark {
                    let mut batch = input;
                    batch.push_column(ColumnData::Bool(marks));
                    out(batch);
                } else if !sel.is_empty() {
                    out(input.take(&sel));
                }
            }
            JoinType::BuildSemi | JoinType::BuildAnti => {
                // Mark matched build rows; emit nothing here — the result
                // pipeline starts from BhjUnmatchedSource.
                for r in 0..n {
                    let h = hashes[r];
                    let head = self.state.table.head(h);
                    if !ChainTable::tag_may_contain(head, h) {
                        continue;
                    }
                    let mut row = ChainTable::first_row(head);
                    while !row.is_null() {
                        unsafe {
                            let rs = std::slice::from_raw_parts(row, layout.width());
                            if std::ptr::read(row.add(hash_off).cast::<u64>()) == h
                                && layout.keys_match_batch(
                                    rs,
                                    &self.state.key_cols,
                                    heaps,
                                    &input,
                                    &self.probe_keys,
                                    r,
                                )
                            {
                                ChainTable::mark_matched(row);
                            }
                            row = ChainTable::next_row(row);
                        }
                    }
                }
            }
        }
        local.hashes = hashes;
        Ok(())
    }
}

/// Result pipeline source for build-preserving variants: scans every build
/// row, emitting those whose matched flag agrees with the variant.
pub struct BhjUnmatchedSource {
    state: Arc<BhjState>,
    /// `true` = BuildSemi (emit matched), `false` = BuildAnti.
    emit_matched: bool,
}

impl BhjUnmatchedSource {
    pub fn new(state: Arc<BhjState>, join_type: JoinType) -> BhjUnmatchedSource {
        let emit_matched = match join_type {
            JoinType::BuildSemi => true,
            JoinType::BuildAnti => false,
            other => panic!("BhjUnmatchedSource on non-build-preserving {other:?}"),
        };
        BhjUnmatchedSource {
            state,
            emit_matched,
        }
    }
}

impl Source for BhjUnmatchedSource {
    fn task_count(&self) -> usize {
        self.state.arenas.len()
    }

    fn poll_task(&self, task: usize, out: Emit) -> ExecResult {
        let layout = &self.state.layout;
        let arena = &self.state.arenas[task];
        let mut bb = BatchBuilder::new(layout.types().to_vec());
        let mut selected: Vec<*const u8> = Vec::new();
        let flush = |bb: &mut BatchBuilder, selected: &mut Vec<*const u8>, out: Emit| {
            if selected.is_empty() {
                return;
            }
            for c in 0..layout.num_columns() {
                unsafe {
                    layout.decode_ptrs_into(selected, c, &self.state.heaps, bb.column_mut(c));
                }
            }
            bb.advance(selected.len());
            selected.clear();
            if let Some(b) = bb.flush() {
                out(b);
            }
        };
        for ptr in arena.row_ptrs() {
            let matched = unsafe { ChainTable::is_matched(ptr) };
            if matched == self.emit_matched {
                selected.push(ptr);
                if selected.len() >= BATCH_ROWS {
                    flush(&mut bb, &mut selected, &mut *out);
                }
            }
        }
        flush(&mut bb, &mut selected, &mut *out);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use joinstudy_storage::types::Value;

    fn build_state(keys: &[i64], payloads: &[i64], threads: usize) -> Arc<BhjState> {
        let sink = BhjBuildSink::new(&[DataType::Int64, DataType::Int64], vec![0]);
        let mut local = sink.create_local();
        let mut bb = BatchBuilder::new(vec![DataType::Int64, DataType::Int64]);
        for (&k, &p) in keys.iter().zip(payloads) {
            bb.push_row(&[Value::Int64(k), Value::Int64(p)]);
            if bb.is_full() {
                sink.consume(&mut local, bb.flush().unwrap()).unwrap();
            }
        }
        if let Some(b) = bb.flush() {
            sink.consume(&mut local, b).unwrap();
        }
        sink.finish_local(local).unwrap();
        sink.into_state(threads).unwrap()
    }

    fn probe(state: Arc<BhjState>, join_type: JoinType, probe_keys: &[i64]) -> Vec<Vec<Value>> {
        let op = BhjProbeOp::new(state, vec![0], join_type, true);
        let mut local = op.create_local();
        let input = Batch::new(vec![ColumnData::Int64(probe_keys.to_vec())]);
        let mut outs = Vec::new();
        op.process(&mut local, input, &mut |b| outs.push(b))
            .unwrap();
        let mut rows = Vec::new();
        for b in outs {
            for r in 0..b.num_rows() {
                rows.push((0..b.num_columns()).map(|c| b.value(c, r)).collect());
            }
        }
        rows.sort_by(|a: &Vec<Value>, b| format!("{a:?}").cmp(&format!("{b:?}")));
        rows
    }

    #[test]
    fn inner_join_matches_pairs_and_duplicates() {
        let state = build_state(&[1, 2, 2, 3], &[10, 20, 21, 30], 1);
        let rows = probe(state, JoinType::Inner, &[2, 4, 1]);
        // key 2 matches two build rows; key 4 none; key 1 one.
        assert_eq!(rows.len(), 3);
        for row in &rows {
            // [build key, build payload, probe key]
            assert_eq!(row[0], row[2]);
        }
        let payloads: Vec<i64> = rows.iter().map(|r| r[1].as_i64()).collect();
        assert!(payloads.contains(&20) && payloads.contains(&21) && payloads.contains(&10));
    }

    #[test]
    fn semi_anti_mark_variants() {
        let state = build_state(&[1, 2], &[0, 0], 1);
        let semi = probe(state.clone(), JoinType::ProbeSemi, &[1, 3, 2, 2]);
        assert_eq!(semi.len(), 3);
        let anti = probe(state.clone(), JoinType::ProbeAnti, &[1, 3, 2, 4]);
        assert_eq!(anti.len(), 2);
        let mark = probe(state, JoinType::ProbeMark, &[1, 3]);
        assert_eq!(mark.len(), 2);
        let marked: Vec<(i64, bool)> = mark
            .iter()
            .map(|r| (r[0].as_i64(), matches!(r[1], Value::Bool(true))))
            .collect();
        assert!(marked.contains(&(1, true)));
        assert!(marked.contains(&(3, false)));
    }

    #[test]
    fn probe_outer_pads_with_nulls() {
        let state = build_state(&[5], &[50], 1);
        let rows = probe(state, JoinType::ProbeOuter, &[5, 6]);
        assert_eq!(rows.len(), 2);
        let matched = rows.iter().find(|r| r[2] == Value::Int64(5)).unwrap();
        assert_eq!(matched[0], Value::Int64(5));
        assert_eq!(matched[1], Value::Int64(50));
        let unmatched = rows.iter().find(|r| r[2] == Value::Int64(6)).unwrap();
        assert_eq!(unmatched[0], Value::Null);
        assert_eq!(unmatched[1], Value::Null);
    }

    #[test]
    fn build_anti_emits_unmatched_build_rows() {
        let state = build_state(&[1, 2, 3, 4], &[10, 20, 30, 40], 1);
        // Probe with keys {2, 4}: marks those build rows.
        let _ = probe(state.clone(), JoinType::BuildAnti, &[2, 4, 4]);
        let source = BhjUnmatchedSource::new(state, JoinType::BuildAnti);
        let mut rows = Vec::new();
        for t in 0..source.task_count() {
            source
                .poll_task(t, &mut |b| {
                    for r in 0..b.num_rows() {
                        rows.push((b.value(0, r).as_i64(), b.value(1, r).as_i64()));
                    }
                })
                .unwrap();
        }
        rows.sort_unstable();
        assert_eq!(rows, vec![(1, 10), (3, 30)]);
    }

    #[test]
    fn build_semi_emits_matched_build_rows() {
        let state = build_state(&[1, 2, 3], &[10, 20, 30], 1);
        let _ = probe(state.clone(), JoinType::BuildSemi, &[3, 3, 1]);
        let source = BhjUnmatchedSource::new(state, JoinType::BuildSemi);
        let mut rows = Vec::new();
        for t in 0..source.task_count() {
            source
                .poll_task(t, &mut |b| {
                    for r in 0..b.num_rows() {
                        rows.push(b.value(0, r).as_i64());
                    }
                })
                .unwrap();
        }
        rows.sort_unstable();
        assert_eq!(rows, vec![1, 3]);
    }

    #[test]
    fn parallel_build_equals_serial() {
        let keys: Vec<i64> = (0..10_000).map(|i| i % 1000).collect();
        let pays: Vec<i64> = (0..10_000).collect();
        // Build with several worker arenas.
        let sink = BhjBuildSink::new(&[DataType::Int64, DataType::Int64], vec![0]);
        std::thread::scope(|scope| {
            for chunk in keys.chunks(2500).zip(pays.chunks(2500)) {
                let sink = &sink;
                scope.spawn(move || {
                    let mut local = sink.create_local();
                    let mut bb = BatchBuilder::new(vec![DataType::Int64, DataType::Int64]);
                    for (&k, &p) in chunk.0.iter().zip(chunk.1) {
                        bb.push_row(&[Value::Int64(k), Value::Int64(p)]);
                        if bb.is_full() {
                            sink.consume(&mut local, bb.flush().unwrap()).unwrap();
                        }
                    }
                    if let Some(b) = bb.flush() {
                        sink.consume(&mut local, b).unwrap();
                    }
                    sink.finish_local(local).unwrap();
                });
            }
        });
        let state = sink.into_state(4).unwrap();
        assert_eq!(state.rows, 10_000);
        // Key 7 appears 10 times (i % 1000 == 7 for 10 values of i).
        let rows = probe(state, JoinType::Inner, &[7]);
        assert_eq!(rows.len(), 10);
    }

    #[test]
    fn empty_build_side() {
        let state = build_state(&[], &[], 1);
        assert_eq!(probe(state.clone(), JoinType::Inner, &[1, 2]).len(), 0);
        assert_eq!(probe(state.clone(), JoinType::ProbeAnti, &[1, 2]).len(), 2);
        let outer = probe(state, JoinType::ProbeOuter, &[9]);
        assert_eq!(outer.len(), 1);
        assert_eq!(outer[0][0], Value::Null);
    }
}
