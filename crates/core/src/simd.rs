//! Runtime-dispatched SIMD kernels for the three hot inner loops.
//!
//! The paper's partition-or-not verdict hinges on per-tuple kernel costs;
//! modern engines vectorize exactly three of ours: key hashing
//! ([`crate::hash`]), the radix partition scatter
//! ([`crate::radix`]/[`crate::swwcb`]), and the Bloom-filter probe
//! ([`crate::bloom`]). This module holds the AVX2 variants of those loops
//! and the dispatch layer that picks between them and the portable scalar
//! code at runtime.
//!
//! # Dispatch contract
//!
//! * The path is probed **once per process** (cpuid via
//!   `is_x86_feature_detected!`, cached in a `OnceLock`) and never changes
//!   afterwards — callers may cache per-query state derived from it.
//! * `JOINSTUDY_NO_SIMD=1` forces the scalar path (CI's scalar-forced leg);
//!   miri and non-x86_64 targets always take it.
//! * Scalar and AVX2 paths are **byte-equivalent**: every kernel is pure
//!   integer arithmetic, so both paths produce identical outputs for
//!   identical inputs (proptest-verified in `tests/simd_equivalence.rs`,
//!   asserted end-to-end by CI's Q3 dispatch-equivalence step).
//! * Each dispatched call bumps a per-kernel `simd.<kernel>.<path>` registry
//!   counter by the number of rows processed, so EXPLAIN ANALYZE, traces and
//!   the bench gate can all see which path actually ran.
//!
//! # Alignment and tails
//!
//! AVX2 kernels make no alignment assumptions on their *inputs* (unaligned
//! loads / gathers); trailing `len % 4` elements fall through to the scalar
//! reference code. The non-temporal store kernel aligns its *destination*
//! cursor up to 32 bytes with 8-byte streaming stores before switching to
//! 256-bit `_mm256_stream_si256`, and finishes the tail the same way — the
//! destination is always 8-byte aligned (guaranteed by `u64`-backed buffers
//! and strides that are multiples of 8, same contract as
//! [`crate::swwcb::nt_copy`]).

use crate::hash::{hash_combine, hash_u64};
use joinstudy_exec::registry::{self, Counter};
use std::sync::Arc;
use std::sync::OnceLock;

/// Environment variable forcing the scalar path when set to anything but
/// `0` (documented form: `JOINSTUDY_NO_SIMD=1`).
pub const NO_SIMD_ENV: &str = "JOINSTUDY_NO_SIMD";

/// Which kernel implementation the dispatcher selected for this process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdPath {
    /// AVX2 intrinsics (x86_64 with the `avx2` cpuid bit, not under miri,
    /// not disabled via [`NO_SIMD_ENV`]).
    Avx2,
    /// Portable scalar reference code.
    Scalar,
}

impl SimdPath {
    /// Short name used in EXPLAIN ANALYZE headers and counter names.
    pub fn name(self) -> &'static str {
        match self {
            SimdPath::Avx2 => "avx2",
            SimdPath::Scalar => "scalar",
        }
    }
}

/// Whether the CPU supports AVX2 at all, ignoring the [`NO_SIMD_ENV`]
/// override. Equivalence tests use this to decide whether the AVX2 side of
/// an A/B comparison can run.
pub fn avx2_available() -> bool {
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    {
        static AVAIL: OnceLock<bool> = OnceLock::new();
        *AVAIL.get_or_init(|| std::is_x86_feature_detected!("avx2"))
    }
    #[cfg(not(all(target_arch = "x86_64", not(miri))))]
    false
}

/// The process-wide dispatch decision (probed once, cached forever).
pub fn active() -> SimdPath {
    static PATH: OnceLock<SimdPath> = OnceLock::new();
    *PATH.get_or_init(|| {
        let disabled = std::env::var_os(NO_SIMD_ENV).is_some_and(|v| !v.is_empty() && v != "0");
        if !disabled && avx2_available() {
            SimdPath::Avx2
        } else {
            SimdPath::Scalar
        }
    })
}

/// The kernels instrumented with `simd.*` counters.
#[derive(Debug, Clone, Copy)]
pub enum Kernel {
    /// Key hashing in [`crate::hash::hash_columns`].
    Hash,
    /// The radix histogram scan (pass 2 preparation).
    Hist,
    /// The pass-2 partition scatter (SWWCB flushes / row copies).
    Scatter,
    /// The Bloom-filter probe of the BRJ's probe pipeline.
    Bloom,
}

struct KernelCounters {
    avx2: [Arc<Counter>; 4],
    scalar: [Arc<Counter>; 4],
}

fn counters() -> &'static KernelCounters {
    static C: OnceLock<KernelCounters> = OnceLock::new();
    C.get_or_init(|| {
        let reg = registry::global();
        let mk = |path: &str| {
            ["hash", "hist", "scatter", "bloom"].map(|k| reg.counter(&format!("simd.{k}.{path}")))
        };
        KernelCounters {
            avx2: mk("avx2"),
            scalar: mk("scalar"),
        }
    })
}

/// Record `rows` tuples processed by `kernel` on `path`. Called once per
/// batch / per task, never per row — the counters must not show up in the
/// loops they instrument.
#[inline]
pub fn note(kernel: Kernel, path: SimdPath, rows: usize) {
    let c = counters();
    let set = match path {
        SimdPath::Avx2 => &c.avx2,
        SimdPath::Scalar => &c.scalar,
    };
    set[kernel as usize].add(rows as u64);
}

// ---------------------------------------------------------------------------
// Hash kernels
// ---------------------------------------------------------------------------

/// Scalar reference: hash a slice of i64 keys (`v as u64` then murmur
/// finalizer), either initializing `out` (`first`) or combining into it.
pub fn hash_i64_scalar(vals: &[i64], out: &mut [u64], first: bool) {
    debug_assert_eq!(vals.len(), out.len());
    if first {
        for (o, &v) in out.iter_mut().zip(vals) {
            *o = hash_u64(v as u64);
        }
    } else {
        for (o, &v) in out.iter_mut().zip(vals) {
            *o = hash_combine(*o, hash_u64(v as u64));
        }
    }
}

/// Scalar reference for i32 keys (sign-extended exactly like `v as u64`
/// on an `i32`, so INT and BIGINT columns agree on the hash).
pub fn hash_i32_scalar(vals: &[i32], out: &mut [u64], first: bool) {
    debug_assert_eq!(vals.len(), out.len());
    if first {
        for (o, &v) in out.iter_mut().zip(vals) {
            *o = hash_u64(v as u64);
        }
    } else {
        for (o, &v) in out.iter_mut().zip(vals) {
            *o = hash_combine(*o, hash_u64(v as u64));
        }
    }
}

/// Dispatched i64 key hashing. Counts rows under `simd.hash.*`.
pub fn hash_i64(vals: &[i64], out: &mut [u64], first: bool) {
    let path = active();
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    if path == SimdPath::Avx2 {
        unsafe { avx2::hash_i64(vals, out, first) };
        note(Kernel::Hash, path, vals.len());
        return;
    }
    hash_i64_scalar(vals, out, first);
    note(Kernel::Hash, path, vals.len());
}

/// Dispatched i32 key hashing. Counts rows under `simd.hash.*`.
pub fn hash_i32(vals: &[i32], out: &mut [u64], first: bool) {
    let path = active();
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    if path == SimdPath::Avx2 {
        unsafe { avx2::hash_i32(vals, out, first) };
        note(Kernel::Hash, path, vals.len());
        return;
    }
    hash_i32_scalar(vals, out, first);
    note(Kernel::Hash, path, vals.len());
}

/// AVX2 i64 hashing, callable directly by equivalence tests. Falls back to
/// scalar if AVX2 is unavailable (so the call is always safe).
pub fn hash_i64_avx2(vals: &[i64], out: &mut [u64], first: bool) {
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    if avx2_available() {
        unsafe { avx2::hash_i64(vals, out, first) };
        return;
    }
    hash_i64_scalar(vals, out, first);
}

/// AVX2 i32 hashing, callable directly by equivalence tests.
pub fn hash_i32_avx2(vals: &[i32], out: &mut [u64], first: bool) {
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    if avx2_available() {
        unsafe { avx2::hash_i32(vals, out, first) };
        return;
    }
    hash_i32_scalar(vals, out, first);
}

// ---------------------------------------------------------------------------
// Radix histogram kernel
// ---------------------------------------------------------------------------

/// Scalar reference: count rows per sub-partition over one packed row chunk.
/// `chunk` holds `chunk.len() / stride` rows; each row's materialized hash
/// sits at `hash_off`; the sub-partition is `(h >> bits1) & mask2`.
pub fn hist_chunk_scalar(
    chunk: &[u8],
    stride: usize,
    hash_off: usize,
    bits1: u32,
    mask2: u64,
    counts: &mut [usize],
) {
    for row in chunk.chunks_exact(stride) {
        let h = crate::row::read_u64(row, hash_off);
        counts[((h >> bits1) & mask2) as usize] += 1;
    }
}

/// Dispatched histogram over one chunk. The caller notes `simd.hist.*` at
/// task granularity (one task scans many chunks).
#[inline]
pub fn hist_chunk(
    chunk: &[u8],
    stride: usize,
    hash_off: usize,
    bits1: u32,
    mask2: u64,
    counts: &mut [usize],
) {
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    if active() == SimdPath::Avx2 {
        unsafe { avx2::hist_chunk(chunk, stride, hash_off, bits1, mask2, counts) };
        return;
    }
    hist_chunk_scalar(chunk, stride, hash_off, bits1, mask2, counts);
}

/// AVX2 histogram, callable directly by equivalence tests (scalar fallback
/// when AVX2 is unavailable).
pub fn hist_chunk_avx2(
    chunk: &[u8],
    stride: usize,
    hash_off: usize,
    bits1: u32,
    mask2: u64,
    counts: &mut [usize],
) {
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    if avx2_available() {
        unsafe { avx2::hist_chunk(chunk, stride, hash_off, bits1, mask2, counts) };
        return;
    }
    hist_chunk_scalar(chunk, stride, hash_off, bits1, mask2, counts);
}

// ---------------------------------------------------------------------------
// Non-temporal copy (SWWCB flush) kernel
// ---------------------------------------------------------------------------

/// AVX2 non-temporal copy: 8-byte streaming stores up to 32-byte destination
/// alignment, 256-bit `_mm256_stream_si256` for the body, 8-byte stores for
/// the tail. Same contract as [`crate::swwcb::nt_copy`]: equal lengths, a
/// multiple of 8, destination 8-byte aligned. Falls back to a plain copy if
/// AVX2 is unavailable (callers dispatch before reaching here; the fallback
/// only matters for direct test calls on non-AVX2 hosts).
pub fn nt_copy_avx2(dst: &mut [u8], src: &[u8]) {
    debug_assert_eq!(dst.len(), src.len());
    debug_assert_eq!(dst.len() % 8, 0);
    debug_assert_eq!(dst.as_ptr() as usize % 8, 0, "unaligned NT destination");
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    if avx2_available() {
        unsafe { avx2::nt_copy(dst, src) };
        return;
    }
    dst.copy_from_slice(src);
}

// ---------------------------------------------------------------------------
// Bloom probe kernel
// ---------------------------------------------------------------------------

/// AVX2 Bloom probe over a batch of hashes: for each hash, derive the final
/// radix partition `(p1 << bits2) | p2`, gather that partition's block word,
/// build the K-bit sector mask with variable shifts, and push the row index
/// of every hash whose mask bits are all set.
///
/// `words` is the filter's flat word array (`AtomicU64` reinterpreted as
/// `u64`: same layout, and probes never run concurrently with inserts —
/// build completes before the probe pipeline starts). `wpp_shift` is
/// `log2(words_per_partition)`; `word_mask` is `words_per_partition - 1`.
///
/// # Safety
///
/// `words` must point to at least `(1 << (bits1 + bits2 + wpp_shift))`
/// readable words, and every hash's derived index stays below that bound by
/// construction (partition bits and word bits are masked).
#[cfg(all(target_arch = "x86_64", not(miri)))]
pub unsafe fn bloom_probe_avx2(
    words: *const u64,
    wpp_shift: u32,
    word_mask: u64,
    bits1: u32,
    bits2: u32,
    hashes: &[u64],
    sel: &mut Vec<u32>,
) {
    avx2::bloom_probe(words, wpp_shift, word_mask, bits1, bits2, hashes, sel)
}

// ---------------------------------------------------------------------------
// AVX2 implementations
// ---------------------------------------------------------------------------

#[cfg(all(target_arch = "x86_64", not(miri)))]
mod avx2 {
    use std::arch::x86_64::*;

    const MURMUR_C1: i64 = 0xFF51_AFD7_ED55_8CCD_u64 as i64;
    const MURMUR_C2: i64 = 0xC4CE_B9FE_1A85_EC53_u64 as i64;
    const COMBINE_K: i64 = 0x9E37_79B9_7F4A_7C15_u64 as i64;

    /// 64x64→64 low multiply synthesized from 32-bit multiplies (AVX2 has no
    /// `_mm256_mullo_epi64`): `lo(a)*lo(b) + ((hi(a)*lo(b) + lo(a)*hi(b)) << 32)`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn mul64(a: __m256i, b: __m256i) -> __m256i {
        let lo = _mm256_mul_epu32(a, b);
        let a_hi = _mm256_srli_epi64::<32>(a);
        let b_hi = _mm256_srli_epi64::<32>(b);
        let cross = _mm256_add_epi64(_mm256_mul_epu32(a_hi, b), _mm256_mul_epu32(a, b_hi));
        _mm256_add_epi64(lo, _mm256_slli_epi64::<32>(cross))
    }

    /// Four murmur finalizers at once — bit-identical to
    /// [`crate::hash::hash_u64`] per lane.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn fmix4(mut h: __m256i) -> __m256i {
        h = _mm256_xor_si256(h, _mm256_srli_epi64::<33>(h));
        h = mul64(h, _mm256_set1_epi64x(MURMUR_C1));
        h = _mm256_xor_si256(h, _mm256_srli_epi64::<33>(h));
        h = mul64(h, _mm256_set1_epi64x(MURMUR_C2));
        _mm256_xor_si256(h, _mm256_srli_epi64::<33>(h))
    }

    /// Four `hash_combine(acc, next)` at once.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn combine4(acc: __m256i, next: __m256i) -> __m256i {
        let t = _mm256_add_epi64(
            _mm256_add_epi64(next, _mm256_set1_epi64x(COMBINE_K)),
            _mm256_slli_epi64::<6>(acc),
        );
        fmix4(_mm256_xor_si256(acc, t))
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn hash_i64(vals: &[i64], out: &mut [u64], first: bool) {
        debug_assert_eq!(vals.len(), out.len());
        let n = vals.len();
        let mut i = 0usize;
        while i + 4 <= n {
            let v = _mm256_loadu_si256(vals.as_ptr().add(i).cast());
            let h = fmix4(v);
            let o = out.as_mut_ptr().add(i).cast::<__m256i>();
            let res = if first {
                h
            } else {
                combine4(_mm256_loadu_si256(o), h)
            };
            _mm256_storeu_si256(o, res);
            i += 4;
        }
        super::hash_i64_scalar(&vals[i..], &mut out[i..], first);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn hash_i32(vals: &[i32], out: &mut [u64], first: bool) {
        debug_assert_eq!(vals.len(), out.len());
        let n = vals.len();
        let mut i = 0usize;
        while i + 4 <= n {
            // Sign-extend four i32 lanes to i64 — matches `v as u64` on i32.
            let v32 = _mm_loadu_si128(vals.as_ptr().add(i).cast());
            let v = _mm256_cvtepi32_epi64(v32);
            let h = fmix4(v);
            let o = out.as_mut_ptr().add(i).cast::<__m256i>();
            let res = if first {
                h
            } else {
                combine4(_mm256_loadu_si256(o), h)
            };
            _mm256_storeu_si256(o, res);
            i += 4;
        }
        super::hash_i32_scalar(&vals[i..], &mut out[i..], first);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn hist_chunk(
        chunk: &[u8],
        stride: usize,
        hash_off: usize,
        bits1: u32,
        mask2: u64,
        counts: &mut [usize],
    ) {
        let rows = chunk.len() / stride;
        let base = chunk.as_ptr();
        let shift = _mm_cvtsi64_si128(i64::from(bits1));
        let maskv = _mm256_set1_epi64x(mask2 as i64);
        let step = _mm256_set1_epi64x((4 * stride) as i64);
        // Byte offsets of the hash field in rows 0..4, advanced by 4 rows
        // per iteration; `_mm256_i64gather_epi64` with scale 1 reads the
        // (8-byte-aligned) hash word of each row.
        let mut offs = _mm256_set_epi64x(
            (3 * stride + hash_off) as i64,
            (2 * stride + hash_off) as i64,
            (stride + hash_off) as i64,
            hash_off as i64,
        );
        let mut i = 0usize;
        let mut lanes = [0u64; 4];
        while i + 4 <= rows {
            let h = _mm256_i64gather_epi64::<1>(base.cast(), offs);
            let s = _mm256_and_si256(_mm256_srl_epi64(h, shift), maskv);
            _mm256_storeu_si256(lanes.as_mut_ptr().cast(), s);
            counts[lanes[0] as usize] += 1;
            counts[lanes[1] as usize] += 1;
            counts[lanes[2] as usize] += 1;
            counts[lanes[3] as usize] += 1;
            offs = _mm256_add_epi64(offs, step);
            i += 4;
        }
        super::hist_chunk_scalar(&chunk[i * stride..], stride, hash_off, bits1, mask2, counts);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn nt_copy(dst: &mut [u8], src: &[u8]) {
        let mut rem = dst.len();
        let mut d = dst.as_mut_ptr();
        let mut s = src.as_ptr();
        // Head: 8-byte streams until the destination is 32-byte aligned.
        while rem >= 8 && !(d as usize).is_multiple_of(32) {
            _mm_stream_si64(d.cast(), s.cast::<i64>().read_unaligned());
            d = d.add(8);
            s = s.add(8);
            rem -= 8;
        }
        // Body: 256-bit streaming stores.
        while rem >= 32 {
            _mm256_stream_si256(d.cast(), _mm256_loadu_si256(s.cast()));
            d = d.add(32);
            s = s.add(32);
            rem -= 32;
        }
        // Tail.
        while rem >= 8 {
            _mm_stream_si64(d.cast(), s.cast::<i64>().read_unaligned());
            d = d.add(8);
            s = s.add(8);
            rem -= 8;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn bloom_probe(
        words: *const u64,
        wpp_shift: u32,
        word_mask: u64,
        bits1: u32,
        bits2: u32,
        hashes: &[u64],
        sel: &mut Vec<u32>,
    ) {
        let n = hashes.len();
        sel.reserve(n);
        let mask1 = _mm256_set1_epi64x(((1u64 << bits1) - 1) as i64);
        let mask2 = _mm256_set1_epi64x(((1u64 << bits2) - 1) as i64);
        let wmask = _mm256_set1_epi64x(word_mask as i64);
        let sixty_three = _mm256_set1_epi64x(63);
        let ones = _mm256_set1_epi64x(1);
        let sh_b1 = _mm_cvtsi64_si128(i64::from(bits1));
        let sh_b2 = _mm_cvtsi64_si128(i64::from(bits2));
        let sh_wpp = _mm_cvtsi64_si128(i64::from(wpp_shift));
        let mut i = 0usize;
        while i + 4 <= n {
            let h = _mm256_loadu_si256(hashes.as_ptr().add(i).cast());
            // p = (p1 << bits2) | p2, same bit plumbing as
            // `radix::partition_of`.
            let p1 = _mm256_and_si256(h, mask1);
            let p2 = _mm256_and_si256(_mm256_srl_epi64(h, sh_b1), mask2);
            let p = _mm256_or_si256(_mm256_sll_epi64(p1, sh_b2), p2);
            // word index: p * words_per_partition + ((h >> 40) & word_mask)
            let widx = _mm256_add_epi64(
                _mm256_sll_epi64(p, sh_wpp),
                _mm256_and_si256(_mm256_srli_epi64::<40>(h), wmask),
            );
            let word = _mm256_i64gather_epi64::<8>(words.cast(), widx);
            // K = 4 sector bits from hash bits 16..40, 6 bits each.
            let mut hm = _mm256_srli_epi64::<16>(h);
            let mut mask = _mm256_setzero_si256();
            for _ in 0..4 {
                let bit = _mm256_sllv_epi64(ones, _mm256_and_si256(hm, sixty_three));
                mask = _mm256_or_si256(mask, bit);
                hm = _mm256_srli_epi64::<6>(hm);
            }
            let hit = _mm256_cmpeq_epi64(_mm256_and_si256(word, mask), mask);
            let bits = _mm256_movemask_pd(_mm256_castsi256_pd(hit));
            for lane in 0..4u32 {
                if bits & (1 << lane) != 0 {
                    sel.push(i as u32 + lane);
                }
            }
            i += 4;
        }
        // Scalar tail, same formulas.
        for (r, &h) in hashes.iter().enumerate().skip(i) {
            let p1 = h & ((1u64 << bits1) - 1);
            let p2 = (h >> bits1) & ((1u64 << bits2) - 1);
            let p = (p1 << bits2) | p2;
            let idx = ((p << wpp_shift) + ((h >> 40) & word_mask)) as usize;
            let word = *words.add(idx);
            let mut mask = 0u64;
            let mut hm = h >> 16;
            for _ in 0..4 {
                mask |= 1u64 << (hm & 63);
                hm >>= 6;
            }
            if word & mask == mask {
                sel.push(r as u32);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_name_is_stable() {
        assert_eq!(SimdPath::Avx2.name(), "avx2");
        assert_eq!(SimdPath::Scalar.name(), "scalar");
        // Whatever the host picked, it must be one of the two.
        assert!(matches!(active(), SimdPath::Avx2 | SimdPath::Scalar));
        // And the probe is stable across calls.
        assert_eq!(active(), active());
    }

    #[test]
    fn hash_kernels_match_scalar_reference() {
        let vals64: Vec<i64> = (0..1003)
            .map(|i| (i as i64).wrapping_mul(-97) + 5)
            .collect();
        let vals32: Vec<i32> = (0..1003i32).map(|i| i.wrapping_mul(-31) + 7).collect();
        for first in [true, false] {
            let mut a = vec![0x5Au64; vals64.len()];
            let mut b = a.clone();
            hash_i64_scalar(&vals64, &mut a, first);
            hash_i64_avx2(&vals64, &mut b, first);
            assert_eq!(a, b);
            let mut a = vec![0xC3u64; vals32.len()];
            let mut b = a.clone();
            hash_i32_scalar(&vals32, &mut a, first);
            hash_i32_avx2(&vals32, &mut b, first);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn hash_matches_hash_u64_per_element() {
        let vals: Vec<i64> = vec![0, 1, -1, i64::MAX, i64::MIN, 42];
        let mut out = vec![0u64; vals.len()];
        hash_i64(&vals, &mut out, true);
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(out[i], hash_u64(v as u64));
        }
    }

    #[test]
    fn hist_kernels_agree() {
        let stride = 16usize;
        let hash_off = 8usize;
        let rows = 777usize;
        let mut chunk = vec![0u8; rows * stride];
        for r in 0..rows {
            let h = hash_u64(r as u64);
            chunk[r * stride + hash_off..r * stride + hash_off + 8]
                .copy_from_slice(&h.to_le_bytes());
        }
        let (bits1, mask2) = (4u32, 7u64);
        let mut a = vec![0usize; 8];
        let mut b = vec![0usize; 8];
        hist_chunk_scalar(&chunk, stride, hash_off, bits1, mask2, &mut a);
        hist_chunk_avx2(&chunk, stride, hash_off, bits1, mask2, &mut b);
        assert_eq!(a, b);
        assert_eq!(a.iter().sum::<usize>(), rows);
    }

    #[test]
    fn nt_copy_avx2_roundtrip_all_lengths() {
        // Cover head-alignment + body + tail combinations.
        for words in [1usize, 2, 3, 4, 5, 8, 9, 16, 31] {
            let src: Vec<u8> = (0..words * 8).map(|i| i as u8).collect();
            let mut dst_words = vec![0u64; words];
            let dst = unsafe {
                std::slice::from_raw_parts_mut(dst_words.as_mut_ptr().cast::<u8>(), words * 8)
            };
            nt_copy_avx2(dst, &src);
            crate::swwcb::nt_fence();
            assert_eq!(dst, &src[..]);
        }
    }

    #[test]
    fn counters_accumulate() {
        let before = registry::global().counter("simd.hash.scalar").get()
            + registry::global().counter("simd.hash.avx2").get();
        let vals = vec![1i64; 100];
        let mut out = vec![0u64; 100];
        hash_i64(&vals, &mut out, true);
        let after = registry::global().counter("simd.hash.scalar").get()
            + registry::global().counter("simd.hash.avx2").get();
        assert_eq!(after - before, 100);
    }
}
