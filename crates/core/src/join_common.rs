//! Join variants and shared helpers.
//!
//! The paper's host system supports "all variants of equi-joins, including
//! outer-, mark-, semi-, and anti-joins" (§1). Variants are classified by
//! *which side they preserve* relative to the build/probe roles — e.g.
//! TPC-H Q22's `NOT EXISTS` becomes an anti join that preserves the build
//! side (customer is built, the large orders relation probes, §5.3.2).

use joinstudy_storage::column::{ColumnData, StrColumn};
use joinstudy_storage::table::{Field, Schema};
use joinstudy_storage::types::DataType;

/// Equi-join variants, named by the preserved side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    /// All matching (build, probe) pairs.
    Inner,
    /// Probe tuples with ≥ 1 match (EXISTS with probe preserved).
    ProbeSemi,
    /// Probe tuples with no match (NOT EXISTS / NOT IN).
    ProbeAnti,
    /// Every probe tuple plus a boolean "has match" column.
    ProbeMark,
    /// All pairs, plus unmatched probe tuples padded with NULL build columns
    /// (an outer join preserving the probe side).
    ProbeOuter,
    /// Build tuples with ≥ 1 match.
    BuildSemi,
    /// Build tuples with no match (Q22's variant).
    BuildAnti,
}

/// Name of the synthetic mark column.
pub const MARK_COLUMN: &str = "@mark";

impl JoinType {
    /// Whether the variant needs per-build-tuple "matched" bookkeeping and
    /// emits (only) build tuples after the probe completes.
    pub fn preserves_build(self) -> bool {
        matches!(self, JoinType::BuildSemi | JoinType::BuildAnti)
    }

    /// Whether probe tuples can pass without a match. Such variants must
    /// not pre-filter the probe side with a Bloom filter *droppingly*; the
    /// BRJ handles them by disabling the reducer (the optimizer would not
    /// choose it there anyway).
    pub fn probe_tuples_survive_unmatched(self) -> bool {
        matches!(
            self,
            JoinType::ProbeAnti | JoinType::ProbeMark | JoinType::ProbeOuter
        )
    }

    /// Output schema given both input schemas.
    pub fn output_schema(self, build: &Schema, probe: &Schema) -> Schema {
        match self {
            JoinType::Inner | JoinType::ProbeOuter => {
                let mut fields = build.fields.clone();
                fields.extend(probe.fields.iter().cloned());
                Schema::new(fields)
            }
            JoinType::ProbeSemi | JoinType::ProbeAnti => probe.clone(),
            JoinType::ProbeMark => {
                let mut fields = probe.fields.clone();
                fields.push(Field::new(MARK_COLUMN, DataType::Bool));
                Schema::new(fields)
            }
            JoinType::BuildSemi | JoinType::BuildAnti => build.clone(),
        }
    }
}

/// Shared per-join counters filled during the probe phase (Figure 2's
/// join-partner statistics).
#[derive(Debug, Default)]
pub struct JoinStats {
    /// Probe tuples processed.
    pub probe_total: std::sync::atomic::AtomicU64,
    /// Probe tuples with at least one join partner.
    pub probe_matched: std::sync::atomic::AtomicU64,
}

impl JoinStats {
    /// Fraction of probe tuples that found a partner (0 when never probed).
    pub fn match_fraction(&self) -> f64 {
        let total = self.probe_total.load(std::sync::atomic::Ordering::Relaxed);
        if total == 0 {
            return 0.0;
        }
        self.probe_matched
            .load(std::sync::atomic::Ordering::Relaxed) as f64
            / total as f64
    }
}

/// An all-default column of `n` rows (NULL padding storage for outer joins;
/// the accompanying validity mask carries the NULL-ness).
pub fn default_column(dtype: DataType, n: usize) -> ColumnData {
    match dtype {
        DataType::Bool => ColumnData::Bool(vec![false; n]),
        DataType::Int32 => ColumnData::Int32(vec![0; n]),
        DataType::Int64 => ColumnData::Int64(vec![0; n]),
        DataType::Float64 => ColumnData::Float64(vec![0.0; n]),
        DataType::Date => ColumnData::Date(vec![0; n]),
        DataType::Decimal => ColumnData::Decimal(vec![0; n]),
        DataType::Str => {
            let mut c = StrColumn::new();
            for _ in 0..n {
                c.push("");
            }
            ColumnData::Str(c)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schemas() -> (Schema, Schema) {
        (
            Schema::of(&[("bk", DataType::Int64), ("bp", DataType::Str)]),
            Schema::of(&[("pk", DataType::Int64), ("pp", DataType::Decimal)]),
        )
    }

    #[test]
    fn output_schemas_per_variant() {
        let (b, p) = schemas();
        assert_eq!(JoinType::Inner.output_schema(&b, &p).len(), 4);
        assert_eq!(JoinType::ProbeOuter.output_schema(&b, &p).len(), 4);
        assert_eq!(JoinType::ProbeSemi.output_schema(&b, &p), p);
        assert_eq!(JoinType::ProbeAnti.output_schema(&b, &p), p);
        let mark = JoinType::ProbeMark.output_schema(&b, &p);
        assert_eq!(mark.len(), 3);
        assert_eq!(mark.fields[2].name, MARK_COLUMN);
        assert_eq!(JoinType::BuildSemi.output_schema(&b, &p), b);
        assert_eq!(JoinType::BuildAnti.output_schema(&b, &p), b);
    }

    #[test]
    fn classification_flags() {
        assert!(JoinType::BuildAnti.preserves_build());
        assert!(JoinType::BuildSemi.preserves_build());
        assert!(!JoinType::Inner.preserves_build());
        assert!(JoinType::ProbeAnti.probe_tuples_survive_unmatched());
        assert!(JoinType::ProbeOuter.probe_tuples_survive_unmatched());
        assert!(!JoinType::ProbeSemi.probe_tuples_survive_unmatched());
        assert!(!JoinType::Inner.probe_tuples_survive_unmatched());
    }

    #[test]
    fn default_columns_have_requested_length() {
        for t in [
            DataType::Bool,
            DataType::Int32,
            DataType::Int64,
            DataType::Float64,
            DataType::Date,
            DataType::Decimal,
            DataType::Str,
        ] {
            let c = default_column(t, 5);
            assert_eq!(c.len(), 5);
            assert_eq!(c.data_type(), t);
        }
    }
}
