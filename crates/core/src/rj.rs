//! The Radix-Partitioned Join's final phase and the Bloom-filter reducer —
//! turning two [`PartitionedSide`]s into the joined output pipeline.
//!
//! After both inputs are partitioned (see [`crate::radix`]), the join itself
//! is a new *pipeline starter* (the paper's Algorithm 2): each final
//! partition pair becomes one task; the worker builds a robin-hood hash
//! table over the (cache-resident) build partition, probes it with the
//! probe partition, and pushes joined batches up the consuming pipeline.
//! Tasks are claimed dynamically, which is the skew tolerance of §4.5 (8).
//!
//! The hash table allocation is reused across all partitions a worker
//! processes (§4.6), via a thread-local.
//!
//! [`BloomProbeOp`] is the §4.7 semi-join reducer of the BRJ: it sits in the
//! probe pipeline *before* the partitioning sink and drops probe tuples
//! whose key cannot be in the build side, saving both partitioning passes
//! for them. Its adaptive mode samples the pass rate and switches the
//! filter off when almost everything passes (§5.4.1).

use crate::bloom::BlockedBloom;
use crate::hash::hash_columns;
use crate::ht_rh::RobinHoodTable;
use crate::join_common::{default_column, JoinStats, JoinType};
use crate::radix::PartitionedSide;
use joinstudy_exec::batch::{Batch, BATCH_ROWS};
use joinstudy_exec::error::ExecResult;
use joinstudy_exec::metrics::{self, MemPhase};
use joinstudy_exec::pipeline::{Emit, LocalState, Operator, Source};
use joinstudy_storage::column::ColumnData;
use std::cell::RefCell;
use std::sync::Arc;

thread_local! {
    /// Reused per-worker hash table (one allocation for the whole query).
    static WORKER_TABLE: RefCell<RobinHoodTable> = RefCell::new(RobinHoodTable::new());
}

/// Pipeline starter performing the partition-wise join.
pub struct RadixJoinSource {
    build: Arc<PartitionedSide>,
    probe: Arc<PartitionedSide>,
    build_keys: Vec<usize>,
    probe_keys: Vec<usize>,
    join_type: JoinType,
    stats: Option<Arc<JoinStats>>,
}

impl RadixJoinSource {
    pub fn new(
        build: Arc<PartitionedSide>,
        probe: Arc<PartitionedSide>,
        build_keys: Vec<usize>,
        probe_keys: Vec<usize>,
        join_type: JoinType,
    ) -> RadixJoinSource {
        assert_eq!(build.bits1(), probe.bits1(), "partitioning fanout mismatch");
        assert_eq!(build.bits2(), probe.bits2(), "partitioning fanout mismatch");
        assert_eq!(build_keys.len(), probe_keys.len());
        RadixJoinSource {
            build,
            probe,
            build_keys,
            probe_keys,
            join_type,
            stats: None,
        }
    }

    /// Attach shared match-statistics counters (Figure 2 harness).
    pub fn with_stats(mut self, stats: Arc<JoinStats>) -> RadixJoinSource {
        self.stats = Some(stats);
        self
    }

    /// Decode and emit output batches for matched (build, probe) row pairs.
    fn emit_pairs(&self, build_offs: &[usize], probe_offs: &[usize], out: Emit) {
        debug_assert_eq!(build_offs.len(), probe_offs.len());
        let bl = self.build.layout();
        let pl = self.probe.layout();
        let bdata = self.build.data_bytes();
        let pdata = self.probe.data_bytes();
        let mut start = 0;
        while start < build_offs.len() {
            let end = (start + BATCH_ROWS).min(build_offs.len());
            let mut columns = Vec::with_capacity(bl.num_columns() + pl.num_columns());
            for c in 0..bl.num_columns() {
                let mut col = ColumnData::with_capacity(bl.types()[c], end - start);
                bl.decode_column_into(
                    bdata,
                    &build_offs[start..end],
                    c,
                    self.build.heaps(),
                    &mut col,
                );
                columns.push(col);
            }
            for c in 0..pl.num_columns() {
                let mut col = ColumnData::with_capacity(pl.types()[c], end - start);
                pl.decode_column_into(
                    pdata,
                    &probe_offs[start..end],
                    c,
                    self.probe.heaps(),
                    &mut col,
                );
                columns.push(col);
            }
            out(Batch::new(columns));
            start = end;
        }
    }

    /// Emit probe-side-only batches (semi/anti/mark and outer padding).
    fn emit_probe_rows(
        &self,
        probe_offs: &[usize],
        marks: Option<&[bool]>,
        pad_build_null: bool,
        out: Emit,
    ) {
        let pl = self.probe.layout();
        let pdata = self.probe.data_bytes();
        let bl = self.build.layout();
        let mut start = 0;
        while start < probe_offs.len() {
            let end = (start + BATCH_ROWS).min(probe_offs.len());
            let k = end - start;
            let mut columns = Vec::new();
            let mut validity = Vec::new();
            if pad_build_null {
                for &t in bl.types() {
                    columns.push(default_column(t, k));
                    validity.push(Some(vec![false; k]));
                }
            }
            for c in 0..pl.num_columns() {
                let mut col = ColumnData::with_capacity(pl.types()[c], k);
                pl.decode_column_into(
                    pdata,
                    &probe_offs[start..end],
                    c,
                    self.probe.heaps(),
                    &mut col,
                );
                columns.push(col);
                validity.push(None);
            }
            if let Some(m) = marks {
                columns.push(ColumnData::Bool(m[start..end].to_vec()));
                validity.push(None);
            }
            out(Batch::with_validity(columns, validity));
            start = end;
        }
    }

    /// Emit build-side-only batches (build-preserving variants).
    fn emit_build_rows(&self, build_offs: &[usize], out: Emit) {
        let bl = self.build.layout();
        let bdata = self.build.data_bytes();
        let mut start = 0;
        while start < build_offs.len() {
            let end = (start + BATCH_ROWS).min(build_offs.len());
            let mut columns = Vec::with_capacity(bl.num_columns());
            for c in 0..bl.num_columns() {
                let mut col = ColumnData::with_capacity(bl.types()[c], end - start);
                bl.decode_column_into(
                    bdata,
                    &build_offs[start..end],
                    c,
                    self.build.heaps(),
                    &mut col,
                );
                columns.push(col);
            }
            out(Batch::new(columns));
            start = end;
        }
    }
}

impl Source for RadixJoinSource {
    fn task_count(&self) -> usize {
        self.build.num_partitions()
    }

    fn poll_task(&self, p: usize, out: Emit) -> ExecResult {
        let bl = self.build.layout();
        let pl = self.probe.layout();
        let bstride = bl.stride();
        let pstride = pl.stride();
        let bdata = self.build.data_bytes();
        let pdata = self.probe.data_bytes();
        let brange = self.build.partition_row_range(p);
        let prange = self.probe.partition_row_range(p);
        let b_n = brange.len();

        metrics::record_read(
            MemPhase::Join,
            (b_n * bstride + prange.len() * pstride) as u64,
        );

        // Row byte offsets of the build partition, indexed by local row id.
        let build_offs: Vec<usize> = brange.clone().map(|r| r * bstride).collect();

        if b_n == 0 {
            if let Some(stats) = &self.stats {
                stats
                    .probe_total
                    .fetch_add(prange.len() as u64, std::sync::atomic::Ordering::Relaxed);
            }
            // No build rows: anti/outer/mark still emit probe tuples.
            match self.join_type {
                JoinType::ProbeAnti => {
                    let probe_offs: Vec<usize> = prange.map(|r| r * pstride).collect();
                    self.emit_probe_rows(&probe_offs, None, false, out);
                }
                JoinType::ProbeOuter => {
                    let probe_offs: Vec<usize> = prange.map(|r| r * pstride).collect();
                    self.emit_probe_rows(&probe_offs, None, true, out);
                }
                JoinType::ProbeMark => {
                    let probe_offs: Vec<usize> = prange.map(|r| r * pstride).collect();
                    let marks = vec![false; probe_offs.len()];
                    self.emit_probe_rows(&probe_offs, Some(&marks), false, out);
                }
                _ => {}
            }
            return Ok(());
        }

        WORKER_TABLE.with(|cell| {
            let mut table = cell.borrow_mut();
            table.reset(b_n);
            for (local_id, &off) in build_offs.iter().enumerate() {
                let h = bl.read_hash(&bdata[off..off + bstride]);
                table.insert(h, local_id as u32);
            }

            let mut matched_build = if self.join_type.preserves_build() {
                vec![false; b_n]
            } else {
                Vec::new()
            };

            let mut pair_b: Vec<usize> = Vec::new();
            let mut pair_p: Vec<usize> = Vec::new();
            let mut probe_sel: Vec<usize> = Vec::new();
            let mut marks: Vec<bool> = Vec::new();
            let mut outer_unmatched: Vec<usize> = Vec::new();
            let mut stat_total = 0u64;
            let mut stat_matched = 0u64;

            for r in prange {
                let poff = r * pstride;
                let prow = &pdata[poff..poff + pstride];
                let h = pl.read_hash(prow);
                let mut any = false;
                table.for_each_match(h, |local_id| {
                    let boff = build_offs[local_id as usize];
                    let brow = &bdata[boff..boff + bstride];
                    if bl.read_hash(brow) == h
                        && bl.keys_equal(
                            brow,
                            &self.build_keys,
                            self.build.heaps(),
                            pl,
                            prow,
                            &self.probe_keys,
                            self.probe.heaps(),
                        )
                    {
                        any = true;
                        match self.join_type {
                            JoinType::Inner | JoinType::ProbeOuter => {
                                pair_b.push(boff);
                                pair_p.push(poff);
                            }
                            JoinType::BuildSemi | JoinType::BuildAnti => {
                                matched_build[local_id as usize] = true;
                            }
                            _ => {}
                        }
                    }
                });
                stat_total += 1;
                stat_matched += u64::from(any);
                match self.join_type {
                    JoinType::ProbeSemi if any => probe_sel.push(poff),
                    JoinType::ProbeAnti if !any => probe_sel.push(poff),
                    JoinType::ProbeMark => {
                        probe_sel.push(poff);
                        marks.push(any);
                    }
                    JoinType::ProbeOuter if !any => outer_unmatched.push(poff),
                    _ => {}
                }
            }

            if let Some(stats) = &self.stats {
                use std::sync::atomic::Ordering;
                stats.probe_total.fetch_add(stat_total, Ordering::Relaxed);
                stats
                    .probe_matched
                    .fetch_add(stat_matched, Ordering::Relaxed);
            }
            match self.join_type {
                JoinType::Inner => self.emit_pairs(&pair_b, &pair_p, out),
                JoinType::ProbeOuter => {
                    self.emit_pairs(&pair_b, &pair_p, &mut *out);
                    self.emit_probe_rows(&outer_unmatched, None, true, out);
                }
                JoinType::ProbeSemi | JoinType::ProbeAnti => {
                    self.emit_probe_rows(&probe_sel, None, false, out)
                }
                JoinType::ProbeMark => self.emit_probe_rows(&probe_sel, Some(&marks), false, out),
                JoinType::BuildSemi | JoinType::BuildAnti => {
                    let want = self.join_type == JoinType::BuildSemi;
                    let offs: Vec<usize> = matched_build
                        .iter()
                        .enumerate()
                        .filter(|&(_i, &m)| m == want)
                        .map(|(i, &_m)| build_offs[i])
                        .collect();
                    self.emit_build_rows(&offs, out);
                }
            }
        });
        Ok(())
    }
}

/// Probe-pipeline Bloom-filter reducer (the "B" in BRJ).
pub struct BloomProbeOp {
    bloom: Arc<BlockedBloom>,
    key_cols: Vec<usize>,
    bits1: u32,
    bits2: u32,
    /// Sample the pass rate and switch off when it stops paying (§5.4.1).
    adaptive: bool,
    /// Whether any worker's adaptive sampling switched the filter off
    /// (reported by EXPLAIN ANALYZE).
    disabled_flag: std::sync::atomic::AtomicBool,
}

/// Adaptive switch-off: after this many sampled tuples ...
const ADAPTIVE_SAMPLE: u64 = 64 * 1024;
/// ... disable the filter if more than this fraction passed.
const ADAPTIVE_THRESHOLD: f64 = 0.9;

struct BloomLocal {
    hashes: Vec<u64>,
    seen: u64,
    passed: u64,
    disabled: bool,
}

impl BloomProbeOp {
    pub fn new(
        bloom: Arc<BlockedBloom>,
        key_cols: Vec<usize>,
        bits1: u32,
        bits2: u32,
        adaptive: bool,
    ) -> BloomProbeOp {
        BloomProbeOp {
            bloom,
            key_cols,
            bits1,
            bits2,
            adaptive,
            disabled_flag: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Whether the adaptive sampling disabled the filter on any worker.
    pub fn was_disabled(&self) -> bool {
        self.disabled_flag
            .load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl Operator for BloomProbeOp {
    fn create_local(&self) -> LocalState {
        Box::new(BloomLocal {
            hashes: Vec::new(),
            seen: 0,
            passed: 0,
            disabled: false,
        })
    }

    fn process(&self, local: &mut LocalState, input: Batch, out: Emit) -> ExecResult {
        let local = local.downcast_mut::<BloomLocal>().unwrap();
        if local.disabled {
            out(input);
            return Ok(());
        }
        let n = input.num_rows();
        let key_cols: Vec<_> = self.key_cols.iter().map(|&c| input.column(c)).collect();
        let mut hashes = std::mem::take(&mut local.hashes);
        hash_columns(&key_cols, n, &mut hashes);
        drop(key_cols);

        let mut sel: Vec<u32> = Vec::with_capacity(n);
        self.bloom
            .probe_sel(self.bits1, self.bits2, &hashes[..n], &mut sel);
        local.seen += n as u64;
        local.passed += sel.len() as u64;
        if self.adaptive
            && local.seen >= ADAPTIVE_SAMPLE
            && local.passed as f64 / local.seen as f64 > ADAPTIVE_THRESHOLD
        {
            local.disabled = true;
            self.disabled_flag
                .store(true, std::sync::atomic::Ordering::Relaxed);
            joinstudy_exec::trace::instant("bloom filter adaptively disabled");
        }
        local.hashes = hashes;
        if sel.len() == n {
            out(input);
        } else if !sel.is_empty() {
            out(input.take(&sel));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radix::{PartitionSink, PhaseSet, RadixConfig};
    use joinstudy_exec::batch::BatchBuilder;
    use joinstudy_exec::pipeline::Sink;
    use joinstudy_storage::types::{DataType, Value};

    fn partition_pairs(
        rows: &[(i64, i64)],
        bits2: Option<u32>,
        bloom: bool,
    ) -> (Arc<PartitionedSide>, Option<Arc<BlockedBloom>>, u32) {
        let layout = crate::row::RowLayout::new(&[DataType::Int64, DataType::Int64], false);
        let sink = PartitionSink::new(layout, vec![0], RadixConfig::default(), PhaseSet::build());
        let mut local = sink.create_local();
        let mut bb = BatchBuilder::new(vec![DataType::Int64, DataType::Int64]);
        for &(k, v) in rows {
            bb.push_row(&[Value::Int64(k), Value::Int64(v)]);
            if bb.is_full() {
                sink.consume(&mut local, bb.flush().unwrap()).unwrap();
            }
        }
        if let Some(b) = bb.flush() {
            sink.consume(&mut local, b).unwrap();
        }
        sink.finish_local(local).unwrap();
        let (side, bf) = sink.finalize(1, bits2, bloom).unwrap();
        let bits2 = side.bits2();
        (Arc::new(side), bf.map(Arc::new), bits2)
    }

    fn run_join(
        build: &[(i64, i64)],
        probe: &[(i64, i64)],
        join_type: JoinType,
    ) -> Vec<Vec<Value>> {
        let (bside, _, bits2) = partition_pairs(build, Some(2), false);
        let (pside, _, _) = partition_pairs(probe, Some(bits2), false);
        let src = RadixJoinSource::new(bside, pside, vec![0], vec![0], join_type);
        let mut rows = Vec::new();
        for t in 0..src.task_count() {
            src.poll_task(t, &mut |b| {
                for r in 0..b.num_rows() {
                    rows.push(
                        (0..b.num_columns())
                            .map(|c| b.value(c, r))
                            .collect::<Vec<_>>(),
                    );
                }
            })
            .unwrap();
        }
        rows.sort_by_key(|r| format!("{r:?}"));
        rows
    }

    #[test]
    fn inner_join_with_duplicates() {
        let build = vec![(1, 10), (2, 20), (2, 21)];
        let probe = vec![(2, 200), (3, 300), (1, 100), (2, 201)];
        let rows = run_join(&build, &probe, JoinType::Inner);
        // key 2: 2 build × 2 probe = 4 pairs; key 1: 1; key 3: 0.
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert_eq!(r[0], r[2], "join keys must match");
        }
    }

    #[test]
    fn semi_and_anti_probe() {
        let build = vec![(1, 0), (2, 0), (2, 0)];
        let probe = vec![(1, 11), (2, 22), (3, 33), (2, 44)];
        let semi = run_join(&build, &probe, JoinType::ProbeSemi);
        assert_eq!(semi.len(), 3); // rows with keys 1, 2, 2 — each once
        let anti = run_join(&build, &probe, JoinType::ProbeAnti);
        assert_eq!(anti.len(), 1);
        assert_eq!(anti[0][0], Value::Int64(3));
    }

    #[test]
    fn mark_join_flags_every_probe_row() {
        let build = vec![(7, 0)];
        let probe = vec![(7, 1), (8, 2)];
        let rows = run_join(&build, &probe, JoinType::ProbeMark);
        assert_eq!(rows.len(), 2);
        let flagged: Vec<(i64, bool)> = rows
            .iter()
            .map(|r| (r[0].as_i64(), matches!(r[2], Value::Bool(true))))
            .collect();
        assert!(flagged.contains(&(7, true)));
        assert!(flagged.contains(&(8, false)));
    }

    #[test]
    fn probe_outer_pads_nulls() {
        let build = vec![(5, 50)];
        let probe = vec![(5, 500), (6, 600)];
        let rows = run_join(&build, &probe, JoinType::ProbeOuter);
        assert_eq!(rows.len(), 2);
        let unmatched = rows.iter().find(|r| r[2] == Value::Int64(6)).unwrap();
        assert_eq!(unmatched[0], Value::Null);
        assert_eq!(unmatched[1], Value::Null);
        let matched = rows.iter().find(|r| r[2] == Value::Int64(5)).unwrap();
        assert_eq!(matched[1], Value::Int64(50));
    }

    #[test]
    fn build_anti_and_semi() {
        let build = vec![(1, 10), (2, 20), (3, 30)];
        let probe = vec![(2, 0), (2, 0)];
        let anti = run_join(&build, &probe, JoinType::BuildAnti);
        let keys: Vec<i64> = anti.iter().map(|r| r[0].as_i64()).collect();
        assert_eq!(keys.len(), 2);
        assert!(keys.contains(&1) && keys.contains(&3));
        let semi = run_join(&build, &probe, JoinType::BuildSemi);
        assert_eq!(semi.len(), 1);
        assert_eq!(semi[0][0], Value::Int64(2));
    }

    #[test]
    fn large_fk_join_counts_match() {
        // 1000 build keys, each probed 0..5 times — verify exact match count.
        let build: Vec<(i64, i64)> = (0..1000).map(|k| (k, k * 2)).collect();
        let mut probe = Vec::new();
        let mut expected = 0usize;
        for k in 0..2000i64 {
            let reps = (k % 5) as usize;
            for _ in 0..reps {
                probe.push((k, k));
            }
            if k < 1000 {
                expected += reps;
            }
        }
        let rows = run_join(&build, &probe, JoinType::Inner);
        assert_eq!(rows.len(), expected);
    }

    #[test]
    fn empty_sides() {
        assert_eq!(run_join(&[], &[(1, 1)], JoinType::Inner).len(), 0);
        assert_eq!(run_join(&[], &[(1, 1)], JoinType::ProbeAnti).len(), 1);
        assert_eq!(run_join(&[(1, 1)], &[], JoinType::Inner).len(), 0);
        assert_eq!(run_join(&[(1, 1)], &[], JoinType::BuildAnti).len(), 1);
    }

    #[test]
    fn bloom_probe_filters_and_adapts() {
        // Build side: keys 0..1000. Probe: keys 0..10000 (10% hit rate).
        let build: Vec<(i64, i64)> = (0..1000).map(|k| (k, 0)).collect();
        let (bside, bloom, bits2) = partition_pairs(&build, Some(2), true);
        let bloom = bloom.unwrap();
        let op = BloomProbeOp::new(bloom.clone(), vec![0], bside.bits1(), bits2, false);
        let mut local = op.create_local();
        let probe_keys: Vec<i64> = (0..10_000).collect();
        let input = Batch::new(vec![ColumnData::Int64(probe_keys)]);
        let mut passed = 0usize;
        op.process(&mut local, input, &mut |b| passed += b.num_rows())
            .unwrap();
        // All 1000 true hits must pass; false positives stay low.
        assert!(passed >= 1000, "dropped true matches: {passed}");
        assert!(passed < 2000, "bloom too weak: {passed}/10000 passed");

        // Adaptive mode disables itself under a 100%-hit workload.
        let op = BloomProbeOp::new(bloom, vec![0], bside.bits1(), bits2, true);
        let mut local = op.create_local();
        for _ in 0..80 {
            let keys: Vec<i64> = (0..1000).collect();
            let mut got = 0;
            op.process(
                &mut local,
                Batch::new(vec![ColumnData::Int64(keys)]),
                &mut |b| got += b.num_rows(),
            )
            .unwrap();
            assert_eq!(got, 1000);
        }
        let l = local.downcast_ref::<BloomLocal>().unwrap();
        assert!(l.disabled, "adaptive filter should have switched off");
    }
}
