//! The paper's core contribution, rebuilt: radix-partitioned hash joins
//! integrated into a vectorized, morsel-driven query engine, side by side
//! with an optimized non-partitioned hash join.
//!
//! *Bandle, Giceva, Neumann: "To Partition, or Not to Partition, That is
//! the Join Question in a Real System", SIGMOD 2021.*
//!
//! The three contenders (§5.1.1), all drop-in replacements for each other
//! behind [`plan::JoinAlgo`]:
//!
//! * **BHJ** ([`bhj`]) — buffered non-partitioned hash join: global
//!   chaining table ([`ht_chain`]) with tagged pointers, batched probes
//!   with software prefetching (relaxed operator fusion).
//! * **RJ** ([`rj`], [`radix`]) — radix join: two-pass morsel-driven
//!   partitioning with SWWCBs and non-temporal streaming ([`swwcb`]),
//!   partition-local robin-hood tables ([`ht_rh`]).
//! * **BRJ** — RJ plus the register-blocked Bloom-filter semi-join reducer
//!   ([`bloom`]) built during the build side's second partitioning pass and
//!   probed before the probe side is materialized.
//!
//! All equi-join variants are supported ([`join_common::JoinType`]):
//! inner, probe/build semi, probe/build anti, mark, and probe-outer.
//! [`plan`] provides the physical-plan layer whose pipeline compiler
//! reproduces the paper's Figure 4 pipeline structure.

// Hot loops iterate row indices across several parallel arrays (hashes,
// batches, selection vectors); rewriting them as iterator chains obscures
// the data flow without changing codegen.
#![allow(clippy::needless_range_loop)]

pub mod adaptive;
pub mod bhj;
pub mod bloom;
pub mod cost;
pub mod groupjoin;
pub mod hash;
pub mod ht_chain;
pub mod ht_rh;
pub mod hybrid;
pub mod join_common;
pub mod plan;
pub(crate) mod qprof;
pub mod radix;
pub mod rj;
pub mod row;
pub mod simd;
pub mod spill;
pub mod swwcb;

pub use join_common::JoinType;
pub use plan::{Engine, JoinAlgo, Plan};
pub use radix::RadixConfig;
