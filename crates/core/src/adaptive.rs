//! Plan-time estimation for the adaptive join planner.
//!
//! [`crate::cost`] answers "to partition, or not" given a
//! [`JoinEstimate`](crate::cost::JoinEstimate); this module produces that
//! estimate from a [`Plan`] subtree *before* any pipeline runs:
//!
//! * **Cardinalities** walk the plan bottom-up from exact base-table row
//!   counts. Scan filters are not guessed — the predicate is evaluated on a
//!   sampled prefix of the table (one `eval_bool` over ≤ 4096 rows, memoized
//!   per (table, predicate) so nested joins and repeated executions pay it
//!   once), which is exact for the pushed-down TPC-H predicates. Derived
//!   nodes use documented coarse heuristics (FK joins emit ≈ probe rows,
//!   semi/anti halve, aggregations keep a tenth).
//! * **Row widths** come from the schema (slot width per column, plus a
//!   heap allowance for strings).
//! * **Bloom selectivity** is estimated by *sampling probe keys*: when both
//!   join keys trace through Filter/Map/LateLoad chains to base-table
//!   columns, up to [`PROBE_SAMPLE`] probe keys are tested for membership
//!   in a (possibly sampled) set of build keys. Untraceable keys fall back
//!   to σ = 1 — conservative, since it removes the BRJ's modeled advantage
//!   rather than inventing one.
//!
//! Estimates feed [`CostModel::decide`](crate::cost::CostModel::decide);
//! the runtime escape hatch in the pipeline compiler re-checks the decision
//! against the *measured* build side after the first radix pass (see
//! `DESIGN.md` §10).

use crate::cost::{CostModel, Decision, JoinEstimate};
use crate::join_common::JoinType;
use crate::plan::{JoinAlgo, Plan};
use joinstudy_exec::expr::Expr;
use joinstudy_exec::Batch;
use joinstudy_storage::column::ColumnData;
use joinstudy_storage::table::{Schema, Table};
use joinstudy_storage::types::DataType;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, LazyLock};

/// Rows sampled when evaluating a scan predicate at plan time.
pub const FILTER_SAMPLE: usize = 4096;
/// Probe-side keys sampled for the Bloom selectivity estimate.
pub const PROBE_SAMPLE: usize = 2048;
/// Build sides up to this many rows contribute *all* their keys to the
/// membership set (exact containment); larger ones are sampled. Kept small
/// deliberately: this set is rebuilt on every planned join, so its cost is
/// the planner's overhead floor — the sampled-membership scale correction
/// below keeps the estimate usable at this size.
pub const BUILD_EXACT: usize = 1 << 14;
/// Build-side key sample size beyond [`BUILD_EXACT`].
pub const BUILD_SAMPLE: usize = 1 << 14;

/// Selectivity assumed for an in-pipeline `Filter` node (its predicate is
/// expressed against a derived schema, so it cannot be sampled cheaply).
const DERIVED_FILTER_SELECTIVITY: f64 = 0.5;
/// Output fraction assumed for semi/anti join variants.
const SEMI_SELECTIVITY: f64 = 0.5;
/// Groups-per-input fraction assumed for hash aggregation.
const AGG_GROUP_FRACTION: f64 = 0.1;

/// Estimated output cardinality of a plan subtree.
pub fn estimate_rows(plan: &Plan) -> f64 {
    match plan {
        Plan::Scan { table, filter, .. } => {
            let rows = table.num_rows() as f64;
            match filter {
                None => rows,
                Some(pred) => rows * scan_filter_selectivity(table, plan, pred),
            }
        }
        Plan::Stream { est_rows, .. } => *est_rows,
        Plan::Filter { input, .. } => estimate_rows(input) * DERIVED_FILTER_SELECTIVITY,
        Plan::Map { input, .. } | Plan::LateLoad { input, .. } => estimate_rows(input),
        Plan::Join {
            kind, build, probe, ..
        } => {
            let b = estimate_rows(build);
            let p = estimate_rows(probe);
            match kind {
                // FK joins dominate TPC-H: every probe tuple finds at most
                // one (PK) build partner.
                JoinType::Inner | JoinType::ProbeOuter | JoinType::ProbeMark => p,
                JoinType::ProbeSemi | JoinType::ProbeAnti => p * SEMI_SELECTIVITY,
                JoinType::BuildSemi | JoinType::BuildAnti => b * SEMI_SELECTIVITY,
            }
        }
        Plan::GroupJoin { build, .. } => estimate_rows(build),
        Plan::Aggregate {
            input, group_cols, ..
        } => {
            let rows = estimate_rows(input);
            if group_cols.is_empty() {
                1.0
            } else {
                (rows * AGG_GROUP_FRACTION).max(1.0)
            }
        }
        Plan::Sort { input, limit, .. } => {
            let rows = estimate_rows(input);
            limit.map_or(rows, |l| rows.min(l as f64))
        }
    }
    .max(1.0)
}

/// Sampled scan-predicate selectivities, keyed by table identity and the
/// printed form of (projection, predicate). A pushed-down predicate's
/// selectivity is a pure function of the immutable base table, but the
/// planner re-estimates every subtree once per enclosing join and once per
/// execution — uncached, the repeated [`FILTER_SAMPLE`]-row predicate
/// evaluations are the adaptive planner's dominant overhead on multi-join
/// queries. Bounded: cleared wholesale past [`SELECTIVITY_CACHE_CAP`]
/// (workloads cycle through a small fixed set of scan predicates).
type SelectivityKey = (usize, usize, String);
static SELECTIVITY_CACHE: LazyLock<Mutex<HashMap<SelectivityKey, f64>>> =
    LazyLock::new(Mutex::default);
const SELECTIVITY_CACHE_CAP: usize = 256;

/// Evaluate a pushed-down scan predicate on a prefix sample of the table.
/// The predicate is expressed against the scan's *projected* schema, so the
/// sampled batch projects the same columns in the same order.
fn scan_filter_selectivity(table: &Arc<Table>, scan: &Plan, pred: &Expr) -> f64 {
    let Plan::Scan { cols, .. } = scan else {
        return 1.0;
    };
    let rows = table.num_rows();
    if rows == 0 {
        return 1.0;
    }
    // The pointer alone could be reused by a later table; the row count and
    // the printed predicate make a stale hit practically impossible (and a
    // hit only ever feeds an estimate, never a result).
    let key = (
        Arc::as_ptr(table) as usize,
        rows,
        format!("{cols:?}|{pred:?}"),
    );
    if let Some(&cached) = SELECTIVITY_CACHE.lock().get(&key) {
        return cached;
    }
    let n = rows.min(FILTER_SAMPLE);
    let columns: Vec<ColumnData> = cols
        .iter()
        .map(|&c| joinstudy_exec::batch::slice_column(table.column(c), 0, n))
        .collect();
    let batch = Batch::new(columns);
    let hits = pred.eval_bool(&batch).iter().filter(|&&b| b).count();
    // Clamp away from 0 so downstream estimates never collapse entirely on
    // a sample that happened to miss (the prefix is not a random sample).
    let sel = (hits as f64 / n as f64).clamp(1.0 / n as f64, 1.0);
    let mut cache = SELECTIVITY_CACHE.lock();
    if cache.len() >= SELECTIVITY_CACHE_CAP {
        cache.clear();
    }
    cache.insert(key, sel);
    sel
}

/// Estimated materialized row width in bytes for a schema: fixed slot
/// widths plus a heap allowance for strings.
pub fn row_width(schema: &Schema) -> f64 {
    schema
        .fields
        .iter()
        .map(|f| match f.dtype {
            DataType::Str => f.dtype.slot_width() as f64 + 16.0,
            other => other.slot_width() as f64,
        })
        .sum::<f64>()
        .max(8.0)
}

/// Trace an output column of `plan` back to a base-table column through
/// width-preserving operators. Returns the table and its column index, or
/// `None` when the column is computed or crosses a pipeline breaker.
fn trace_to_base(plan: &Plan, col: usize) -> Option<(Arc<Table>, usize)> {
    match plan {
        Plan::Scan { table, cols, .. } => cols.get(col).map(|&base| (Arc::clone(table), base)),
        // Streamed sources have no materialized base table to sample.
        Plan::Stream { .. } => None,
        Plan::Filter { input, .. } => trace_to_base(input, col),
        Plan::Map { input, exprs, .. } => match exprs.get(col)? {
            Expr::Col(c) => trace_to_base(input, *c),
            _ => None,
        },
        Plan::LateLoad {
            input, table, cols, ..
        } => {
            let in_arity = input.schema().len();
            if col < in_arity {
                trace_to_base(input, col)
            } else {
                cols.get(col - in_arity).map(|&c| (Arc::clone(table), c))
            }
        }
        // Joins, group-joins, aggregates and sorts re-materialize; tracing
        // through them would need the breaker's output, which does not
        // exist at plan time.
        _ => None,
    }
}

/// Hashable key image of one cell; `None` for types joins never key on.
fn cell_key(col: &ColumnData, row: usize) -> Option<u64> {
    Some(match col {
        ColumnData::Int64(v) => v[row] as u64,
        ColumnData::Int32(v) => v[row] as u64,
        ColumnData::Date(v) => v[row] as u64,
        ColumnData::Decimal(v) => v[row] as u64,
        ColumnData::Str(s) => {
            // FNV-1a over the bytes; only equality matters here.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in s.get(row).bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100000001b3);
            }
            h
        }
        ColumnData::Bool(_) | ColumnData::Float64(_) => return None,
    })
}

/// Stride-sample up to `n` key images from a column.
fn sample_keys(col: &ColumnData, n: usize) -> Option<Vec<u64>> {
    let rows = col.len();
    if rows == 0 {
        return Some(Vec::new());
    }
    let take = n.min(rows);
    let mut out = Vec::with_capacity(take);
    for i in 0..take {
        // Evenly spaced over the whole column (integer interpolation): a
        // flooring stride would degenerate to a prefix sample whenever
        // `rows < 2n`, badly biased for sorted key columns.
        let r = i * rows / take;
        out.push(cell_key(col, r)?);
    }
    Some(out)
}

/// Estimate the fraction of probe tuples whose key appears on the build
/// side, by sampling both sides' base-table key columns. `None` when either
/// key cannot be traced to a base column (multi-column keys included: their
/// combined image cannot be sampled independently per side).
pub fn sample_bloom_selectivity(
    build: &Plan,
    probe: &Plan,
    build_keys: &[usize],
    probe_keys: &[usize],
) -> Option<f64> {
    if build_keys.len() != 1 || probe_keys.len() != 1 {
        return None;
    }
    let (btable, bcol) = trace_to_base(build, build_keys[0])?;
    let (ptable, pcol) = trace_to_base(probe, probe_keys[0])?;
    let build_rows = btable.num_rows();
    if build_rows == 0 || ptable.num_rows() == 0 {
        return Some(if build_rows == 0 { 0.0 } else { 1.0 });
    }
    let (build_sample_n, scale) = if build_rows <= BUILD_EXACT {
        (build_rows, 1.0)
    } else {
        // Sampled membership under-counts: a probe key missing from the
        // sample may still be in the full build set. Scale the match rate
        // by the sampling fraction's inverse, capped at 1 (biased but
        // directionally right; documented in DESIGN.md §10).
        (BUILD_SAMPLE, build_rows as f64 / BUILD_SAMPLE as f64)
    };
    let build_set: HashSet<u64> = sample_keys(btable.column(bcol), build_sample_n)?
        .into_iter()
        .collect();
    let probe_sample = sample_keys(ptable.column(pcol), PROBE_SAMPLE)?;
    if probe_sample.is_empty() {
        return Some(1.0);
    }
    let hits = probe_sample
        .iter()
        .filter(|k| build_set.contains(k))
        .count();
    let rate = hits as f64 / probe_sample.len() as f64;
    Some((rate * scale).clamp(0.0, 1.0))
}

/// Assemble the [`JoinEstimate`] for one join node and ask the model.
pub fn decide(
    model: &CostModel,
    kind: JoinType,
    build: &Plan,
    probe: &Plan,
    build_keys: &[usize],
    probe_keys: &[usize],
) -> Decision {
    let build_rows = estimate_rows(build);
    let probe_rows = estimate_rows(probe);
    let allow_bloom = !kind.probe_tuples_survive_unmatched();
    let mut estimate = JoinEstimate {
        build_rows,
        probe_rows,
        build_width: row_width(&build.schema()),
        probe_width: row_width(&probe.schema()),
        bloom_selectivity: 0.0,
        allow_bloom,
    };
    // Ask with σ = 0 first — the best case for the Bloom variant (σ only
    // ever makes the BRJ more expensive, the BHJ and RJ don't see it). If
    // the answer is still "do not partition", it is final, and the probe
    // key sampling — the only costly part of planning, a hash-set build
    // over up to [`BUILD_EXACT`] build keys — is skipped. This keeps the
    // planner overhead negligible in exactly the regime the paper says
    // dominates real workloads: hash tables that fit the cache.
    if allow_bloom {
        let optimistic = model.decide(&estimate);
        if optimistic.algo == JoinAlgo::Bhj {
            return optimistic;
        }
        estimate.bloom_selectivity =
            sample_bloom_selectivity(build, probe, build_keys, probe_keys).unwrap_or(1.0);
    } else {
        estimate.bloom_selectivity = 1.0;
    }
    model.decide(&estimate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Calibration;
    use crate::plan::JoinAlgo;
    use joinstudy_storage::table::TableBuilder;
    use joinstudy_storage::types::Value;

    fn table_kv(rows: impl Iterator<Item = (i64, i64)>) -> Arc<Table> {
        let schema = Schema::of(&[("k", DataType::Int64), ("v", DataType::Int64)]);
        let mut b = TableBuilder::new(schema);
        for (k, v) in rows {
            b.push_row(&[Value::Int64(k), Value::Int64(v)]);
        }
        Arc::new(b.finish())
    }

    #[test]
    fn scan_estimate_is_exact_without_filter() {
        let t = table_kv((0..1000).map(|i| (i, i)));
        let plan = Plan::scan(&t, &["k", "v"], None);
        assert_eq!(estimate_rows(&plan), 1000.0);
    }

    #[test]
    fn filtered_scan_estimate_samples_the_predicate() {
        let t = table_kv((0..2000).map(|i| (i, i)));
        // k < 500 keeps exactly a quarter; the 2000-row table fits the
        // sample entirely, so the estimate is exact.
        let plan = Plan::scan(&t, &["k", "v"], Some(Expr::col(0).lt(Expr::i64(500))));
        let est = estimate_rows(&plan);
        assert!((est - 500.0).abs() < 1.0, "estimate {est}");
    }

    #[test]
    fn selectivity_cache_distinguishes_predicates_on_one_table() {
        let t = table_kv((0..2000).map(|i| (i, i)));
        let quarter = Plan::scan(&t, &["k", "v"], Some(Expr::col(0).lt(Expr::i64(500))));
        let half = Plan::scan(&t, &["k", "v"], Some(Expr::col(0).lt(Expr::i64(1000))));
        let (e_quarter, e_half) = (estimate_rows(&quarter), estimate_rows(&half));
        assert!((e_quarter - 500.0).abs() < 1.0, "estimate {e_quarter}");
        assert!((e_half - 1000.0).abs() < 1.0, "estimate {e_half}");
        // Second walk hits the memoized path and must agree.
        assert_eq!(estimate_rows(&quarter), e_quarter);
        assert_eq!(estimate_rows(&half), e_half);
    }

    #[test]
    fn key_tracing_survives_filter_and_identity_map() {
        let t = table_kv((0..100).map(|i| (i, i)));
        let plan = Plan::scan(&t, &["k", "v"], None)
            .filter(Expr::col(1).ge(Expr::i64(0)))
            .map(vec![Expr::col(0), Expr::col(1)], &["k2", "v2"]);
        let (base, col) = trace_to_base(&plan, 0).expect("traceable");
        assert_eq!(base.num_rows(), 100);
        assert_eq!(col, 0);
        // A computed column is not traceable.
        let plan2 =
            Plan::scan(&t, &["k", "v"], None).map(vec![Expr::col(0).mul(Expr::i64(2))], &["kk"]);
        assert!(trace_to_base(&plan2, 0).is_none());
    }

    #[test]
    fn bloom_selectivity_sampling_matches_overlap() {
        // Build keys 0..1000; probe keys 0..4000 → 25% overlap.
        let build = table_kv((0..1000).map(|i| (i, i)));
        let probe = table_kv((0..4000).map(|i| (i % 4000, i)));
        let bp = Plan::scan(&build, &["k", "v"], None);
        let pp = Plan::scan(&probe, &["k", "v"], None);
        let sigma = sample_bloom_selectivity(&bp, &pp, &[0], &[0]).expect("traceable");
        assert!((sigma - 0.25).abs() < 0.05, "sigma {sigma}");
    }

    #[test]
    fn adaptive_decision_on_tiny_join_is_bhj() {
        let build = table_kv((0..500).map(|i| (i, i)));
        let probe = table_kv((0..5000).map(|i| (i % 500, i)));
        let bp = Plan::scan(&build, &["k", "v"], None);
        let pp = Plan::scan(&probe, &["k", "v"], None);
        let model = CostModel::new(Calibration::default_constants());
        let d = decide(&model, JoinType::Inner, &bp, &pp, &[0], &[0]);
        assert_eq!(d.algo, JoinAlgo::Bhj, "{d}");
    }
}
