//! Robin-Hood open-addressing hash table for the radix join's final phase.
//!
//! The paper (§4.6): each join task builds its partition's table with
//! robin-hood hashing — the most robust choice for thread-local workloads
//! (Richter et al.) — storing only (hash, row) pairs because moving tuples
//! is expensive. The table is sized exactly from the known partition
//! cardinality (no resizing) and its allocation is reused across partitions
//! processed by the same worker (no per-partition malloc).

/// Sentinel marking an empty slot.
const EMPTY: u32 = u32::MAX;

#[derive(Clone, Copy)]
struct Entry {
    hash: u64,
    row: u32,
}

/// A reusable robin-hood table mapping 64-bit hashes to 32-bit row indices.
/// Duplicate hashes are fully supported (foreign-key joins).
pub struct RobinHoodTable {
    entries: Vec<Entry>,
    mask: usize,
    /// Right-shift applied to the hash to derive the home slot. Uses the
    /// *high* hash bits, which are independent of the low bits consumed by
    /// radix partitioning (all keys in one partition share those).
    shift: u32,
    len: usize,
}

impl RobinHoodTable {
    pub fn new() -> RobinHoodTable {
        RobinHoodTable {
            entries: Vec::new(),
            mask: 0,
            shift: 64,
            len: 0,
        }
    }

    /// Prepare for `count` insertions: capacity = next power of two ≥ 2 ×
    /// count. Reuses the existing allocation whenever it is large enough —
    /// reallocation only happens when partition sizes are heavily skewed,
    /// exactly as described in the paper.
    pub fn reset(&mut self, count: usize) {
        let cap = (count.max(4) * 2).next_power_of_two();
        if cap > self.entries.len() {
            self.entries = vec![
                Entry {
                    hash: 0,
                    row: EMPTY
                };
                cap
            ];
        } else {
            for e in &mut self.entries[..cap] {
                *e = Entry {
                    hash: 0,
                    row: EMPTY,
                };
            }
        }
        self.mask = cap - 1;
        self.shift = 64 - cap.trailing_zeros();
        self.len = 0;
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current capacity in slots.
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Slots physically allocated (≥ capacity; reused across resets).
    pub fn allocated_slots(&self) -> usize {
        self.entries.len()
    }

    #[inline]
    fn home(&self, hash: u64) -> usize {
        (hash >> self.shift) as usize & self.mask
    }

    /// Probe distance of the entry currently at `idx`.
    #[inline]
    fn displacement(&self, idx: usize, hash: u64) -> usize {
        idx.wrapping_sub(self.home(hash)) & self.mask
    }

    /// Insert a (hash, row) pair with robin-hood displacement balancing.
    pub fn insert(&mut self, hash: u64, row: u32) {
        debug_assert!(self.len < self.capacity(), "robin-hood table overfull");
        let mut idx = self.home(hash);
        let mut cur = Entry { hash, row };
        let mut dist = 0usize;
        loop {
            let slot = &mut self.entries[idx];
            if slot.row == EMPTY {
                *slot = cur;
                self.len += 1;
                return;
            }
            let slot_dist = idx.wrapping_sub((slot.hash >> self.shift) as usize) & self.mask;
            if slot_dist < dist {
                // Rich entry found: steal its slot, keep displacing it.
                std::mem::swap(&mut cur, slot);
                dist = slot_dist;
            }
            idx = (idx + 1) & self.mask;
            dist += 1;
        }
    }

    /// Invoke `f` for every stored row whose hash equals `hash`. The
    /// robin-hood invariant (displacements are non-decreasing along a probe
    /// sequence) allows stopping early at the first poorer entry.
    #[inline]
    pub fn for_each_match(&self, hash: u64, mut f: impl FnMut(u32)) {
        let mut idx = self.home(hash);
        let mut dist = 0usize;
        loop {
            let slot = self.entries[idx];
            if slot.row == EMPTY {
                return;
            }
            let slot_dist = self.displacement(idx, slot.hash);
            if slot_dist < dist {
                return;
            }
            if slot.hash == hash {
                f(slot.row);
            }
            idx = (idx + 1) & self.mask;
            dist += 1;
        }
    }

    /// Whether any entry with this hash exists (semi/anti fast path).
    #[inline]
    pub fn contains_hash(&self, hash: u64) -> bool {
        let mut found = false;
        self.for_each_match(hash, |_| found = true);
        found
    }
}

impl Default for RobinHoodTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::hash_u64;

    fn matches(t: &RobinHoodTable, h: u64) -> Vec<u32> {
        let mut v = Vec::new();
        t.for_each_match(h, |r| v.push(r));
        v.sort_unstable();
        v
    }

    #[test]
    fn insert_and_find_unique_keys() {
        let mut t = RobinHoodTable::new();
        t.reset(1000);
        for k in 0..1000u64 {
            t.insert(hash_u64(k), k as u32);
        }
        assert_eq!(t.len(), 1000);
        for k in 0..1000u64 {
            assert_eq!(matches(&t, hash_u64(k)), vec![k as u32], "key {k}");
        }
        assert_eq!(matches(&t, hash_u64(5000)), Vec::<u32>::new());
    }

    #[test]
    fn duplicate_hashes_all_returned() {
        let mut t = RobinHoodTable::new();
        t.reset(10);
        let h = hash_u64(7);
        t.insert(h, 1);
        t.insert(h, 2);
        t.insert(h, 3);
        t.insert(hash_u64(8), 9);
        assert_eq!(matches(&t, h), vec![1, 2, 3]);
        assert_eq!(matches(&t, hash_u64(8)), vec![9]);
    }

    #[test]
    fn reset_reuses_allocation() {
        let mut t = RobinHoodTable::new();
        t.reset(1 << 12);
        let cap = t.capacity();
        for k in 0..100u64 {
            t.insert(hash_u64(k), k as u32);
        }
        t.reset(16);
        assert_eq!(
            t.allocated_slots(),
            cap,
            "small reset must reuse the allocation"
        );
        assert!(t.capacity() < cap, "logical capacity shrinks to fit");
        assert!(t.is_empty());
        assert_eq!(matches(&t, hash_u64(5)), Vec::<u32>::new());
        t.insert(hash_u64(5), 42);
        assert_eq!(matches(&t, hash_u64(5)), vec![42]);
    }

    #[test]
    fn contains_hash_agrees_with_matches() {
        let mut t = RobinHoodTable::new();
        t.reset(100);
        for k in (0..100u64).step_by(2) {
            t.insert(hash_u64(k), k as u32);
        }
        for k in 0..100u64 {
            assert_eq!(t.contains_hash(hash_u64(k)), k % 2 == 0, "key {k}");
        }
    }

    #[test]
    fn dense_fill_still_terminates() {
        // Fill to exactly `count` (half of capacity) with adversarially
        // similar hashes: sequential values shifted into the home-slot bits.
        let mut t = RobinHoodTable::new();
        t.reset(512);
        let shift = 64 - (t.capacity().trailing_zeros());
        for k in 0..512u64 {
            // All land in a small cluster of home slots.
            let h = (k % 8) << shift;
            t.insert(h, k as u32);
        }
        assert_eq!(t.len(), 512);
        let mut total = 0;
        for c in 0..8u64 {
            let h = c << shift;
            total += matches(&t, h).len();
        }
        assert_eq!(total, 512);
    }

    #[test]
    fn dense_random_fill_remains_fully_searchable() {
        // The property robin-hood displacement must preserve: every inserted
        // (hash, row) pair stays findable, at 50% load with random hashes.
        let mut t = RobinHoodTable::new();
        t.reset(4096);
        let mut expected: std::collections::HashMap<u64, Vec<u32>> =
            std::collections::HashMap::new();
        for k in 0..4096u64 {
            // Deliberately collide every 4th key onto the same hash.
            let h = hash_u64(k / 4);
            t.insert(h, k as u32);
            expected.entry(h).or_default().push(k as u32);
        }
        for (h, rows) in expected {
            let mut found = matches(&t, h);
            found.sort_unstable();
            let mut want = rows;
            want.sort_unstable();
            assert_eq!(found, want, "hash {h:#x}");
        }
    }
}
