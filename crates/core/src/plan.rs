//! Physical plans and the pipeline compiler.
//!
//! A [`Plan`] is the tree an optimizer would emit; [`Engine::execute`]
//! decomposes it into pipelines exactly like the paper's data-centric host
//! system (§4.1, Figure 4):
//!
//! * scans, filters, projections, late loads, **BHJ probes** and **Bloom
//!   probes** are fused into one pipeline — tuples flow through them in
//!   batches without materialization;
//! * **BHJ build sides**, **radix partitioning** (both sides!),
//!   aggregation and sorting are pipeline breakers;
//! * the radix join is *both* a full pipeline breaker and a pipeline
//!   starter (Algorithm 1): the build pipeline runs to completion and is
//!   partitioned, then the probe pipeline runs and is partitioned, then the
//!   partition-wise join starts the next pipeline.
//!
//! Swapping `JoinAlgo` on a join node is all it takes to re-run a query
//! with a different join implementation — the drop-in-replacement property
//! the paper's evaluation methodology depends on (§5.3).

use crate::bhj::{BhjBuildSink, BhjProbeOp, BhjUnmatchedSource};
use crate::groupjoin::{GroupAggSpec, GroupJoinBuildSink, GroupJoinProbeOp, GroupJoinSource};
use crate::hybrid::{HybridJoinSource, PartitionSpillSink, SpillConfig};
use crate::join_common::JoinType;
use crate::qprof::{ProfCtx, Slot};
use crate::radix::{PartitionSink, PartitionedSide, PhaseSet, RadixConfig};
use crate::rj::{BloomProbeOp, RadixJoinSource};
use crate::row::RowLayout;
use crate::spill::SpillDir;
use joinstudy_exec::context::{algo_bits, QueryContext};
use joinstudy_exec::error::{ExecError, ExecResult};
use joinstudy_exec::expr::Expr;
use joinstudy_exec::metrics::{self, MemPhase};
use joinstudy_exec::ops::{
    AggSink, AggSpec, CollectSink, FilterOp, LateLoadOp, ProjectOp, SortKey, SortSink, TableScan,
};
use joinstudy_exec::pipeline::{LocalState, Sink, Source, StreamSpec};
use joinstudy_exec::profile::{DetailValue, PipelineObs, QueryProfile};
use joinstudy_exec::progress;
use joinstudy_exec::registry;
use joinstudy_exec::trace::{self, QueryTrace};
use joinstudy_exec::{Batch, Executor};
use joinstudy_storage::table::{Field, Schema, Table};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Instant;

/// How far past [`RadixConfig::target_partition_bytes`] the largest build
/// partition may grow before an adaptively-chosen radix join concludes the
/// key distribution is skewed and falls back to the BHJ.
const REGIME_SKEW_FACTOR: usize = 8;

/// Which join implementation a join node uses (the paper's §5.1.1 contenders).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinAlgo {
    /// Buffered non-partitioned hash join.
    Bhj,
    /// Radix-partitioned join.
    Rj,
    /// Bloom-filtered radix-partitioned join.
    Brj,
    /// Let the engine pick among the three per join node, from the
    /// calibrated regime model ([`crate::cost`]) over plan-time cardinality
    /// and selectivity estimates ([`crate::adaptive`]). A mis-predicted
    /// partitioned join falls back to the BHJ at runtime when the first
    /// radix pass contradicts the estimate.
    Adaptive,
    /// Out-of-core dynamic hybrid hash join ([`crate::hybrid`]): partitions
    /// both sides, keeps as many build partitions memory-resident as the
    /// budget allows, spills the rest ([`crate::spill`]), and recursively
    /// repartitions oversized spilled partitions. Correct under any memory
    /// budget; the fallback of last resort for [`JoinAlgo::Adaptive`].
    Hybrid,
}

impl JoinAlgo {
    pub fn name(self) -> &'static str {
        match self {
            JoinAlgo::Bhj => "BHJ",
            JoinAlgo::Rj => "RJ",
            JoinAlgo::Brj => "BRJ",
            JoinAlgo::Adaptive => "ADAPTIVE",
            JoinAlgo::Hybrid => "HHJ",
        }
    }
}

/// A physical query plan.
#[derive(Clone)]
pub enum Plan {
    /// Base-table scan with projection and pushed-down predicate. `tid`
    /// additionally emits the `@tid` column (late materialization).
    Scan {
        table: Arc<Table>,
        cols: Vec<usize>,
        filter: Option<Expr>,
        tid: bool,
    },
    /// Streaming source: batches produced on the fly by an external
    /// [`Source`] (e.g. the TPC-H chunk generator), so a pipeline can
    /// consume data that never exists as a materialized table. The engine
    /// treats it exactly like a scan whose table it cannot see: `est_rows`
    /// feeds the adaptive cost model in place of a table row count.
    Stream {
        source: Arc<dyn Source>,
        schema: Schema,
        est_rows: f64,
        label: String,
    },
    /// In-pipeline filter.
    Filter { input: Box<Plan>, pred: Expr },
    /// In-pipeline projection (expressions + output names).
    Map {
        input: Box<Plan>,
        exprs: Vec<Expr>,
        names: Vec<String>,
    },
    /// Hash join; output schema is `build ++ probe` for inner/outer
    /// variants (see [`JoinType::output_schema`]).
    Join {
        algo: JoinAlgo,
        kind: JoinType,
        build: Box<Plan>,
        probe: Box<Plan>,
        build_keys: Vec<usize>,
        probe_keys: Vec<usize>,
    },
    /// Fused join + group-by (Moerkotte & Neumann): one output row per
    /// build tuple with aggregates over its probe matches, empty groups
    /// included (the paper's Q13 operator, footnote 6).
    GroupJoin {
        build: Box<Plan>,
        probe: Box<Plan>,
        build_keys: Vec<usize>,
        probe_keys: Vec<usize>,
        aggs: Vec<GroupAggSpec>,
    },
    /// Hash aggregation (pipeline breaker).
    Aggregate {
        input: Box<Plan>,
        group_cols: Vec<usize>,
        aggs: Vec<AggSpec>,
    },
    /// Sort / top-k (pipeline breaker).
    Sort {
        input: Box<Plan>,
        keys: Vec<SortKey>,
        limit: Option<usize>,
    },
    /// Late materialization: fetch `cols` of `table` by the tuple id in
    /// column `tid_col` of the input.
    LateLoad {
        input: Box<Plan>,
        table: Arc<Table>,
        tid_col: usize,
        cols: Vec<usize>,
    },
}

impl Plan {
    // Ergonomic builders, so TPC-H plan code stays readable.

    pub fn scan(table: &Arc<Table>, cols: &[&str], filter: Option<Expr>) -> Plan {
        let idx = cols.iter().map(|n| table.schema().index_of(n)).collect();
        Plan::Scan {
            table: Arc::clone(table),
            cols: idx,
            filter,
            tid: false,
        }
    }

    pub fn scan_tid(table: &Arc<Table>, cols: &[&str], filter: Option<Expr>) -> Plan {
        let idx = cols.iter().map(|n| table.schema().index_of(n)).collect();
        Plan::Scan {
            table: Arc::clone(table),
            cols: idx,
            filter,
            tid: true,
        }
    }

    /// A streaming-source leaf (see [`Plan::Stream`]).
    pub fn stream_source(
        source: Arc<dyn Source>,
        schema: Schema,
        est_rows: f64,
        label: impl Into<String>,
    ) -> Plan {
        Plan::Stream {
            source,
            schema,
            est_rows,
            label: label.into(),
        }
    }

    pub fn filter(self, pred: Expr) -> Plan {
        Plan::Filter {
            input: Box::new(self),
            pred,
        }
    }

    pub fn map(self, exprs: Vec<Expr>, names: &[&str]) -> Plan {
        Plan::Map {
            input: Box::new(self),
            exprs,
            names: names.iter().map(|s| s.to_string()).collect(),
        }
    }

    pub fn join(
        self,
        probe: Plan,
        algo: JoinAlgo,
        kind: JoinType,
        build_keys: &[usize],
        probe_keys: &[usize],
    ) -> Plan {
        Plan::Join {
            algo,
            kind,
            build: Box::new(self),
            probe: Box::new(probe),
            build_keys: build_keys.to_vec(),
            probe_keys: probe_keys.to_vec(),
        }
    }

    pub fn group_join(
        self,
        probe: Plan,
        build_keys: &[usize],
        probe_keys: &[usize],
        aggs: Vec<GroupAggSpec>,
    ) -> Plan {
        Plan::GroupJoin {
            build: Box::new(self),
            probe: Box::new(probe),
            build_keys: build_keys.to_vec(),
            probe_keys: probe_keys.to_vec(),
            aggs,
        }
    }

    pub fn aggregate(self, group_cols: &[usize], aggs: Vec<AggSpec>) -> Plan {
        Plan::Aggregate {
            input: Box::new(self),
            group_cols: group_cols.to_vec(),
            aggs,
        }
    }

    pub fn sort(self, keys: Vec<SortKey>, limit: Option<usize>) -> Plan {
        Plan::Sort {
            input: Box::new(self),
            keys,
            limit,
        }
    }

    pub fn late_load(self, table: &Arc<Table>, tid_col: usize, cols: &[&str]) -> Plan {
        let idx = cols.iter().map(|n| table.schema().index_of(n)).collect();
        Plan::LateLoad {
            input: Box::new(self),
            table: Arc::clone(table),
            tid_col,
            cols: idx,
        }
    }

    /// The schema this plan produces.
    pub fn schema(&self) -> Schema {
        match self {
            Plan::Scan {
                table, cols, tid, ..
            } => {
                let mut fields: Vec<Field> = cols
                    .iter()
                    .map(|&c| table.schema().fields[c].clone())
                    .collect();
                if *tid {
                    fields.push(Field::new(
                        joinstudy_exec::ops::scan::TID_COLUMN,
                        joinstudy_storage::types::DataType::Int64,
                    ));
                }
                Schema::new(fields)
            }
            Plan::Stream { schema, .. } => schema.clone(),
            Plan::Filter { input, .. } => input.schema(),
            Plan::Map {
                input,
                exprs,
                names,
            } => {
                let in_schema = input.schema();
                Schema::new(
                    exprs
                        .iter()
                        .zip(names)
                        .map(|(e, n)| Field::new(n.clone(), e.dtype(&in_schema)))
                        .collect(),
                )
            }
            Plan::Join {
                kind, build, probe, ..
            } => kind.output_schema(&build.schema(), &probe.schema()),
            Plan::GroupJoin { build, aggs, .. } => {
                let mut fields = build.schema().fields;
                for a in aggs {
                    fields.push(Field::new(
                        a.name.clone(),
                        match a.func {
                            crate::groupjoin::GroupAggFunc::SumDecimal => {
                                joinstudy_storage::types::DataType::Decimal
                            }
                            _ => joinstudy_storage::types::DataType::Int64,
                        },
                    ));
                }
                Schema::new(fields)
            }
            Plan::Aggregate {
                input,
                group_cols,
                aggs,
            } => AggSink::new(input.schema(), group_cols.clone(), aggs.clone()).output_schema(),
            Plan::Sort { input, .. } => input.schema(),
            Plan::LateLoad {
                input, table, cols, ..
            } => {
                let mut fields = input.schema().fields;
                for &c in cols {
                    fields.push(table.schema().fields[c].clone());
                }
                Schema::new(fields)
            }
        }
    }

    /// Number of join nodes (used by the Fig 12 permutation harness).
    pub fn count_joins(&self) -> usize {
        match self {
            Plan::Scan { .. } | Plan::Stream { .. } => 0,
            Plan::Filter { input, .. }
            | Plan::Map { input, .. }
            | Plan::Aggregate { input, .. }
            | Plan::Sort { input, .. }
            | Plan::LateLoad { input, .. } => input.count_joins(),
            // The groupjoin has one fixed implementation (it is not part of
            // the BHJ/RJ/BRJ swap), so it does not count as an overridable join.
            Plan::GroupJoin { build, probe, .. } => build.count_joins() + probe.count_joins(),
            Plan::Join { build, probe, .. } => 1 + build.count_joins() + probe.count_joins(),
        }
    }

    /// Override the algorithm of join number `idx` (post-order numbering,
    /// build side first — the paper's Figure 12/13 numbering). Returns the
    /// number of joins seen in this subtree.
    pub fn override_join_algo(&mut self, idx: usize, algo: JoinAlgo) -> usize {
        fn walk(plan: &mut Plan, idx: usize, algo: JoinAlgo, counter: &mut usize) {
            match plan {
                Plan::Scan { .. } | Plan::Stream { .. } => {}
                Plan::Filter { input, .. }
                | Plan::Map { input, .. }
                | Plan::Aggregate { input, .. }
                | Plan::Sort { input, .. }
                | Plan::LateLoad { input, .. } => walk(input, idx, algo, counter),
                Plan::GroupJoin { build, probe, .. } => {
                    walk(build, idx, algo, counter);
                    walk(probe, idx, algo, counter);
                }
                Plan::Join {
                    build,
                    probe,
                    algo: a,
                    ..
                } => {
                    walk(build, idx, algo, counter);
                    walk(probe, idx, algo, counter);
                    if *counter == idx {
                        *a = algo;
                    }
                    *counter += 1;
                }
            }
        }
        let mut counter = 0;
        walk(self, idx, algo, &mut counter);
        counter
    }

    /// Set every join node's algorithm (the §5.3 methodology: "replacing
    /// all joins in the query tree with the join under testing").
    pub fn set_all_join_algos(&mut self, algo: JoinAlgo) {
        match self {
            Plan::Scan { .. } | Plan::Stream { .. } => {}
            Plan::Filter { input, .. }
            | Plan::Map { input, .. }
            | Plan::Aggregate { input, .. }
            | Plan::Sort { input, .. }
            | Plan::LateLoad { input, .. } => input.set_all_join_algos(algo),
            Plan::GroupJoin { build, probe, .. } => {
                build.set_all_join_algos(algo);
                probe.set_all_join_algos(algo);
            }
            Plan::Join {
                build,
                probe,
                algo: a,
                ..
            } => {
                *a = algo;
                build.set_all_join_algos(algo);
                probe.set_all_join_algos(algo);
            }
        }
    }

    /// Render the plan as an indented operator tree (EXPLAIN). Joins carry
    /// their algorithm, variant, key columns, and post-order join number
    /// (the numbering used by Figures 12/13 and the override API).
    pub fn explain(&self) -> String {
        fn fmt_cols(schema: &Schema, cols: &[usize]) -> String {
            cols.iter()
                .map(|&c| schema.fields[c].name.clone())
                .collect::<Vec<_>>()
                .join(", ")
        }
        fn walk(plan: &Plan, depth: usize, join_no: &mut usize, out: &mut String) {
            let pad = "  ".repeat(depth);
            match plan {
                Plan::Scan {
                    table,
                    cols,
                    filter,
                    tid,
                } => {
                    let names = fmt_cols(table.schema(), cols);
                    out.push_str(&format!(
                        "{pad}Scan [{names}]{}{} ({} rows)\n",
                        if filter.is_some() { " filtered" } else { "" },
                        if *tid { " +tid" } else { "" },
                        table.num_rows()
                    ));
                }
                Plan::Stream {
                    label, est_rows, ..
                } => {
                    out.push_str(&format!("{pad}Stream [{label}] (~{est_rows:.0} rows)\n"));
                }
                Plan::Filter { input, .. } => {
                    out.push_str(&format!("{pad}Filter\n"));
                    walk(input, depth + 1, join_no, out);
                }
                Plan::Map { input, names, .. } => {
                    out.push_str(&format!("{pad}Project [{}]\n", names.join(", ")));
                    walk(input, depth + 1, join_no, out);
                }
                Plan::Join {
                    algo,
                    kind,
                    build,
                    probe,
                    build_keys,
                    probe_keys,
                } => {
                    // Children first: the printed number matches the
                    // post-order numbering of override_join_algo.
                    let mut child_text = String::new();
                    walk(build, depth + 1, join_no, &mut child_text);
                    walk(probe, depth + 1, join_no, &mut child_text);
                    *join_no += 1;
                    out.push_str(&format!(
                        "{pad}Join #{} {} {:?} on build[{}] = probe[{}]\n",
                        join_no,
                        algo.name(),
                        kind,
                        fmt_cols(&build.schema(), build_keys),
                        fmt_cols(&probe.schema(), probe_keys),
                    ));
                    out.push_str(&child_text);
                }
                Plan::GroupJoin {
                    build,
                    probe,
                    build_keys,
                    probe_keys,
                    aggs,
                } => {
                    out.push_str(&format!(
                        "{pad}GroupJoin on build[{}] = probe[{}] aggs[{}]\n",
                        fmt_cols(&build.schema(), build_keys),
                        fmt_cols(&probe.schema(), probe_keys),
                        aggs.iter()
                            .map(|a| a.name.clone())
                            .collect::<Vec<_>>()
                            .join(", "),
                    ));
                    walk(build, depth + 1, join_no, out);
                    walk(probe, depth + 1, join_no, out);
                }
                Plan::Aggregate {
                    input,
                    group_cols,
                    aggs,
                } => {
                    out.push_str(&format!(
                        "{pad}Aggregate by[{}] aggs[{}]\n",
                        fmt_cols(&input.schema(), group_cols),
                        aggs.iter()
                            .map(|a| a.name.clone())
                            .collect::<Vec<_>>()
                            .join(", "),
                    ));
                    walk(input, depth + 1, join_no, out);
                }
                Plan::Sort { input, keys, limit } => {
                    let keys: Vec<String> = keys
                        .iter()
                        .map(|k| {
                            format!(
                                "{}{}",
                                input.schema().fields[k.col].name,
                                if k.ascending { "" } else { " desc" }
                            )
                        })
                        .collect();
                    out.push_str(&format!(
                        "{pad}Sort [{}]{}\n",
                        keys.join(", "),
                        limit.map(|l| format!(" limit {l}")).unwrap_or_default()
                    ));
                    walk(input, depth + 1, join_no, out);
                }
                Plan::LateLoad {
                    input, table, cols, ..
                } => {
                    out.push_str(&format!(
                        "{pad}LateLoad [{}]\n",
                        fmt_cols(table.schema(), cols)
                    ));
                    walk(input, depth + 1, join_no, out);
                }
            }
        }
        let mut out = String::new();
        let mut join_no = 0;
        walk(self, 0, &mut join_no, &mut out);
        out
    }
}

/// Per-join size accounting for the Figure-1 scatter plot (build × probe
/// side bytes of every executed join). Enabled explicitly by the harness;
/// sizes are exact for RJ/BRJ (both sides materialized) and build-only for
/// the BHJ (its probe side is never materialized — the point of the paper).
pub mod joinlog {
    use parking_lot::Mutex;
    use std::sync::atomic::{AtomicBool, Ordering};

    /// One executed join's materialization footprint.
    #[derive(Debug, Clone)]
    pub struct JoinSizes {
        pub algo: &'static str,
        pub build_rows: usize,
        pub build_bytes: usize,
        pub probe_rows: usize,
        /// 0 for BHJ (probe side not materialized).
        pub probe_bytes: usize,
        /// Probe-match statistics, filled lazily while the consuming
        /// pipeline runs (RJ/BRJ only).
        pub stats: Option<std::sync::Arc<crate::join_common::JoinStats>>,
    }

    static ENABLED: AtomicBool = AtomicBool::new(false);
    static LOG: Mutex<Vec<JoinSizes>> = Mutex::new(Vec::new());

    pub fn set_enabled(on: bool) {
        ENABLED.store(on, Ordering::Relaxed);
    }

    pub(crate) fn record(entry: JoinSizes) {
        if ENABLED.load(Ordering::Relaxed) {
            LOG.lock().push(entry);
        }
    }

    /// Drain the recorded entries (execution order).
    pub fn take() -> Vec<JoinSizes> {
        std::mem::take(&mut *LOG.lock())
    }
}

/// A sink that drops everything (used for the probe pipeline of
/// build-preserving BHJ variants, whose output pipeline starts elsewhere).
struct DiscardSink;

impl Sink for DiscardSink {
    fn consume(&self, _local: &mut LocalState, _input: Batch) -> ExecResult {
        Ok(())
    }
}

/// The query engine: executes plans with a fixed thread count and join
/// configuration.
#[derive(Clone)]
pub struct Engine {
    pub threads: usize,
    pub radix: RadixConfig,
    /// Adaptive Bloom-filter switch-off (§5.4.1).
    pub adaptive_bloom: bool,
    /// Software prefetching in the BHJ probe (ablation switch).
    pub bhj_prefetch: bool,
    /// Spill configuration for [`JoinAlgo::Hybrid`] join nodes (partition
    /// fanout per recursion level, recursion depth cap).
    pub spill: SpillConfig,
    /// Shared cancellation / deadline / memory-budget context. Cloning the
    /// engine shares the context (same session semantics).
    pub ctx: Arc<QueryContext>,
    /// Profile of the most recent profiled [`Engine::execute`], stashed so
    /// callers that only see result tables (TPC-H query closures, the SQL
    /// session) can retrieve it afterwards. Shared across clones like `ctx`.
    profile: Arc<Mutex<Option<QueryProfile>>>,
    /// Worker-timeline trace of the most recent traced [`Engine::execute`]
    /// (enabled via [`QueryContext::set_tracing`]). Shared across clones.
    trace_out: Arc<Mutex<Option<QueryTrace>>>,
    /// Cost model used by [`JoinAlgo::Adaptive`] join nodes. `None` means
    /// the process-wide calibration ([`crate::cost::Calibration::global`]);
    /// tests and benchmarks inject a specific one via
    /// [`Engine::with_cost_model`].
    cost_model: Option<Arc<crate::cost::CostModel>>,
    /// Shared worker pool for concurrent serving. `None` (the default)
    /// gives every query its own scoped worker team; `Some` submits all
    /// pipelines to the pool so workers interleave morsels across queries.
    pool: Option<Arc<joinstudy_exec::pool::WorkerPool>>,
}

impl Engine {
    pub fn new(threads: usize) -> Engine {
        let ctx = QueryContext::unbounded();
        // `JOINSTUDY_MEMORY_BUDGET=<bytes>` caps every engine built with
        // `Engine::new` (CI's spill job runs the whole suite under a tiny
        // budget this way). Explicit `with_context` calls override it.
        if let Ok(v) = std::env::var("JOINSTUDY_MEMORY_BUDGET") {
            if let Ok(bytes) = v.trim().parse::<usize>() {
                ctx.set_memory_budget(Some(bytes));
            }
        }
        Engine {
            threads,
            radix: RadixConfig::default(),
            adaptive_bloom: false,
            bhj_prefetch: true,
            spill: SpillConfig::default(),
            ctx,
            profile: Arc::new(Mutex::new(None)),
            trace_out: Arc::new(Mutex::new(None)),
            cost_model: None,
            pool: None,
        }
    }

    /// Route every pipeline of this engine through a shared worker pool
    /// (`None` restores private scoped worker teams). The engine's
    /// `threads` is updated to the pool's worker count so plan-time
    /// parallelism decisions (radix fan-out, morsel sizing) match the
    /// workers that will actually run the query.
    pub fn set_worker_pool(&mut self, pool: Option<Arc<joinstudy_exec::pool::WorkerPool>>) {
        if let Some(p) = &pool {
            self.threads = p.threads();
        }
        self.pool = pool;
    }

    /// The shared worker pool this engine submits pipelines to, if any.
    /// Telemetry surfaces (the `jsys.pool` system table, the `METRICS`
    /// scrape) read pool gauges through this.
    pub fn worker_pool(&self) -> Option<Arc<joinstudy_exec::pool::WorkerPool>> {
        self.pool.clone()
    }

    /// Pin the cost model consulted by [`JoinAlgo::Adaptive`] join nodes
    /// instead of the process-wide calibrated one.
    pub fn with_cost_model(mut self, model: crate::cost::CostModel) -> Engine {
        self.cost_model = Some(Arc::new(model));
        self
    }

    /// The cost model for adaptive decisions.
    fn cost_model(&self) -> crate::cost::CostModel {
        match &self.cost_model {
            Some(m) => (**m).clone(),
            None => crate::cost::CostModel::global(),
        }
    }

    /// Replace the engine's query context (cancellation handle, deadline,
    /// memory budget). The context is re-armed at the start of every
    /// [`Engine::execute`].
    pub fn with_context(mut self, ctx: Arc<QueryContext>) -> Engine {
        self.ctx = ctx;
        self
    }

    fn executor(&self) -> Executor {
        match &self.pool {
            Some(pool) => Executor::pooled(Arc::clone(pool)),
            None => Executor::new(self.threads),
        }
    }

    /// Execute a plan to a materialized result table, honouring the
    /// engine's [`QueryContext`]: cooperative cancellation, wall-clock
    /// deadline, and memory budget all surface as typed [`ExecError`]s. The
    /// context is re-armed (cancel flag cleared, deadline timer restarted,
    /// budget accounting zeroed) at the start of every call.
    pub fn execute(&self, plan: &Plan) -> ExecResult<Table> {
        if self.ctx.profiling() {
            let (table, profile) = self.execute_profiled(plan)?;
            *self.profile.lock() = Some(profile);
            return Ok(table);
        }
        self.traced(|| {
            self.ctx.arm();
            let (spec, _) = self.stream(plan, None)?;
            let sink = CollectSink::new(spec.schema.clone());
            trace::label_next_pipeline("output");
            self.executor()
                .run_pipeline(&self.ctx, spec.source.as_ref(), &spec.ops, &sink)?;
            Ok(sink.into_table())
        })
    }

    /// Record a worker-timeline trace around `f` when the context asks for
    /// one ([`QueryContext::set_tracing`]); the finished trace is stashed
    /// for [`Engine::take_trace`]. The tracer records one query at a time:
    /// if another trace is already active, `f` runs untraced.
    fn traced<R>(&self, f: impl FnOnce() -> R) -> R {
        let tracing = self.ctx.tracing() && trace::begin("query");
        if tracing {
            trace::instant(format!("simd path: {}", crate::simd::active().name()));
        }
        let result = f();
        if tracing {
            *self.trace_out.lock() = trace::end();
        }
        result
    }

    /// Execute a plan with per-operator profiling, returning the result and
    /// its [`QueryProfile`] tree (the engine half of EXPLAIN ANALYZE).
    /// Profiles regardless of [`QueryContext::profiling`].
    ///
    /// On error the partial profile — every pipeline that drained before
    /// the failure flushed its counts — is stashed for
    /// [`Engine::take_profile`], so interactive callers can show where a
    /// failed query spent its time.
    pub fn execute_profiled(&self, plan: &Plan) -> ExecResult<(Table, QueryProfile)> {
        self.traced(|| {
            self.ctx.arm();
            let deg0 = metrics::degradations();
            let t0 = Instant::now();
            let mut pc = ProfCtx::new();
            let finish =
                |pc: &mut ProfCtx, out: usize, t0: Instant, deg0: u64, ctx: &QueryContext| {
                    QueryProfile {
                        root: pc.build(out),
                        wall_ns: t0.elapsed().as_nanos() as u64,
                        threads: self.threads,
                        degradations: metrics::degradations().saturating_sub(deg0),
                        peak_bytes: ctx.high_water(),
                        spill_bytes: ctx.spill_write_bytes() + ctx.spill_read_bytes(),
                        admission_wait_ns: ctx.admission_wait_ns(),
                        admission_granted: ctx.admission_granted(),
                        simd: crate::simd::active().name(),
                    }
                };
            let stash_partial = |mut pc: ProfCtx, t0: Instant, deg0: u64| {
                let roots = pc.roots();
                let out = pc.node("Output -- partial --", roots);
                *self.profile.lock() = Some(finish(&mut pc, out, t0, deg0, &self.ctx));
            };
            let (spec, root) = match self.stream(plan, Some(&mut pc)) {
                Ok(ok) => ok,
                Err(e) => {
                    stash_partial(pc, t0, deg0);
                    return Err(e);
                }
            };
            let root = root.expect("profiled stream always returns a trace node");
            let sink = CollectSink::new(spec.schema.clone());
            let obs = Arc::new(PipelineObs::new(spec.ops.len()));
            trace::label_next_pipeline("output");
            let run = self.executor().run_pipeline_obs(
                &self.ctx,
                spec.source.as_ref(),
                &spec.ops,
                &sink,
                Some(&obs),
            );
            pc.bind_pending(&obs);
            if let Err(e) = run {
                stash_partial(pc, t0, deg0);
                return Err(e);
            }
            let out = pc.node("Output", vec![root]);
            pc.bind(out, &obs, Slot::Sink);
            hw_details(&mut pc, out, "hw_", &obs);
            let profile = finish(&mut pc, out, t0, deg0, &self.ctx);
            Ok((sink.into_table(), profile))
        })
    }

    /// Take the profile stashed by the most recent profiled
    /// [`Engine::execute`] (enabled via [`QueryContext::set_profiling`]).
    /// After a *failed* profiled execution this returns the partial profile
    /// of the pipelines that ran before the error.
    pub fn take_profile(&self) -> Option<QueryProfile> {
        self.profile.lock().take()
    }

    /// Take the worker-timeline trace stashed by the most recent traced
    /// [`Engine::execute`] (enabled via [`QueryContext::set_tracing`]).
    pub fn take_trace(&self) -> Option<QueryTrace> {
        self.trace_out.lock().take()
    }

    /// Infallible convenience for benchmarks and tests that run without
    /// budgets or cancellation: panics on any execution error.
    pub fn run(&self, plan: &Plan) -> Table {
        self.execute(plan).expect("query execution failed")
    }

    /// Run a pipeline breaker, observing it when profiling. The observation
    /// is bound to all pending trace slots *before* the error check so a
    /// failed pipeline still leaves the trace arena consistent (the
    /// degradation fallback relies on this).
    fn run_breaker(
        &self,
        spec: &StreamSpec,
        sink: &dyn Sink,
        pc: Option<&mut ProfCtx>,
    ) -> ExecResult<Option<Arc<PipelineObs>>> {
        match pc {
            None => {
                self.executor()
                    .run_pipeline(&self.ctx, spec.source.as_ref(), &spec.ops, sink)?;
                Ok(None)
            }
            Some(pc) => {
                let obs = Arc::new(PipelineObs::new(spec.ops.len()));
                let run = self.executor().run_pipeline_obs(
                    &self.ctx,
                    spec.source.as_ref(),
                    &spec.ops,
                    sink,
                    Some(&obs),
                );
                pc.bind_pending(&obs);
                run?;
                Ok(Some(obs))
            }
        }
    }

    /// Compile a plan into its topmost pipeline, running every pipeline
    /// below the last breaker. When `prof` is given, every plan node gets a
    /// trace node; the returned id refers to the topmost one (its pipeline
    /// stages are left pending for the caller's breaker).
    fn stream(
        &self,
        plan: &Plan,
        mut prof: Option<&mut ProfCtx>,
    ) -> ExecResult<(StreamSpec, Option<usize>)> {
        match plan {
            Plan::Scan {
                table,
                cols,
                filter,
                tid,
            } => {
                let mut scan = TableScan::new(Arc::clone(table), cols.clone(), filter.clone());
                if *tid {
                    scan = scan.with_tid();
                }
                let schema = scan.output_schema();
                let node = prof.map(|pc| {
                    let label = format!(
                        "Scan [{}]{}{} ({} rows)",
                        fmt_col_names(table.schema(), cols),
                        if filter.is_some() { " filtered" } else { "" },
                        if *tid { " +tid" } else { "" },
                        table.num_rows()
                    );
                    let id = pc.node(label, vec![]);
                    pc.pend(id, Slot::Source);
                    id
                });
                Ok((StreamSpec::new(Arc::new(scan), schema), node))
            }
            Plan::Stream {
                source,
                schema,
                est_rows,
                label,
            } => {
                let node = prof.map(|pc| {
                    let id = pc.node(format!("Stream [{label}] (~{est_rows:.0} rows)"), vec![]);
                    pc.pend(id, Slot::Source);
                    id
                });
                Ok((StreamSpec::new(Arc::clone(source), schema.clone()), node))
            }
            Plan::Filter { input, pred } => {
                let (spec, child) = self.stream(input, prof.as_deref_mut())?;
                let schema = spec.schema.clone();
                let op_idx = spec.ops.len();
                let node = prof.map(|pc| {
                    let id = pc.node("Filter", child.into_iter().collect());
                    pc.pend(id, Slot::Op(op_idx));
                    id
                });
                Ok((
                    spec.push_op(Arc::new(FilterOp::new(pred.clone())), schema),
                    node,
                ))
            }
            Plan::Map {
                input,
                exprs,
                names,
            } => {
                let (spec, child) = self.stream(input, prof.as_deref_mut())?;
                let op = ProjectOp::new(exprs.clone());
                let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
                let schema = op.output_schema(&spec.schema, &name_refs);
                let op_idx = spec.ops.len();
                let node = prof.map(|pc| {
                    let id = pc.node(
                        format!("Project [{}]", names.join(", ")),
                        child.into_iter().collect(),
                    );
                    pc.pend(id, Slot::Op(op_idx));
                    id
                });
                Ok((spec.push_op(Arc::new(op), schema), node))
            }
            Plan::Aggregate {
                input,
                group_cols,
                aggs,
            } => {
                let (spec, child) = self.stream(input, prof.as_deref_mut())?;
                let sink = AggSink::new(spec.schema.clone(), group_cols.clone(), aggs.clone());
                let schema = sink.output_schema();
                trace::label_next_pipeline("aggregate");
                let obs = self.run_breaker(&spec, &sink, prof.as_deref_mut())?;
                let result = Arc::new(sink.into_table());
                let node = prof.map(|pc| {
                    let label = format!(
                        "Aggregate by[{}] aggs[{}]",
                        fmt_col_names(&spec.schema, group_cols),
                        aggs.iter()
                            .map(|a| a.name.clone())
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                    let id = pc.node(label, child.into_iter().collect());
                    if let Some(obs) = &obs {
                        pc.bind(id, obs, Slot::Sink);
                        hw_details(pc, id, "hw_", obs);
                    }
                    pc.detail(id, "groups", DetailValue::Int(result.num_rows() as i64));
                    // The rescan of the materialized groups feeds the next
                    // pipeline: its source slot is this node's output.
                    pc.pend(id, Slot::Source);
                    id
                });
                let cols = (0..schema.len()).collect();
                let scan = TableScan::new(result, cols, None);
                Ok((StreamSpec::new(Arc::new(scan), schema), node))
            }
            Plan::Sort { input, keys, limit } => {
                let (spec, child) = self.stream(input, prof.as_deref_mut())?;
                let sink = SortSink::new(spec.schema.clone(), keys.clone(), *limit);
                trace::label_next_pipeline("sort");
                let obs = self.run_breaker(&spec, &sink, prof.as_deref_mut())?;
                let schema = sink.output_schema();
                let result = Arc::new(sink.into_table());
                let node = prof.map(|pc| {
                    let key_names: Vec<String> = keys
                        .iter()
                        .map(|k| {
                            format!(
                                "{}{}",
                                spec.schema.fields[k.col].name,
                                if k.ascending { "" } else { " desc" }
                            )
                        })
                        .collect();
                    let label = format!(
                        "Sort [{}]{}",
                        key_names.join(", "),
                        limit.map(|l| format!(" limit {l}")).unwrap_or_default()
                    );
                    let id = pc.node(label, child.into_iter().collect());
                    if let Some(obs) = &obs {
                        pc.bind(id, obs, Slot::Sink);
                        hw_details(pc, id, "hw_", obs);
                    }
                    pc.pend(id, Slot::Source);
                    id
                });
                let cols = (0..schema.len()).collect();
                let scan = TableScan::new(result, cols, None);
                Ok((StreamSpec::new(Arc::new(scan), schema), node))
            }
            Plan::LateLoad {
                input,
                table,
                tid_col,
                cols,
            } => {
                let (spec, child) = self.stream(input, prof.as_deref_mut())?;
                let op = LateLoadOp::new(Arc::clone(table), *tid_col, cols.clone());
                let schema = op.output_schema(&spec.schema);
                let op_idx = spec.ops.len();
                let node = prof.map(|pc| {
                    let id = pc.node(
                        format!("LateLoad [{}]", fmt_col_names(table.schema(), cols)),
                        child.into_iter().collect(),
                    );
                    pc.pend(id, Slot::Op(op_idx));
                    id
                });
                Ok((spec.push_op(Arc::new(op), schema), node))
            }
            Plan::GroupJoin {
                build,
                probe,
                build_keys,
                probe_keys,
                aggs,
            } => {
                // Pipeline 1: materialize + index the build side.
                let (build_spec, bchild) = self.stream(build, prof.as_deref_mut())?;
                let build_types: Vec<_> =
                    build_spec.schema.fields.iter().map(|f| f.dtype).collect();
                let sink = GroupJoinBuildSink::new(&build_types, build_keys.clone());
                trace::label_next_pipeline("groupjoin build");
                let build_obs = self.run_breaker(&build_spec, &sink, prof.as_deref_mut())?;
                let state = sink.into_state(aggs.clone());
                let out_schema = state.output_schema(&build_spec.schema);

                // Pipeline 2: probe updates the aggregate cells, emits nothing.
                let (probe_spec, pchild) = self.stream(probe, prof.as_deref_mut())?;
                let probe_schema = probe_spec.schema.clone();
                let op_idx = probe_spec.ops.len();
                let op = Arc::new(GroupJoinProbeOp::new(
                    Arc::clone(&state),
                    probe_keys.clone(),
                ));
                let spec = probe_spec.push_op(op, out_schema.clone());
                let node = prof.as_deref_mut().map(|pc| {
                    let label = format!(
                        "GroupJoin on build[{}] = probe[{}]",
                        fmt_col_names(&build_spec.schema, build_keys),
                        fmt_col_names(&probe_schema, probe_keys),
                    );
                    let id = pc.node(label, bchild.into_iter().chain(pchild).collect());
                    if let Some(obs) = &build_obs {
                        pc.bind(id, obs, Slot::Sink);
                    }
                    pc.detail(id, "groups", DetailValue::Int(state.rows() as i64));
                    // The probe op updates aggregate cells in place; its
                    // slot (bound when the probe pipeline drains) carries
                    // the probe-side tuple counts.
                    pc.pend(id, Slot::Op(op_idx));
                    id
                });
                trace::label_next_pipeline("groupjoin probe");
                self.run_breaker(&spec, &DiscardSink, prof.as_deref_mut())?;

                // Pipeline 3: one row per group.
                if let (Some(pc), Some(id)) = (prof.as_deref_mut(), node) {
                    pc.pend(id, Slot::Source);
                }
                Ok((
                    StreamSpec::new(Arc::new(GroupJoinSource::new(state)), out_schema),
                    node,
                ))
            }
            Plan::Join {
                algo,
                kind,
                build,
                probe,
                build_keys,
                probe_keys,
            } => match algo {
                JoinAlgo::Bhj => {
                    self.compile_bhj_or_spill(*kind, build, probe, build_keys, probe_keys, prof)
                }
                JoinAlgo::Rj => self.compile_radix(
                    *kind, build, probe, build_keys, probe_keys, false, None, prof,
                ),
                JoinAlgo::Brj => self.compile_radix(
                    *kind, build, probe, build_keys, probe_keys, true, None, prof,
                ),
                JoinAlgo::Adaptive => {
                    self.compile_adaptive(*kind, build, probe, build_keys, probe_keys, prof)
                }
                JoinAlgo::Hybrid => {
                    self.compile_hybrid(*kind, build, probe, build_keys, probe_keys, prof)
                }
            },
        }
    }

    /// Answer the join question for one `Adaptive` join node: estimate,
    /// decide, record the decision (registry counters + trace instant), and
    /// dispatch to the chosen compilation path. The decision and its "why"
    /// are attached to the join's profile node for EXPLAIN ANALYZE.
    #[allow(clippy::too_many_arguments)]
    fn compile_adaptive(
        &self,
        kind: JoinType,
        build: &Plan,
        probe: &Plan,
        build_keys: &[usize],
        probe_keys: &[usize],
        mut prof: Option<&mut ProfCtx>,
    ) -> ExecResult<(StreamSpec, Option<usize>)> {
        let model = self.cost_model();
        let mut decision =
            crate::adaptive::decide(&model, kind, build, probe, build_keys, probe_keys);
        // The memory budget trumps the regime model: a build side that
        // cannot fit goes straight to the out-of-core hybrid join instead
        // of degrading its way there at runtime.
        model.apply_budget(&mut decision, self.ctx.memory_budget());
        let reg = registry::global();
        reg.counter("adaptive.decisions").add(1);
        reg.counter(match decision.algo {
            JoinAlgo::Rj => "adaptive.choice.rj",
            JoinAlgo::Brj => "adaptive.choice.brj",
            JoinAlgo::Hybrid => "adaptive.choice.hybrid",
            _ => "adaptive.choice.bhj",
        })
        .add(1);
        trace::instant(format!(
            "adaptive: {} — {}",
            decision.algo.name(),
            decision.reason
        ));
        let (spec, node) = match decision.algo {
            JoinAlgo::Rj => self.compile_radix(
                kind,
                build,
                probe,
                build_keys,
                probe_keys,
                false,
                Some(&decision),
                prof.as_deref_mut(),
            )?,
            JoinAlgo::Brj => self.compile_radix(
                kind,
                build,
                probe,
                build_keys,
                probe_keys,
                true,
                Some(&decision),
                prof.as_deref_mut(),
            )?,
            JoinAlgo::Hybrid => self.compile_hybrid(
                kind,
                build,
                probe,
                build_keys,
                probe_keys,
                prof.as_deref_mut(),
            )?,
            _ => self.compile_bhj_or_spill(
                kind,
                build,
                probe,
                build_keys,
                probe_keys,
                prof.as_deref_mut(),
            )?,
        };
        if let (Some(pc), Some(id)) = (prof, node) {
            pc.detail(
                id,
                "adaptive_choice",
                DetailValue::Str(decision.algo.name().into()),
            );
            pc.detail(
                id,
                "adaptive_reason",
                DetailValue::Str(decision.reason.clone()),
            );
            pc.detail(
                id,
                "adaptive_cost_bhj_ms",
                DetailValue::Float(decision.costs.bhj / 1e6),
            );
            pc.detail(
                id,
                "adaptive_cost_rj_ms",
                DetailValue::Float(decision.costs.rj / 1e6),
            );
            if decision.costs.brj.is_finite() {
                pc.detail(
                    id,
                    "adaptive_cost_brj_ms",
                    DetailValue::Float(decision.costs.brj / 1e6),
                );
            }
            pc.detail(
                id,
                "adaptive_est_build_rows",
                DetailValue::Int(decision.estimate.build_rows as i64),
            );
            pc.detail(
                id,
                "adaptive_est_probe_rows",
                DetailValue::Int(decision.estimate.probe_rows as i64),
            );
            pc.detail(
                id,
                "adaptive_est_bloom_selectivity",
                DetailValue::Float(decision.estimate.bloom_selectivity),
            );
            pc.detail(
                id,
                "adaptive_ht_bytes",
                DetailValue::Int(decision.ht_bytes as i64),
            );
        }
        Ok((spec, node))
    }

    #[allow(clippy::too_many_arguments)]
    fn compile_bhj(
        &self,
        kind: JoinType,
        build: &Plan,
        probe: &Plan,
        build_keys: &[usize],
        probe_keys: &[usize],
        mut prof: Option<&mut ProfCtx>,
    ) -> ExecResult<(StreamSpec, Option<usize>)> {
        self.ctx.note_join_algo(algo_bits::BHJ);
        // Pipeline 1: materialize the build side + parallel table build.
        let (build_spec, bchild) = self.stream(build, prof.as_deref_mut())?;
        let build_types: Vec<_> = build_spec.schema.fields.iter().map(|f| f.dtype).collect();
        let sink = BhjBuildSink::new(&build_types, build_keys.to_vec())
            .with_context(Arc::clone(&self.ctx));
        metrics::mark_phase(MemPhase::Build);
        trace::label_next_pipeline("BHJ build");
        let build_obs = self.run_breaker(&build_spec, &sink, prof.as_deref_mut())?;
        let state = {
            let _span = trace::phase_scope("BHJ build finalize (hash table)");
            sink.into_state(self.threads)?
        };
        joinlog::record(joinlog::JoinSizes {
            algo: "BHJ",
            build_rows: state.rows,
            build_bytes: state.byte_size(),
            probe_rows: 0,
            probe_bytes: 0,
            stats: None,
        });

        // Pipeline 2: the probe side, with the probe fused in.
        let (probe_spec, pchild) = self.stream(probe, prof.as_deref_mut())?;
        let out_schema = kind.output_schema(&build_spec.schema, &probe_spec.schema);
        let op_idx = probe_spec.ops.len();
        let probe_op = Arc::new(BhjProbeOp::new(
            Arc::clone(&state),
            probe_keys.to_vec(),
            kind,
            self.bhj_prefetch,
        ));

        let node = prof.as_deref_mut().map(|pc| {
            let label = format!(
                "Join BHJ {:?} on build[{}] = probe[{}]",
                kind,
                fmt_col_names(&build_spec.schema, build_keys),
                fmt_col_names(&probe_spec.schema, probe_keys),
            );
            let id = pc.node(label, bchild.into_iter().chain(pchild).collect());
            if let Some(obs) = &build_obs {
                pc.bind(id, obs, Slot::Sink);
                hw_details(pc, id, "hw_build_", obs);
            }
            pc.detail(id, "build_rows", DetailValue::Int(state.rows as i64));
            pc.detail(
                id,
                "build_bytes",
                DetailValue::Int(state.byte_size() as i64),
            );
            let chain = state.chain_stats();
            pc.detail(id, "ht_buckets", DetailValue::Int(chain.buckets as i64));
            pc.detail(
                id,
                "ht_load_factor",
                DetailValue::Float(chain.load_factor()),
            );
            pc.detail(id, "ht_max_chain", DetailValue::Int(chain.max_chain as i64));
            pc.detail(id, "ht_avg_chain", DetailValue::Float(chain.avg_chain()));
            pc.pend(id, Slot::Op(op_idx));
            id
        });

        if kind.preserves_build() {
            // The probe pipeline only marks; the result pipeline scans the
            // hash table (how real systems start an anti-join's output).
            metrics::mark_phase(MemPhase::Other);
            let spec = probe_spec.push_op(probe_op, out_schema.clone());
            trace::label_next_pipeline("BHJ probe (mark)");
            self.run_breaker(&spec, &DiscardSink, prof.as_deref_mut())?;
            if let (Some(pc), Some(id)) = (prof, node) {
                pc.pend(id, Slot::Source);
            }
            let source = Arc::new(BhjUnmatchedSource::new(state, kind));
            Ok((StreamSpec::new(source, out_schema), node))
        } else {
            metrics::mark_phase(MemPhase::Other);
            Ok((probe_spec.push_op(probe_op, out_schema), node))
        }
    }

    /// Compile a BHJ, degrading to the out-of-core hybrid hash join when
    /// the memory budget cannot even hold the build side's hash table (the
    /// end of the degradation chain: RJ → BHJ → HHJ; the HHJ is correct
    /// under any budget that fits its spill write buffers).
    #[allow(clippy::too_many_arguments)]
    fn compile_bhj_or_spill(
        &self,
        kind: JoinType,
        build: &Plan,
        probe: &Plan,
        build_keys: &[usize],
        probe_keys: &[usize],
        mut prof: Option<&mut ProfCtx>,
    ) -> ExecResult<(StreamSpec, Option<usize>)> {
        let mark = prof.as_deref_mut().map(|pc| pc.save());
        match self.compile_bhj(
            kind,
            build,
            probe,
            build_keys,
            probe_keys,
            prof.as_deref_mut(),
        ) {
            Err(ExecError::BudgetExceeded { .. }) => {
                if let (Some(pc), Some(mark)) = (prof.as_deref_mut(), mark) {
                    pc.restore(mark);
                }
                metrics::record_degradation();
                self.ctx.note_degradation();
                trace::instant("degradation: BHJ -> HHJ (memory budget)");
                let (spec, node) = self.compile_hybrid(
                    kind,
                    build,
                    probe,
                    build_keys,
                    probe_keys,
                    prof.as_deref_mut(),
                )?;
                if let (Some(pc), Some(id)) = (prof, node) {
                    pc.detail(id, "degraded", DetailValue::Str("BHJ -> HHJ".into()));
                }
                Ok((spec, node))
            }
            other => other,
        }
    }

    /// Compile the out-of-core dynamic hybrid hash join: both sides are
    /// hash-partitioned by [`PartitionSpillSink`] (spilling partition by
    /// partition under budget pressure), then [`HybridJoinSource`] joins
    /// each partition pair, recursing on oversized spilled partitions.
    #[allow(clippy::too_many_arguments)]
    fn compile_hybrid(
        &self,
        kind: JoinType,
        build: &Plan,
        probe: &Plan,
        build_keys: &[usize],
        probe_keys: &[usize],
        mut prof: Option<&mut ProfCtx>,
    ) -> ExecResult<(StreamSpec, Option<usize>)> {
        self.ctx.note_join_algo(algo_bits::HHJ);
        let dir = SpillDir::create(self.ctx.spill_dir())?;
        let fanout_bits = self.spill.effective_fanout_bits(self.ctx.memory_budget());

        // Pipeline 1: partition (and spill) the build side.
        let (build_spec, bchild) = self.stream(build, prof.as_deref_mut())?;
        let build_types: Vec<_> = build_spec.schema.fields.iter().map(|f| f.dtype).collect();
        let build_sink = PartitionSpillSink::new(
            build_keys.to_vec(),
            fanout_bits,
            MemPhase::Build,
            "build",
            Arc::clone(&self.ctx),
            Arc::clone(&dir),
        );
        metrics::mark_phase(MemPhase::Build);
        trace::label_next_pipeline("HHJ partition build");
        let build_obs = self.run_breaker(&build_spec, &build_sink, prof.as_deref_mut())?;
        let build_parts = build_sink.finalize()?;

        // Pipeline 2: partition (and spill) the probe side.
        let (probe_spec, pchild) = self.stream(probe, prof.as_deref_mut())?;
        let probe_sink = PartitionSpillSink::new(
            probe_keys.to_vec(),
            fanout_bits,
            MemPhase::PartitionPass1,
            "probe",
            Arc::clone(&self.ctx),
            Arc::clone(&dir),
        );
        metrics::mark_phase(MemPhase::PartitionPass1);
        trace::label_next_pipeline("HHJ partition probe");
        let probe_obs = self.run_breaker(&probe_spec, &probe_sink, prof.as_deref_mut())?;
        let probe_parts = probe_sink.finalize()?;

        joinlog::record(joinlog::JoinSizes {
            algo: "HHJ",
            build_rows: build_parts.rows() as usize,
            build_bytes: build_parts.total_bytes() as usize,
            probe_rows: probe_parts.rows() as usize,
            probe_bytes: probe_parts.total_bytes() as usize,
            stats: None,
        });

        let out_schema = kind.output_schema(&build_spec.schema, &probe_spec.schema);
        let spilled_parts = build_parts.spilled_partitions() + probe_parts.spilled_partitions();
        let spilled_bytes = build_parts.spilled_bytes() + probe_parts.spilled_bytes();
        let node = prof.map(|pc| {
            let label = format!(
                "Join HHJ {:?} on build[{}] = probe[{}]",
                kind,
                fmt_col_names(&build_spec.schema, build_keys),
                fmt_col_names(&probe_spec.schema, probe_keys),
            );
            let id = pc.node(label, bchild.into_iter().chain(pchild).collect());
            if let Some(obs) = &build_obs {
                pc.bind(id, obs, Slot::Sink);
                hw_details(pc, id, "hw_build_", obs);
            }
            let _ = &probe_obs;
            pc.detail(
                id,
                "build_rows",
                DetailValue::Int(build_parts.rows() as i64),
            );
            pc.detail(
                id,
                "probe_rows",
                DetailValue::Int(probe_parts.rows() as i64),
            );
            pc.detail(id, "spill_fanout", DetailValue::Int(1i64 << fanout_bits));
            pc.detail(
                id,
                "spill_partitions",
                DetailValue::Int(spilled_parts as i64),
            );
            pc.detail(id, "spill_bytes", DetailValue::Int(spilled_bytes as i64));
            pc.pend(id, Slot::Source);
            id
        });

        metrics::mark_phase(MemPhase::Join);
        let source = Arc::new(HybridJoinSource::new(
            build_parts,
            probe_parts,
            build_types,
            build_keys.to_vec(),
            probe_keys.to_vec(),
            kind,
            self.bhj_prefetch,
            self.spill,
            fanout_bits,
            Arc::clone(&self.ctx),
            dir,
        ));
        Ok((StreamSpec::new(source, out_schema), node))
    }

    /// Compile a radix join, degrading to a BHJ when the memory budget
    /// cannot hold both partitioned sides (the paper's core observation in
    /// reverse: the BHJ only materializes the build side, so it is the
    /// natural fallback when partitioning the probe side is what breaks the
    /// budget). Degradations are counted in [`metrics::degradations`].
    ///
    /// When the radix join was picked *adaptively* (`adaptive` carries the
    /// plan-time [`cost::Decision`](crate::cost::Decision)), the same
    /// rollback machinery also serves as the regime-mismatch escape hatch:
    /// [`Engine::try_compile_radix`] re-asks the cost model after the build
    /// side's first partitioning pass with the *measured* histogram, and a
    /// contradiction ([`ExecError::RegimeMismatch`]) falls back to the BHJ
    /// here, counted in the `adaptive.fallbacks` registry counter.
    #[allow(clippy::too_many_arguments)]
    fn compile_radix(
        &self,
        kind: JoinType,
        build: &Plan,
        probe: &Plan,
        build_keys: &[usize],
        probe_keys: &[usize],
        with_bloom: bool,
        adaptive: Option<&crate::cost::Decision>,
        mut prof: Option<&mut ProfCtx>,
    ) -> ExecResult<(StreamSpec, Option<usize>)> {
        // The trace arena is rolled back on degradation so the BHJ fallback
        // re-traces the whole join subtree (its pipelines re-run anyway).
        let mark = prof.as_deref_mut().map(|pc| pc.save());
        let tag = if with_bloom { "BRJ" } else { "RJ" };
        self.ctx.note_join_algo(if with_bloom {
            algo_bits::BRJ
        } else {
            algo_bits::RJ
        });
        let fall_back = |err: &ExecError| -> Option<(&'static str, String)> {
            match err {
                ExecError::BudgetExceeded { .. } => Some((
                    "degraded",
                    format!("degradation: {tag} -> BHJ (memory budget)"),
                )),
                ExecError::RegimeMismatch { detail } if adaptive.is_some() => Some((
                    "adaptive_fallback",
                    format!("adaptive fallback: {tag} -> BHJ ({detail})"),
                )),
                _ => None,
            }
        };
        match self.try_compile_radix(
            kind,
            build,
            probe,
            build_keys,
            probe_keys,
            with_bloom,
            adaptive,
            prof.as_deref_mut(),
        ) {
            Err(e) if fall_back(&e).is_some() => {
                let (detail_key, instant) = fall_back(&e).expect("checked by guard");
                if let (Some(pc), Some(mark)) = (prof.as_deref_mut(), mark) {
                    pc.restore(mark);
                }
                if matches!(e, ExecError::RegimeMismatch { .. }) {
                    registry::global().counter("adaptive.fallbacks").add(1);
                } else {
                    metrics::record_degradation();
                    self.ctx.note_degradation();
                }
                trace::instant(instant);
                let (spec, node) = self.compile_bhj_or_spill(
                    kind,
                    build,
                    probe,
                    build_keys,
                    probe_keys,
                    prof.as_deref_mut(),
                )?;
                if let (Some(pc), Some(id)) = (prof, node) {
                    let value = match &e {
                        ExecError::RegimeMismatch { detail } => {
                            format!("{tag} -> BHJ: {detail}")
                        }
                        _ => format!("{tag} -> BHJ"),
                    };
                    pc.detail(id, detail_key, DetailValue::Str(value));
                }
                Ok((spec, node))
            }
            other => other,
        }
    }

    /// The adaptive escape hatch's measurement check, run right after the
    /// build side's partitioning passes: re-ask the cost model with the
    /// *measured* build cardinality and tuple width, and inspect the
    /// partition histogram for skew. Returns [`ExecError::RegimeMismatch`]
    /// when the measurement contradicts the plan-time choice — i.e. the
    /// model would now answer "do not partition", or one partition blew
    /// past [`REGIME_SKEW_FACTOR`]× the configured target size (a skewed
    /// key whose partition-local table will not be cache-resident anyway).
    fn check_regime(
        &self,
        decision: &crate::cost::Decision,
        build_side: &PartitionedSide,
    ) -> ExecResult<()> {
        let measured_rows = build_side.total_rows();
        let measured_width = if measured_rows > 0 {
            build_side.byte_size() as f64 / measured_rows as f64
        } else {
            decision.estimate.build_width
        };
        let mut e = decision.estimate;
        e.build_rows = (measured_rows as f64).max(1.0);
        e.build_width = measured_width;
        let re = self.cost_model().decide(&e);
        if re.algo == JoinAlgo::Bhj {
            return Err(ExecError::RegimeMismatch {
                detail: format!(
                    "measured build side {} rows × {:.0} B (estimated {:.0} × {:.0} B); {}",
                    measured_rows,
                    measured_width,
                    decision.estimate.build_rows,
                    decision.estimate.build_width,
                    re.reason,
                ),
            });
        }
        let max_part_bytes = (0..build_side.num_partitions())
            .map(|p| build_side.partition_row_range(p).len())
            .max()
            .unwrap_or(0) as f64
            * measured_width;
        let limit = (REGIME_SKEW_FACTOR * self.radix.target_partition_bytes) as f64;
        if max_part_bytes > limit {
            return Err(ExecError::RegimeMismatch {
                detail: format!(
                    "skew: largest build partition {:.0} B exceeds {REGIME_SKEW_FACTOR}x \
                     the {} B target",
                    max_part_bytes, self.radix.target_partition_bytes,
                ),
            });
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn try_compile_radix(
        &self,
        kind: JoinType,
        build: &Plan,
        probe: &Plan,
        build_keys: &[usize],
        probe_keys: &[usize],
        with_bloom: bool,
        adaptive: Option<&crate::cost::Decision>,
        mut prof: Option<&mut ProfCtx>,
    ) -> ExecResult<(StreamSpec, Option<usize>)> {
        // The Bloom reducer may only *drop* probe tuples when unmatched
        // probe tuples leave the join anyway; for anti/mark/outer variants
        // it must stay out of the way (the optimizer would pick RJ there).
        let use_bloom = with_bloom && !kind.probe_tuples_survive_unmatched();

        // Pipeline 1: build side → radix partitions (full breaker).
        let (build_spec, bchild) = self.stream(build, prof.as_deref_mut())?;
        let build_types: Vec<_> = build_spec.schema.fields.iter().map(|f| f.dtype).collect();
        let build_layout = RowLayout::new(&build_types, false);
        let build_sink = PartitionSink::new(
            build_layout,
            build_keys.to_vec(),
            self.radix,
            PhaseSet::build(),
        )
        .with_context(Arc::clone(&self.ctx));
        let tag = if with_bloom { "BRJ" } else { "RJ" };
        metrics::mark_phase(MemPhase::Build);
        trace::label_next_pipeline(format!("{tag} partition (build)"));
        if let Some(d) = adaptive {
            // Attach the cost model's cardinality estimate so
            // `jsys.query_progress` can report an est-vs-actual fraction.
            progress::label_next_pipeline(
                &format!("{tag} partition (build)"),
                d.estimate.build_rows as u64,
            );
        }
        let build_obs = self.run_breaker(&build_spec, &build_sink, prof.as_deref_mut())?;
        let (build_side, bloom) = build_sink.finalize(self.threads, None, use_bloom)?;
        if let Some(decision) = adaptive {
            self.check_regime(decision, &build_side)?;
        }
        let bits2 = build_side.bits2();
        let build_side = Arc::new(build_side);

        // Pipeline 2: probe side (+ Bloom reducer) → radix partitions.
        let (mut probe_spec, pchild) = self.stream(probe, prof.as_deref_mut())?;
        let mut bloom_op: Option<(usize, Arc<BloomProbeOp>, usize)> = None;
        if let Some(bloom) = bloom {
            let bloom_bytes = bloom.byte_size();
            let schema = probe_spec.schema.clone();
            let op = Arc::new(BloomProbeOp::new(
                Arc::new(bloom),
                probe_keys.to_vec(),
                build_side.bits1(),
                bits2,
                self.adaptive_bloom,
            ));
            bloom_op = Some((probe_spec.ops.len(), Arc::clone(&op), bloom_bytes));
            probe_spec = probe_spec.push_op(op, schema);
        }
        let probe_types: Vec<_> = probe_spec.schema.fields.iter().map(|f| f.dtype).collect();
        let probe_layout = RowLayout::new(&probe_types, false);
        let probe_sink = PartitionSink::new(
            probe_layout,
            probe_keys.to_vec(),
            self.radix,
            PhaseSet::probe(),
        )
        .with_context(Arc::clone(&self.ctx));
        metrics::mark_phase(MemPhase::PartitionPass1);
        let probe_label = if bloom_op.is_some() {
            format!("{tag} partition (probe) + bloom probe")
        } else {
            format!("{tag} partition (probe)")
        };
        trace::label_next_pipeline(probe_label.clone());
        if let Some(d) = adaptive {
            progress::label_next_pipeline(&probe_label, d.estimate.probe_rows as u64);
        }
        let probe_obs = self.run_breaker(&probe_spec, &probe_sink, prof.as_deref_mut())?;
        let (probe_side, _) = probe_sink.finalize(self.threads, Some(bits2), false)?;
        let stats = Arc::new(crate::join_common::JoinStats::default());
        joinlog::record(joinlog::JoinSizes {
            algo: if with_bloom { "BRJ" } else { "RJ" },
            build_rows: build_side.total_rows(),
            build_bytes: build_side.byte_size(),
            probe_rows: probe_side.total_rows(),
            probe_bytes: probe_side.byte_size(),
            stats: Some(Arc::clone(&stats)),
        });

        // Pipeline 3 starts here: the partition-wise join.
        metrics::mark_phase(MemPhase::Join);
        let out_schema = kind.output_schema(&build_spec.schema, &probe_spec.schema);
        let node = prof.map(|pc| {
            let label = format!(
                "Join {} {:?} on build[{}] = probe[{}]",
                if with_bloom { "BRJ" } else { "RJ" },
                kind,
                fmt_col_names(&build_spec.schema, build_keys),
                fmt_col_names(&probe_spec.schema, probe_keys),
            );
            let id = pc.node(label, bchild.into_iter().chain(pchild).collect());
            if let Some(obs) = &build_obs {
                pc.bind(id, obs, Slot::Sink);
                hw_details(pc, id, "hw_build_", obs);
            }
            if let Some(obs) = &probe_obs {
                pc.bind(id, obs, Slot::Sink);
                hw_details(pc, id, "hw_probe_", obs);
            }
            pc.detail(id, "bits1", DetailValue::Int(build_side.bits1() as i64));
            pc.detail(id, "bits2", DetailValue::Int(bits2 as i64));
            partition_details(pc, id, "build", &build_side);
            partition_details(pc, id, "probe", &probe_side);
            if let Some((idx, op, bytes)) = &bloom_op {
                pc.detail(id, "bloom_bytes", DetailValue::Int(*bytes as i64));
                if let Some(obs) = &probe_obs {
                    let probed = obs.ops[*idx].rows_in();
                    let passed = obs.ops[*idx].rows_out();
                    pc.detail(id, "bloom_probed", DetailValue::Int(probed as i64));
                    pc.detail(id, "bloom_passed", DetailValue::Int(passed as i64));
                    if probed > 0 {
                        pc.detail(
                            id,
                            "bloom_selectivity",
                            DetailValue::Float(passed as f64 / probed as f64),
                        );
                    }
                }
                if op.was_disabled() {
                    pc.detail(id, "bloom_disabled", DetailValue::Str("adaptive".into()));
                }
            }
            pc.pend(id, Slot::Source);
            id
        });
        let source = Arc::new(
            RadixJoinSource::new(
                build_side,
                Arc::new(probe_side),
                build_keys.to_vec(),
                probe_keys.to_vec(),
                kind,
            )
            .with_stats(stats),
        );
        Ok((StreamSpec::new(source, out_schema), node))
    }
}

/// Comma-joined field names of `cols` in `schema` (plan-node labels).
fn fmt_col_names(schema: &Schema, cols: &[usize]) -> String {
    cols.iter()
        .map(|&c| schema.fields[c].name.clone())
        .collect::<Vec<_>>()
        .join(", ")
}

/// Attach the hardware counter deltas sampled by a pipeline's workers to a
/// trace node, one detail per counter kind (`<prefix><kind>`), plus an
/// LLC-misses-per-tuple figure when the tuple count is known. A no-op when
/// the PMU was unavailable or counters were off for this query (the slot's
/// snapshot is `None`), so EXPLAIN ANALYZE output is byte-identical then.
fn hw_details(pc: &mut ProfCtx, node: usize, prefix: &str, obs: &PipelineObs) {
    use joinstudy_exec::pmu::CounterKind;
    let Some(hw) = obs.hw.snapshot() else { return };
    for kind in CounterKind::ALL {
        if let Some(v) = hw.get(kind) {
            pc.detail(
                node,
                &format!("{prefix}{}", kind.slug()),
                DetailValue::Int(v as i64),
            );
        }
    }
    let tuples = obs.sink.rows_in().max(obs.source.rows_out());
    if tuples > 0 {
        if let Some(misses) = hw.get(CounterKind::LlcMisses) {
            pc.detail(
                node,
                &format!("{prefix}llc_miss_per_tuple"),
                DetailValue::Float(misses as f64 / tuples as f64),
            );
        }
    }
}

/// Attach one radix-partitioned side's size distribution to a trace node:
/// partition count, total rows, max/avg partition size, skew (max/avg), and
/// a min/p25/p50/p75/max quantile sketch of the per-partition histogram.
fn partition_details(pc: &mut ProfCtx, node: usize, prefix: &str, side: &PartitionedSide) {
    let n = side.num_partitions();
    let mut sizes: Vec<usize> = (0..n).map(|p| side.partition_row_range(p).len()).collect();
    sizes.sort_unstable();
    let total: usize = sizes.iter().sum();
    let max = sizes.last().copied().unwrap_or(0);
    let avg = if n == 0 { 0.0 } else { total as f64 / n as f64 };
    pc.detail(
        node,
        &format!("{prefix}_partitions"),
        DetailValue::Int(n as i64),
    );
    pc.detail(
        node,
        &format!("{prefix}_rows"),
        DetailValue::Int(total as i64),
    );
    pc.detail(
        node,
        &format!("{prefix}_bytes"),
        DetailValue::Int(side.byte_size() as i64),
    );
    pc.detail(
        node,
        &format!("{prefix}_max_part"),
        DetailValue::Int(max as i64),
    );
    pc.detail(node, &format!("{prefix}_avg_part"), DetailValue::Float(avg));
    if avg > 0.0 {
        pc.detail(
            node,
            &format!("{prefix}_skew"),
            DetailValue::Float(max as f64 / avg),
        );
    }
    if !sizes.is_empty() {
        let q = |f: f64| sizes[((sizes.len() - 1) as f64 * f) as usize];
        pc.detail(
            node,
            &format!("{prefix}_part_sizes"),
            DetailValue::Str(format!(
                "{}/{}/{}/{}/{}",
                sizes[0],
                q(0.25),
                q(0.5),
                q(0.75),
                max
            )),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use joinstudy_exec::ops::AggFunc;
    use joinstudy_storage::table::TableBuilder;
    use joinstudy_storage::types::{DataType, Value};

    fn table_kv(rows: &[(i64, i64)]) -> Arc<Table> {
        let schema = Schema::of(&[("k", DataType::Int64), ("v", DataType::Int64)]);
        let mut b = TableBuilder::new(schema);
        for &(k, v) in rows {
            b.push_row(&[Value::Int64(k), Value::Int64(v)]);
        }
        Arc::new(b.finish())
    }

    fn join_count(algo: JoinAlgo, threads: usize) -> i64 {
        let build: Vec<(i64, i64)> = (0..3000).map(|i| (i, i)).collect();
        let probe: Vec<(i64, i64)> = (0..9000).map(|i| (i % 4500, i)).collect();
        let bt = table_kv(&build);
        let pt = table_kv(&probe);
        let plan = Plan::scan(&bt, &["k", "v"], None)
            .join(
                Plan::scan(&pt, &["k", "v"], None),
                algo,
                JoinType::Inner,
                &[0],
                &[0],
            )
            .aggregate(&[], vec![AggSpec::new(AggFunc::CountStar, 0, "cnt")]);
        let engine = Engine::new(threads);
        let result = engine.run(&plan);
        result.column_by_name("cnt").as_i64()[0]
    }

    #[test]
    fn all_three_algorithms_agree_on_count() {
        // probe keys are i % 4500 for i in 0..9000 → keys 0..4500, each
        // twice; matches = keys 0..3000, twice each = 6000.
        for threads in [1, 4] {
            assert_eq!(join_count(JoinAlgo::Bhj, threads), 6000, "BHJ t={threads}");
            assert_eq!(join_count(JoinAlgo::Rj, threads), 6000, "RJ t={threads}");
            assert_eq!(join_count(JoinAlgo::Brj, threads), 6000, "BRJ t={threads}");
        }
    }

    #[test]
    fn pipelined_two_joins_bhj() {
        // Two chained BHJs stay in one pipeline and still produce the right
        // answer: fact → dim1 → dim2.
        let dim1 = table_kv(&[(1, 100), (2, 200)]);
        let dim2 = table_kv(&[(100, 7), (200, 8)]);
        let fact = table_kv(&[(1, 0), (2, 0), (2, 0), (3, 0)]);
        // join1: dim1 ⋈ fact on k; output [d1.k, d1.v, f.k, f.v]
        let j1 = Plan::scan(&dim1, &["k", "v"], None).join(
            Plan::scan(&fact, &["k", "v"], None),
            JoinAlgo::Bhj,
            JoinType::Inner,
            &[0],
            &[0],
        );
        // join2: dim2 ⋈ j1 on dim2.k = d1.v; output [d2.k, d2.v, ...j1]
        let j2 = Plan::scan(&dim2, &["k", "v"], None).join(
            j1,
            JoinAlgo::Bhj,
            JoinType::Inner,
            &[0],
            &[1],
        );
        let plan = j2.aggregate(
            &[],
            vec![
                AggSpec::new(AggFunc::CountStar, 0, "cnt"),
                AggSpec::new(AggFunc::Sum, 1, "s"),
            ],
        );
        let t = Engine::new(2).run(&plan);
        assert_eq!(t.column_by_name("cnt").as_i64()[0], 3);
        // d2.v: one row with 7 (fact key 1) + two rows with 8 (fact key 2).
        assert_eq!(t.column_by_name("s").as_i64()[0], 7 + 8 + 8);
    }

    #[test]
    fn filter_map_sort_pipeline() {
        let t = table_kv(&[(5, 50), (1, 10), (3, 30), (4, 40)]);
        let plan = Plan::scan(&t, &["k", "v"], None)
            .filter(Expr::col(0).gt(Expr::i64(1)))
            .map(
                vec![Expr::col(0), Expr::col(1).mul(Expr::i64(2))],
                &["k", "v2"],
            )
            .sort(vec![SortKey::desc(1)], Some(2));
        let result = Engine::new(1).run(&plan);
        assert_eq!(result.column_by_name("v2").as_i64(), &[100, 80]);
    }

    #[test]
    fn build_anti_join_via_engine_all_algos() {
        let cust = table_kv(&[(1, 0), (2, 0), (3, 0), (4, 0)]);
        let orders = table_kv(&[(2, 0), (2, 0), (4, 0)]);
        for algo in [JoinAlgo::Bhj, JoinAlgo::Rj, JoinAlgo::Brj] {
            let plan = Plan::scan(&cust, &["k"], None)
                .join(
                    Plan::scan(&orders, &["k"], None),
                    algo,
                    JoinType::BuildAnti,
                    &[0],
                    &[0],
                )
                .sort(vec![SortKey::asc(0)], None);
            let result = Engine::new(2).run(&plan);
            assert_eq!(result.column(0).as_i64(), &[1, 3], "{}", algo.name());
        }
    }

    #[test]
    fn join_algo_override_by_index() {
        let t = table_kv(&[(1, 1)]);
        let mk = || {
            Plan::scan(&t, &["k"], None).join(
                Plan::scan(&t, &["k"], None).join(
                    Plan::scan(&t, &["k"], None),
                    JoinAlgo::Bhj,
                    JoinType::Inner,
                    &[0],
                    &[0],
                ),
                JoinAlgo::Bhj,
                JoinType::Inner,
                &[0],
                &[0],
            )
        };
        let mut plan = mk();
        assert_eq!(plan.count_joins(), 2);
        // Post-order: inner join is index 0, outer join index 1.
        plan.override_join_algo(0, JoinAlgo::Brj);
        match &plan {
            Plan::Join { algo, probe, .. } => {
                assert_eq!(*algo, JoinAlgo::Bhj);
                match probe.as_ref() {
                    Plan::Join { algo, .. } => assert_eq!(*algo, JoinAlgo::Brj),
                    _ => panic!("expected join"),
                }
            }
            _ => panic!("expected join"),
        }
        let mut plan2 = mk();
        plan2.set_all_join_algos(JoinAlgo::Rj);
        match &plan2 {
            Plan::Join { algo, .. } => assert_eq!(*algo, JoinAlgo::Rj),
            _ => unreachable!(),
        }
    }

    #[test]
    fn late_load_via_engine() {
        let t = table_kv(&[(10, 100), (20, 200), (30, 300)]);
        let plan = Plan::scan_tid(&t, &["k"], Some(Expr::col(0).ge(Expr::i64(20))))
            .late_load(&t, 1, &["v"])
            .sort(vec![SortKey::asc(0)], None);
        let result = Engine::new(1).run(&plan);
        assert_eq!(result.num_rows(), 2);
        assert_eq!(result.column(2).as_i64(), &[200, 300]);
    }
}

#[cfg(test)]
mod profile_tests {
    use super::*;
    use joinstudy_exec::ops::AggFunc;
    use joinstudy_storage::table::TableBuilder;
    use joinstudy_storage::types::{DataType, Value};

    fn table_kv(rows: &[(i64, i64)]) -> Arc<Table> {
        let schema = Schema::of(&[("k", DataType::Int64), ("v", DataType::Int64)]);
        let mut b = TableBuilder::new(schema);
        for &(k, v) in rows {
            b.push_row(&[Value::Int64(k), Value::Int64(v)]);
        }
        Arc::new(b.finish())
    }

    fn join_plan(algo: JoinAlgo) -> (Arc<Table>, Arc<Table>, Plan) {
        let build: Vec<(i64, i64)> = (0..2000).map(|i| (i, i)).collect();
        let probe: Vec<(i64, i64)> = (0..6000).map(|i| (i % 3000, i)).collect();
        let bt = table_kv(&build);
        let pt = table_kv(&probe);
        let plan = Plan::scan(&bt, &["k", "v"], None).join(
            Plan::scan(&pt, &["k", "v"], None),
            algo,
            JoinType::Inner,
            &[0],
            &[0],
        );
        (bt, pt, plan)
    }

    fn find<'a>(
        node: &'a joinstudy_exec::profile::ProfileNode,
        needle: &str,
    ) -> Option<&'a joinstudy_exec::profile::ProfileNode> {
        node.iter().into_iter().find(|n| n.label.contains(needle))
    }

    #[test]
    fn profiled_join_counts_match_result_all_algos() {
        for algo in [JoinAlgo::Bhj, JoinAlgo::Rj, JoinAlgo::Brj] {
            for threads in [1, 4] {
                let (_, _, plan) = join_plan(algo);
                let engine = Engine::new(threads);
                let (table, profile) = engine.execute_profiled(&plan).unwrap();
                assert_eq!(table.num_rows(), 4000, "{} t={threads}", algo.name());
                assert_eq!(profile.threads, threads);
                assert!(profile.wall_ns > 0);
                let join = find(&profile.root, "Join").unwrap();
                assert_eq!(
                    join.rows_out,
                    4000,
                    "{} t={threads}: join rows_out\n{}",
                    algo.name(),
                    profile.render()
                );
                // Output node consumes exactly the join's output.
                assert_eq!(profile.root.rows_in, 4000);
                // Both scans report their emitted rows.
                let scans: Vec<_> = profile
                    .root
                    .iter()
                    .into_iter()
                    .filter(|n| n.label.starts_with("Scan"))
                    .map(|n| n.rows_out)
                    .collect();
                let mut sorted = scans.clone();
                sorted.sort_unstable();
                assert_eq!(sorted, vec![2000, 6000], "{}", algo.name());
            }
        }
    }

    #[test]
    fn bhj_profile_reports_hash_table_stats() {
        let (_, _, plan) = join_plan(JoinAlgo::Bhj);
        let (_, profile) = Engine::new(2).execute_profiled(&plan).unwrap();
        let join = find(&profile.root, "Join BHJ").unwrap();
        let keys: Vec<&str> = join.details.iter().map(|(k, _)| k.as_str()).collect();
        for expected in ["build_rows", "ht_buckets", "ht_load_factor", "ht_max_chain"] {
            assert!(keys.contains(&expected), "missing {expected}: {keys:?}");
        }
    }

    #[test]
    fn rj_profile_reports_partition_histograms() {
        let (_, _, plan) = join_plan(JoinAlgo::Rj);
        let (_, profile) = Engine::new(2).execute_profiled(&plan).unwrap();
        let join = find(&profile.root, "Join RJ").unwrap();
        let detail = |k: &str| join.details.iter().find(|(key, _)| key == k);
        assert!(detail("build_partitions").is_some());
        assert!(detail("probe_part_sizes").is_some());
        match detail("build_rows").map(|(_, v)| v) {
            Some(DetailValue::Int(n)) => assert_eq!(*n, 2000),
            other => panic!("build_rows: {other:?}"),
        }
        match detail("probe_skew").map(|(_, v)| v) {
            Some(DetailValue::Float(s)) => assert!(*s >= 1.0),
            other => panic!("probe_skew: {other:?}"),
        }
    }

    #[test]
    fn brj_profile_reports_bloom_selectivity() {
        let (_, _, plan) = join_plan(JoinAlgo::Brj);
        let (_, profile) = Engine::new(2).execute_profiled(&plan).unwrap();
        let join = find(&profile.root, "Join BRJ").unwrap();
        let detail = |k: &str| {
            join.details
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v)
        };
        match detail("bloom_probed") {
            Some(DetailValue::Int(n)) => assert_eq!(*n, 6000),
            other => panic!("bloom_probed: {other:?}"),
        }
        match detail("bloom_selectivity") {
            Some(DetailValue::Float(s)) => {
                // 4000 of 6000 probe tuples have a build partner; the Bloom
                // filter passes those plus some false positives.
                assert!(*s >= 4000.0 / 6000.0 && *s <= 1.0, "selectivity {s}");
            }
            other => panic!("bloom_selectivity: {other:?}"),
        }
    }

    #[test]
    fn profiling_flag_stashes_profile_on_engine() {
        let (_, _, plan) = join_plan(JoinAlgo::Bhj);
        let engine = Engine::new(2);
        assert!(engine.take_profile().is_none());
        engine.run(&plan);
        assert!(
            engine.take_profile().is_none(),
            "unprofiled run must not record"
        );
        engine.ctx.set_profiling(true);
        engine.run(&plan);
        let profile = engine.take_profile().expect("profile recorded");
        assert!(engine.take_profile().is_none(), "take drains the slot");
        assert_eq!(profile.root.rows_in, 4000);
        // JSON export round-trips the tree shape.
        let json = profile.to_json();
        assert!(json.contains("\"label\":\"Output\""));
        assert!(json.contains("Join BHJ"));
    }

    #[test]
    fn degradation_rolls_back_trace_and_reports_fallback() {
        let (_, _, plan) = join_plan(JoinAlgo::Rj);
        let engine = Engine::new(2);
        // Budget fits the BHJ build side but not both partitioned sides.
        engine.ctx.set_memory_budget(Some(100 * 1024));
        let (table, profile) = match engine.execute_profiled(&plan) {
            Ok(ok) => ok,
            Err(e) => panic!("expected degradation, got {e}"),
        };
        assert_eq!(table.num_rows(), 4000);
        assert_eq!(profile.degradations, 1, "{}", profile.render());
        let join = find(&profile.root, "Join BHJ").expect("fallback BHJ node");
        assert!(
            join.details
                .iter()
                .any(|(k, v)| k == "degraded"
                    && matches!(v, DetailValue::Str(s) if s == "RJ -> BHJ")),
            "{}",
            profile.render()
        );
        assert!(find(&profile.root, "Join RJ").is_none(), "rolled back");
    }

    #[test]
    fn aggregate_and_sort_nodes_compose() {
        let t = table_kv(&[(1, 10), (2, 20), (1, 30), (2, 40), (3, 50)]);
        let plan = Plan::scan(&t, &["k", "v"], None)
            .aggregate(&[0], vec![AggSpec::new(AggFunc::Sum, 1, "s")])
            .sort(vec![SortKey::desc(1)], Some(2));
        let (table, profile) = Engine::new(1).execute_profiled(&plan).unwrap();
        assert_eq!(table.num_rows(), 2);
        let agg = find(&profile.root, "Aggregate").unwrap();
        assert_eq!(agg.rows_in, 5);
        assert_eq!(agg.rows_out, 3, "three groups rescanned");
        assert!(agg
            .details
            .iter()
            .any(|(k, v)| k == "groups" && matches!(v, DetailValue::Int(3))));
        let sort = find(&profile.root, "Sort").unwrap();
        assert_eq!(sort.rows_in, 3);
        assert_eq!(sort.rows_out, 2, "limit 2 rescan");
    }
}

#[cfg(test)]
mod explain_tests {
    use super::*;
    use joinstudy_storage::table::TableBuilder;
    use joinstudy_storage::types::{DataType, Value};

    #[test]
    fn explain_numbers_joins_in_post_order() {
        let schema = Schema::of(&[("k", DataType::Int64)]);
        let mut b = TableBuilder::new(schema);
        b.push_row(&[Value::Int64(1)]);
        let t = Arc::new(b.finish());
        // Two nested joins: inner one is #1, outer #2 (post-order).
        let plan = Plan::scan(&t, &["k"], None)
            .join(
                Plan::scan(&t, &["k"], None).join(
                    Plan::scan(&t, &["k"], None),
                    JoinAlgo::Rj,
                    JoinType::Inner,
                    &[0],
                    &[0],
                ),
                JoinAlgo::Bhj,
                JoinType::ProbeSemi,
                &[0],
                &[0],
            )
            .sort(vec![SortKey::asc(0)], Some(5));
        let text = plan.explain();
        assert!(text.contains("Join #1 RJ Inner"), "{text}");
        assert!(text.contains("Join #2 BHJ ProbeSemi"), "{text}");
        assert!(text.contains("Sort [k] limit 5"), "{text}");
        assert!(text.contains("(1 rows)"), "{text}");
        // #1 must appear textually after #2's header line is printed above
        // its children — i.e. the deeper join is printed below.
        let pos1 = text.find("Join #1").unwrap();
        let pos2 = text.find("Join #2").unwrap();
        assert!(pos2 < pos1, "outer join should print first:\n{text}");
    }
}
