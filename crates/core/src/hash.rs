//! 64-bit hashing of join keys.
//!
//! One hash value drives everything downstream, with disjoint bit ranges
//! used by the different consumers so their placements stay uncorrelated
//! (the classic radix-join trick):
//!
//! * **low bits** — radix partition selection (pass 1 uses bits `0..b1`,
//!   pass 2 bits `b1..b1+b2`),
//! * **middle bits** (16..40) — Bloom-filter block/bit selection,
//! * **high bits** (48..64) — hash-table slot selection and the 16-bit
//!   tagged-pointer filter of the non-partitioned join.
//!
//! Like the paper's system (§5.2 "we create an equally sized hash value and
//! store it with each tuple"), the hash is computed once in the pipeline and
//! materialized in the row, so partitioning passes and the final join never
//! rehash.

use joinstudy_storage::column::ColumnData;

/// Murmur3-style 64-bit finalizer: full avalanche, cheap, and good enough
/// to pass the partition-balance tests below.
#[inline]
pub fn hash_u64(key: u64) -> u64 {
    let mut h = key;
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    h = h.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    h ^= h >> 33;
    h
}

/// Combine an accumulated hash with the next column's hash (boost-style mix
/// strengthened to 64 bit).
#[inline]
pub fn hash_combine(acc: u64, next: u64) -> u64 {
    hash_u64(
        acc ^ next
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(acc << 6),
    )
}

/// Hash a byte string (FNV-1a, finalized).
#[inline]
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash_u64(h)
}

/// Hash the key columns of every row in a batch into `out` (one u64 per
/// row). Multi-column keys are combined with [`hash_combine`]. Integer-like
/// columns (the overwhelmingly common join-key types) go through the
/// runtime-dispatched [`crate::simd`] kernels; the remaining types stay on
/// the scalar closure path.
pub fn hash_columns(cols: &[&ColumnData], rows: usize, out: &mut Vec<u64>) {
    out.clear();
    out.resize(rows, 0);
    for (ci, col) in cols.iter().enumerate() {
        let first = ci == 0;
        match col {
            ColumnData::Int32(v) | ColumnData::Date(v) => {
                crate::simd::hash_i32(&v[..rows], out, first)
            }
            ColumnData::Int64(v) | ColumnData::Decimal(v) => {
                crate::simd::hash_i64(&v[..rows], out, first)
            }
            ColumnData::Bool(v) => hash_typed(ci, out, |i| hash_u64(u64::from(v[i]))),
            ColumnData::Float64(v) => hash_typed(ci, out, |i| hash_u64(v[i].to_bits())),
            ColumnData::Str(v) => hash_typed(ci, out, |i| hash_bytes(v.get(i).as_bytes())),
        }
    }
}

#[inline]
fn hash_typed(col_idx: usize, out: &mut [u64], f: impl Fn(usize) -> u64) {
    if col_idx == 0 {
        for (i, o) in out.iter_mut().enumerate() {
            *o = f(i);
        }
    } else {
        for (i, o) in out.iter_mut().enumerate() {
            *o = hash_combine(*o, f(i));
        }
    }
}

/// The 16-bit one-hot tag used by tagged pointers (Leis et al.): one of 16
/// bits selected by the hash's top nibble.
#[inline]
pub fn pointer_tag(hash: u64) -> u64 {
    1u64 << (48 + (hash >> 60))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic_and_spread() {
        assert_eq!(hash_u64(42), hash_u64(42));
        assert_ne!(hash_u64(42), hash_u64(43));
        // Consecutive keys should differ in low bits often enough for
        // partitioning: check balance over 64 partitions.
        let parts = 64u64;
        let mut counts = vec![0usize; parts as usize];
        let n = 64 * 1000;
        for k in 0..n {
            counts[(hash_u64(k) & (parts - 1)) as usize] += 1;
        }
        let expect = (n / parts) as f64;
        for &c in &counts {
            assert!(
                (c as f64 - expect).abs() < expect * 0.2,
                "partition skew: {c} vs {expect}"
            );
        }
    }

    #[test]
    fn high_bits_also_spread() {
        let buckets = 256u64;
        let mut counts = vec![0usize; buckets as usize];
        let n = 256 * 500;
        for k in 0..n {
            counts[(hash_u64(k) >> (64 - 8)) as usize] += 1;
        }
        let expect = (n / buckets) as f64;
        for &c in &counts {
            assert!((c as f64 - expect).abs() < expect * 0.35);
        }
    }

    #[test]
    fn bytes_hash_distinguishes() {
        assert_ne!(hash_bytes(b"hello"), hash_bytes(b"hellp"));
        assert_ne!(hash_bytes(b""), hash_bytes(b"\0"));
        assert_eq!(hash_bytes(b"abc"), hash_bytes(b"abc"));
    }

    #[test]
    fn combine_is_order_sensitive() {
        let a = hash_combine(hash_u64(1), hash_u64(2));
        let b = hash_combine(hash_u64(2), hash_u64(1));
        assert_ne!(a, b);
    }

    #[test]
    fn hash_columns_single_and_multi() {
        let c1 = ColumnData::Int64(vec![1, 2, 3]);
        let c2 = ColumnData::Int32(vec![7, 7, 8]);
        let mut single = Vec::new();
        hash_columns(&[&c1], 3, &mut single);
        assert_eq!(single[0], hash_u64(1));

        let mut multi = Vec::new();
        hash_columns(&[&c1, &c2], 3, &mut multi);
        assert_ne!(multi[0], single[0]);
        // (1,7) vs (2,7): differ in first column.
        assert_ne!(multi[0], multi[1]);
        // Equal keys hash equally.
        let mut again = Vec::new();
        hash_columns(&[&c1, &c2], 3, &mut again);
        assert_eq!(multi, again);
    }

    #[test]
    fn int32_and_int64_same_value_hash_equal() {
        // Mixed-width equi-joins (INT vs BIGINT) must agree on the hash.
        let a = ColumnData::Int32(vec![123]);
        let b = ColumnData::Int64(vec![123]);
        let mut ha = Vec::new();
        let mut hb = Vec::new();
        hash_columns(&[&a], 1, &mut ha);
        hash_columns(&[&b], 1, &mut hb);
        assert_eq!(ha, hb);
    }

    #[test]
    fn pointer_tag_is_one_hot_in_top_16() {
        for k in 0..1000u64 {
            let t = pointer_tag(hash_u64(k));
            assert_eq!(t.count_ones(), 1);
            assert!(t >= 1 << 48);
        }
    }
}
