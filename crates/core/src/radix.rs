//! Two-pass, morsel-driven radix partitioning (the paper's §4.5, Figure 6).
//!
//! The partitioning step consumes a *dataflow* (not a materialized array —
//! the key difference to stand-alone radix joins), so cardinalities are
//! unknown until the input pipeline finishes. The structure follows the
//! paper exactly:
//!
//! 1. **Pass 1** — each worker consumes morsels from the source pipeline,
//!    hashes the join key, and scatters rows by the hash's low `bits1` bits
//!    into its *worker-local* set of pre-partitions, each a linked list of
//!    pages. Writes go through SWWCBs flushed with non-temporal stores.
//!    No synchronization anywhere.
//! 2. **Histogram scan** — the pre-partition page lists are scanned to
//!    count, per pre-partition, how many rows fall into each of the
//!    `2^bits2` second-pass sub-partitions.
//! 3. **Exchange** — prefix sums over the histograms yield the exact byte
//!    range every final partition occupies in one contiguous output buffer;
//!    all workers' page lists for a pre-partition are (conceptually)
//!    concatenated.
//! 4. **Pass 2** — pre-partitions become morsels again: workers steal them
//!    from a shared queue (skew tolerance) and scatter each row to its
//!    final position, again through SWWCBs + streaming stores. Each task
//!    writes a private contiguous region, so there is still no
//!    synchronization. Optionally, the build side populates the
//!    register-blocked Bloom filter here (§4.7: "the second pass over the
//!    build side generates the filter while partitioning").
//!
//! Deviation from Figure 6, documented in DESIGN.md: the histogram scan
//! runs as its own parallel phase over pre-partitions (instead of inline in
//! each pass-1 worker), because `bits2` is chosen adaptively from the now-
//! known cardinality. The byte volume touched is identical.

use crate::bloom::BlockedBloom;
use crate::hash::hash_columns;
use crate::row::{read_u64, RowLayout, StrHeap};
use crate::swwcb::{nt_copy, nt_fence, SwwcbSet};
use joinstudy_exec::batch::Batch;
use joinstudy_exec::context::{BudgetLease, QueryContext};
use joinstudy_exec::error::{ExecError, ExecResult};
use joinstudy_exec::metrics::{self, MemPhase};
use joinstudy_exec::pipeline::{LocalState, Sink};
use joinstudy_exec::trace;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Tuning knobs of the radix machinery. The ablation benches flip the
/// boolean switches; everything else follows the paper's setup.
#[derive(Debug, Clone, Copy)]
pub struct RadixConfig {
    /// Pass-1 fanout bits. 64 pre-partitions stays within typical L1-TLB
    /// reach, the original motivation for multi-pass partitioning.
    pub bits_pass1: u32,
    /// Upper bound on pass-2 fanout bits.
    pub max_bits_pass2: u32,
    /// Target bytes per final build partition; `bits2` is chosen so the
    /// per-partition hash table stays cache-resident.
    pub target_partition_bytes: usize,
    /// Software write-combine buffers (ablation switch).
    pub use_swwcb: bool,
    /// Non-temporal streaming stores (ablation switch; only effective
    /// together with SWWCBs, as in the paper).
    pub use_nt_stores: bool,
}

impl Default for RadixConfig {
    fn default() -> RadixConfig {
        RadixConfig {
            bits_pass1: 6,
            max_bits_pass2: 8,
            target_partition_bytes: 128 * 1024,
            use_swwcb: true,
            use_nt_stores: true,
        }
    }
}

/// Final partition index of a hash under the two-pass split: region-major
/// (pre-partition first, sub-partition second). Build and probe side MUST
/// use identical `bits1`/`bits2`.
#[inline]
pub fn partition_of(hash: u64, bits1: u32, bits2: u32) -> usize {
    let p1 = (hash & ((1u64 << bits1) - 1)) as usize;
    let p2 = ((hash >> bits1) & ((1u64 << bits2) - 1)) as usize;
    (p1 << bits2) | p2
}

/// Phase attribution for the byte-accounting of each partitioning stage.
#[derive(Debug, Clone, Copy)]
pub struct PhaseSet {
    pub pass1: MemPhase,
    pub hist: MemPhase,
    pub pass2: MemPhase,
}

impl PhaseSet {
    /// Build-side pipelines: everything counts as "build" (Figure 10).
    pub fn build() -> PhaseSet {
        PhaseSet {
            pass1: MemPhase::Build,
            hist: MemPhase::Build,
            pass2: MemPhase::Build,
        }
    }

    /// Probe-side pipelines: the individually plotted phases of Figure 10.
    pub fn probe() -> PhaseSet {
        PhaseSet {
            pass1: MemPhase::PartitionPass1,
            hist: MemPhase::HistogramScan,
            pass2: MemPhase::PartitionPass2,
        }
    }
}

// ---------------------------------------------------------------------------
// Paged pre-partitions (pass-1 output)
// ---------------------------------------------------------------------------

struct Page {
    words: Vec<u64>,
    len: usize,
}

impl Page {
    fn capacity(&self) -> usize {
        self.words.len() * 8
    }

    fn bytes(&self) -> &[u8] {
        unsafe { std::slice::from_raw_parts(self.words.as_ptr().cast::<u8>(), self.len) }
    }
}

/// Growth schedule: "whenever a page is full, a larger page is prepended".
const FIRST_PAGE_BYTES: usize = 4 * 1024;
const MAX_PAGE_BYTES: usize = 256 * 1024;

/// A linked list of pages holding materialized rows of one pre-partition.
pub struct PageList {
    pages: Vec<Page>,
    stride: usize,
    total_bytes: usize,
}

impl PageList {
    pub fn new(stride: usize) -> PageList {
        PageList {
            pages: Vec::new(),
            stride,
            total_bytes: 0,
        }
    }

    pub fn rows(&self) -> usize {
        self.total_bytes / self.stride
    }

    fn next_page_capacity(&self, at_least: usize) -> usize {
        let grown = match self.pages.last() {
            None => FIRST_PAGE_BYTES,
            Some(p) => (p.capacity() * 2).min(MAX_PAGE_BYTES),
        };
        grown.max(at_least.next_multiple_of(8))
    }

    /// The page the next write goes to, guaranteed to have room for
    /// `bytes` more. This is the single place encoding the list's growth
    /// invariant: a page with free space, if any, is always the last one,
    /// so appends never have to search.
    fn current_page(&mut self, bytes: usize) -> &mut Page {
        let need_new = match self.pages.last() {
            None => true,
            Some(p) => p.capacity() - p.len < bytes,
        };
        if need_new {
            let cap = self.next_page_capacity(bytes);
            self.pages.push(Page {
                words: vec![0u64; cap / 8],
                len: 0,
            });
        }
        self.pages
            .last_mut()
            .expect("current_page pushed a page when none had room")
    }

    /// Append a block of whole rows (e.g. a flushed SWWCB).
    pub fn append(&mut self, bytes: &[u8], nt: bool) {
        debug_assert_eq!(bytes.len() % self.stride, 0);
        if bytes.is_empty() {
            return;
        }
        let page = self.current_page(bytes.len());
        let off = page.len;
        let dst = unsafe {
            std::slice::from_raw_parts_mut(
                page.words.as_mut_ptr().cast::<u8>().add(off),
                bytes.len(),
            )
        };
        if nt {
            nt_copy(dst, bytes);
        } else {
            dst.copy_from_slice(bytes);
        }
        page.len += bytes.len();
        self.total_bytes += bytes.len();
    }

    /// Reserve one row slot for in-place encoding (the no-SWWCB path).
    pub fn alloc_row(&mut self) -> &mut [u8] {
        let stride = self.stride;
        self.total_bytes += stride;
        let page = self.current_page(stride);
        let off = page.len;
        page.len += stride;
        unsafe {
            std::slice::from_raw_parts_mut(page.words.as_mut_ptr().cast::<u8>().add(off), stride)
        }
    }

    /// Iterate the filled chunk of every page.
    pub fn chunks(&self) -> impl Iterator<Item = &[u8]> {
        self.pages.iter().map(Page::bytes)
    }
}

// ---------------------------------------------------------------------------
// Pass 1: the pipeline sink
// ---------------------------------------------------------------------------

struct Pass1Local {
    swwcb: Option<SwwcbSet>,
    lists: Vec<PageList>,
    heap: StrHeap,
    heap_id: usize,
    hashes: Vec<u64>,
    /// Budget charged for this worker's pages + SWWCBs. Dropping the local
    /// (e.g. when a sibling worker fails) releases the reservation.
    lease: BudgetLease,
}

struct Pass1Global {
    /// One entry per finished worker: its pre-partition page lists.
    worker_lists: Vec<Vec<PageList>>,
    /// (heap_id, heap) pairs, placed into a dense vec at finalize.
    heaps: Vec<(usize, StrHeap)>,
    /// Accumulated worker leases; released when pass-1 pages are freed.
    lease: BudgetLease,
}

/// The radix join's pipeline breaker: materializes and pass-1-partitions an
/// input dataflow. After the pipeline completes, [`PartitionSink::finalize`]
/// runs the histogram/exchange/pass-2 stages and yields a
/// [`PartitionedSide`].
pub struct PartitionSink {
    layout: RowLayout,
    key_cols: Vec<usize>,
    cfg: RadixConfig,
    phases: PhaseSet,
    ctx: Arc<QueryContext>,
    next_heap_id: AtomicUsize,
    global: Mutex<Pass1Global>,
}

impl PartitionSink {
    pub fn new(
        layout: RowLayout,
        key_cols: Vec<usize>,
        cfg: RadixConfig,
        phases: PhaseSet,
    ) -> PartitionSink {
        assert!(
            !layout.has_header(),
            "partitioned rows carry no chain header"
        );
        let ctx = QueryContext::unbounded();
        PartitionSink {
            layout,
            key_cols,
            cfg,
            phases,
            next_heap_id: AtomicUsize::new(0),
            global: Mutex::new(Pass1Global {
                worker_lists: Vec::new(),
                heaps: Vec::new(),
                lease: BudgetLease::empty(&ctx),
            }),
            ctx,
        }
    }

    /// Charge this sink's materialization against `ctx`'s memory budget
    /// (and observe its cancellation in [`PartitionSink::finalize`]).
    pub fn with_context(mut self, ctx: Arc<QueryContext>) -> PartitionSink {
        self.global.get_mut().lease = BudgetLease::empty(&ctx);
        self.ctx = ctx;
        self
    }

    pub fn layout(&self) -> &RowLayout {
        &self.layout
    }

    fn fanout1(&self) -> usize {
        1 << self.cfg.bits_pass1
    }
}

impl Sink for PartitionSink {
    fn create_local(&self) -> LocalState {
        let heap_id = self.next_heap_id.fetch_add(1, Ordering::Relaxed);
        let stride = self.layout.stride();
        let use_swwcb = self.cfg.use_swwcb && self.layout.swwcb_eligible();
        Box::new(Pass1Local {
            swwcb: use_swwcb.then(|| SwwcbSet::new(self.fanout1(), stride)),
            lists: (0..self.fanout1()).map(|_| PageList::new(stride)).collect(),
            heap: StrHeap::new(),
            heap_id,
            hashes: Vec::new(),
            lease: BudgetLease::empty(&self.ctx),
        })
    }

    fn consume(&self, local: &mut LocalState, input: Batch) -> ExecResult {
        let local = local.downcast_mut::<Pass1Local>().unwrap();
        let n = input.num_rows();
        // Charge the rows this batch materializes (plus, on the first batch,
        // this worker's write-combine buffers) before writing anything.
        let mut charge = n * self.layout.stride();
        if local.lease.bytes() == 0 {
            charge += local.swwcb.as_ref().map_or(0, SwwcbSet::byte_size);
        }
        local.lease.grow(charge)?;
        let key_cols: Vec<_> = self.key_cols.iter().map(|&c| input.column(c)).collect();
        let mut hashes = std::mem::take(&mut local.hashes);
        hash_columns(&key_cols, n, &mut hashes);
        drop(key_cols);

        let mask1 = (self.fanout1() - 1) as u64;
        let nt = self.cfg.use_nt_stores;
        let width = self.layout.width();
        for r in 0..n {
            let h = hashes[r];
            let p = (h & mask1) as usize;
            match &mut local.swwcb {
                Some(set) => {
                    if set.is_full(p) {
                        local.lists[p].append(set.filled(p), nt);
                        set.clear(p);
                    }
                    let slot = set.next_slot(p);
                    self.layout.encode_row(
                        &mut slot[..width],
                        h,
                        &input,
                        r,
                        &mut local.heap,
                        local.heap_id,
                    );
                }
                None => {
                    let slot = local.lists[p].alloc_row();
                    self.layout.encode_row(
                        &mut slot[..width],
                        h,
                        &input,
                        r,
                        &mut local.heap,
                        local.heap_id,
                    );
                }
            }
        }
        local.hashes = hashes;
        metrics::record_write(self.phases.pass1, (n * self.layout.stride()) as u64);
        Ok(())
    }

    fn finish_local(&self, local: LocalState) -> ExecResult {
        let mut local = *local.downcast::<Pass1Local>().unwrap();
        if let Some(set) = &mut local.swwcb {
            for p in set.non_empty() {
                local.lists[p].append(set.filled(p), self.cfg.use_nt_stores);
                set.clear(p);
            }
        }
        nt_fence();
        let mut global = self.global.lock();
        global.worker_lists.push(local.lists);
        global.heaps.push((local.heap_id, local.heap));
        global.lease.absorb(local.lease);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Histogram / exchange / pass 2
// ---------------------------------------------------------------------------

/// A fully partitioned, contiguous, materialized join side.
pub struct PartitionedSide {
    layout: RowLayout,
    heaps: Vec<StrHeap>,
    data: Vec<u64>,
    total_rows: usize,
    /// Row-index boundaries of each final partition: `bounds[p]..bounds[p+1]`.
    bounds: Vec<usize>,
    bits1: u32,
    bits2: u32,
    /// Budget reservation for `data` (and the Bloom filter); released when
    /// the partitioned side is dropped.
    _lease: BudgetLease,
}

impl PartitionedSide {
    pub fn layout(&self) -> &RowLayout {
        &self.layout
    }

    pub fn heaps(&self) -> &[StrHeap] {
        &self.heaps
    }

    pub fn total_rows(&self) -> usize {
        self.total_rows
    }

    pub fn bits1(&self) -> u32 {
        self.bits1
    }

    pub fn bits2(&self) -> u32 {
        self.bits2
    }

    pub fn num_partitions(&self) -> usize {
        self.bounds.len() - 1
    }

    pub fn partition_row_range(&self, p: usize) -> std::ops::Range<usize> {
        self.bounds[p]..self.bounds[p + 1]
    }

    /// All row bytes (stride-spaced).
    pub fn data_bytes(&self) -> &[u8] {
        unsafe {
            std::slice::from_raw_parts(
                self.data.as_ptr().cast::<u8>(),
                self.total_rows * self.layout.stride(),
            )
        }
    }

    /// Byte size of one partition (harness size accounting).
    pub fn partition_bytes(&self, p: usize) -> usize {
        self.partition_row_range(p).len() * self.layout.stride()
    }

    /// Total materialized bytes (rows + out-of-line strings).
    pub fn byte_size(&self) -> usize {
        self.total_rows * self.layout.stride()
            + self.heaps.iter().map(StrHeap::byte_len).sum::<usize>()
    }
}

/// Disjoint-region shared output buffer for pass-2 scatter tasks.
struct SharedBuf {
    ptr: *mut u8,
    len: usize,
}

unsafe impl Sync for SharedBuf {}
unsafe impl Send for SharedBuf {}

impl SharedBuf {
    /// # Safety
    /// Caller guarantees disjoint ranges across concurrent calls — each
    /// pass-2 task owns a private byte range, so handing out `&mut` from
    /// `&self` is sound here (the usual reason `mut_from_ref` is denied
    /// does not apply).
    #[allow(clippy::mut_from_ref)]
    unsafe fn slice_mut(&self, off: usize, len: usize) -> &mut [u8] {
        debug_assert!(off + len <= self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(off), len)
    }
}

impl PartitionSink {
    /// Run histogram, exchange and pass 2, producing the final partitioned
    /// side. `bits2_override` forces the pass-2 fanout (the probe side must
    /// reuse the build side's value); `bloom` requests construction of the
    /// Bloom-filter reducer during the scatter (build side of the BRJ).
    ///
    /// Fails if the query was cancelled / timed out (checked between
    /// pre-partition tasks) or if the contiguous output buffer would exceed
    /// the memory budget. On failure every reservation this sink made is
    /// released before returning.
    pub fn finalize(
        &self,
        threads: usize,
        bits2_override: Option<u32>,
        build_bloom: bool,
    ) -> ExecResult<(PartitionedSide, Option<BlockedBloom>)> {
        let mut global = self.global.lock();
        let worker_lists = std::mem::take(&mut global.worker_lists);
        let mut heap_pairs = std::mem::take(&mut global.heaps);
        // Pass-1 pages are freed when `worker_lists` drops at the end of this
        // function (or on early return) — the lease must die with them.
        let _pass1_lease = std::mem::replace(&mut global.lease, BudgetLease::empty(&self.ctx));
        drop(global);

        // Dense heap vector indexed by heap id.
        let max_id = heap_pairs
            .iter()
            .map(|(id, _)| *id)
            .max()
            .map_or(0, |m| m + 1);
        let mut heaps: Vec<StrHeap> = (0..max_id).map(|_| StrHeap::new()).collect();
        for (id, heap) in heap_pairs.drain(..) {
            heaps[id] = heap;
        }

        let fanout1 = self.fanout1();
        let stride = self.layout.stride();

        // Exchange (a): total and per-pre-partition cardinalities.
        let mut pre_counts = vec![0usize; fanout1];
        for lists in &worker_lists {
            for (p, list) in lists.iter().enumerate() {
                pre_counts[p] += list.rows();
            }
        }
        let total_rows: usize = pre_counts.iter().sum();

        // Choose the pass-2 fanout so build partitions hit the cache target.
        let bits2 = bits2_override.unwrap_or_else(|| {
            let total_bytes = total_rows * stride;
            let ideal_parts = total_bytes.div_ceil(self.cfg.target_partition_bytes).max(1);
            let total_bits =
                (ideal_parts.next_power_of_two().trailing_zeros()).max(self.cfg.bits_pass1);
            (total_bits - self.cfg.bits_pass1).min(self.cfg.max_bits_pass2)
        });
        let fanout2 = 1usize << bits2;
        let nparts = fanout1 * fanout2;
        let mask2 = (fanout2 - 1) as u64;
        let bits1 = self.cfg.bits_pass1;

        // The contiguous pass-2 output buffer is the second copy of every
        // row: reserve it up front, so a budget breach surfaces before the
        // allocation instead of as an OOM kill.
        let mut out_lease = BudgetLease::reserve(&self.ctx, total_rows * stride)?;

        // Which side this sink partitioned, for trace span labels (the
        // build PhaseSet folds every phase into `Build`).
        let side_label = if self.phases.hist == MemPhase::Build {
            "build"
        } else {
            "probe"
        };

        // Histogram scan: per pre-partition, count rows per sub-partition.
        metrics::mark_phase(self.phases.hist);
        let hist_span = trace::phase_scope(format!("radix histogram scan ({side_label})"));
        let histograms: Vec<Mutex<Vec<usize>>> =
            (0..fanout1).map(|_| Mutex::new(Vec::new())).collect();
        let task = AtomicUsize::new(0);
        let hash_off = self.layout.hash_offset();
        // First cancellation/timeout error observed by any histogram or
        // scatter task; remaining tasks bail out as soon as it is set.
        let phase_err: Mutex<Option<ExecError>> = Mutex::new(None);
        let run_hist = || loop {
            let p = task.fetch_add(1, Ordering::Relaxed);
            if p >= fanout1 {
                break;
            }
            if let Err(e) = self.ctx.check() {
                phase_err.lock().get_or_insert(e);
                break;
            }
            let mut counts = vec![0usize; fanout2];
            let mut bytes = 0usize;
            for lists in &worker_lists {
                for chunk in lists[p].chunks() {
                    bytes += chunk.len();
                    crate::simd::hist_chunk(chunk, stride, hash_off, bits1, mask2, &mut counts);
                }
            }
            metrics::record_read(self.phases.hist, bytes as u64);
            crate::simd::note(
                crate::simd::Kernel::Hist,
                crate::simd::active(),
                bytes / stride,
            );
            *histograms[p].lock() = counts;
        };
        run_parallel(threads, fanout1, run_hist);
        drop(hist_span);
        if let Some(e) = phase_err.lock().take() {
            return Err(e);
        }

        // Exchange (b): absolute row offsets per final partition.
        let mut bounds = vec![0usize; nparts + 1];
        {
            let mut cursor = 0usize;
            for p in 0..fanout1 {
                let hist = histograms[p].lock();
                for s in 0..fanout2 {
                    bounds[p * fanout2 + s] = cursor;
                    cursor += hist[s];
                }
            }
            bounds[nparts] = cursor;
            debug_assert_eq!(cursor, total_rows);
        }

        // Pass 2: scatter every pre-partition into its contiguous region.
        metrics::mark_phase(self.phases.pass2);
        let pass2_span = trace::phase_scope(if build_bloom {
            format!("radix partition pass 2 + bloom build ({side_label})")
        } else {
            format!("radix partition pass 2 ({side_label})")
        });
        let mut data = vec![0u64; (total_rows * stride).div_ceil(8)];
        let shared = SharedBuf {
            ptr: data.as_mut_ptr().cast::<u8>(),
            len: total_rows * stride,
        };
        let bloom = build_bloom.then(|| BlockedBloom::new(nparts, total_rows.max(1)));
        if let Some(b) = &bloom {
            out_lease.grow(b.byte_size())?;
        }
        let use_swwcb = self.cfg.use_swwcb && self.layout.swwcb_eligible();
        let nt = self.cfg.use_nt_stores;

        let task2 = AtomicUsize::new(0);
        let run_scatter = || {
            let mut set = use_swwcb.then(|| SwwcbSet::new(fanout2, stride));
            loop {
                let p = task2.fetch_add(1, Ordering::Relaxed);
                if p >= fanout1 {
                    break;
                }
                if let Err(e) = self.ctx.check() {
                    phase_err.lock().get_or_insert(e);
                    break;
                }
                // Row cursors per sub-partition, in absolute rows.
                let mut cursors: Vec<usize> =
                    (0..fanout2).map(|s| bounds[p * fanout2 + s]).collect();
                let mut bytes = 0usize;
                for lists in &worker_lists {
                    for chunk in lists[p].chunks() {
                        bytes += chunk.len();
                        for row in chunk.chunks_exact(stride) {
                            let h = read_u64(row, hash_off);
                            let s = ((h >> bits1) & mask2) as usize;
                            if let Some(b) = &bloom {
                                b.insert(p * fanout2 + s, h);
                            }
                            match &mut set {
                                Some(set) => {
                                    if set.is_full(s) {
                                        let buf = set.filled(s);
                                        let rows = buf.len() / stride;
                                        let dst = unsafe {
                                            shared.slice_mut(cursors[s] * stride, buf.len())
                                        };
                                        if nt {
                                            nt_copy(dst, buf);
                                        } else {
                                            dst.copy_from_slice(buf);
                                        }
                                        cursors[s] += rows;
                                        set.clear(s);
                                    }
                                    set.next_slot(s).copy_from_slice(row);
                                }
                                None => {
                                    let dst =
                                        unsafe { shared.slice_mut(cursors[s] * stride, stride) };
                                    dst.copy_from_slice(row);
                                    cursors[s] += 1;
                                }
                            }
                        }
                    }
                }
                if let Some(set) = &mut set {
                    for s in set.non_empty() {
                        let buf = set.filled(s);
                        let dst = unsafe { shared.slice_mut(cursors[s] * stride, buf.len()) };
                        if nt {
                            nt_copy(dst, buf);
                        } else {
                            dst.copy_from_slice(buf);
                        }
                        cursors[s] += buf.len() / stride;
                        set.clear(s);
                    }
                }
                metrics::record_read(self.phases.pass2, bytes as u64);
                metrics::record_write(self.phases.pass2, bytes as u64);
                crate::simd::note(
                    crate::simd::Kernel::Scatter,
                    crate::simd::active(),
                    bytes / stride,
                );
            }
            nt_fence();
        };
        run_parallel(threads, fanout1, run_scatter);
        drop(pass2_span);
        if let Some(e) = phase_err.lock().take() {
            return Err(e);
        }

        let side = PartitionedSide {
            layout: self.layout.clone(),
            heaps,
            data,
            total_rows,
            bounds,
            bits1,
            bits2,
            _lease: out_lease,
        };
        Ok((side, bloom))
    }
}

/// Tiny scoped-thread fork-join used by the histogram and scatter stages.
fn run_parallel(threads: usize, tasks: usize, body: impl Fn() + Sync) {
    if threads <= 1 || tasks <= 1 {
        body();
    } else {
        std::thread::scope(|scope| {
            for _ in 0..threads.min(tasks) {
                scope.spawn(&body);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::hash_u64;
    use joinstudy_exec::batch::BatchBuilder;
    use joinstudy_storage::types::{DataType, Value};

    fn partition_i64(
        values: &[i64],
        cfg: RadixConfig,
        threads: usize,
        bits2: Option<u32>,
    ) -> PartitionedSide {
        let layout = RowLayout::new(&[DataType::Int64], false);
        let sink = PartitionSink::new(layout, vec![0], cfg, PhaseSet::build());
        feed_i64(&sink, values);
        sink.finish();
        sink.finalize(threads, bits2, false).unwrap().0
    }

    fn feed_i64(sink: &PartitionSink, values: &[i64]) {
        let mut local = sink.create_local();
        let mut bb = BatchBuilder::new(vec![DataType::Int64]);
        for &v in values {
            bb.push_row(&[Value::Int64(v)]);
            if bb.is_full() {
                sink.consume(&mut local, bb.flush().unwrap()).unwrap();
            }
        }
        if let Some(b) = bb.flush() {
            sink.consume(&mut local, b).unwrap();
        }
        sink.finish_local(local).unwrap();
    }

    fn collect_rows(side: &PartitionedSide) -> Vec<(usize, u64, i64)> {
        let stride = side.layout().stride();
        let data = side.data_bytes();
        let mut out = Vec::new();
        for p in 0..side.num_partitions() {
            for r in side.partition_row_range(p) {
                let row = &data[r * stride..(r + 1) * stride];
                let h = side.layout().read_hash(row);
                let v = read_u64(row, side.layout().col_offset(0)) as i64;
                out.push((p, h, v));
            }
        }
        out
    }

    #[test]
    fn partitioning_is_a_permutation() {
        let values: Vec<i64> = (0..50_000).collect();
        let side = partition_i64(&values, RadixConfig::default(), 1, Some(2));
        assert_eq!(side.total_rows(), values.len());
        let mut got: Vec<i64> = collect_rows(&side).iter().map(|&(_, _, v)| v).collect();
        got.sort_unstable();
        assert_eq!(got, values);
    }

    #[test]
    fn rows_land_in_their_hash_partition() {
        let values: Vec<i64> = (0..20_000).collect();
        let side = partition_i64(&values, RadixConfig::default(), 1, Some(3));
        for (p, h, v) in collect_rows(&side) {
            assert_eq!(h, hash_u64(v as u64), "stored hash mismatch for {v}");
            assert_eq!(
                partition_of(h, side.bits1(), side.bits2()),
                p,
                "row {v} in wrong partition"
            );
        }
    }

    #[test]
    fn parallel_partitioning_matches_serial() {
        let values: Vec<i64> = (0..30_000).map(|i| i * 7 + 3).collect();
        let serial = partition_i64(&values, RadixConfig::default(), 1, Some(4));
        // Multi-worker pass 1 (simulate two workers consuming halves).
        let layout = RowLayout::new(&[DataType::Int64], false);
        let sink = PartitionSink::new(layout, vec![0], RadixConfig::default(), PhaseSet::build());
        std::thread::scope(|scope| {
            for half in values.chunks(values.len() / 2 + 1) {
                let sink = &sink;
                scope.spawn(move || feed_i64(sink, half));
            }
        });
        let parallel = sink.finalize(4, Some(4), false).unwrap().0;

        assert_eq!(parallel.total_rows(), serial.total_rows());
        assert_eq!(parallel.num_partitions(), serial.num_partitions());
        // Same (partition, value) multiset; order within a partition may differ.
        let mut a = collect_sorted(&serial);
        let mut b = collect_sorted(&parallel);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn ablations_produce_identical_partitions() {
        let values: Vec<i64> = (0..10_000).map(|i| i * 13).collect();
        let base = RadixConfig::default();
        let no_swwcb = RadixConfig {
            use_swwcb: false,
            ..base
        };
        let no_nt = RadixConfig {
            use_nt_stores: false,
            ..base
        };
        let reference = collect_sorted(&partition_i64(&values, base, 1, Some(2)));
        assert_eq!(
            reference,
            collect_sorted(&partition_i64(&values, no_swwcb, 1, Some(2)))
        );
        assert_eq!(
            reference,
            collect_sorted(&partition_i64(&values, no_nt, 1, Some(2)))
        );
    }

    fn collect_sorted(side: &PartitionedSide) -> Vec<(usize, i64)> {
        let mut v: Vec<(usize, i64)> = collect_rows(side)
            .iter()
            .map(|&(p, _, val)| (p, val))
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn adaptive_bits2_respects_target() {
        // 100k rows × 16 B ≈ 1.6 MB; with a 16 KiB target and bits1=6 the
        // sink should pick bits2 > 0.
        let cfg = RadixConfig {
            target_partition_bytes: 16 * 1024,
            ..RadixConfig::default()
        };
        let values: Vec<i64> = (0..100_000).collect();
        let side = partition_i64(&values, cfg, 1, None);
        assert!(side.bits2() >= 1, "bits2 = {}", side.bits2());
        // Partitions should be near the target on average.
        let avg = (side.total_rows() * side.layout().stride()) / side.num_partitions();
        assert!(avg <= 32 * 1024, "avg partition {avg} bytes");
    }

    #[test]
    fn empty_input_finalizes_cleanly() {
        let side = partition_i64(&[], RadixConfig::default(), 2, None);
        assert_eq!(side.total_rows(), 0);
        assert_eq!(side.bits2(), 0);
        assert!(side.num_partitions() >= 1);
        for p in 0..side.num_partitions() {
            assert!(side.partition_row_range(p).is_empty());
        }
    }

    #[test]
    fn bloom_filter_built_during_pass2() {
        let layout = RowLayout::new(&[DataType::Int64], false);
        let sink = PartitionSink::new(layout, vec![0], RadixConfig::default(), PhaseSet::build());
        feed_i64(&sink, &(0..5000i64).collect::<Vec<_>>());
        let (side, bloom) = sink.finalize(1, Some(2), true).unwrap();
        let bloom = bloom.expect("bloom requested");
        // Every inserted key must pass its partition's filter.
        for v in 0..5000u64 {
            let h = hash_u64(v);
            let p = partition_of(h, side.bits1(), side.bits2());
            assert!(bloom.contains(p, h), "false negative for {v}");
        }
        // Most absent keys are rejected.
        let mut rejected = 0;
        for v in 10_000..20_000u64 {
            let h = hash_u64(v);
            let p = partition_of(h, side.bits1(), side.bits2());
            if !bloom.contains(p, h) {
                rejected += 1;
            }
        }
        assert!(rejected > 8500, "bloom rejected only {rejected}/10000");
    }

    #[test]
    fn page_list_growth_and_iteration() {
        let mut list = PageList::new(16);
        let row_count = 10_000;
        for i in 0..row_count {
            let slot = list.alloc_row();
            slot[..8].copy_from_slice(&(i as u64).to_le_bytes());
        }
        assert_eq!(list.rows(), row_count);
        let mut seen = 0u64;
        for chunk in list.chunks() {
            assert_eq!(chunk.len() % 16, 0);
            for row in chunk.chunks_exact(16) {
                assert_eq!(read_u64(row, 0), seen);
                seen += 1;
            }
        }
        assert_eq!(seen, row_count as u64);
    }

    #[test]
    fn strings_survive_partitioning() {
        let layout = RowLayout::new(&[DataType::Int64, DataType::Str], false);
        let sink = PartitionSink::new(layout, vec![0], RadixConfig::default(), PhaseSet::build());
        let mut local = sink.create_local();
        let mut bb = BatchBuilder::new(vec![DataType::Int64, DataType::Str]);
        for i in 0..3000i64 {
            bb.push_row(&[Value::Int64(i), Value::Str(format!("name-{i}"))]);
            if bb.is_full() {
                sink.consume(&mut local, bb.flush().unwrap()).unwrap();
            }
        }
        if let Some(b) = bb.flush() {
            sink.consume(&mut local, b).unwrap();
        }
        sink.finish_local(local).unwrap();
        let (side, _) = sink.finalize(1, Some(1), false).unwrap();
        let stride = side.layout().stride();
        let data = side.data_bytes();
        let mut checked = 0;
        for p in 0..side.num_partitions() {
            for r in side.partition_row_range(p) {
                let row = &data[r * stride..(r + 1) * stride];
                let id = read_u64(row, side.layout().col_offset(0)) as i64;
                let sref = read_u64(row, side.layout().col_offset(1));
                assert_eq!(
                    crate::row::resolve_str(side.heaps(), sref),
                    format!("name-{id}")
                );
                checked += 1;
            }
        }
        assert_eq!(checked, 3000);
    }

    #[test]
    fn budget_breach_in_pass1_releases_everything() {
        let ctx = QueryContext::unbounded();
        ctx.set_memory_budget(Some(4 * 1024));
        let layout = RowLayout::new(&[DataType::Int64], false);
        let sink = PartitionSink::new(layout, vec![0], RadixConfig::default(), PhaseSet::build())
            .with_context(Arc::clone(&ctx));
        let mut local = sink.create_local();
        let mut bb = BatchBuilder::new(vec![DataType::Int64]);
        let mut err = None;
        for v in 0..100_000i64 {
            bb.push_row(&[Value::Int64(v)]);
            if bb.is_full() {
                if let Err(e) = sink.consume(&mut local, bb.flush().unwrap()) {
                    err = Some(e);
                    break;
                }
            }
        }
        assert!(
            matches!(err, Some(ExecError::BudgetExceeded { .. })),
            "{err:?}"
        );
        // Dropping the worker local (as the executor does on failure) must
        // return every reserved byte.
        drop(local);
        drop(sink);
        assert_eq!(ctx.used(), 0);
    }

    #[test]
    fn budget_breach_in_finalize_releases_everything() {
        // Budget fits pass-1 pages but not the second, contiguous copy.
        let values: Vec<i64> = (0..20_000).collect();
        let rows_bytes = values.len() * 16;
        let ctx = QueryContext::unbounded();
        ctx.set_memory_budget(Some(rows_bytes + rows_bytes / 2));
        let layout = RowLayout::new(&[DataType::Int64], false);
        let sink = PartitionSink::new(layout, vec![0], RadixConfig::default(), PhaseSet::build())
            .with_context(Arc::clone(&ctx));
        feed_i64(&sink, &values);
        assert!(ctx.used() >= rows_bytes, "pass 1 must be charged");
        let err = sink.finalize(1, Some(2), false).err().unwrap();
        assert!(matches!(err, ExecError::BudgetExceeded { .. }), "{err}");
        drop(sink);
        assert_eq!(ctx.used(), 0);
    }

    #[test]
    fn finalize_observes_cancellation() {
        let ctx = QueryContext::unbounded();
        let layout = RowLayout::new(&[DataType::Int64], false);
        let sink = PartitionSink::new(layout, vec![0], RadixConfig::default(), PhaseSet::build())
            .with_context(Arc::clone(&ctx));
        feed_i64(&sink, &(0..10_000i64).collect::<Vec<_>>());
        ctx.cancel();
        let err = sink.finalize(2, Some(2), false).err().unwrap();
        assert_eq!(err, ExecError::Cancelled);
        drop(sink);
        assert_eq!(ctx.used(), 0);
    }

    #[test]
    fn partitioned_side_releases_budget_on_drop() {
        let ctx = QueryContext::unbounded();
        ctx.set_memory_budget(Some(64 * 1024 * 1024));
        let layout = RowLayout::new(&[DataType::Int64], false);
        let sink = PartitionSink::new(layout, vec![0], RadixConfig::default(), PhaseSet::build())
            .with_context(Arc::clone(&ctx));
        feed_i64(&sink, &(0..5000i64).collect::<Vec<_>>());
        let (side, _) = sink.finalize(1, Some(2), false).unwrap();
        drop(sink); // pass-1 pages + their lease
        assert_eq!(ctx.used(), side.total_rows() * side.layout().stride());
        drop(side);
        assert_eq!(ctx.used(), 0);
    }
}
