//! Fixed-width materialized row layout.
//!
//! Pipeline breakers (radix partitioning, hash-table build) materialize
//! tuples as fixed-width rows:
//!
//! ```text
//! [next: u64]?  [hash: u64]  [col slots ...]  [padding]
//! ```
//!
//! * the optional `next` header slot exists only in non-partitioned-join
//!   build rows (intrusive chaining + the build-preserved "matched" flag),
//! * the 64-bit join hash is always stored with the tuple, as in the paper
//!   (§5.2), so partitioning passes and the final join never rehash,
//! * column slots are packed widest-first (no alignment holes), strings are
//!   stored out-of-line in per-worker [`StrHeap`]s with a packed 8-byte
//!   reference in the row,
//! * the row **stride** is the width padded to the next power of two when
//!   ≤ 64 B — the paper's padding rule that makes software write-combine
//!   buffers and non-temporal streaming applicable (§5.2.3); wider tuples
//!   keep their natural (8-byte-rounded) width and forgo SWWCBs (§5.4.2).

use joinstudy_exec::batch::Batch;
use joinstudy_storage::column::ColumnData;
use joinstudy_storage::types::DataType;

/// Offset of the stored hash from the row start.
const HASH_OFF_NO_HEADER: usize = 0;

/// An out-of-line string arena. Each worker owns one during materialization;
/// after the pipeline finishes the set of heaps is frozen and shared.
#[derive(Debug, Default)]
pub struct StrHeap {
    bytes: Vec<u8>,
}

/// Packed string reference: `heap_id(8) | offset(40) | len(16)`.
pub type StrRef = u64;

impl StrHeap {
    pub fn new() -> StrHeap {
        StrHeap { bytes: Vec::new() }
    }

    /// Append a string, returning its packed reference for heap `heap_id`.
    pub fn push(&mut self, heap_id: usize, s: &str) -> StrRef {
        let off = self.bytes.len() as u64;
        let len = s.len() as u64;
        assert!(heap_id < 256, "too many worker heaps");
        assert!(off < 1 << 40, "string heap exceeds 1 TiB");
        assert!(len < 1 << 16, "string longer than 64 KiB");
        self.bytes.extend_from_slice(s.as_bytes());
        ((heap_id as u64) << 56) | (off << 16) | len
    }

    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }
}

/// Resolve a packed reference against the heap set it was created in.
pub fn resolve_str(heaps: &[StrHeap], r: StrRef) -> &str {
    let heap_id = (r >> 56) as usize;
    let off = ((r >> 16) & ((1 << 40) - 1)) as usize;
    let len = (r & 0xFFFF) as usize;
    let bytes = &heaps[heap_id].bytes[off..off + len];
    // Only whole UTF-8 strings are ever pushed.
    unsafe { std::str::from_utf8_unchecked(bytes) }
}

/// The physical layout of one materialized tuple.
#[derive(Debug, Clone)]
pub struct RowLayout {
    types: Vec<DataType>,
    /// Byte offset of each column slot, indexed by logical column.
    offsets: Vec<usize>,
    /// Bytes before the hash: 8 when the row carries a `next` header.
    base: usize,
    /// Used bytes, rounded up to 8.
    width: usize,
    /// Distance between consecutive rows in a buffer.
    stride: usize,
    /// Whether SWWCBs + non-temporal streaming apply (width ≤ 64).
    swwcb_eligible: bool,
}

impl RowLayout {
    /// Layout for the given column types. `with_header` adds the leading
    /// 8-byte `next`/flag slot used by the non-partitioned join's build rows.
    pub fn new(types: &[DataType], with_header: bool) -> RowLayout {
        let base = if with_header { 8 } else { HASH_OFF_NO_HEADER };
        // Hash slot right after the optional header.
        let cols_start = base + 8;

        // Assign slots widest-first to avoid alignment holes; remember the
        // original column order in `offsets`.
        let mut order: Vec<usize> = (0..types.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(types[i].slot_width()));
        let mut offsets = vec![0usize; types.len()];
        let mut cursor = cols_start;
        for &i in &order {
            let w = types[i].slot_width();
            // Align to slot width (1, 4, or 8).
            cursor = cursor.div_ceil(w) * w;
            offsets[i] = cursor;
            cursor += w;
        }
        let width = cursor.div_ceil(8) * 8;
        let (stride, swwcb_eligible) = if width <= 64 {
            (width.next_power_of_two(), true)
        } else {
            (width, false)
        };
        RowLayout {
            types: types.to_vec(),
            offsets,
            base,
            width,
            stride,
            swwcb_eligible,
        }
    }

    pub fn num_columns(&self) -> usize {
        self.types.len()
    }

    pub fn types(&self) -> &[DataType] {
        &self.types
    }

    pub fn col_offset(&self, col: usize) -> usize {
        self.offsets[col]
    }

    /// Unpadded row width in bytes (multiple of 8).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Padded distance between rows (power of two when SWWCB-eligible).
    pub fn stride(&self) -> usize {
        self.stride
    }

    pub fn swwcb_eligible(&self) -> bool {
        self.swwcb_eligible
    }

    /// Whether rows carry the `next` header slot.
    pub fn has_header(&self) -> bool {
        self.base == 8
    }

    /// Offset of the stored hash.
    pub fn hash_offset(&self) -> usize {
        self.base
    }

    /// Read the stored hash of a row.
    #[inline]
    pub fn read_hash(&self, row: &[u8]) -> u64 {
        read_u64(row, self.base)
    }

    /// Write one tuple (`hash` + the batch's row `r`) into `dst`
    /// (`dst.len() >= self.width`). String columns are appended to `heap`.
    pub fn encode_row(
        &self,
        dst: &mut [u8],
        hash: u64,
        batch: &Batch,
        r: usize,
        heap: &mut StrHeap,
        heap_id: usize,
    ) {
        if self.has_header() {
            write_u64(dst, 0, 0);
        }
        write_u64(dst, self.base, hash);
        for (c, &off) in self.offsets.iter().enumerate() {
            match batch.column(c) {
                ColumnData::Bool(v) => dst[off] = v[r] as u8,
                ColumnData::Int32(v) | ColumnData::Date(v) => {
                    dst[off..off + 4].copy_from_slice(&v[r].to_le_bytes())
                }
                ColumnData::Int64(v) | ColumnData::Decimal(v) => {
                    dst[off..off + 8].copy_from_slice(&v[r].to_le_bytes())
                }
                ColumnData::Float64(v) => {
                    dst[off..off + 8].copy_from_slice(&v[r].to_bits().to_le_bytes())
                }
                ColumnData::Str(v) => {
                    let sref = heap.push(heap_id, v.get(r));
                    dst[off..off + 8].copy_from_slice(&sref.to_le_bytes());
                }
            }
        }
    }

    /// Decode column `c` of the rows starting at the given byte offsets in
    /// `data`, appending to `out` (which must have the matching type).
    pub fn decode_column_into(
        &self,
        data: &[u8],
        row_offsets: &[usize],
        c: usize,
        heaps: &[StrHeap],
        out: &mut ColumnData,
    ) {
        let off = self.offsets[c];
        match (self.types[c], out) {
            (DataType::Bool, ColumnData::Bool(v)) => {
                v.extend(row_offsets.iter().map(|&ro| data[ro + off] != 0))
            }
            (DataType::Int32, ColumnData::Int32(v)) | (DataType::Date, ColumnData::Date(v)) => {
                v.extend(row_offsets.iter().map(|&ro| read_i32(data, ro + off)))
            }
            (DataType::Int64, ColumnData::Int64(v))
            | (DataType::Decimal, ColumnData::Decimal(v)) => v.extend(
                row_offsets
                    .iter()
                    .map(|&ro| read_u64(data, ro + off) as i64),
            ),
            (DataType::Float64, ColumnData::Float64(v)) => v.extend(
                row_offsets
                    .iter()
                    .map(|&ro| f64::from_bits(read_u64(data, ro + off))),
            ),
            (DataType::Str, ColumnData::Str(v)) => {
                for &ro in row_offsets {
                    v.push(resolve_str(heaps, read_u64(data, ro + off)));
                }
            }
            (t, o) => panic!("decode type mismatch: {:?} into {:?}", t, o.data_type()),
        }
    }

    /// Decode column `c` of rows addressed by raw pointers (chained build
    /// rows of the non-partitioned join), appending to `out`.
    ///
    /// # Safety
    /// Every pointer must reference a live row of this layout.
    pub unsafe fn decode_ptrs_into(
        &self,
        ptrs: &[*const u8],
        c: usize,
        heaps: &[StrHeap],
        out: &mut ColumnData,
    ) {
        let off = self.offsets[c];
        let width = self.width;
        for &p in ptrs {
            let row = std::slice::from_raw_parts(p, width);
            match (self.types[c], &mut *out) {
                (DataType::Bool, ColumnData::Bool(v)) => v.push(row[off] != 0),
                (DataType::Int32, ColumnData::Int32(v)) | (DataType::Date, ColumnData::Date(v)) => {
                    v.push(read_i32(row, off))
                }
                (DataType::Int64, ColumnData::Int64(v))
                | (DataType::Decimal, ColumnData::Decimal(v)) => v.push(read_u64(row, off) as i64),
                (DataType::Float64, ColumnData::Float64(v)) => {
                    v.push(f64::from_bits(read_u64(row, off)))
                }
                (DataType::Str, ColumnData::Str(v)) => {
                    v.push(resolve_str(heaps, read_u64(row, off)))
                }
                (t, o) => panic!("decode type mismatch: {:?} into {:?}", t, o.data_type()),
            }
        }
    }

    /// Compare the key columns of a *batch* tuple against a materialized
    /// row (the non-partitioned join probes without materializing the probe
    /// side). Key lists are pairwise type-compatible.
    #[inline]
    pub fn keys_match_batch(
        &self,
        row: &[u8],
        row_keys: &[usize],
        heaps: &[StrHeap],
        batch: &Batch,
        batch_keys: &[usize],
        r: usize,
    ) -> bool {
        for (&kr, &kb) in row_keys.iter().zip(batch_keys) {
            let off = self.offsets[kr];
            let equal = match (self.types[kr], batch.column(kb)) {
                (DataType::Bool, ColumnData::Bool(v)) => (row[off] != 0) == v[r],
                (DataType::Int32, ColumnData::Int32(v)) | (DataType::Date, ColumnData::Date(v)) => {
                    read_i32(row, off) == v[r]
                }
                (DataType::Int64, ColumnData::Int64(v))
                | (DataType::Decimal, ColumnData::Decimal(v)) => read_u64(row, off) as i64 == v[r],
                (DataType::Int32, ColumnData::Int64(v)) => i64::from(read_i32(row, off)) == v[r],
                (DataType::Int64, ColumnData::Int32(v)) => {
                    read_u64(row, off) as i64 == i64::from(v[r])
                }
                (DataType::Float64, ColumnData::Float64(v)) => read_u64(row, off) == v[r].to_bits(),
                (DataType::Str, ColumnData::Str(v)) => {
                    resolve_str(heaps, read_u64(row, off)) == v.get(r)
                }
                (t, c) => panic!("incomparable key types {t:?} vs {:?}", c.data_type()),
            };
            if !equal {
                return false;
            }
        }
        true
    }

    /// Compare the key columns of two rows (possibly from different layouts
    /// but with pairwise-matching key types and shared heaps per side).
    #[inline]
    #[allow(clippy::too_many_arguments)] // two (row, keys, heaps) triples + self
    pub fn keys_equal(
        &self,
        row_a: &[u8],
        keys_a: &[usize],
        heaps_a: &[StrHeap],
        layout_b: &RowLayout,
        row_b: &[u8],
        keys_b: &[usize],
        heaps_b: &[StrHeap],
    ) -> bool {
        debug_assert_eq!(keys_a.len(), keys_b.len());
        for (&ka, &kb) in keys_a.iter().zip(keys_b) {
            let oa = self.offsets[ka];
            let ob = layout_b.offsets[kb];
            let equal = match (self.types[ka], layout_b.types[kb]) {
                (DataType::Bool, DataType::Bool) => row_a[oa] == row_b[ob],
                (DataType::Int32, DataType::Int32) | (DataType::Date, DataType::Date) => {
                    read_i32(row_a, oa) == read_i32(row_b, ob)
                }
                (DataType::Int64, DataType::Int64) | (DataType::Decimal, DataType::Decimal) => {
                    read_u64(row_a, oa) == read_u64(row_b, ob)
                }
                // Mixed-width integer keys (INT vs BIGINT foreign keys).
                (DataType::Int32, DataType::Int64) => {
                    i64::from(read_i32(row_a, oa)) == read_u64(row_b, ob) as i64
                }
                (DataType::Int64, DataType::Int32) => {
                    read_u64(row_a, oa) as i64 == i64::from(read_i32(row_b, ob))
                }
                (DataType::Float64, DataType::Float64) => {
                    read_u64(row_a, oa) == read_u64(row_b, ob)
                }
                (DataType::Str, DataType::Str) => {
                    resolve_str(heaps_a, read_u64(row_a, oa))
                        == resolve_str(heaps_b, read_u64(row_b, ob))
                }
                (ta, tb) => panic!("incomparable key types {ta:?} vs {tb:?}"),
            };
            if !equal {
                return false;
            }
        }
        true
    }
}

#[inline]
pub fn read_u64(data: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(data[off..off + 8].try_into().unwrap())
}

#[inline]
pub fn write_u64(data: &mut [u8], off: usize, v: u64) {
    data[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

#[inline]
pub fn read_i32(data: &[u8], off: usize) -> i32 {
    i32::from_le_bytes(data[off..off + 4].try_into().unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;
    use joinstudy_storage::types::Value;

    #[test]
    fn layout_packs_widest_first() {
        let l = RowLayout::new(&[DataType::Int32, DataType::Int64, DataType::Bool], false);
        // hash at 0..8, i64 at 8, i32 at 16, bool at 20 → width 24 → stride 32.
        assert_eq!(l.hash_offset(), 0);
        assert_eq!(l.col_offset(1), 8);
        assert_eq!(l.col_offset(0), 16);
        assert_eq!(l.col_offset(2), 20);
        assert_eq!(l.width(), 24);
        assert_eq!(l.stride(), 32);
        assert!(l.swwcb_eligible());
    }

    #[test]
    fn layout_header_shifts_offsets() {
        let l = RowLayout::new(&[DataType::Int64], true);
        assert!(l.has_header());
        assert_eq!(l.hash_offset(), 8);
        assert_eq!(l.col_offset(0), 16);
        assert_eq!(l.width(), 24);
    }

    #[test]
    fn wide_rows_skip_padding_and_swwcb() {
        // 9 × 8B payload + 8B hash = 80 B > 64.
        let types = vec![DataType::Int64; 9];
        let l = RowLayout::new(&types, false);
        assert_eq!(l.width(), 80);
        assert_eq!(l.stride(), 80);
        assert!(!l.swwcb_eligible());
    }

    #[test]
    fn padding_hits_powers_of_two() {
        // hash + 1×8B = 16 → stride 16.
        assert_eq!(RowLayout::new(&[DataType::Int64], false).stride(), 16);
        // hash + 2×8B = 24 → stride 32.
        assert_eq!(RowLayout::new(&[DataType::Int64; 2], false).stride(), 32);
        // hash + 7×8B = 64 → stride 64 (still eligible).
        let l = RowLayout::new([DataType::Int64; 7].as_ref(), false);
        assert_eq!(l.stride(), 64);
        assert!(l.swwcb_eligible());
    }

    #[test]
    fn encode_decode_roundtrip_all_types() {
        let types = [
            DataType::Int64,
            DataType::Int32,
            DataType::Decimal,
            DataType::Str,
            DataType::Bool,
            DataType::Date,
        ];
        let layout = RowLayout::new(&types, false);
        let mut b = joinstudy_exec::batch::BatchBuilder::new(types.to_vec());
        b.push_row(&[
            Value::Int64(-99),
            Value::Int32(7),
            Value::Decimal(joinstudy_storage::types::Decimal(1234)),
            Value::Str("tpch".into()),
            Value::Bool(true),
            Value::Date(joinstudy_storage::types::Date(9204)),
        ]);
        b.push_row(&[
            Value::Int64(5),
            Value::Int32(-1),
            Value::Decimal(joinstudy_storage::types::Decimal(-50)),
            Value::Str("".into()),
            Value::Bool(false),
            Value::Date(joinstudy_storage::types::Date(0)),
        ]);
        let batch = b.flush().unwrap();

        let mut heap = StrHeap::new();
        let mut data = vec![0u8; layout.stride() * 2];
        let stride = layout.stride();
        for r in 0..2 {
            layout.encode_row(
                &mut data[r * stride..r * stride + layout.width()],
                0xDEAD + r as u64,
                &batch,
                r,
                &mut heap,
                0,
            );
        }
        let heaps = vec![heap];
        let offsets = vec![0, stride];

        assert_eq!(layout.read_hash(&data[0..]), 0xDEAD);
        assert_eq!(layout.read_hash(&data[stride..]), 0xDEAE);

        for (c, &t) in types.iter().enumerate() {
            let mut out = ColumnData::new(t);
            layout.decode_column_into(&data, &offsets, c, &heaps, &mut out);
            assert_eq!(out.value(0), batch.value(c, 0), "col {c} row 0");
            assert_eq!(out.value(1), batch.value(c, 1), "col {c} row 1");
        }
    }

    #[test]
    fn keys_equal_across_layouts() {
        let la = RowLayout::new(&[DataType::Int64, DataType::Str], false);
        let lb = RowLayout::new(&[DataType::Str, DataType::Int64, DataType::Int32], false);

        let mut ba = joinstudy_exec::batch::BatchBuilder::new(vec![DataType::Int64, DataType::Str]);
        ba.push_row(&[Value::Int64(42), Value::Str("k".into())]);
        let ba = ba.flush().unwrap();
        let mut bb = joinstudy_exec::batch::BatchBuilder::new(vec![
            DataType::Str,
            DataType::Int64,
            DataType::Int32,
        ]);
        bb.push_row(&[Value::Str("k".into()), Value::Int64(42), Value::Int32(0)]);
        bb.push_row(&[Value::Str("k".into()), Value::Int64(43), Value::Int32(0)]);
        let bb = bb.flush().unwrap();

        let mut ha = StrHeap::new();
        let mut hb = StrHeap::new();
        let mut rowa = vec![0u8; la.width()];
        la.encode_row(&mut rowa, 1, &ba, 0, &mut ha, 0);
        let mut rowb0 = vec![0u8; lb.width()];
        let mut rowb1 = vec![0u8; lb.width()];
        lb.encode_row(&mut rowb0, 1, &bb, 0, &mut hb, 0);
        lb.encode_row(&mut rowb1, 1, &bb, 1, &mut hb, 0);

        let has = vec![ha];
        let hbs = vec![hb];
        // (42,"k") == (42,"k") matching columns (1,0) of b → (0,1) order.
        assert!(la.keys_equal(&rowa, &[0, 1], &has, &lb, &rowb0, &[1, 0], &hbs));
        assert!(!la.keys_equal(&rowa, &[0, 1], &has, &lb, &rowb1, &[1, 0], &hbs));
    }

    #[test]
    fn mixed_width_integer_keys_compare() {
        let la = RowLayout::new(&[DataType::Int32], false);
        let lb = RowLayout::new(&[DataType::Int64], false);
        let mut ba = joinstudy_exec::batch::BatchBuilder::new(vec![DataType::Int32]);
        ba.push_row(&[Value::Int32(-5)]);
        let ba = ba.flush().unwrap();
        let mut bb = joinstudy_exec::batch::BatchBuilder::new(vec![DataType::Int64]);
        bb.push_row(&[Value::Int64(-5)]);
        let bb = bb.flush().unwrap();
        let (mut ha, mut hb) = (StrHeap::new(), StrHeap::new());
        let mut ra = vec![0u8; la.width()];
        let mut rb = vec![0u8; lb.width()];
        la.encode_row(&mut ra, 0, &ba, 0, &mut ha, 0);
        lb.encode_row(&mut rb, 0, &bb, 0, &mut hb, 0);
        assert!(la.keys_equal(&ra, &[0], &[ha], &lb, &rb, &[0], &[hb]));
    }

    #[test]
    fn str_heap_pack_unpack() {
        let mut h = StrHeap::new();
        let r1 = h.push(3, "hello");
        let r2 = h.push(3, "");
        let mut heaps = vec![
            StrHeap::new(),
            StrHeap::new(),
            StrHeap::new(),
            StrHeap::new(),
        ];
        heaps[3] = h;
        assert_eq!(resolve_str(&heaps, r1), "hello");
        assert_eq!(resolve_str(&heaps, r2), "");
    }
}
