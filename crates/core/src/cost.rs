//! The Table-4 regime cost model: "to partition, or not to partition",
//! answered at plan time.
//!
//! The paper's synthesis (Table 4) reduces the BHJ/RJ/BRJ choice to a few
//! workload characteristics: does the build-side hash table fit in the
//! last-level cache, how many probe tuples amortize each partitioned build
//! tuple, and how many probe tuples the Bloom reducer can drop. This module
//! turns that decision surface into an explicit, calibrated cost model:
//!
//! * [`Calibration`] holds per-tuple costs (nanoseconds) for every
//!   primitive the three joins are made of, plus the LLC size. Defaults are
//!   documented below; the `calibrate` bench bin measures the host once and
//!   writes `results/calibration.json`, which [`Calibration::global`] picks
//!   up automatically.
//! * [`CostModel::decide`] evaluates the three contenders on a
//!   [`JoinEstimate`] and returns a [`Decision`] carrying the chosen
//!   algorithm, all three modeled costs, and a human-readable "why" that
//!   EXPLAIN ANALYZE surfaces per join node.
//!
//! # Model
//!
//! Let `B`/`P` be build/probe cardinalities, `w_b`/`w_p` the materialized
//! row widths, `H = B · (w_b + HT_OVERHEAD)` the hash-table footprint and
//! `m(H) ∈ [0, 1]` the cache-miss ramp (0 while `H ≤ LLC`, saturating at
//! `ramp_llc_multiple` LLCs — the paper's Figure 7 shape, piecewise linear
//! so costs stay piecewise linear in `B`):
//!
//! ```text
//! BHJ = B·lerp(build_hit, build_miss, m) + P·lerp(probe_hit, probe_miss, m)
//! RJ  = part(B, w_b) + part(P, w_p) + B·rh_build + P·rh_probe
//! BRJ = part(B, w_b) + B·(rh_build + bloom_build) + P·bloom_probe
//!       + σ·(part(P, w_p) + P·rh_probe)          (σ = Bloom selectivity)
//! part(n, w) = n · partition_pass · passes · max(w/16, 0.5)
//! ```
//!
//! Partitioning is bandwidth-bound, so its per-tuple cost scales with row
//! width (16 B = the Workload-A tuple the constants are calibrated on);
//! hash-table operations are latency-bound, so they do not.
//!
//! # Monotonicity
//!
//! [`Calibration::sanitize`] enforces `build_miss ≥ passes·partition_pass +
//! rh_build` (an out-of-cache table insert costs at least one partitioning
//! write plus a cache-resident insert — this holds on every machine the
//! paper or we measured). Under that invariant the BHJ-vs-RJ cost gap is
//! piecewise linear in `B` with slopes ordered so the *partition question*
//! flips at most once as the build side grows across the LLC boundary:
//! BHJ below the crossover, partitioned above, never back. The
//! `cost_props` property test pins this.

use crate::plan::JoinAlgo;
use std::fmt;
use std::sync::OnceLock;

/// Bytes of hash-table overhead per build tuple (chain pointer + hash tag
/// + directory amortization) on top of the materialized row.
pub const HT_OVERHEAD_BYTES: f64 = 16.0;

/// Reference tuple width (bytes) the partitioning constants are calibrated
/// on (Workload A: 8 B key + 8 B payload).
pub const REF_TUPLE_BYTES: f64 = 16.0;

/// Prefer the BHJ unless a partitioned plan is predicted to win by more
/// than this relative margin. The paper's bottom line is that partitioning
/// pays off only in a narrow regime (1 of 59 TPC-H joins); when the model
/// says "roughly a tie", the robust choice is the one that cannot blow up
/// on skew or mis-estimated cardinalities.
pub const BHJ_PREFERENCE_MARGIN: f64 = 0.10;

/// Per-tuple primitive costs in nanoseconds plus the cache geometry —
/// everything [`CostModel`] needs. Field-by-field defaults (documented
/// here, used when no `results/calibration.json` exists) are conservative
/// figures for a ~3 GHz x86 with a 16–32 MiB LLC.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// Last-level cache size in bytes.
    pub llc_bytes: f64,
    /// BHJ hash-table insert, table cache-resident. Default 4 ns.
    pub bhj_build_hit: f64,
    /// BHJ hash-table insert, table ≫ LLC (miss-bound). Default 28 ns.
    pub bhj_build_miss: f64,
    /// BHJ probe, table cache-resident. Default 3 ns.
    pub bhj_probe_hit: f64,
    /// BHJ probe, table ≫ LLC. Default 22 ns.
    pub bhj_probe_miss: f64,
    /// One radix-partitioning pass over one 16-byte tuple (SWWCB write +
    /// histogram share). Default 3.5 ns.
    pub partition_pass: f64,
    /// Number of partitioning passes (this engine always runs two).
    pub partition_passes: f64,
    /// Partition-local (cache-resident) robin-hood build insert. Default 3 ns.
    pub rh_build: f64,
    /// Partition-local robin-hood probe. Default 2.5 ns.
    pub rh_probe: f64,
    /// Bloom-filter insert per build tuple. Default 1.5 ns.
    pub bloom_build: f64,
    /// Bloom-filter probe per probe tuple. Default 1.2 ns.
    pub bloom_probe: f64,
    /// Width of the miss ramp, in multiples of the LLC: `m` saturates at
    /// `H = (1 + ramp) · LLC`. Default 4.
    pub ramp_llc_multiple: f64,
    /// Sequential spill I/O cost per byte (one direction) for the hybrid
    /// join's out-of-core regime term. Default 0.5 ns (≈ 2 GB/s, a
    /// buffered-SSD figure).
    pub spill_ns_per_byte: f64,
    /// Where these constants came from (`"default"`, a file path, or
    /// `"measured"` for freshly calibrated values).
    pub source: String,
}

impl Default for Calibration {
    fn default() -> Calibration {
        Calibration {
            llc_bytes: detect_llc_bytes() as f64,
            ..Calibration::default_constants()
        }
    }
}

/// Best-effort LLC size in bytes, 16 MiB when sysfs is unreadable (the
/// same fallback `bench::hw` uses; duplicated here because `core` cannot
/// depend on the bench crate).
pub fn detect_llc_bytes() -> usize {
    for idx in 0..6 {
        let base = format!("/sys/devices/system/cpu/cpu0/cache/index{idx}");
        let level: Option<u32> = std::fs::read_to_string(format!("{base}/level"))
            .ok()
            .and_then(|s| s.trim().parse().ok());
        if level == Some(3) {
            if let Ok(raw) = std::fs::read_to_string(format!("{base}/size")) {
                let raw = raw.trim();
                let kib: Option<usize> = if let Some(k) = raw.strip_suffix('K') {
                    k.parse().ok()
                } else if let Some(m) = raw.strip_suffix('M') {
                    m.parse::<usize>().ok().map(|v| v * 1024)
                } else {
                    raw.parse().ok()
                };
                if let Some(kib) = kib {
                    return kib * 1024;
                }
            }
        }
    }
    16 * 1024 * 1024
}

impl Calibration {
    /// Clamp the constants into the physically sensible region and enforce
    /// the monotonicity invariant (see module docs): costs positive,
    /// `miss ≥ hit`, an out-of-cache hash-table operation costs at least a
    /// full partitioning schedule plus the cache-resident equivalent, and
    /// a Bloom probe costs at least a cache-resident hash-table probe.
    /// Returns `self` for chaining.
    pub fn sanitize(mut self) -> Calibration {
        let pos = |v: f64, fallback: f64| {
            if v.is_finite() && v > 0.0 {
                v
            } else {
                fallback
            }
        };
        let d = Calibration::default_constants();
        self.llc_bytes = pos(self.llc_bytes, d.llc_bytes);
        self.bhj_build_hit = pos(self.bhj_build_hit, d.bhj_build_hit);
        self.bhj_probe_hit = pos(self.bhj_probe_hit, d.bhj_probe_hit);
        self.partition_pass = pos(self.partition_pass, d.partition_pass);
        self.partition_passes = pos(self.partition_passes, d.partition_passes).max(1.0);
        self.rh_build = pos(self.rh_build, d.rh_build);
        self.rh_probe = pos(self.rh_probe, d.rh_probe);
        self.bloom_build = pos(self.bloom_build, d.bloom_build);
        // A Bloom probe is a hash plus a cache-line load plus the engine's
        // per-tuple overhead — it cannot beat a *cache-resident* hash-table
        // probe, which is the same operations plus a key compare. Without
        // this floor a calibration measured in the out-of-cache regime
        // (where `bhj_probe_hit` absorbs the host's per-tuple floor but
        // `bloom_probe` is solved residually) makes the model pick the BRJ
        // for cache-resident joins, where filtering cannot pay: the only
        // thing the reducer skips there is work that was already cheap.
        self.bloom_probe = pos(self.bloom_probe, d.bloom_probe).max(self.bhj_probe_hit);
        self.ramp_llc_multiple = pos(self.ramp_llc_multiple, d.ramp_llc_multiple).max(0.25);
        self.spill_ns_per_byte = pos(self.spill_ns_per_byte, d.spill_ns_per_byte);
        let sched = self.partition_passes * self.partition_pass;
        self.bhj_build_miss = pos(self.bhj_build_miss, d.bhj_build_miss)
            .max(self.bhj_build_hit)
            .max(sched + self.rh_build);
        self.bhj_probe_miss = pos(self.bhj_probe_miss, d.bhj_probe_miss)
            .max(self.bhj_probe_hit)
            .max(sched + self.rh_probe);
        self
    }

    /// The default constants with a fixed 16 MiB LLC (no sysfs probing) —
    /// deterministic, for tests and for `sanitize` fallbacks.
    pub fn default_constants() -> Calibration {
        Calibration {
            llc_bytes: (16 * 1024 * 1024) as f64,
            bhj_build_hit: 4.0,
            bhj_build_miss: 28.0,
            bhj_probe_hit: 3.0,
            bhj_probe_miss: 22.0,
            partition_pass: 3.5,
            partition_passes: 2.0,
            rh_build: 3.0,
            rh_probe: 2.5,
            bloom_build: 1.5,
            bloom_probe: 1.2,
            ramp_llc_multiple: 4.0,
            spill_ns_per_byte: 0.5,
            source: "default".into(),
        }
    }

    /// Serialize as a flat JSON object (the `results/calibration.json`
    /// format the `calibrate` bin writes).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        let mut field = |name: &str, v: f64| {
            s.push_str(&format!("  \"{name}\": {v},\n"));
        };
        field("llc_bytes", self.llc_bytes);
        field("bhj_build_hit", self.bhj_build_hit);
        field("bhj_build_miss", self.bhj_build_miss);
        field("bhj_probe_hit", self.bhj_probe_hit);
        field("bhj_probe_miss", self.bhj_probe_miss);
        field("partition_pass", self.partition_pass);
        field("partition_passes", self.partition_passes);
        field("rh_build", self.rh_build);
        field("rh_probe", self.rh_probe);
        field("bloom_build", self.bloom_build);
        field("bloom_probe", self.bloom_probe);
        field("ramp_llc_multiple", self.ramp_llc_multiple);
        field("spill_ns_per_byte", self.spill_ns_per_byte);
        s.push_str(&format!("  \"source\": \"{}\"\n}}\n", self.source));
        s
    }

    /// Parse the flat JSON object written by [`Calibration::to_json`].
    /// Unknown keys are ignored; missing keys keep their defaults; the
    /// result is sanitized. Errors only on malformed JSON.
    pub fn from_json(text: &str) -> Result<Calibration, String> {
        let mut cal = Calibration::default();
        for (key, value) in parse_flat_object(text)? {
            let num = || -> Result<f64, String> {
                value
                    .trim()
                    .parse::<f64>()
                    .map_err(|_| format!("calibration key {key:?}: not a number: {value:?}"))
            };
            match key.as_str() {
                "llc_bytes" => cal.llc_bytes = num()?,
                "bhj_build_hit" => cal.bhj_build_hit = num()?,
                "bhj_build_miss" => cal.bhj_build_miss = num()?,
                "bhj_probe_hit" => cal.bhj_probe_hit = num()?,
                "bhj_probe_miss" => cal.bhj_probe_miss = num()?,
                "partition_pass" => cal.partition_pass = num()?,
                "partition_passes" => cal.partition_passes = num()?,
                "rh_build" => cal.rh_build = num()?,
                "rh_probe" => cal.rh_probe = num()?,
                "bloom_build" => cal.bloom_build = num()?,
                "bloom_probe" => cal.bloom_probe = num()?,
                "ramp_llc_multiple" => cal.ramp_llc_multiple = num()?,
                "spill_ns_per_byte" => cal.spill_ns_per_byte = num()?,
                "source" => cal.source = value,
                _ => {}
            }
        }
        Ok(cal.sanitize())
    }

    /// Load a calibration file, or `None` when the file does not exist.
    pub fn load(path: &std::path::Path) -> Option<Calibration> {
        let text = std::fs::read_to_string(path).ok()?;
        match Calibration::from_json(&text) {
            Ok(mut cal) => {
                cal.source = path.display().to_string();
                Some(cal)
            }
            Err(_) => None,
        }
    }

    /// The process-wide calibration the adaptive planner uses: the file
    /// named by `JOINSTUDY_CALIBRATION`, else `results/calibration.json`
    /// under the current directory, else the documented defaults with the
    /// detected LLC size. Resolved once per process.
    pub fn global() -> &'static Calibration {
        static GLOBAL: OnceLock<Calibration> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            if let Ok(path) = std::env::var("JOINSTUDY_CALIBRATION") {
                if let Some(cal) = Calibration::load(std::path::Path::new(&path)) {
                    return cal.sanitize();
                }
            }
            Calibration::load(std::path::Path::new("results/calibration.json"))
                .map(Calibration::sanitize)
                .unwrap_or_default()
        })
    }
}

/// Minimal flat-JSON-object parser: `{"key": value, ...}` where values are
/// numbers or strings. Sufficient for the calibration file; the full JSON
/// machinery lives in `bench::regress`, which `core` cannot depend on.
fn parse_flat_object(text: &str) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    let mut chars = text.chars().peekable();
    let skip_ws = |chars: &mut std::iter::Peekable<std::str::Chars>| {
        while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
            chars.next();
        }
    };
    let parse_string =
        |chars: &mut std::iter::Peekable<std::str::Chars>| -> Result<String, String> {
            if chars.next() != Some('"') {
                return Err("expected '\"'".into());
            }
            let mut s = String::new();
            loop {
                match chars.next() {
                    Some('"') => return Ok(s),
                    Some('\\') => match chars.next() {
                        Some(c) => s.push(c),
                        None => return Err("unterminated escape".into()),
                    },
                    Some(c) => s.push(c),
                    None => return Err("unterminated string".into()),
                }
            }
        };
    skip_ws(&mut chars);
    if chars.next() != Some('{') {
        return Err("calibration file: expected a JSON object".into());
    }
    loop {
        skip_ws(&mut chars);
        match chars.peek() {
            Some('}') => break,
            Some('"') => {}
            other => return Err(format!("expected key or '}}', got {other:?}")),
        }
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next() != Some(':') {
            return Err(format!("key {key:?}: expected ':'"));
        }
        skip_ws(&mut chars);
        let value = if chars.peek() == Some(&'"') {
            parse_string(&mut chars)?
        } else {
            let mut v = String::new();
            while matches!(chars.peek(), Some(c) if !c.is_whitespace() && *c != ',' && *c != '}') {
                v.push(chars.next().unwrap());
            }
            v
        };
        out.push((key, value));
        skip_ws(&mut chars);
        if !matches!(chars.peek(), Some(',')) {
            skip_ws(&mut chars);
            match chars.peek() {
                Some('}') => break,
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
        chars.next();
    }
    Ok(out)
}

/// What the planner believes about one join before running it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinEstimate {
    /// Estimated build-side cardinality.
    pub build_rows: f64,
    /// Estimated probe-side cardinality.
    pub probe_rows: f64,
    /// Materialized build row width in bytes.
    pub build_width: f64,
    /// Materialized probe row width in bytes.
    pub probe_width: f64,
    /// Estimated fraction of probe tuples that survive the Bloom reducer
    /// (1.0 = the filter drops nothing).
    pub bloom_selectivity: f64,
    /// Whether the BRJ is admissible for this join variant (the Bloom
    /// reducer may only drop probe tuples when unmatched probe tuples
    /// leave the join anyway).
    pub allow_bloom: bool,
}

impl JoinEstimate {
    pub fn new(build_rows: f64, probe_rows: f64) -> JoinEstimate {
        JoinEstimate {
            build_rows: build_rows.max(1.0),
            probe_rows: probe_rows.max(1.0),
            build_width: REF_TUPLE_BYTES,
            probe_width: REF_TUPLE_BYTES,
            bloom_selectivity: 1.0,
            allow_bloom: true,
        }
    }
}

/// The three modeled costs, in nanoseconds of single-threaded work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostBreakdown {
    pub bhj: f64,
    pub rj: f64,
    pub brj: f64,
}

impl CostBreakdown {
    pub fn of(&self, algo: JoinAlgo) -> f64 {
        match algo {
            JoinAlgo::Bhj => self.bhj,
            JoinAlgo::Rj => self.rj,
            JoinAlgo::Brj => self.brj,
            JoinAlgo::Adaptive | JoinAlgo::Hybrid => f64::INFINITY,
        }
    }
}

/// The outcome of one plan-time adaptive choice.
#[derive(Debug, Clone)]
pub struct Decision {
    /// The algorithm the join will run with (never `Adaptive`).
    pub algo: JoinAlgo,
    /// All three modeled costs, for EXPLAIN ANALYZE and regret analysis.
    pub costs: CostBreakdown,
    /// The estimate the decision was made from.
    pub estimate: JoinEstimate,
    /// Modeled hash-table footprint of the BHJ build side, in bytes.
    pub ht_bytes: f64,
    /// Whether that footprint fits the calibrated LLC.
    pub fits_llc: bool,
    /// Human-readable decision rationale (shown by EXPLAIN ANALYZE).
    pub reason: String,
}

/// A calibrated instance of the Table-4 regime model.
#[derive(Debug, Clone)]
pub struct CostModel {
    cal: Calibration,
}

impl CostModel {
    pub fn new(cal: Calibration) -> CostModel {
        CostModel {
            cal: cal.sanitize(),
        }
    }

    /// The model backed by [`Calibration::global`].
    pub fn global() -> CostModel {
        CostModel::new(Calibration::global().clone())
    }

    pub fn calibration(&self) -> &Calibration {
        &self.cal
    }

    /// Modeled BHJ hash-table footprint for a build side.
    pub fn ht_bytes(&self, build_rows: f64, build_width: f64) -> f64 {
        build_rows.max(0.0) * (build_width.max(8.0) + HT_OVERHEAD_BYTES)
    }

    /// Cache-miss ramp `m ∈ [0, 1]` for a hash table of `bytes`.
    pub fn miss_ratio(&self, bytes: f64) -> f64 {
        if bytes <= self.cal.llc_bytes {
            0.0
        } else {
            ((bytes - self.cal.llc_bytes) / (self.cal.ramp_llc_multiple * self.cal.llc_bytes))
                .min(1.0)
        }
    }

    fn part_cost(&self, rows: f64, width: f64) -> f64 {
        rows * self.cal.partition_pass
            * self.cal.partition_passes
            * (width / REF_TUPLE_BYTES).max(0.5)
    }

    /// Modeled BHJ cost (ns).
    pub fn bhj_cost(&self, e: &JoinEstimate) -> f64 {
        let m = self.miss_ratio(self.ht_bytes(e.build_rows, e.build_width));
        let lerp = |hit: f64, miss: f64| hit + (miss - hit) * m;
        e.build_rows * lerp(self.cal.bhj_build_hit, self.cal.bhj_build_miss)
            + e.probe_rows * lerp(self.cal.bhj_probe_hit, self.cal.bhj_probe_miss)
    }

    /// Modeled RJ cost (ns).
    pub fn rj_cost(&self, e: &JoinEstimate) -> f64 {
        self.part_cost(e.build_rows, e.build_width)
            + self.part_cost(e.probe_rows, e.probe_width)
            + e.build_rows * self.cal.rh_build
            + e.probe_rows * self.cal.rh_probe
    }

    /// Modeled BRJ cost (ns). The Bloom filter is built during the build
    /// side's second pass and probed *before* the probe side is
    /// materialized, so only the surviving `σ·P` tuples pay partitioning.
    pub fn brj_cost(&self, e: &JoinEstimate) -> f64 {
        let sigma = e.bloom_selectivity.clamp(0.0, 1.0);
        self.part_cost(e.build_rows, e.build_width)
            + e.build_rows * (self.cal.rh_build + self.cal.bloom_build)
            + e.probe_rows * self.cal.bloom_probe
            + sigma
                * (self.part_cost(e.probe_rows, e.probe_width) + e.probe_rows * self.cal.rh_probe)
    }

    /// The hybrid join's I/O regime term (ns): the fraction of both sides
    /// that cannot stay memory-resident under `budget` is written to a
    /// spill run once and read back once.
    pub fn hybrid_io_cost(&self, e: &JoinEstimate, budget: f64) -> f64 {
        let build_bytes = e.build_rows * e.build_width.max(8.0);
        let probe_bytes = e.probe_rows * e.probe_width.max(8.0);
        let footprint = self.ht_bytes(e.build_rows, e.build_width);
        if footprint <= 0.0 {
            return 0.0;
        }
        let spilled_frac = 1.0 - (budget / footprint).clamp(0.0, 1.0);
        2.0 * spilled_frac * (build_bytes + probe_bytes) * self.cal.spill_ns_per_byte
    }

    /// Memory-budget override on a plan-time decision: when the modeled
    /// build-side hash table cannot fit the budget, every in-memory
    /// contender is doomed to degrade at runtime, so the decision is
    /// rewritten to the out-of-core hybrid join ([`JoinAlgo::Hybrid`]) up
    /// front, with the spill I/O regime term in the rationale.
    pub fn apply_budget(&self, d: &mut Decision, budget: Option<usize>) {
        let Some(budget) = budget else { return };
        let budget = budget as f64;
        if d.ht_bytes <= budget {
            return;
        }
        let io = self.hybrid_io_cost(&d.estimate, budget);
        d.algo = JoinAlgo::Hybrid;
        d.reason = format!(
            "ht {} exceeds the {} memory budget: out-of-core HHJ (modeled spill I/O {:.2} ms)",
            fmt_bytes(d.ht_bytes),
            fmt_bytes(budget),
            io / 1e6,
        );
    }

    /// All three costs at once.
    pub fn costs(&self, e: &JoinEstimate) -> CostBreakdown {
        CostBreakdown {
            bhj: self.bhj_cost(e),
            rj: self.rj_cost(e),
            brj: if e.allow_bloom {
                self.brj_cost(e)
            } else {
                f64::INFINITY
            },
        }
    }

    /// Answer the join question for one estimated join. Picks the modeled
    /// minimum, except that a partitioned plan must beat the BHJ by more
    /// than [`BHJ_PREFERENCE_MARGIN`] (robustness tie-break — the BHJ
    /// cannot blow up on skew or bad estimates).
    pub fn decide(&self, e: &JoinEstimate) -> Decision {
        let costs = self.costs(e);
        let ht = self.ht_bytes(e.build_rows, e.build_width);
        let fits = ht <= self.cal.llc_bytes;
        let best_radix = if costs.brj < costs.rj {
            JoinAlgo::Brj
        } else {
            JoinAlgo::Rj
        };
        let radix_cost = costs.of(best_radix);
        let ratio = e.probe_rows / e.build_rows.max(1.0);
        let (algo, reason) = if radix_cost < costs.bhj * (1.0 - BHJ_PREFERENCE_MARGIN) {
            let why = format!(
                "ht {} {} LLC {}, probe/build {:.1}, σ≈{:.2}: partitioning predicted {:.0}% faster",
                fmt_bytes(ht),
                if fits { "fits" } else { "exceeds" },
                fmt_bytes(self.cal.llc_bytes),
                ratio,
                e.bloom_selectivity,
                (1.0 - radix_cost / costs.bhj) * 100.0,
            );
            (best_radix, why)
        } else {
            let why = if fits {
                format!(
                    "ht {} fits LLC {}: BHJ probe stays cache-resident",
                    fmt_bytes(ht),
                    fmt_bytes(self.cal.llc_bytes),
                )
            } else if radix_cost < costs.bhj {
                format!(
                    "partitioning predicted only {:.0}% faster (< {:.0}% margin): BHJ is the robust choice",
                    (1.0 - radix_cost / costs.bhj) * 100.0,
                    BHJ_PREFERENCE_MARGIN * 100.0,
                )
            } else {
                format!(
                    "ht {} exceeds LLC but probe/build {:.1} does not amortize two partition passes",
                    fmt_bytes(ht),
                    ratio,
                )
            };
            (JoinAlgo::Bhj, why)
        };
        Decision {
            algo,
            costs,
            estimate: *e,
            ht_bytes: ht,
            fits_llc: fits,
            reason,
        }
    }
}

/// `1.5 KiB` / `3.2 MiB`-style rendering for decision reasons.
fn fmt_bytes(b: f64) -> String {
    if b >= 1024.0 * 1024.0 * 1024.0 {
        format!("{:.1} GiB", b / (1024.0 * 1024.0 * 1024.0))
    } else if b >= 1024.0 * 1024.0 {
        format!("{:.1} MiB", b / (1024.0 * 1024.0))
    } else if b >= 1024.0 {
        format!("{:.1} KiB", b / 1024.0)
    } else {
        format!("{b:.0} B")
    }
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (bhj {:.2} ms, rj {:.2} ms, brj {:.2} ms): {}",
            self.algo.name(),
            self.costs.bhj / 1e6,
            self.costs.rj / 1e6,
            if self.costs.brj.is_finite() {
                self.costs.brj / 1e6
            } else {
                f64::NAN
            },
            self.reason
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::new(Calibration::default_constants())
    }

    #[test]
    fn small_build_picks_bhj() {
        let m = model();
        // 10k × 16 B rows → 320 KB table, far inside a 16 MiB LLC.
        let d = m.decide(&JoinEstimate::new(10_000.0, 1_000_000.0));
        assert_eq!(d.algo, JoinAlgo::Bhj, "{d}");
        assert!(d.fits_llc);
        assert!(d.reason.contains("fits LLC"), "{}", d.reason);
    }

    #[test]
    fn huge_build_with_big_probe_partition_pays() {
        let m = model();
        // 32M build rows → 1 GiB hash table, 16× probe: the paper's narrow
        // beneficial regime.
        let d = m.decide(&JoinEstimate::new(32e6, 512e6));
        assert!(
            matches!(d.algo, JoinAlgo::Rj | JoinAlgo::Brj),
            "expected a partitioned choice: {d}"
        );
        assert!(!d.fits_llc);
    }

    #[test]
    fn selective_bloom_prefers_brj_over_rj() {
        let m = model();
        let mut e = JoinEstimate::new(32e6, 512e6);
        e.bloom_selectivity = 0.1;
        let c = m.costs(&e);
        assert!(c.brj < c.rj, "σ=0.1 must favor the Bloom reducer: {c:?}");
    }

    #[test]
    fn bloom_disallowed_never_picks_brj() {
        let m = model();
        let mut e = JoinEstimate::new(32e6, 512e6);
        e.bloom_selectivity = 0.05;
        e.allow_bloom = false;
        let d = m.decide(&e);
        assert_ne!(d.algo, JoinAlgo::Brj, "{d}");
    }

    #[test]
    fn chosen_algo_is_cost_minimal_or_margin_bhj() {
        let m = model();
        for (b, p) in [
            (1e3, 1e4),
            (1e5, 1e6),
            (1e6, 4e6),
            (1e7, 1e8),
            (5e7, 5e7),
            (1e8, 1e9),
        ] {
            let d = m.decide(&JoinEstimate::new(b, p));
            let min = d.costs.bhj.min(d.costs.rj).min(d.costs.brj);
            let chosen = d.costs.of(d.algo);
            assert!(
                chosen <= min / (1.0 - BHJ_PREFERENCE_MARGIN) + 1e-9,
                "B={b} P={p}: chose {} at {chosen}, min {min}",
                d.algo.name()
            );
        }
    }

    #[test]
    fn json_round_trip() {
        let mut cal = Calibration::default_constants();
        cal.bhj_probe_miss = 31.25;
        cal.source = "measured".into();
        let parsed = Calibration::from_json(&cal.to_json()).unwrap();
        assert_eq!(parsed.bhj_probe_miss, 31.25);
        assert_eq!(parsed.source, "measured");
        assert_eq!(parsed.llc_bytes, cal.llc_bytes);
    }

    #[test]
    fn from_json_rejects_garbage_and_ignores_unknown_keys() {
        assert!(Calibration::from_json("not json").is_err());
        assert!(Calibration::from_json("{\"llc_bytes\": \"x\"}").is_err());
        let cal = Calibration::from_json("{\"future_knob\": 7, \"rh_probe\": 2.0}").unwrap();
        assert_eq!(cal.rh_probe, 2.0);
    }

    #[test]
    fn sanitize_enforces_monotonicity_floor() {
        let mut cal = Calibration::default_constants();
        cal.bhj_build_miss = 0.1; // absurd: misses cheaper than partitioning
        cal.bhj_probe_miss = -3.0;
        let cal = cal.sanitize();
        let sched = cal.partition_passes * cal.partition_pass;
        assert!(cal.bhj_build_miss >= sched + cal.rh_build);
        assert!(cal.bhj_probe_miss >= sched + cal.rh_probe);
        // A Bloom probe is floored at a cache-resident hash-table probe,
        // including for the default constants themselves.
        assert!(cal.bloom_probe >= cal.bhj_probe_hit);
    }
}
