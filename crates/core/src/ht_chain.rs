//! Global chaining hash table with tagged pointers — the heart of the
//! buffered non-partitioned hash join (BHJ).
//!
//! Build tuples are materialized once into per-worker [`RowArena`]s (stable
//! addresses, no relocation), then linked into a shared bucket array with
//! lock-free CAS inserts. Each bucket head carries a 16-bit *tag* — a tiny
//! Bloom filter ORed from one-hot bits of every inserted hash (Leis et al.,
//! SIGMOD'14). A probe whose tag bit is absent skips the pointer chase
//! entirely; this is the BHJ's built-in semi-join reducer the paper refers
//! to (§5.1.1 "a semi-join reducer based on tagged pointers").
//!
//! Row format (see [`crate::row::RowLayout`] with `with_header = true`):
//! `[next+flag: u64][hash: u64][columns...]`. Bit 63 of the header doubles
//! as the "matched" flag needed by build-side-preserving join variants
//! (right-semi/right-anti, e.g. TPC-H Q22's anti join).

use crate::hash::pointer_tag;
use std::sync::atomic::{AtomicU64, Ordering};

/// Low 48 bits: the actual row address (x86-64 canonical user pointers).
pub const PTR_MASK: u64 = 0x0000_FFFF_FFFF_FFFF;
/// High 16 bits of a bucket head: the tag filter.
pub const TAG_MASK: u64 = !PTR_MASK;
/// Bit 63 of a row header: set when a probe tuple matched this build tuple.
pub const MATCH_FLAG: u64 = 1 << 63;

/// A paged allocator handing out fixed-stride row slots with stable
/// addresses. One arena per build worker; arenas are kept alive by the join
/// state for as long as any pointer into them exists.
pub struct RowArena {
    pages: Vec<Vec<u64>>,
    stride: usize,
    rows_per_page: usize,
    /// Rows allocated in the last page.
    last_used: usize,
    rows: usize,
}

/// Target page size. Big enough to amortize allocation, small enough that a
/// worker's working set stays reasonable.
const ARENA_PAGE_BYTES: usize = 256 * 1024;

impl RowArena {
    pub fn new(stride: usize) -> RowArena {
        assert!(
            stride > 0 && stride.is_multiple_of(8),
            "arena stride must be a multiple of 8"
        );
        let rows_per_page = (ARENA_PAGE_BYTES / stride).max(1);
        RowArena {
            pages: Vec::new(),
            stride,
            rows_per_page,
            last_used: 0,
            rows: 0,
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Total bytes occupied by allocated rows.
    pub fn byte_size(&self) -> usize {
        self.rows * self.stride
    }

    /// Allocate the next row slot and return it for initialization.
    pub fn alloc_row(&mut self) -> &mut [u8] {
        if self.pages.is_empty() || self.last_used == self.rows_per_page {
            self.pages
                .push(vec![0u64; self.rows_per_page * self.stride / 8]);
            self.last_used = 0;
        }
        let page = self.pages.last_mut().unwrap();
        let off = self.last_used * self.stride;
        self.last_used += 1;
        self.rows += 1;
        unsafe {
            std::slice::from_raw_parts_mut(page.as_mut_ptr().cast::<u8>().add(off), self.stride)
        }
    }

    /// Raw pointers to every allocated row. The pointers remain valid for
    /// the arena's lifetime (pages never move or shrink).
    pub fn row_ptrs(&self) -> Vec<*const u8> {
        let mut out = Vec::with_capacity(self.rows);
        for (pi, page) in self.pages.iter().enumerate() {
            let in_page = if pi + 1 == self.pages.len() {
                self.last_used
            } else {
                self.rows_per_page
            };
            let base = page.as_ptr().cast::<u8>();
            for r in 0..in_page {
                out.push(unsafe { base.add(r * self.stride) });
            }
        }
        out
    }
}

// Row pointers are shared read-only across probe workers; the arena itself
// is only mutated during the single-owner build phase.
unsafe impl Send for RowArena {}
unsafe impl Sync for RowArena {}

/// The shared bucket array.
pub struct ChainTable {
    buckets: Vec<AtomicU64>,
    mask: u64,
}

impl ChainTable {
    /// Allocate for `count` rows: one bucket per row, rounded up to a power
    /// of two (chained, so load factor 1 is fine).
    pub fn new(count: usize) -> ChainTable {
        let n = count.max(16).next_power_of_two();
        let mut buckets = Vec::with_capacity(n);
        buckets.resize_with(n, || AtomicU64::new(0));
        ChainTable {
            buckets,
            mask: (n - 1) as u64,
        }
    }

    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Bucket index from the hash's low bits (the BHJ never partitions, so
    /// no bit range is reserved).
    #[inline]
    fn bucket(&self, hash: u64) -> &AtomicU64 {
        &self.buckets[(hash & self.mask) as usize]
    }

    /// Address of the bucket word (for software prefetching).
    #[inline]
    pub fn bucket_ptr(&self, hash: u64) -> *const AtomicU64 {
        self.bucket(hash)
    }

    /// Link `row` (whose header slot is at offset 0) into the table.
    /// Lock-free; safe to call from many workers concurrently.
    ///
    /// # Safety
    /// `row` must point to a live row with a writable 8-byte header at
    /// offset 0, not concurrently accessed except through this table.
    pub unsafe fn insert(&self, row: *mut u8, hash: u64) {
        debug_assert_eq!(row as u64 & !PTR_MASK, 0, "non-canonical row pointer");
        let bucket = self.bucket(hash);
        let tag = pointer_tag(hash);
        let mut old = bucket.load(Ordering::Relaxed);
        loop {
            // Store the previous head as this row's next pointer.
            let next = old & PTR_MASK;
            std::ptr::write(row.cast::<u64>(), next);
            let new = (row as u64) | (old & TAG_MASK) | tag;
            match bucket.compare_exchange_weak(old, new, Ordering::Release, Ordering::Relaxed) {
                Ok(_) => return,
                Err(actual) => old = actual,
            }
        }
    }

    /// Load a bucket head for probing (tag + first row pointer).
    #[inline]
    pub fn head(&self, hash: u64) -> u64 {
        self.bucket(hash).load(Ordering::Acquire)
    }

    /// Whether the head's tag filter can contain this hash.
    #[inline]
    pub fn tag_may_contain(head: u64, hash: u64) -> bool {
        head & pointer_tag(hash) != 0
    }

    /// First row of the chain, or null.
    #[inline]
    pub fn first_row(head: u64) -> *const u8 {
        (head & PTR_MASK) as *const u8
    }

    /// Successor of `row` in the chain, or null.
    ///
    /// # Safety
    /// `row` must point to a live row inserted into this table.
    #[inline]
    pub unsafe fn next_row(row: *const u8) -> *const u8 {
        (std::ptr::read(row.cast::<u64>()) & PTR_MASK) as *const u8
    }

    /// Atomically mark `row` as matched (build-preserved join variants).
    ///
    /// # Safety
    /// `row` must point to a live row inserted into this table.
    #[inline]
    pub unsafe fn mark_matched(row: *const u8) {
        let header = &*(row.cast::<AtomicU64>());
        // Cheap check first: the flag is set at most once per row in the
        // common case, so skip the RMW when already set.
        if header.load(Ordering::Relaxed) & MATCH_FLAG == 0 {
            header.fetch_or(MATCH_FLAG, Ordering::Relaxed);
        }
    }

    /// Whether `row` was marked as matched.
    ///
    /// # Safety
    /// `row` must point to a live row inserted into this table.
    #[inline]
    pub unsafe fn is_matched(row: *const u8) -> bool {
        std::ptr::read(row.cast::<u64>()) & MATCH_FLAG != 0
    }

    /// Walk every bucket chain and summarize occupancy (profiler support).
    ///
    /// # Safety
    /// Every row ever inserted into this table must still be live (the
    /// arenas backing them not dropped), and no concurrent inserts may run.
    pub unsafe fn chain_stats(&self) -> ChainStats {
        let mut stats = ChainStats {
            buckets: self.buckets.len(),
            occupied: 0,
            total_rows: 0,
            max_chain: 0,
        };
        for bucket in &self.buckets {
            let head = bucket.load(Ordering::Acquire);
            let mut row = ChainTable::first_row(head);
            if row.is_null() {
                continue;
            }
            stats.occupied += 1;
            let mut len = 0usize;
            while !row.is_null() {
                len += 1;
                row = ChainTable::next_row(row);
            }
            stats.total_rows += len;
            stats.max_chain = stats.max_chain.max(len);
        }
        stats
    }
}

/// Bucket-occupancy summary of a [`ChainTable`] (hash-table load factor and
/// chain lengths reported by EXPLAIN ANALYZE).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainStats {
    pub buckets: usize,
    /// Buckets with at least one row.
    pub occupied: usize,
    pub total_rows: usize,
    /// Longest chain.
    pub max_chain: usize,
}

impl ChainStats {
    /// Rows per bucket (the classic load factor).
    pub fn load_factor(&self) -> f64 {
        if self.buckets == 0 {
            0.0
        } else {
            self.total_rows as f64 / self.buckets as f64
        }
    }

    /// Average chain length over non-empty buckets.
    pub fn avg_chain(&self) -> f64 {
        if self.occupied == 0 {
            0.0
        } else {
            self.total_rows as f64 / self.occupied as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::hash_u64;
    use crate::row::write_u64;

    /// Build tiny rows: [next][hash][key] with stride 24.
    fn make_rows(arena: &mut RowArena, keys: &[u64]) -> Vec<(*mut u8, u64)> {
        keys.iter()
            .map(|&k| {
                let h = hash_u64(k);
                let row = arena.alloc_row();
                write_u64(row, 8, h);
                write_u64(row, 16, k);
                (row.as_mut_ptr(), h)
            })
            .collect()
    }

    fn chain_keys(table: &ChainTable, hash: u64) -> Vec<u64> {
        let mut out = Vec::new();
        let head = table.head(hash);
        if !ChainTable::tag_may_contain(head, hash) {
            return out;
        }
        let mut row = ChainTable::first_row(head);
        while !row.is_null() {
            unsafe {
                let rh = std::ptr::read(row.add(8).cast::<u64>());
                if rh == hash {
                    out.push(std::ptr::read(row.add(16).cast::<u64>()));
                }
                row = ChainTable::next_row(row);
            }
        }
        out.sort_unstable();
        out
    }

    #[test]
    fn arena_rows_stable_and_counted() {
        let mut arena = RowArena::new(24);
        let mut ptrs = Vec::new();
        for i in 0..20_000u64 {
            let row = arena.alloc_row();
            write_u64(row, 16, i);
            ptrs.push(row.as_ptr());
        }
        assert_eq!(arena.rows(), 20_000);
        assert_eq!(arena.byte_size(), 20_000 * 24);
        // Every recorded pointer still reads back its value.
        for (i, &p) in ptrs.iter().enumerate() {
            let v = unsafe { std::ptr::read(p.add(16).cast::<u64>()) };
            assert_eq!(v, i as u64);
        }
        assert_eq!(arena.row_ptrs().len(), 20_000);
        assert_eq!(arena.row_ptrs()[5], ptrs[5]);
    }

    #[test]
    fn insert_and_probe_chains() {
        let mut arena = RowArena::new(24);
        let rows = make_rows(&mut arena, &[1, 2, 3, 2, 2]);
        let table = ChainTable::new(rows.len());
        for &(ptr, h) in &rows {
            unsafe { table.insert(ptr, h) };
        }
        assert_eq!(chain_keys(&table, hash_u64(1)), vec![1]);
        assert_eq!(chain_keys(&table, hash_u64(2)), vec![2, 2, 2]);
        assert_eq!(chain_keys(&table, hash_u64(3)), vec![3]);
        assert_eq!(chain_keys(&table, hash_u64(99)), Vec::<u64>::new());
    }

    #[test]
    fn tags_filter_absent_keys() {
        let mut arena = RowArena::new(24);
        let rows = make_rows(&mut arena, &(0..64).collect::<Vec<u64>>());
        let table = ChainTable::new(4096);
        for &(ptr, h) in &rows {
            unsafe { table.insert(ptr, h) };
        }
        // With 4096 buckets and 64 keys, most buckets are empty: their tag
        // (zero) must reject everything.
        let mut rejected = 0;
        for k in 1000..2000u64 {
            let h = hash_u64(k);
            if !ChainTable::tag_may_contain(table.head(h), h) {
                rejected += 1;
            }
        }
        assert!(rejected > 900, "tags rejected only {rejected}/1000");
        // And never reject a present key.
        for k in 0..64u64 {
            let h = hash_u64(k);
            assert!(ChainTable::tag_may_contain(table.head(h), h));
        }
    }

    #[test]
    fn concurrent_inserts_lose_nothing() {
        let stride = 24;
        let keys_per_thread = 5000u64;
        let threads = 4;
        let mut arenas: Vec<RowArena> = (0..threads).map(|_| RowArena::new(stride)).collect();
        let table = ChainTable::new((threads as usize) * keys_per_thread as usize);
        std::thread::scope(|scope| {
            for (t, arena) in arenas.iter_mut().enumerate() {
                let table = &table;
                scope.spawn(move || {
                    for i in 0..keys_per_thread {
                        let k = t as u64 * keys_per_thread + i;
                        let h = hash_u64(k);
                        let row = arena.alloc_row();
                        write_u64(row, 8, h);
                        write_u64(row, 16, k);
                        unsafe { table.insert(row.as_mut_ptr(), h) };
                    }
                });
            }
        });
        for k in 0..threads as u64 * keys_per_thread {
            assert_eq!(chain_keys(&table, hash_u64(k)), vec![k], "lost key {k}");
        }
    }

    #[test]
    fn chain_stats_counts_rows_and_chains() {
        let mut arena = RowArena::new(24);
        let rows = make_rows(&mut arena, &[1, 2, 3, 2, 2]);
        let table = ChainTable::new(rows.len());
        for &(ptr, h) in &rows {
            unsafe { table.insert(ptr, h) };
        }
        let stats = unsafe { table.chain_stats() };
        assert_eq!(stats.total_rows, 5);
        assert!(stats.occupied >= 1 && stats.occupied <= 3);
        assert!(stats.max_chain >= 3, "three dup keys share one chain");
        assert!(stats.load_factor() > 0.0);
        assert!(stats.avg_chain() >= 1.0);
    }

    #[test]
    fn match_flags() {
        let mut arena = RowArena::new(24);
        let rows = make_rows(&mut arena, &[10, 20]);
        let table = ChainTable::new(2);
        for &(ptr, h) in &rows {
            unsafe { table.insert(ptr, h) };
        }
        unsafe {
            assert!(!ChainTable::is_matched(rows[0].0));
            ChainTable::mark_matched(rows[0].0);
            ChainTable::mark_matched(rows[0].0); // idempotent
            assert!(ChainTable::is_matched(rows[0].0));
            assert!(!ChainTable::is_matched(rows[1].0));
            // The flag must not corrupt the next pointer.
            let next = ChainTable::next_row(rows[0].0);
            assert!(next.is_null() || next as u64 & !PTR_MASK == 0);
        }
    }
}
