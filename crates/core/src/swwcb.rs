//! Software write-combine buffers (SWWCBs) and non-temporal streaming.
//!
//! Radix partitioning scatters rows to hundreds of destinations; writing
//! each row straight to its partition touches one cache line (and TLB entry)
//! per destination per row. SWWCBs (Wassenberg & Sanders; adopted for joins
//! by Balkesen et al.) fix this: each worker keeps one small cache-resident
//! buffer per partition, rows are first appended there, and only *full*
//! buffers are written out — with non-temporal streaming stores that bypass
//! the cache hierarchy entirely, halving write traffic and avoiding cache
//! pollution (§3.3 of the paper).
//!
//! Both optimizations are independently switchable (the ablation benches
//! measure each), and the non-temporal path falls back to plain `memcpy` on
//! non-x86 targets.

/// Copy `src` to `dst` with non-temporal (cache-bypassing) stores.
///
/// Requirements: equal lengths, a multiple of 8, and `dst` 8-byte aligned
/// (guaranteed by page buffers being `u64`-backed and row strides being
/// multiples of 8). Callers must execute [`nt_fence`] before the written
/// data is handed to another thread.
///
/// Dispatches through [`crate::simd`]: on AVX2 hosts the body uses 256-bit
/// `_mm256_stream_si256` stores (with 8-byte head/tail alignment handling);
/// the scalar path keeps the original 8-byte `_mm_stream_si64` loop, so
/// `JOINSTUDY_NO_SIMD=1` reproduces the pre-SIMD binary exactly.
#[inline]
pub fn nt_copy(dst: &mut [u8], src: &[u8]) {
    debug_assert_eq!(dst.len(), src.len());
    debug_assert_eq!(dst.len() % 8, 0);
    debug_assert_eq!(dst.as_ptr() as usize % 8, 0, "unaligned NT destination");
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    if crate::simd::active() == crate::simd::SimdPath::Avx2 {
        crate::simd::nt_copy_avx2(dst, src);
        return;
    }
    #[cfg(target_arch = "x86_64")]
    unsafe {
        use std::arch::x86_64::_mm_stream_si64;
        let n = dst.len() / 8;
        let d = dst.as_mut_ptr().cast::<i64>();
        let s = src.as_ptr().cast::<i64>();
        for i in 0..n {
            _mm_stream_si64(d.add(i), s.add(i).read_unaligned());
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    dst.copy_from_slice(src);
}

/// Drain the CPU's write-combining buffers. Must run before another thread
/// reads data written through [`nt_copy`]; we call it once per worker at
/// partitioning-phase end (like the original radix-join code), not per flush.
#[inline]
pub fn nt_fence() {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        std::arch::x86_64::_mm_sfence();
    }
}

/// Prefetch the cache line containing `ptr` into all cache levels. Used by
/// the non-partitioned join's batched probe (relaxed operator fusion).
#[inline]
pub fn prefetch_read<T>(ptr: *const T) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch(ptr.cast::<i8>(), _MM_HINT_T0);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = ptr;
}

/// Default SWWCB capacity: four cache lines per partition buffer, a common
/// sweet spot (≥ 1 line as required, small enough that `fanout × buffer`
/// stays cache-resident).
pub const SWWCB_BYTES: usize = 256;

/// One write-combine buffer per partition, all backed by a single
/// `u64`-aligned allocation.
pub struct SwwcbSet {
    data: Vec<u64>,
    /// Fill level in bytes, per partition.
    fill: Vec<u32>,
    buf_bytes: usize,
    stride: usize,
}

impl SwwcbSet {
    /// `stride` must be a power of two ≤ 64 (the row-layout eligibility rule
    /// enforces this before a `SwwcbSet` is ever constructed).
    pub fn new(partitions: usize, stride: usize) -> SwwcbSet {
        assert!(
            stride.is_power_of_two() && stride <= 64,
            "stride {stride} not SWWCB-eligible"
        );
        let buf_bytes = SWWCB_BYTES.max(stride);
        SwwcbSet {
            data: vec![0u64; partitions * buf_bytes / 8],
            fill: vec![0; partitions],
            buf_bytes,
            stride,
        }
    }

    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Bytes this buffer set occupies (memory-budget accounting).
    pub fn byte_size(&self) -> usize {
        self.data.len() * 8 + self.fill.len() * 4
    }

    /// Whether partition `p`'s buffer has no room for another row.
    #[inline]
    pub fn is_full(&self, p: usize) -> bool {
        self.fill[p] as usize + self.stride > self.buf_bytes
    }

    /// The filled prefix of partition `p`'s buffer.
    #[inline]
    pub fn filled(&self, p: usize) -> &[u8] {
        let base = p * self.buf_bytes;
        let bytes = unsafe {
            std::slice::from_raw_parts(self.data.as_ptr().cast::<u8>().add(base), self.buf_bytes)
        };
        &bytes[..self.fill[p] as usize]
    }

    /// Mark partition `p`'s buffer as drained.
    #[inline]
    pub fn clear(&mut self, p: usize) {
        self.fill[p] = 0;
    }

    /// Reserve the next row slot in partition `p`'s buffer. The caller must
    /// have drained a full buffer first (checked in debug builds).
    #[inline]
    pub fn next_slot(&mut self, p: usize) -> &mut [u8] {
        debug_assert!(!self.is_full(p));
        let at = p * self.buf_bytes + self.fill[p] as usize;
        self.fill[p] += self.stride as u32;
        unsafe {
            std::slice::from_raw_parts_mut(self.data.as_mut_ptr().cast::<u8>().add(at), self.stride)
        }
    }

    /// Partitions with buffered rows (for the end-of-input flush).
    pub fn non_empty(&self) -> Vec<usize> {
        self.fill
            .iter()
            .enumerate()
            .filter_map(|(p, &f)| (f > 0).then_some(p))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nt_copy_roundtrip() {
        let src: Vec<u8> = (0..64u8).collect();
        let mut dst_words = vec![0u64; 8];
        let dst =
            unsafe { std::slice::from_raw_parts_mut(dst_words.as_mut_ptr().cast::<u8>(), 64) };
        nt_copy(dst, &src);
        nt_fence();
        assert_eq!(dst, &src[..]);
    }

    #[test]
    fn swwcb_fill_and_flush_cycle() {
        let stride = 16;
        let mut set = SwwcbSet::new(4, stride);
        let rows_per_buf = SWWCB_BYTES / stride;
        // Fill partition 2 to capacity.
        for i in 0..rows_per_buf {
            assert!(!set.is_full(2));
            let slot = set.next_slot(2);
            slot[0] = i as u8;
        }
        assert!(set.is_full(2));
        assert!(!set.is_full(1));
        let filled = set.filled(2);
        assert_eq!(filled.len(), SWWCB_BYTES);
        assert_eq!(filled[0], 0);
        assert_eq!(filled[stride], 1);
        set.clear(2);
        assert!(!set.is_full(2));
        assert_eq!(set.filled(2).len(), 0);
    }

    #[test]
    fn non_empty_reports_partial_buffers() {
        let mut set = SwwcbSet::new(8, 32);
        set.next_slot(1)[0] = 1;
        set.next_slot(5)[0] = 1;
        set.next_slot(5)[0] = 1;
        assert_eq!(set.non_empty(), vec![1, 5]);
        assert_eq!(set.filled(5).len(), 64);
    }

    #[test]
    #[should_panic(expected = "not SWWCB-eligible")]
    fn rejects_oversized_stride() {
        SwwcbSet::new(4, 128);
    }

    #[test]
    fn buffers_do_not_interfere() {
        let mut set = SwwcbSet::new(2, 64);
        set.next_slot(0).fill(0xAA);
        set.next_slot(1).fill(0xBB);
        assert!(set.filled(0).iter().all(|&b| b == 0xAA));
        assert!(set.filled(1).iter().all(|&b| b == 0xBB));
    }
}
