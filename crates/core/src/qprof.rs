//! Engine-side assembly of [`QueryProfile`] trees.
//!
//! The pipeline compiler ([`crate::plan::Engine`]) walks the plan and runs
//! pipeline breakers as it goes, so the mapping from *plan nodes* to
//! *pipeline observation slots* is built incrementally:
//!
//! * every compiled plan node allocates a [`TraceNode`] in a flat arena;
//! * stages of the pipeline **currently being composed** are parked in
//!   `pending` — when the pipeline's breaker finally runs, the breaker's
//!   [`PipelineObs`] is bound to all pending entries at once
//!   ([`ProfCtx::bind_pending`]);
//! * breakers that run *inside* compilation (build sides, partitioning,
//!   aggregation) bind their own observation directly.
//!
//! A node may end up bound to several slots (a join aggregates its build
//! sink, probe operator, and result source), and [`ProfCtx::build`] sums
//! them into one [`ProfileNode`] per plan node.
//!
//! [`ProfCtx::save`]/[`ProfCtx::restore`] give the RJ→BHJ degradation path
//! transactional semantics: the aborted radix compile's subtree is rolled
//! back and the BHJ fallback re-traces it. This is sound because `pending`
//! is always empty when a join compile starts (parents pend their own ops
//! only after recursing, and every breaker drains `pending` completely).

use joinstudy_exec::profile::{DetailValue, PipelineObs, ProfileNode};
use std::sync::Arc;

/// Which observation slot of a pipeline a trace node reads.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Slot {
    Source,
    Op(usize),
    Sink,
}

/// One plan node under construction.
struct TraceNode {
    label: String,
    children: Vec<usize>,
    bound: Vec<(Arc<PipelineObs>, Slot)>,
    details: Vec<(String, DetailValue)>,
}

/// Trace arena built while the engine compiles and runs pipelines.
#[derive(Default)]
pub(crate) struct ProfCtx {
    nodes: Vec<TraceNode>,
    /// Stages of the pipeline currently being composed, waiting for their
    /// breaker: `(node id, slot)` pairs.
    pending: Vec<(usize, Slot)>,
}

impl ProfCtx {
    pub fn new() -> ProfCtx {
        ProfCtx::default()
    }

    /// Allocate a trace node with the given children (already allocated).
    pub fn node(&mut self, label: impl Into<String>, children: Vec<usize>) -> usize {
        self.nodes.push(TraceNode {
            label: label.into(),
            children,
            bound: Vec::new(),
            details: Vec::new(),
        });
        self.nodes.len() - 1
    }

    /// Park `(node, slot)` until the current pipeline's breaker runs.
    pub fn pend(&mut self, node: usize, slot: Slot) {
        self.pending.push((node, slot));
    }

    /// Bind one slot of a finished (or running) pipeline to a node.
    pub fn bind(&mut self, node: usize, obs: &Arc<PipelineObs>, slot: Slot) {
        self.nodes[node].bound.push((Arc::clone(obs), slot));
    }

    /// The breaker ran: bind every pending stage to its observation.
    pub fn bind_pending(&mut self, obs: &Arc<PipelineObs>) {
        for (node, slot) in std::mem::take(&mut self.pending) {
            self.bind(node, obs, slot);
        }
    }

    /// Attach an algorithm-specific statistic to a node.
    pub fn detail(&mut self, node: usize, key: &str, value: DetailValue) {
        self.nodes[node].details.push((key.to_string(), value));
    }

    /// Transaction mark for [`ProfCtx::restore`].
    pub fn save(&self) -> (usize, usize) {
        (self.nodes.len(), self.pending.len())
    }

    /// Roll back to a [`ProfCtx::save`] mark (degradation fallback). Only
    /// valid when no node allocated before the mark references a node
    /// allocated after it — true for the join-compile transaction because
    /// children are allocated before their parent.
    pub fn restore(&mut self, mark: (usize, usize)) {
        self.nodes.truncate(mark.0);
        self.pending.truncate(mark.1);
        debug_assert!(
            self.pending.iter().all(|&(n, _)| n < mark.0),
            "pending entry references a rolled-back node"
        );
    }

    /// Node ids not referenced as anyone's child — the forest tops of a
    /// partially compiled plan. Used to assemble a partial profile when
    /// compilation or execution fails mid-way: the surviving subtrees hang
    /// off a synthetic "partial" root in allocation order.
    pub fn roots(&self) -> Vec<usize> {
        let mut referenced = vec![false; self.nodes.len()];
        for n in &self.nodes {
            for &c in &n.children {
                referenced[c] = true;
            }
        }
        (0..self.nodes.len()).filter(|&i| !referenced[i]).collect()
    }

    /// Assemble the finished profile tree rooted at `root`, summing every
    /// bound observation slot into its node.
    pub fn build(&self, root: usize) -> ProfileNode {
        let t = &self.nodes[root];
        let mut node = ProfileNode::new(t.label.clone());
        for (obs, slot) in &t.bound {
            let stats = match slot {
                Slot::Source => &obs.source,
                Slot::Op(i) => &obs.ops[*i],
                Slot::Sink => &obs.sink,
            };
            node.add_stats(stats);
        }
        node.details = t.details.clone();
        node.children = t.children.iter().map(|&c| self.build(c)).collect();
        node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pending_binds_and_builds_tree() {
        let mut pc = ProfCtx::new();
        let scan = pc.node("Scan", vec![]);
        pc.pend(scan, Slot::Source);
        let filter = pc.node("Filter", vec![scan]);
        pc.pend(filter, Slot::Op(0));

        let obs = Arc::new(PipelineObs::new(1));
        obs.source.add(2, 2, 0, 100, 10);
        obs.ops[0].add(0, 2, 100, 40, 5);
        obs.sink.add(0, 2, 40, 0, 1);
        pc.bind_pending(&obs);
        assert!(pc.save().1 == 0, "pending drained");

        let root = pc.node("Output", vec![filter]);
        pc.bind(root, &obs, Slot::Sink);
        pc.detail(root, "note", DetailValue::Int(7));

        let tree = pc.build(root);
        assert_eq!(tree.label, "Output");
        assert_eq!(tree.rows_in, 40);
        assert_eq!(tree.details[0].0, "note");
        assert_eq!(tree.children.len(), 1);
        let filter = &tree.children[0];
        assert_eq!(filter.rows_in, 100);
        assert_eq!(filter.rows_out, 40);
        assert_eq!(filter.children[0].rows_out, 100);
        assert_eq!(filter.children[0].morsels, 2);
    }

    #[test]
    fn restore_rolls_back_nodes_and_pending() {
        let mut pc = ProfCtx::new();
        let keep = pc.node("keep", vec![]);
        let mark = pc.save();
        let gone = pc.node("gone", vec![]);
        pc.pend(gone, Slot::Source);
        pc.restore(mark);
        // Re-traced subtree reuses the freed arena slots.
        let redo = pc.node("redo", vec![]);
        assert_eq!(redo, gone);
        let root = pc.node("root", vec![keep, redo]);
        let tree = pc.build(root);
        assert_eq!(tree.children[1].label, "redo");
    }

    #[test]
    fn roots_finds_unreferenced_forest_tops() {
        let mut pc = ProfCtx::new();
        let scan = pc.node("Scan", vec![]);
        let filter = pc.node("Filter", vec![scan]);
        let orphan = pc.node("Scan2", vec![]);
        assert_eq!(pc.roots(), vec![filter, orphan]);
        // A synthetic partial root over the forest builds cleanly.
        let tops = pc.roots();
        let out = pc.node("Output -- partial --", tops);
        let tree = pc.build(out);
        assert_eq!(tree.children.len(), 2);
        assert_eq!(tree.children[0].label, "Filter");
    }

    #[test]
    fn multiple_slots_sum_into_one_node() {
        let mut pc = ProfCtx::new();
        let join = pc.node("Join", vec![]);
        let build_obs = Arc::new(PipelineObs::new(0));
        build_obs.sink.add(0, 1, 300, 0, 7);
        let probe_obs = Arc::new(PipelineObs::new(1));
        probe_obs.ops[0].add(0, 4, 900, 500, 9);
        pc.bind(join, &build_obs, Slot::Sink);
        pc.bind(join, &probe_obs, Slot::Op(0));
        let tree = pc.build(join);
        assert_eq!(tree.rows_in, 1200);
        assert_eq!(tree.rows_out, 500);
        assert_eq!(tree.busy_ns, 16);
    }
}
