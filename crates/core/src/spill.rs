//! Out-of-core spill subsystem for the dynamic hybrid hash join.
//!
//! When the build side of a join does not fit the query's memory budget,
//! [`crate::hybrid`] evicts partitions to disk through this module and
//! restores them after the in-memory pass. The design follows the classic
//! Grace/hybrid hash join literature (and its modern robustness treatment in
//! "Design Trade-offs for a Robust Dynamic Hybrid Hash Join"): partitions
//! are written as *runs* of self-describing, checksummed frames so a reader
//! can detect torn writes, and everything lives under a per-query
//! [`SpillDir`] whose RAII guard removes the directory — and with it every
//! orphaned run — no matter how the query ends.
//!
//! # Spill-file format
//!
//! A spill file is a sequence of frames. Each frame is:
//!
//! ```text
//! [magic u32 = "JSP1"] [payload_len u32] [rows u32] [reserved u32]
//! [checksum u64 = FNV-1a(payload)] [payload: one encoded Batch]
//! ```
//!
//! The payload encodes the batch column-by-column (type tag, optional
//! validity mask, then the values; strings as per-value `u32` length +
//! UTF-8 bytes), all little-endian. Readers verify the magic, length, and
//! checksum of every frame and surface [`ExecError::SpillIo`] on any
//! mismatch or short read — corruption never panics and never produces
//! wrong rows.
//!
//! # Fault injection
//!
//! `JOINSTUDY_FAULT_IO=<op>:<kind>[:<nth>]` (op ∈ `create|write|read`,
//! kind ∈ `enospc|eio|short`) makes the nth matching I/O call fail with a
//! typed error, so tests and the CI fault matrix can prove that ENOSPC,
//! EIO, and truncated-frame conditions all unwind cleanly: typed error,
//! budget fully released, spill directory removed. Tests inside one process
//! use [`fault::set_for_test`] instead of the environment.

use joinstudy_exec::batch::{Batch, Validity};
use joinstudy_exec::context::{BudgetLease, QueryContext};
use joinstudy_exec::error::{ExecError, ExecResult};
use joinstudy_exec::metrics::{self, MemPhase};
use joinstudy_exec::progress::WaitState;
use joinstudy_exec::registry;
use joinstudy_storage::column::{ColumnData, StrColumn};
use joinstudy_storage::types::DataType;
use std::fs::{self, File};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Frame magic: `"JSP1"` little-endian.
pub const FRAME_MAGIC: u32 = 0x3150_534a;
/// Fixed frame-header size in bytes.
pub const FRAME_HEADER_BYTES: usize = 24;
/// Write-buffer size charged against the memory budget per open writer.
pub const WRITE_BUF_BYTES: usize = 32 * 1024;

// ---------------------------------------------------------------- faults

/// Deterministic I/O fault injection (`JOINSTUDY_FAULT_IO`).
pub mod fault {
    use super::*;
    use std::sync::Mutex;

    /// Which spill I/O operation a fault targets.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum FaultOp {
        /// Directory or file creation (also file open-for-read).
        Create,
        /// A buffered flush to a spill file.
        Write,
        /// A frame read from a spill file.
        Read,
    }

    impl FaultOp {
        fn parse(s: &str) -> Option<FaultOp> {
            match s {
                "create" => Some(FaultOp::Create),
                "write" => Some(FaultOp::Write),
                "read" => Some(FaultOp::Read),
                _ => None,
            }
        }

        fn index(self) -> usize {
            match self {
                FaultOp::Create => 0,
                FaultOp::Write => 1,
                FaultOp::Read => 2,
            }
        }

        pub(crate) fn name(self) -> &'static str {
            match self {
                FaultOp::Create => "create",
                FaultOp::Write => "write",
                FaultOp::Read => "read",
            }
        }
    }

    /// What the injected failure looks like.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum FaultKind {
        /// `ENOSPC`: no space left on device.
        Enospc,
        /// `EIO`: generic input/output error.
        Eio,
        /// A frame cut off mid-payload (only meaningful for reads).
        Short,
    }

    impl FaultKind {
        fn parse(s: &str) -> Option<FaultKind> {
            match s {
                "enospc" => Some(FaultKind::Enospc),
                "eio" => Some(FaultKind::Eio),
                "short" => Some(FaultKind::Short),
                _ => None,
            }
        }

        fn message(self) -> &'static str {
            match self {
                FaultKind::Enospc => "no space left on device (ENOSPC, injected)",
                FaultKind::Eio => "input/output error (EIO, injected)",
                FaultKind::Short => "short read: spill frame truncated (injected)",
            }
        }
    }

    /// One armed fault: the `nth` call of `op` (1-based) fails as `kind`.
    #[derive(Debug, Clone, Copy)]
    pub struct FaultSpec {
        pub op: FaultOp,
        pub kind: FaultKind,
        pub nth: u64,
    }

    impl FaultSpec {
        /// Parse `"op:kind[:nth]"`; `None` on any malformed input (faults
        /// must never be armed by accident).
        pub fn parse(s: &str) -> Option<FaultSpec> {
            let mut it = s.split(':');
            let op = FaultOp::parse(it.next()?)?;
            let kind = FaultKind::parse(it.next()?)?;
            let nth = match it.next() {
                Some(n) => n.parse().ok().filter(|&n| n > 0)?,
                None => 1,
            };
            if it.next().is_some() {
                return None;
            }
            Some(FaultSpec { op, kind, nth })
        }
    }

    struct FaultState {
        spec: Option<FaultSpec>,
        /// Calls seen per [`FaultOp::index`] since the spec was armed.
        counts: [u64; 3],
    }

    static STATE: Mutex<Option<FaultState>> = Mutex::new(None);

    fn with_state<R>(f: impl FnOnce(&mut FaultState) -> R) -> R {
        let mut guard = STATE.lock().unwrap();
        let state = guard.get_or_insert_with(|| FaultState {
            spec: std::env::var("JOINSTUDY_FAULT_IO")
                .ok()
                .and_then(|s| FaultSpec::parse(&s)),
            counts: [0; 3],
        });
        f(state)
    }

    /// Arm (or with `None` disarm) a fault programmatically, resetting the
    /// call counters. Overrides the environment for the rest of the process.
    pub fn set_for_test(spec: Option<FaultSpec>) {
        let mut guard = STATE.lock().unwrap();
        *guard = Some(FaultState {
            spec,
            counts: [0; 3],
        });
    }

    /// Called by every spill I/O primitive; fails on the armed call.
    pub(crate) fn check(op: FaultOp) -> ExecResult {
        with_state(|state| {
            let Some(spec) = state.spec else {
                return Ok(());
            };
            if spec.op != op {
                return Ok(());
            }
            state.counts[op.index()] += 1;
            if state.counts[op.index()] == spec.nth {
                return Err(ExecError::spill(op.name(), spec.kind.message()));
            }
            Ok(())
        })
    }
}

use fault::FaultOp;

// ------------------------------------------------------------- SpillDir

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// RAII guard over one query's spill directory. All spill files of a query
/// live inside it; dropping the guard removes the directory recursively, so
/// cancelled, failed, or fault-injected queries cannot leave orphan files.
#[derive(Debug)]
pub struct SpillDir {
    path: PathBuf,
}

impl SpillDir {
    /// Create a fresh uniquely-named spill directory under `base`, falling
    /// back to `$JOINSTUDY_SPILL_DIR`, then the system temp directory.
    pub fn create(base: Option<PathBuf>) -> ExecResult<Arc<SpillDir>> {
        let base = base
            .or_else(|| std::env::var_os("JOINSTUDY_SPILL_DIR").map(PathBuf::from))
            .unwrap_or_else(std::env::temp_dir);
        let path = base.join(format!(
            "joinstudy-spill-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fault::check(FaultOp::Create)?;
        fs::create_dir_all(&path)
            .map_err(|e| ExecError::spill("create", format!("{}: {e}", path.display())))?;
        Ok(Arc::new(SpillDir { path }))
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Path of a named spill file inside this directory.
    pub fn file_path(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

impl Drop for SpillDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.path);
    }
}

// ------------------------------------------------------------ SpillFile

/// A finished spill run: path plus its metadata.
#[derive(Debug)]
pub struct SpillFile {
    path: PathBuf,
    rows: u64,
    bytes: u64,
}

impl SpillFile {
    pub fn rows(&self) -> u64 {
        self.rows
    }

    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Best-effort eager deletion (the [`SpillDir`] guard is the backstop).
    pub fn remove(&self) {
        let _ = fs::remove_file(&self.path);
    }
}

// ----------------------------------------------------------- the codec

fn dtype_tag(t: DataType) -> u8 {
    match t {
        DataType::Bool => 0,
        DataType::Int32 => 1,
        DataType::Int64 => 2,
        DataType::Float64 => 3,
        DataType::Date => 4,
        DataType::Decimal => 5,
        DataType::Str => 6,
    }
}

fn dtype_from_tag(tag: u8) -> Option<DataType> {
    Some(match tag {
        0 => DataType::Bool,
        1 => DataType::Int32,
        2 => DataType::Int64,
        3 => DataType::Float64,
        4 => DataType::Date,
        5 => DataType::Decimal,
        6 => DataType::Str,
        _ => return None,
    })
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn encode_column(col: &ColumnData, buf: &mut Vec<u8>) {
    match col {
        ColumnData::Bool(v) => buf.extend(v.iter().map(|&b| b as u8)),
        ColumnData::Int32(v) | ColumnData::Date(v) => {
            for x in v {
                buf.extend_from_slice(&x.to_le_bytes());
            }
        }
        ColumnData::Int64(v) | ColumnData::Decimal(v) => {
            for x in v {
                buf.extend_from_slice(&x.to_le_bytes());
            }
        }
        ColumnData::Float64(v) => {
            for x in v {
                buf.extend_from_slice(&x.to_bits().to_le_bytes());
            }
        }
        ColumnData::Str(s) => {
            for i in 0..s.len() {
                let v = s.get(i);
                buf.extend_from_slice(&(v.len() as u32).to_le_bytes());
                buf.extend_from_slice(v.as_bytes());
            }
        }
    }
}

/// Serialize one batch into the frame payload layout.
fn encode_batch(batch: &Batch, buf: &mut Vec<u8>) {
    buf.extend_from_slice(&(batch.num_columns() as u16).to_le_bytes());
    for c in 0..batch.num_columns() {
        let col = batch.column(c);
        buf.push(dtype_tag(col.data_type()));
        match batch.validity(c) {
            Some(mask) => {
                buf.push(1);
                buf.extend(mask.iter().map(|&b| b as u8));
            }
            None => buf.push(0),
        }
        encode_column(col, buf);
    }
}

/// Sequential payload cursor with bounds-checked reads; any overrun means a
/// corrupt frame.
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn bytes(&mut self, n: usize) -> ExecResult<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.data.len());
        match end {
            Some(end) => {
                let s = &self.data[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(ExecError::spill(
                "read",
                "corrupt frame: payload shorter than its encoding",
            )),
        }
    }

    fn u16(&mut self) -> ExecResult<u16> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> ExecResult<u32> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    fn u8(&mut self) -> ExecResult<u8> {
        Ok(self.bytes(1)?[0])
    }
}

fn decode_column(cur: &mut Cursor<'_>, dtype: DataType, rows: usize) -> ExecResult<ColumnData> {
    Ok(match dtype {
        DataType::Bool => ColumnData::Bool(cur.bytes(rows)?.iter().map(|&b| b != 0).collect()),
        DataType::Int32 | DataType::Date => {
            let raw = cur.bytes(rows * 4)?;
            let v = raw
                .chunks_exact(4)
                .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
                .collect();
            if dtype == DataType::Int32 {
                ColumnData::Int32(v)
            } else {
                ColumnData::Date(v)
            }
        }
        DataType::Int64 | DataType::Decimal => {
            let raw = cur.bytes(rows * 8)?;
            let v = raw
                .chunks_exact(8)
                .map(|c| i64::from_le_bytes(c.try_into().unwrap()))
                .collect();
            if dtype == DataType::Int64 {
                ColumnData::Int64(v)
            } else {
                ColumnData::Decimal(v)
            }
        }
        DataType::Float64 => {
            let raw = cur.bytes(rows * 8)?;
            ColumnData::Float64(
                raw.chunks_exact(8)
                    .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().unwrap())))
                    .collect(),
            )
        }
        DataType::Str => {
            let mut s = StrColumn::with_capacity(rows, 0);
            for _ in 0..rows {
                let len = cur.u32()? as usize;
                let raw = cur.bytes(len)?;
                let v = std::str::from_utf8(raw).map_err(|_| {
                    ExecError::spill("read", "corrupt frame: non-UTF-8 string payload")
                })?;
                s.push(v);
            }
            ColumnData::Str(s)
        }
    })
}

fn decode_batch(payload: &[u8], rows: usize) -> ExecResult<Batch> {
    let mut cur = Cursor {
        data: payload,
        pos: 0,
    };
    let ncols = cur.u16()? as usize;
    let mut columns = Vec::with_capacity(ncols);
    let mut validity: Vec<Validity> = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let tag = cur.u8()?;
        let dtype = dtype_from_tag(tag)
            .ok_or_else(|| ExecError::spill("read", format!("corrupt frame: type tag {tag}")))?;
        validity.push(match cur.u8()? {
            0 => None,
            _ => Some(cur.bytes(rows)?.iter().map(|&b| b != 0).collect()),
        });
        columns.push(decode_column(&mut cur, dtype, rows)?);
    }
    if cur.pos != payload.len() {
        return Err(ExecError::spill(
            "read",
            "corrupt frame: trailing bytes after batch payload",
        ));
    }
    Ok(Batch::with_validity(columns, validity))
}

// ----------------------------------------------------------- SpillWriter

/// Buffered sequential writer for one spill run. Its write buffer is
/// charged against the query's memory budget; the file is deleted on drop
/// unless [`SpillWriter::finish`]ed.
pub struct SpillWriter {
    file: File,
    path: PathBuf,
    ctx: Arc<QueryContext>,
    buf: Vec<u8>,
    _lease: BudgetLease,
    rows: u64,
    bytes: u64,
    finished: bool,
}

impl SpillWriter {
    /// Create `dir/name`, reserving the write buffer from the budget first
    /// so running out of memory *while spilling* is itself a clean, typed
    /// failure.
    pub fn create(dir: &SpillDir, name: &str, ctx: &Arc<QueryContext>) -> ExecResult<SpillWriter> {
        let lease = BudgetLease::reserve(ctx, WRITE_BUF_BYTES)?;
        fault::check(FaultOp::Create)?;
        let path = dir.file_path(name);
        let file = File::create(&path)
            .map_err(|e| ExecError::spill("create", format!("{}: {e}", path.display())))?;
        Ok(SpillWriter {
            file,
            path,
            ctx: Arc::clone(ctx),
            buf: Vec::with_capacity(WRITE_BUF_BYTES),
            _lease: lease,
            rows: 0,
            bytes: 0,
            finished: false,
        })
    }

    /// Append one batch as a checksummed frame.
    pub fn write_batch(&mut self, batch: &Batch) -> ExecResult {
        self.ctx.check()?;
        let header_at = self.buf.len();
        self.buf.extend_from_slice(&[0u8; FRAME_HEADER_BYTES]);
        encode_batch(batch, &mut self.buf);
        let payload = &self.buf[header_at + FRAME_HEADER_BYTES..];
        let payload_len = payload.len() as u32;
        let checksum = fnv1a(payload);
        let h = &mut self.buf[header_at..header_at + FRAME_HEADER_BYTES];
        h[0..4].copy_from_slice(&FRAME_MAGIC.to_le_bytes());
        h[4..8].copy_from_slice(&payload_len.to_le_bytes());
        h[8..12].copy_from_slice(&(batch.num_rows() as u32).to_le_bytes());
        h[12..16].copy_from_slice(&0u32.to_le_bytes());
        h[16..24].copy_from_slice(&checksum.to_le_bytes());
        self.rows += batch.num_rows() as u64;
        if self.buf.len() >= WRITE_BUF_BYTES {
            self.flush()?;
        }
        Ok(())
    }

    fn flush(&mut self) -> ExecResult {
        if self.buf.is_empty() {
            return Ok(());
        }
        fault::check(FaultOp::Write)?;
        // Wait-state + time attribution around the actual I/O: stamp
        // SpillIo for the sampler, restore the previous (CPU) stamp after.
        let prev = self.ctx.wait_state();
        self.ctx.stamp_wait(WaitState::SpillIo);
        let io_start = std::time::Instant::now();
        let wrote = self
            .file
            .write_all(&self.buf)
            .map_err(|e| ExecError::spill("write", format!("{}: {e}", self.path.display())));
        self.ctx
            .add_spill_io_ns(io_start.elapsed().as_nanos() as u64);
        self.ctx.stamp_wait(prev);
        wrote?;
        let n = self.buf.len() as u64;
        self.bytes += n;
        self.ctx.add_spill_write(n);
        metrics::record_write(MemPhase::Spill, n);
        registry::global().counter("spill.write_bytes").add(n);
        self.buf.clear();
        Ok(())
    }

    /// Rows written so far.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Flush and seal the run.
    pub fn finish(mut self) -> ExecResult<SpillFile> {
        self.flush()?;
        self.finished = true;
        Ok(SpillFile {
            path: self.path.clone(),
            rows: self.rows,
            bytes: self.bytes,
        })
    }
}

impl Drop for SpillWriter {
    fn drop(&mut self) {
        if !self.finished {
            let _ = fs::remove_file(&self.path);
        }
    }
}

// ----------------------------------------------------------- SpillReader

/// Sequential reader over a spill run; verifies every frame's magic,
/// length, and checksum.
pub struct SpillReader {
    file: File,
    path: PathBuf,
    ctx: Arc<QueryContext>,
}

impl SpillReader {
    pub fn open(file: &SpillFile, ctx: &Arc<QueryContext>) -> ExecResult<SpillReader> {
        fault::check(FaultOp::Create)?;
        let f = File::open(&file.path)
            .map_err(|e| ExecError::spill("create", format!("{}: {e}", file.path.display())))?;
        Ok(SpillReader {
            file: f,
            path: file.path.clone(),
            ctx: Arc::clone(ctx),
        })
    }

    /// Fill `buf` completely. `Ok(false)` on clean EOF at offset zero of the
    /// read; any partial fill is a short-read error.
    fn read_full(&mut self, buf: &mut [u8]) -> ExecResult<bool> {
        let mut got = 0;
        while got < buf.len() {
            let n = self
                .file
                .read(&mut buf[got..])
                .map_err(|e| ExecError::spill("read", format!("{}: {e}", self.path.display())))?;
            if n == 0 {
                if got == 0 {
                    return Ok(false);
                }
                return Err(ExecError::spill(
                    "read",
                    format!(
                        "short read: {} ended {} B into a {} B section",
                        self.path.display(),
                        got,
                        buf.len()
                    ),
                ));
            }
            got += n;
        }
        Ok(true)
    }

    /// [`SpillReader::read_full`] with SpillIo wait-state and time
    /// attribution on the query context (see [`joinstudy_exec::progress`]).
    fn read_full_timed(&mut self, buf: &mut [u8]) -> ExecResult<bool> {
        let prev = self.ctx.wait_state();
        self.ctx.stamp_wait(WaitState::SpillIo);
        let io_start = std::time::Instant::now();
        let got = self.read_full(buf);
        self.ctx
            .add_spill_io_ns(io_start.elapsed().as_nanos() as u64);
        self.ctx.stamp_wait(prev);
        got
    }

    /// Read and verify the next frame; `Ok(None)` at end of run.
    pub fn read_batch(&mut self) -> ExecResult<Option<Batch>> {
        self.ctx.check()?;
        let mut header = [0u8; FRAME_HEADER_BYTES];
        if !self.read_full_timed(&mut header)? {
            return Ok(None);
        }
        fault::check(FaultOp::Read)?;
        let magic = u32::from_le_bytes(header[0..4].try_into().unwrap());
        if magic != FRAME_MAGIC {
            return Err(ExecError::spill(
                "read",
                format!(
                    "corrupt frame: bad magic {magic:#x} in {}",
                    self.path.display()
                ),
            ));
        }
        let payload_len = u32::from_le_bytes(header[4..8].try_into().unwrap()) as usize;
        let rows = u32::from_le_bytes(header[8..12].try_into().unwrap()) as usize;
        let checksum = u64::from_le_bytes(header[16..24].try_into().unwrap());
        let mut payload = vec![0u8; payload_len];
        if !self.read_full_timed(&mut payload)? {
            return Err(ExecError::spill(
                "read",
                format!(
                    "short read: missing frame payload in {}",
                    self.path.display()
                ),
            ));
        }
        if fnv1a(&payload) != checksum {
            return Err(ExecError::spill(
                "read",
                format!(
                    "corrupt frame: checksum mismatch in {}",
                    self.path.display()
                ),
            ));
        }
        let batch = decode_batch(&payload, rows)?;
        if batch.num_rows() != rows {
            return Err(ExecError::spill(
                "read",
                "corrupt frame: row count disagrees with header",
            ));
        }
        let n = (FRAME_HEADER_BYTES + payload_len) as u64;
        self.ctx.add_spill_read(n);
        metrics::record_read(MemPhase::Spill, n);
        registry::global().counter("spill.read_bytes").add(n);
        Ok(Some(batch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use joinstudy_exec::batch::BatchBuilder;
    use joinstudy_storage::types::Value;
    use std::sync::Mutex;

    /// Fault state is process-global; serialize the tests that arm it.
    pub(crate) static FAULT_TEST_LOCK: Mutex<()> = Mutex::new(());

    fn sample_batch() -> Batch {
        let mut b = BatchBuilder::new(vec![
            DataType::Int64,
            DataType::Str,
            DataType::Float64,
            DataType::Int32,
        ]);
        for i in 0..300i64 {
            b.push_row(&[
                Value::Int64(i),
                Value::Str(format!("row-{i}-αβ")),
                Value::Float64(i as f64 * 0.5),
                Value::Int32(20_000 + i as i32),
            ]);
        }
        let batch = b.flush().unwrap();
        // Attach a validity mask to one column to round-trip NULL-ness.
        let mut validity: Vec<Validity> = vec![None; batch.num_columns()];
        validity[2] = Some((0..batch.num_rows()).map(|i| i % 7 != 0).collect());
        Batch::with_validity(batch.into_columns(), validity)
    }

    fn tmp_base() -> PathBuf {
        std::env::temp_dir().join("joinstudy-spill-tests")
    }

    #[test]
    fn round_trip_preserves_rows_validity_and_strings() {
        let _guard = FAULT_TEST_LOCK.lock().unwrap();
        fault::set_for_test(None);
        let ctx = QueryContext::unbounded();
        let dir = SpillDir::create(Some(tmp_base())).unwrap();
        let mut w = SpillWriter::create(&dir, "run0", &ctx).unwrap();
        let batch = sample_batch();
        w.write_batch(&batch).unwrap();
        w.write_batch(&batch).unwrap();
        let file = w.finish().unwrap();
        assert_eq!(file.rows(), 2 * batch.num_rows() as u64);
        assert!(file.bytes() > 0);

        let mut r = SpillReader::open(&file, &ctx).unwrap();
        for _ in 0..2 {
            let got = r.read_batch().unwrap().unwrap();
            assert_eq!(got.num_rows(), batch.num_rows());
            assert_eq!(got.num_columns(), batch.num_columns());
            for c in 0..batch.num_columns() {
                assert_eq!(got.validity(c), batch.validity(c), "validity col {c}");
                for row in 0..batch.num_rows() {
                    assert_eq!(got.value(c, row), batch.value(c, row), "col {c} row {row}");
                }
            }
        }
        assert!(r.read_batch().unwrap().is_none());
        assert_eq!(ctx.spill_write_bytes(), file.bytes());
        assert!(ctx.spill_read_bytes() >= file.bytes());
    }

    #[test]
    fn corruption_is_detected_not_trusted() {
        let _guard = FAULT_TEST_LOCK.lock().unwrap();
        fault::set_for_test(None);
        let ctx = QueryContext::unbounded();
        let dir = SpillDir::create(Some(tmp_base())).unwrap();
        let mut w = SpillWriter::create(&dir, "run0", &ctx).unwrap();
        w.write_batch(&sample_batch()).unwrap();
        let file = w.finish().unwrap();

        // Flip one payload byte: checksum mismatch.
        let mut raw = fs::read(file.path()).unwrap();
        let flip_at = FRAME_HEADER_BYTES + raw.len() / 2;
        raw[flip_at] ^= 0xff;
        fs::write(file.path(), &raw).unwrap();
        let mut r = SpillReader::open(&file, &ctx).unwrap();
        let err = r.read_batch().unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");

        // Truncate mid-payload: short read.
        raw[flip_at] ^= 0xff;
        fs::write(file.path(), &raw[..raw.len() - 10]).unwrap();
        let mut r = SpillReader::open(&file, &ctx).unwrap();
        let err = r.read_batch().unwrap_err();
        assert!(err.to_string().contains("short read"), "{err}");

        // Bad magic.
        raw[0] ^= 0xff;
        fs::write(file.path(), &raw).unwrap();
        let mut r = SpillReader::open(&file, &ctx).unwrap();
        let err = r.read_batch().unwrap_err();
        assert!(err.to_string().contains("bad magic"), "{err}");
    }

    #[test]
    fn dir_guard_removes_everything_and_writer_charges_budget() {
        let _guard = FAULT_TEST_LOCK.lock().unwrap();
        fault::set_for_test(None);
        let ctx = QueryContext::unbounded();
        let dir = SpillDir::create(Some(tmp_base())).unwrap();
        let dir_path = dir.path().to_path_buf();
        let mut w = SpillWriter::create(&dir, "orphan", &ctx).unwrap();
        assert_eq!(ctx.used(), WRITE_BUF_BYTES, "write buffer must be charged");
        w.write_batch(&sample_batch()).unwrap();
        let file = w.finish().unwrap();
        assert_eq!(ctx.used(), 0, "finished writer releases its buffer");
        assert!(file.path().exists());
        drop(dir);
        assert!(!dir_path.exists(), "dir guard must remove the directory");
        assert!(!file.path().exists(), "...including unconsumed runs");
    }

    #[test]
    fn unfinished_writer_deletes_its_file() {
        let _guard = FAULT_TEST_LOCK.lock().unwrap();
        fault::set_for_test(None);
        let ctx = QueryContext::unbounded();
        let dir = SpillDir::create(Some(tmp_base())).unwrap();
        let path;
        {
            let mut w = SpillWriter::create(&dir, "abandoned", &ctx).unwrap();
            w.write_batch(&sample_batch()).unwrap();
            path = dir.file_path("abandoned");
        }
        assert!(!path.exists(), "dropped-unfinished writer leaves no file");
        assert_eq!(ctx.used(), 0);
    }

    #[test]
    fn fault_injection_fires_typed_errors_on_the_nth_call() {
        let _guard = FAULT_TEST_LOCK.lock().unwrap();
        let ctx = QueryContext::unbounded();

        fault::set_for_test(fault::FaultSpec::parse("create:enospc:2"));
        let dir = SpillDir::create(Some(tmp_base())).unwrap(); // 1st create: ok
        let err = SpillWriter::create(&dir, "x", &ctx).err().unwrap(); // 2nd: boom
        assert!(
            matches!(err, ExecError::SpillIo { op: "create", .. }),
            "{err}"
        );
        assert_eq!(ctx.used(), 0, "failed create releases its buffer lease");

        fault::set_for_test(fault::FaultSpec::parse("write:enospc"));
        let dir = SpillDir::create(Some(tmp_base())).unwrap();
        let mut w = SpillWriter::create(&dir, "x", &ctx).unwrap();
        w.write_batch(&sample_batch()).unwrap();
        let err = w.finish().unwrap_err();
        assert!(err.to_string().contains("ENOSPC"), "{err}");
        assert!(
            !dir.file_path("x").exists(),
            "failed finish deletes the run"
        );

        fault::set_for_test(fault::FaultSpec::parse("read:eio"));
        let dir = SpillDir::create(Some(tmp_base())).unwrap();
        let mut w = SpillWriter::create(&dir, "x", &ctx).unwrap();
        w.write_batch(&sample_batch()).unwrap();
        let file = w.finish().unwrap();
        let mut r = SpillReader::open(&file, &ctx).unwrap();
        let err = r.read_batch().unwrap_err();
        assert!(
            matches!(err, ExecError::SpillIo { op: "read", .. }),
            "{err}"
        );

        fault::set_for_test(fault::FaultSpec::parse("read:short"));
        let mut r = SpillReader::open(&file, &ctx).unwrap();
        let err = r.read_batch().unwrap_err();
        assert!(err.to_string().contains("short read"), "{err}");

        fault::set_for_test(None);
        assert_eq!(ctx.used(), 0);
    }

    #[test]
    fn fault_spec_parser_rejects_garbage() {
        for bad in [
            "",
            "write",
            "write:",
            "write:nope",
            "x:eio",
            "read:eio:0",
            "read:eio:1:1",
        ] {
            assert!(fault::FaultSpec::parse(bad).is_none(), "accepted {bad:?}");
        }
        let s = fault::FaultSpec::parse("read:short:3").unwrap();
        assert_eq!(s.nth, 3);
        assert_eq!(s.kind, fault::FaultKind::Short);
    }
}
