//! The groupjoin: a fused join + group-by (Moerkotte & Neumann, VLDB'11).
//!
//! The paper's footnote 6: "Our system uses a groupjoin for Query 13,
//! which combines join and group by". The operator groups the probe side
//! *by the build rows*: every build tuple becomes one group, probe matches
//! update that group's aggregates in place, and the output contains every
//! build tuple exactly once together with its aggregates — including empty
//! groups (the LEFT OUTER semantics Q13 needs: customers with zero
//! orders).
//!
//! Implementation: the build side is materialized into indexed row storage
//! with a robin-hood index (hash → row id); probe workers update per-row
//! atomic aggregate cells, so the probe stays fully pipelined and parallel
//! with no per-worker hash tables to merge.

use crate::hash::hash_columns;
use crate::ht_rh::RobinHoodTable;
use crate::row::{RowLayout, StrHeap};
use joinstudy_exec::batch::{Batch, BatchBuilder, BATCH_ROWS};
use joinstudy_exec::error::ExecResult;
use joinstudy_exec::pipeline::{Emit, LocalState, Operator, Sink, Source};
use joinstudy_storage::column::ColumnData;
use joinstudy_storage::table::{Field, Schema};
use joinstudy_storage::types::DataType;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Aggregates a groupjoin can maintain per build row. All states fit in one
/// atomic 64-bit cell, which is what makes lock-free parallel probes work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupAggFunc {
    /// Number of matching probe tuples.
    CountMatches,
    /// Sum of an Int64 probe column over the matches.
    SumInt64,
    /// Sum of a Decimal probe column over the matches.
    SumDecimal,
}

/// One aggregate column of the groupjoin output.
#[derive(Debug, Clone)]
pub struct GroupAggSpec {
    pub func: GroupAggFunc,
    /// Probe column the aggregate reads (ignored for `CountMatches`).
    pub input: usize,
    pub name: String,
}

impl GroupAggSpec {
    pub fn count(name: impl Into<String>) -> GroupAggSpec {
        GroupAggSpec {
            func: GroupAggFunc::CountMatches,
            input: 0,
            name: name.into(),
        }
    }

    pub fn sum(func: GroupAggFunc, input: usize, name: impl Into<String>) -> GroupAggSpec {
        GroupAggSpec {
            func,
            input,
            name: name.into(),
        }
    }

    fn output_type(&self) -> DataType {
        match self.func {
            GroupAggFunc::CountMatches | GroupAggFunc::SumInt64 => DataType::Int64,
            GroupAggFunc::SumDecimal => DataType::Decimal,
        }
    }
}

struct BuildLocal {
    rows: Vec<u8>,
    heap: StrHeap,
    heap_id: usize,
    hashes: Vec<u64>,
    count: usize,
}

struct BuildGlobal {
    chunks: Vec<(Vec<u8>, usize)>,
    heaps: Vec<(usize, StrHeap)>,
}

/// Pipeline breaker materializing and indexing the groupjoin's build side.
pub struct GroupJoinBuildSink {
    layout: RowLayout,
    key_cols: Vec<usize>,
    next_heap_id: AtomicUsize,
    global: Mutex<BuildGlobal>,
}

impl GroupJoinBuildSink {
    pub fn new(types: &[DataType], key_cols: Vec<usize>) -> GroupJoinBuildSink {
        GroupJoinBuildSink {
            layout: RowLayout::new(types, false),
            key_cols,
            next_heap_id: AtomicUsize::new(0),
            global: Mutex::new(BuildGlobal {
                chunks: Vec::new(),
                heaps: Vec::new(),
            }),
        }
    }

    /// Concatenate worker chunks, build the index, allocate aggregate cells.
    pub fn into_state(&self, aggs: Vec<GroupAggSpec>) -> Arc<GroupJoinState> {
        let mut global = self.global.lock();
        let chunks = std::mem::take(&mut global.chunks);
        let mut heap_pairs = std::mem::take(&mut global.heaps);
        drop(global);

        let max_id = heap_pairs
            .iter()
            .map(|(id, _)| *id)
            .max()
            .map_or(0, |m| m + 1);
        let mut heaps: Vec<StrHeap> = (0..max_id).map(|_| StrHeap::new()).collect();
        for (id, heap) in heap_pairs.drain(..) {
            heaps[id] = heap;
        }

        let total: usize = chunks.iter().map(|(_, n)| n).sum();
        let stride = self.layout.stride();
        let mut data = Vec::with_capacity(total * stride);
        for (chunk, _) in &chunks {
            data.extend_from_slice(chunk);
        }

        let mut index = RobinHoodTable::new();
        index.reset(total);
        for r in 0..total {
            let h = self.layout.read_hash(&data[r * stride..(r + 1) * stride]);
            index.insert(h, r as u32);
        }

        let mut cells = Vec::new();
        cells.resize_with(total * aggs.len().max(1), || AtomicI64::new(0));

        Arc::new(GroupJoinState {
            layout: self.layout.clone(),
            key_cols: self.key_cols.clone(),
            heaps,
            data,
            rows: total,
            index,
            aggs,
            cells,
        })
    }
}

impl Sink for GroupJoinBuildSink {
    fn create_local(&self) -> LocalState {
        Box::new(BuildLocal {
            rows: Vec::new(),
            heap: StrHeap::new(),
            heap_id: self.next_heap_id.fetch_add(1, Ordering::Relaxed),
            hashes: Vec::new(),
            count: 0,
        })
    }

    fn consume(&self, local: &mut LocalState, input: Batch) -> ExecResult {
        let local = local.downcast_mut::<BuildLocal>().unwrap();
        let n = input.num_rows();
        let key_cols: Vec<_> = self.key_cols.iter().map(|&c| input.column(c)).collect();
        let mut hashes = std::mem::take(&mut local.hashes);
        hash_columns(&key_cols, n, &mut hashes);
        drop(key_cols);
        let stride = self.layout.stride();
        for r in 0..n {
            let at = local.rows.len();
            local.rows.resize(at + stride, 0);
            self.layout.encode_row(
                &mut local.rows[at..at + stride],
                hashes[r],
                &input,
                r,
                &mut local.heap,
                local.heap_id,
            );
        }
        local.count += n;
        local.hashes = hashes;
        Ok(())
    }

    fn finish_local(&self, local: LocalState) -> ExecResult {
        let local = *local.downcast::<BuildLocal>().unwrap();
        let mut global = self.global.lock();
        global.chunks.push((local.rows, local.count));
        global.heaps.push((local.heap_id, local.heap));
        Ok(())
    }
}

/// The frozen build side: indexed rows + per-row atomic aggregate cells.
pub struct GroupJoinState {
    layout: RowLayout,
    key_cols: Vec<usize>,
    heaps: Vec<StrHeap>,
    data: Vec<u8>,
    rows: usize,
    index: RobinHoodTable,
    aggs: Vec<GroupAggSpec>,
    cells: Vec<AtomicI64>,
}

impl GroupJoinState {
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Output schema: build columns followed by the aggregates.
    pub fn output_schema(&self, build_schema: &Schema) -> Schema {
        let mut fields = build_schema.fields.clone();
        for a in &self.aggs {
            fields.push(Field::new(a.name.clone(), a.output_type()));
        }
        Schema::new(fields)
    }
}

/// In-pipeline probe: updates the matched build rows' aggregate cells.
/// Emits nothing — the groupjoin's output pipeline starts at
/// [`GroupJoinSource`].
pub struct GroupJoinProbeOp {
    state: Arc<GroupJoinState>,
    probe_keys: Vec<usize>,
}

impl GroupJoinProbeOp {
    pub fn new(state: Arc<GroupJoinState>, probe_keys: Vec<usize>) -> GroupJoinProbeOp {
        GroupJoinProbeOp { state, probe_keys }
    }
}

struct ProbeLocal {
    hashes: Vec<u64>,
}

impl Operator for GroupJoinProbeOp {
    fn create_local(&self) -> LocalState {
        Box::new(ProbeLocal { hashes: Vec::new() })
    }

    fn process(&self, local: &mut LocalState, input: Batch, _out: Emit) -> ExecResult {
        let local = local.downcast_mut::<ProbeLocal>().unwrap();
        let n = input.num_rows();
        let key_cols: Vec<_> = self.probe_keys.iter().map(|&c| input.column(c)).collect();
        let mut hashes = std::mem::take(&mut local.hashes);
        hash_columns(&key_cols, n, &mut hashes);
        drop(key_cols);

        let s = &self.state;
        let stride = s.layout.stride();
        let n_aggs = s.aggs.len().max(1);
        for r in 0..n {
            let h = hashes[r];
            s.index.for_each_match(h, |row_id| {
                let row = &s.data[row_id as usize * stride..(row_id as usize + 1) * stride];
                if s.layout.read_hash(row) == h
                    && s.layout.keys_match_batch(
                        row,
                        &s.key_cols,
                        &s.heaps,
                        &input,
                        &self.probe_keys,
                        r,
                    )
                {
                    for (a, spec) in s.aggs.iter().enumerate() {
                        let delta = match spec.func {
                            GroupAggFunc::CountMatches => 1,
                            GroupAggFunc::SumInt64 | GroupAggFunc::SumDecimal => {
                                input.column(spec.input).as_i64()[r]
                            }
                        };
                        s.cells[row_id as usize * n_aggs + a].fetch_add(delta, Ordering::Relaxed);
                    }
                }
            });
        }
        local.hashes = hashes;
        Ok(())
    }
}

/// Output pipeline starter: every build row once, with its aggregates.
pub struct GroupJoinSource {
    state: Arc<GroupJoinState>,
}

/// Rows per output task.
const TASK_ROWS: usize = 64 * 1024;

impl GroupJoinSource {
    pub fn new(state: Arc<GroupJoinState>) -> GroupJoinSource {
        GroupJoinSource { state }
    }
}

impl Source for GroupJoinSource {
    fn task_count(&self) -> usize {
        self.state.rows.div_ceil(TASK_ROWS)
    }

    fn poll_task(&self, task: usize, out: Emit) -> ExecResult {
        let s = &self.state;
        let stride = s.layout.stride();
        let n_aggs = s.aggs.len().max(1);
        let start = task * TASK_ROWS;
        let end = ((task + 1) * TASK_ROWS).min(s.rows);
        let mut types: Vec<DataType> = s.layout.types().to_vec();
        for a in &s.aggs {
            types.push(a.output_type());
        }
        let mut bb = BatchBuilder::new(types);
        let mut cursor = start;
        while cursor < end {
            let chunk_end = (cursor + BATCH_ROWS).min(end);
            let offsets: Vec<usize> = (cursor..chunk_end).map(|r| r * stride).collect();
            for c in 0..s.layout.num_columns() {
                s.layout
                    .decode_column_into(&s.data, &offsets, c, &s.heaps, bb.column_mut(c));
            }
            for (a, _) in s.aggs.iter().enumerate() {
                let col = bb.column_mut(s.layout.num_columns() + a);
                match col {
                    ColumnData::Int64(v) | ColumnData::Decimal(v) => {
                        v.extend(
                            (cursor..chunk_end)
                                .map(|r| s.cells[r * n_aggs + a].load(Ordering::Relaxed)),
                        );
                    }
                    _ => unreachable!("groupjoin aggregates are 64-bit"),
                }
            }
            bb.advance(chunk_end - cursor);
            if let Some(b) = bb.flush() {
                out(b);
            }
            cursor = chunk_end;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use joinstudy_storage::types::Value;

    fn run_groupjoin(
        build: &[(i64, i64)],
        probe: &[(i64, i64)],
        aggs: Vec<GroupAggSpec>,
    ) -> Vec<Vec<Value>> {
        let sink = GroupJoinBuildSink::new(&[DataType::Int64, DataType::Int64], vec![0]);
        let mut local = sink.create_local();
        let mut bb = BatchBuilder::new(vec![DataType::Int64, DataType::Int64]);
        for &(k, v) in build {
            bb.push_row(&[Value::Int64(k), Value::Int64(v)]);
        }
        if let Some(b) = bb.flush() {
            sink.consume(&mut local, b).unwrap();
        }
        sink.finish_local(local).unwrap();
        let state = sink.into_state(aggs);

        let op = GroupJoinProbeOp::new(Arc::clone(&state), vec![0]);
        let mut plocal = op.create_local();
        let mut pb = BatchBuilder::new(vec![DataType::Int64, DataType::Int64]);
        for &(k, v) in probe {
            pb.push_row(&[Value::Int64(k), Value::Int64(v)]);
        }
        if let Some(b) = pb.flush() {
            op.process(&mut plocal, b, &mut |_| {
                panic!("groupjoin probe must not emit")
            })
            .unwrap();
        }

        let source = GroupJoinSource::new(state);
        let mut rows = Vec::new();
        for t in 0..source.task_count() {
            source
                .poll_task(t, &mut |b| {
                    for r in 0..b.num_rows() {
                        rows.push((0..b.num_columns()).map(|c| b.value(c, r)).collect());
                    }
                })
                .unwrap();
        }
        rows.sort_by_key(|r: &Vec<Value>| r[0].as_i64());
        rows
    }

    #[test]
    fn counts_matches_including_empty_groups() {
        let build = vec![(1, 10), (2, 20), (3, 30)];
        let probe = vec![(1, 100), (1, 101), (3, 300), (9, 900)];
        let rows = run_groupjoin(&build, &probe, vec![GroupAggSpec::count("n")]);
        assert_eq!(rows.len(), 3);
        assert_eq!(
            rows[0],
            vec![Value::Int64(1), Value::Int64(10), Value::Int64(2)]
        );
        assert_eq!(
            rows[1],
            vec![Value::Int64(2), Value::Int64(20), Value::Int64(0)]
        );
        assert_eq!(
            rows[2],
            vec![Value::Int64(3), Value::Int64(30), Value::Int64(1)]
        );
    }

    #[test]
    fn sums_probe_column() {
        let build = vec![(7, 0), (8, 0)];
        let probe = vec![(7, 5), (7, 6), (8, -2)];
        let rows = run_groupjoin(
            &build,
            &probe,
            vec![
                GroupAggSpec::count("n"),
                GroupAggSpec::sum(GroupAggFunc::SumInt64, 1, "s"),
            ],
        );
        assert_eq!(rows[0][2], Value::Int64(2));
        assert_eq!(rows[0][3], Value::Int64(11));
        assert_eq!(rows[1][2], Value::Int64(1));
        assert_eq!(rows[1][3], Value::Int64(-2));
    }

    #[test]
    fn duplicate_build_keys_each_get_their_matches() {
        // Groupjoin groups by build *row*, so duplicate keys both count.
        let build = vec![(5, 1), (5, 2)];
        let probe = vec![(5, 0), (5, 0), (5, 0)];
        let rows = run_groupjoin(&build, &probe, vec![GroupAggSpec::count("n")]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][2], Value::Int64(3));
        assert_eq!(rows[1][2], Value::Int64(3));
    }

    #[test]
    fn empty_probe_yields_all_zero_groups() {
        let build = vec![(1, 0), (2, 0)];
        let rows = run_groupjoin(&build, &[], vec![GroupAggSpec::count("n")]);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r[2] == Value::Int64(0)));
    }
}
