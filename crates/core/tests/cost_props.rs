//! Property tests on the Table-4 regime cost model: for any workload point
//! the chosen algorithm's modeled cost is minimal among the three (modulo
//! the documented BHJ preference margin), the Bloom variant is never chosen
//! where its reducer may not drop tuples, and the partition-or-not answer
//! is monotone in build size across the LLC boundary — the paper's regime
//! structure (partitioning pays off only *above* a workable size), which
//! [`Calibration::sanitize`] guarantees for any calibration input.

use joinstudy_core::cost::{Calibration, CostModel, JoinEstimate, BHJ_PREFERENCE_MARGIN};
use joinstudy_core::JoinAlgo;
use proptest::prelude::*;

/// A random-but-plausible calibration, passed through `sanitize` exactly
/// like one loaded from `results/calibration.json`.
#[allow(clippy::too_many_arguments)]
fn calibration(
    llc_mib: f64,
    build_hit: f64,
    build_miss: f64,
    probe_hit: f64,
    probe_miss: f64,
    partition_pass: f64,
    rh_build: f64,
    rh_probe: f64,
) -> Calibration {
    Calibration {
        llc_bytes: llc_mib * 1024.0 * 1024.0,
        bhj_build_hit: build_hit,
        bhj_build_miss: build_miss,
        bhj_probe_hit: probe_hit,
        bhj_probe_miss: probe_miss,
        partition_pass,
        rh_build,
        rh_probe,
        ..Calibration::default_constants()
    }
    .sanitize()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The decision is cost-minimal: the chosen algorithm's modeled cost
    /// never exceeds the true minimum by more than the BHJ preference
    /// margin (and only the BHJ may claim that slack).
    #[test]
    fn chosen_cost_is_minimal_among_the_three(
        build_rows in 1.0f64..5e8,
        probe_ratio in 0.1f64..1000.0,
        build_width in 8.0f64..128.0,
        probe_width in 8.0f64..128.0,
        sigma in 0.0f64..1.0,
        allow_bloom: bool,
        llc_mib in 1.0f64..64.0,
        build_hit in 0.5f64..8.0,
        build_miss in 1.0f64..60.0,
        probe_hit in 0.5f64..8.0,
        probe_miss in 1.0f64..60.0,
        partition_pass in 0.5f64..12.0,
        rh_build in 0.5f64..8.0,
        rh_probe in 0.5f64..8.0,
    ) {
        let model = CostModel::new(calibration(
            llc_mib, build_hit, build_miss, probe_hit, probe_miss,
            partition_pass, rh_build, rh_probe,
        ));
        let e = JoinEstimate {
            build_rows,
            probe_rows: build_rows * probe_ratio,
            build_width,
            probe_width,
            bloom_selectivity: sigma,
            allow_bloom,
        };
        let d = model.decide(&e);
        prop_assert!(d.algo != JoinAlgo::Adaptive, "decision must be concrete");
        let min = d.costs.bhj.min(d.costs.rj).min(d.costs.brj);
        let chosen = d.costs.of(d.algo);
        prop_assert!(chosen.is_finite(), "chosen cost must be finite: {d}");
        // Exactly minimal, except the BHJ may win ties within the margin.
        let slack = if d.algo == JoinAlgo::Bhj {
            min / (1.0 - BHJ_PREFERENCE_MARGIN)
        } else {
            min
        };
        prop_assert!(
            chosen <= slack * (1.0 + 1e-12),
            "{:?} cost {chosen} vs minimum {min}: {d}", d.algo
        );
        if !allow_bloom {
            prop_assert!(d.algo != JoinAlgo::Brj, "BRJ chosen with bloom disallowed: {d}");
        }
    }

    /// Scanning build size across the LLC boundary (probe scaled with it,
    /// the Table-4 workload shape), the answer to the join question flips
    /// at most once, from "do not partition" to "partition". Bloom is
    /// disabled: the three-way frontier with σ is not monotone in general.
    #[test]
    fn partition_decision_is_monotone_in_build_size(
        probe_ratio in 0.5f64..100.0,
        build_width in 8.0f64..64.0,
        llc_mib in 1.0f64..64.0,
        build_hit in 0.5f64..8.0,
        build_miss in 1.0f64..60.0,
        probe_hit in 0.5f64..8.0,
        probe_miss in 1.0f64..60.0,
        partition_pass in 0.5f64..12.0,
        rh_build in 0.5f64..8.0,
        rh_probe in 0.5f64..8.0,
    ) {
        let cal = calibration(
            llc_mib, build_hit, build_miss, probe_hit, probe_miss,
            partition_pass, rh_build, rh_probe,
        );
        let llc = cal.llc_bytes;
        let model = CostModel::new(cal);
        // Geometric sweep from well below to well past the cache-miss ramp.
        let mut partitioned_since: Option<i32> = None;
        for step in 0..40i32 {
            let ht_bytes = llc * 1e-3 * 1.5f64.powi(step);
            let build_rows = (ht_bytes / (build_width + 16.0)).max(1.0);
            let e = JoinEstimate {
                build_rows,
                probe_rows: build_rows * probe_ratio,
                build_width,
                probe_width: build_width,
                bloom_selectivity: 1.0,
                allow_bloom: false,
            };
            let d = model.decide(&e);
            match (d.algo, partitioned_since) {
                (JoinAlgo::Bhj, Some(since)) => prop_assert!(
                    false,
                    "non-monotone: partitioned at step {since}, BHJ again at step {step} \
                     (ht {ht_bytes:.0} B, LLC {llc:.0} B): {d}"
                ),
                (JoinAlgo::Bhj, None) => {}
                (_, None) => partitioned_since = Some(step),
                (_, Some(_)) => {}
            }
        }
    }
}
