//! Property tests on profiler accounting: tuple counts must obey
//! conservation laws on arbitrary inputs under every join algorithm and
//! thread count. A filter never manufactures rows, a join's reported
//! output equals the actual result cardinality (cross-checked against a
//! hash-map reference), the sink sees exactly the result, and no
//! operator's aggregate busy time exceeds what the worker pool could have
//! spent inside the measured wall clock.

use joinstudy_core::{Engine, JoinAlgo, JoinType, Plan};
use joinstudy_exec::expr::Expr;
use joinstudy_storage::table::{Schema, TableBuilder};
use joinstudy_storage::types::{DataType, Value};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

fn int_table(values: &[i64]) -> Arc<joinstudy_storage::table::Table> {
    let mut b = TableBuilder::new(Schema::of(&[("k", DataType::Int64)]));
    for &v in values {
        b.push_row(&[Value::Int64(v)]);
    }
    Arc::new(b.finish())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn profiled_counts_obey_conservation_laws(
        build in prop::collection::vec(-40i64..40, 0..500),
        probe in prop::collection::vec(-40i64..40, 0..1000),
        threshold in -40i64..41,
        algo_pick in 0usize..3,
        threads in 1usize..5,
    ) {
        let algo = [JoinAlgo::Bhj, JoinAlgo::Rj, JoinAlgo::Brj][algo_pick];

        // Reference: join size after filtering the probe side.
        let mut counts: HashMap<i64, usize> = HashMap::new();
        for k in &build {
            *counts.entry(*k).or_default() += 1;
        }
        let kept: Vec<i64> = probe.iter().copied().filter(|k| *k < threshold).collect();
        let expected: usize = kept
            .iter()
            .map(|k| counts.get(k).copied().unwrap_or(0))
            .sum();

        let bt = int_table(&build);
        let pt = int_table(&probe);
        let plan = Plan::scan(&bt, &["k"], None).join(
            Plan::scan(&pt, &["k"], None).filter(Expr::col(0).lt(Expr::i64(threshold))),
            algo,
            JoinType::Inner,
            &[0],
            &[0],
        );

        let engine = Engine::new(threads);
        engine.ctx.set_profiling(true);
        let result = engine.run(&plan);
        let profile = engine.take_profile().expect("profiling on");
        prop_assert_eq!(result.num_rows(), expected, "{:?} result size", algo);

        // Sink conservation: the Output node consumed exactly the result.
        prop_assert_eq!(profile.root.rows_in, expected as u64);

        let nodes = profile.nodes();
        let filter = nodes
            .iter()
            .find(|n| n.label.starts_with("Filter"))
            .expect("plan has a Filter node");
        prop_assert_eq!(filter.rows_in, probe.len() as u64);
        prop_assert_eq!(filter.rows_out, kept.len() as u64);
        prop_assert!(filter.rows_out <= filter.rows_in);

        let join = nodes
            .iter()
            .find(|n| n.label.starts_with("Join"))
            .expect("plan has a Join node");
        prop_assert_eq!(join.rows_out, expected as u64, "{:?} join rows_out", algo);

        // Busy-time bound: each node's busy is summed over at most
        // `threads` workers per pipeline and pipelines run sequentially,
        // so it can never exceed wall * threads.
        let budget = profile.wall_ns.saturating_mul(profile.threads as u64);
        for n in &nodes {
            prop_assert!(
                n.busy_ns <= budget,
                "node {} busy {}ns exceeds wall {}ns x {} threads",
                n.label, n.busy_ns, profile.wall_ns, profile.threads
            );
        }
    }

    #[test]
    fn profiling_is_result_transparent(
        build in prop::collection::vec(-24i64..24, 0..300),
        probe in prop::collection::vec(-24i64..24, 0..600),
        algo_pick in 0usize..3,
    ) {
        let algo = [JoinAlgo::Bhj, JoinAlgo::Rj, JoinAlgo::Brj][algo_pick];
        let bt = int_table(&build);
        let pt = int_table(&probe);
        let plan = Plan::scan(&bt, &["k"], None).join(
            Plan::scan(&pt, &["k"], None),
            algo,
            JoinType::Inner,
            &[0],
            &[0],
        );
        let engine = Engine::new(2);

        let plain = engine.run(&plan);
        prop_assert!(engine.take_profile().is_none());

        engine.ctx.set_profiling(true);
        let profiled = engine.run(&plan);
        prop_assert!(engine.take_profile().is_some());

        let canon = |t: &joinstudy_storage::table::Table| {
            let mut rows: Vec<i64> = (0..t.num_rows())
                .flat_map(|r| t.row(r).iter().map(|v| match v {
                    Value::Int64(x) => *x,
                    other => panic!("unexpected value {other:?}"),
                }).collect::<Vec<_>>())
                .collect();
            rows.sort_unstable();
            rows
        };
        prop_assert_eq!(canon(&plain), canon(&profiled), "{:?}", algo);
    }
}
