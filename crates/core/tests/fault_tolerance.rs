//! Fault-tolerance integration tests: cancellation, timeouts, and the
//! memory-budget degradation path (RJ → BHJ) through the full engine.

use joinstudy_core::{Engine, JoinAlgo, JoinType, Plan};
use joinstudy_exec::error::ExecError;
use joinstudy_exec::metrics;
use joinstudy_exec::ops::{AggFunc, AggSpec};
use joinstudy_storage::table::{Schema, Table, TableBuilder};
use joinstudy_storage::types::{DataType, Value};
use std::sync::Arc;
use std::time::Duration;

fn table_kv(rows: usize, key_mod: usize) -> Arc<Table> {
    let schema = Schema::of(&[("k", DataType::Int64), ("v", DataType::Int64)]);
    let mut b = TableBuilder::with_capacity(schema, rows);
    for i in 0..rows {
        b.push_row(&[Value::Int64((i % key_mod) as i64), Value::Int64(i as i64)]);
    }
    Arc::new(b.finish())
}

fn count_join_plan(build: &Arc<Table>, probe: &Arc<Table>, algo: JoinAlgo) -> Plan {
    Plan::scan(build, &["k", "v"], None)
        .join(
            Plan::scan(probe, &["k", "v"], None),
            algo,
            JoinType::Inner,
            &[0],
            &[0],
        )
        .aggregate(&[], vec![AggSpec::new(AggFunc::CountStar, 0, "cnt")])
}

#[test]
fn cross_thread_cancellation_stops_the_query() {
    let build = table_kv(60_000, 60_000);
    let probe = table_kv(400_000, 60_000);
    let plan = count_join_plan(&build, &probe, JoinAlgo::Rj);
    let engine = Engine::new(2);
    let ctx = Arc::clone(&engine.ctx);

    // `execute` re-arms the context, so the cancel must land mid-flight.
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(5));
        ctx.cancel();
    });
    let err = engine.execute(&plan).err();
    canceller.join().unwrap();
    assert_eq!(err, Some(ExecError::Cancelled));

    // All workers joined, all budget released, engine stays usable.
    assert_eq!(engine.ctx.used(), 0);
    let t = engine.run(&count_join_plan(&build, &probe, JoinAlgo::Bhj));
    assert_eq!(t.column_by_name("cnt").as_i64()[0], 400_000);
}

#[test]
fn deadline_surfaces_as_timeout() {
    let build = table_kv(60_000, 60_000);
    let probe = table_kv(400_000, 60_000);
    let plan = count_join_plan(&build, &probe, JoinAlgo::Bhj);
    let engine = Engine::new(2);
    engine.ctx.set_timeout(Some(Duration::from_millis(1)));
    match engine.execute(&plan) {
        Err(ExecError::Timeout { budget_ms: 1 }) => {}
        other => panic!("expected 1 ms timeout, got {:?}", other.err()),
    }
    assert_eq!(engine.ctx.used(), 0);

    // Clearing the deadline makes the same engine succeed again.
    engine.ctx.set_timeout(None);
    let t = engine.run(&plan);
    assert_eq!(t.column_by_name("cnt").as_i64()[0], 400_000);
}

#[test]
fn radix_join_degrades_to_bhj_under_memory_budget() {
    // The paper's trade-off, exercised as a fallback: the radix join
    // materializes BOTH sides, the BHJ only the build side. A budget that
    // holds the build side but not the partitioned probe side must degrade
    // RJ → BHJ and still produce the exact result.
    let build = table_kv(1_000, 1_000); // 16 KiB of build rows
    let probe = table_kv(200_000, 1_000); // 3.2 MiB of probe rows
    let plan = count_join_plan(&build, &probe, JoinAlgo::Rj);

    let unbudgeted = Engine::new(2).run(&plan);
    let expected = unbudgeted.column_by_name("cnt").as_i64()[0];
    assert_eq!(expected, 200_000);

    let engine = Engine::new(2);
    engine.ctx.set_memory_budget(Some(512 * 1024));
    let before = metrics::degradations();
    let t = engine.run(&plan);
    assert_eq!(t.column_by_name("cnt").as_i64()[0], expected);
    assert_eq!(
        metrics::degradations(),
        before + 1,
        "budgeted RJ should have fallen back to BHJ exactly once"
    );
    assert_eq!(engine.ctx.used(), 0, "all leases released after the query");

    // An impossible budget still fails — but with the typed error.
    engine.ctx.set_memory_budget(Some(1024));
    match engine.execute(&plan) {
        Err(ExecError::BudgetExceeded { budget, .. }) => assert_eq!(budget, 1024),
        other => panic!("expected budget breach, got {:?}", other.err()),
    }
    assert_eq!(engine.ctx.used(), 0);
}

#[test]
fn brj_also_degrades_and_bloom_budget_is_charged() {
    let build = table_kv(1_000, 1_000);
    let probe = table_kv(200_000, 1_000);
    let plan = count_join_plan(&build, &probe, JoinAlgo::Brj);
    let engine = Engine::new(2);
    engine.ctx.set_memory_budget(Some(512 * 1024));
    let before = metrics::degradations();
    let t = engine.run(&plan);
    assert_eq!(t.column_by_name("cnt").as_i64()[0], 200_000);
    assert_eq!(metrics::degradations(), before + 1);
    assert_eq!(engine.ctx.used(), 0);
}

#[test]
fn budget_high_water_tracks_peak_reservation() {
    let build = table_kv(5_000, 5_000);
    let probe = table_kv(20_000, 5_000);
    let plan = count_join_plan(&build, &probe, JoinAlgo::Rj);
    let engine = Engine::new(2);
    engine.ctx.set_memory_budget(Some(64 * 1024 * 1024));
    engine.run(&plan);
    // Both sides were materialized at some point: the peak must cover at
    // least the contiguous copies of build + probe rows (16 B stride).
    assert!(
        engine.ctx.high_water() >= (5_000 + 20_000) * 16,
        "high water {} too low",
        engine.ctx.high_water()
    );
    assert_eq!(engine.ctx.used(), 0);
}
