//! Property tests on the radix machinery: partitioning is a
//! hash-consistent permutation under arbitrary configurations; the Bloom
//! filter never loses a key; the row layout round-trips arbitrary values;
//! the partition-wise join matches a hash-map reference.

use joinstudy_core::bloom::BlockedBloom;
use joinstudy_core::hash::hash_u64;
use joinstudy_core::radix::{partition_of, PartitionSink, PhaseSet, RadixConfig};
use joinstudy_core::row::{RowLayout, StrHeap};
use joinstudy_exec::batch::BatchBuilder;
use joinstudy_exec::pipeline::Sink;
use joinstudy_storage::column::ColumnData;
use joinstudy_storage::types::{DataType, Value};
use proptest::prelude::*;
use std::collections::HashMap;

fn partition(
    values: &[i64],
    cfg: RadixConfig,
    bits2: u32,
) -> joinstudy_core::radix::PartitionedSide {
    let layout = RowLayout::new(&[DataType::Int64], false);
    let sink = PartitionSink::new(layout, vec![0], cfg, PhaseSet::build());
    let mut local = sink.create_local();
    for chunk in values.chunks(1024) {
        let mut bb = BatchBuilder::new(vec![DataType::Int64]);
        *bb.column_mut(0) = ColumnData::Int64(chunk.to_vec());
        bb.advance(chunk.len());
        sink.consume(&mut local, bb.flush().unwrap()).unwrap();
    }
    sink.finish_local(local).unwrap();
    sink.finalize(1, Some(bits2), false).unwrap().0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn partitioning_is_hash_consistent_permutation(
        values in prop::collection::vec(any::<i64>(), 0..4000),
        bits1 in 1u32..7,
        bits2 in 0u32..4,
        use_swwcb: bool,
        use_nt: bool,
    ) {
        let cfg = RadixConfig {
            bits_pass1: bits1,
            use_swwcb,
            use_nt_stores: use_nt,
            ..RadixConfig::default()
        };
        let side = partition(&values, cfg, bits2);
        prop_assert_eq!(side.total_rows(), values.len());
        let stride = side.layout().stride();
        let data = side.data_bytes();
        let mut got = Vec::new();
        for p in 0..side.num_partitions() {
            for r in side.partition_row_range(p) {
                let row = &data[r * stride..(r + 1) * stride];
                let h = side.layout().read_hash(row);
                let v = joinstudy_core::row::read_u64(row, side.layout().col_offset(0)) as i64;
                prop_assert_eq!(h, hash_u64(v as u64));
                prop_assert_eq!(partition_of(h, side.bits1(), side.bits2()), p);
                got.push(v);
            }
        }
        let mut want = values.clone();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn bloom_never_loses_inserted_keys(
        keys in prop::collection::vec(any::<u64>(), 1..2000),
        parts_log in 0u32..8,
    ) {
        let parts = 1usize << parts_log;
        let bloom = BlockedBloom::new(parts, keys.len());
        for &k in &keys {
            let h = hash_u64(k);
            bloom.insert(h as usize & (parts - 1), h);
        }
        for &k in &keys {
            let h = hash_u64(k);
            prop_assert!(bloom.contains(h as usize & (parts - 1), h));
        }
    }

    #[test]
    fn row_layout_roundtrips_arbitrary_values(
        rows in prop::collection::vec(
            (any::<i64>(), any::<i32>(), "[a-z]{0,12}", any::<bool>()),
            1..64
        )
    ) {
        let types = [DataType::Int64, DataType::Int32, DataType::Str, DataType::Bool];
        let layout = RowLayout::new(&types, false);
        let mut bb = BatchBuilder::new(types.to_vec());
        for (a, b, s, f) in &rows {
            bb.push_row(&[
                Value::Int64(*a),
                Value::Int32(*b),
                Value::Str(s.clone()),
                Value::Bool(*f),
            ]);
        }
        let batch = bb.flush().unwrap();
        let stride = layout.stride();
        let mut data = vec![0u8; stride * rows.len()];
        let mut heap = StrHeap::new();
        for r in 0..rows.len() {
            layout.encode_row(
                &mut data[r * stride..r * stride + layout.width()],
                hash_u64(r as u64),
                &batch,
                r,
                &mut heap,
                0,
            );
        }
        let heaps = vec![heap];
        let offsets: Vec<usize> = (0..rows.len()).map(|r| r * stride).collect();
        for (c, &t) in types.iter().enumerate() {
            let mut out = ColumnData::new(t);
            layout.decode_column_into(&data, &offsets, c, &heaps, &mut out);
            for r in 0..rows.len() {
                prop_assert_eq!(out.value(r), batch.value(c, r), "col {} row {}", c, r);
            }
        }
    }

    #[test]
    fn engine_inner_join_matches_hashmap_reference(
        build in prop::collection::vec((-16i64..16, any::<i16>()), 0..300),
        probe in prop::collection::vec(-16i64..16, 0..600),
    ) {
        use joinstudy_core::{Engine, JoinAlgo, JoinType, Plan};
        use joinstudy_exec::ops::{AggFunc, AggSpec};
        use joinstudy_storage::table::{Schema, TableBuilder};

        let mut counts: HashMap<i64, usize> = HashMap::new();
        for (k, _) in &build {
            *counts.entry(*k).or_default() += 1;
        }
        let expected: usize = probe.iter().map(|k| counts.get(k).copied().unwrap_or(0)).sum();

        let schema = Schema::of(&[("k", DataType::Int64)]);
        let mut bt = TableBuilder::new(schema.clone());
        for (k, _) in &build {
            bt.push_row(&[Value::Int64(*k)]);
        }
        let bt = std::sync::Arc::new(bt.finish());
        let mut pt = TableBuilder::new(schema);
        for k in &probe {
            pt.push_row(&[Value::Int64(*k)]);
        }
        let pt = std::sync::Arc::new(pt.finish());

        for algo in [JoinAlgo::Rj, JoinAlgo::Brj] {
            let plan = Plan::scan(&bt, &["k"], None)
                .join(Plan::scan(&pt, &["k"], None), algo, JoinType::Inner, &[0], &[0])
                .aggregate(&[], vec![AggSpec::new(AggFunc::CountStar, 0, "cnt")]);
            let t = Engine::new(1).run(&plan);
            prop_assert_eq!(t.column_by_name("cnt").as_i64()[0] as usize, expected, "{:?}", algo);
        }
    }
}
