//! Property test: the groupjoin must agree with its relational
//! decomposition — aggregate-the-probe-side, then left-outer-join — on
//! arbitrary inputs, and must be invariant to the probe's worker split.

use joinstudy_core::groupjoin::GroupAggSpec;
use joinstudy_core::{Engine, Plan};
use joinstudy_exec::ops::SortKey;
use joinstudy_storage::column::ColumnData;
use joinstudy_storage::table::{Schema, Table, TableBuilder};
use joinstudy_storage::types::DataType;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

fn kv_table(rows: &[(i64, i64)]) -> Arc<Table> {
    let schema = Schema::of(&[("k", DataType::Int64), ("v", DataType::Int64)]);
    let mut b = TableBuilder::with_capacity(schema, rows.len());
    *b.column_mut(0) = ColumnData::Int64(rows.iter().map(|r| r.0).collect());
    *b.column_mut(1) = ColumnData::Int64(rows.iter().map(|r| r.1).collect());
    Arc::new(b.finish())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn groupjoin_matches_reference(
        build in prop::collection::vec((-10i64..10, -100i64..100), 0..150),
        probe in prop::collection::vec((-10i64..10, -100i64..100), 0..300),
        threads in 1usize..4,
    ) {
        let bt = kv_table(&build);
        let pt = kv_table(&probe);
        let plan = Plan::scan(&bt, &["k", "v"], None)
            .group_join(
                Plan::scan(&pt, &["k", "v"], None),
                &[0],
                &[0],
                vec![
                    GroupAggSpec::count("n"),
                    GroupAggSpec::sum(
                        joinstudy_core::groupjoin::GroupAggFunc::SumInt64,
                        1,
                        "s",
                    ),
                ],
            )
            .sort(vec![SortKey::asc(0), SortKey::asc(1)], None);
        let t = Engine::new(threads).run(&plan);

        // Reference: per-key match count and sum over the probe side.
        let mut per_key: HashMap<i64, (i64, i64)> = HashMap::new();
        for &(k, v) in &probe {
            let e = per_key.entry(k).or_insert((0, 0));
            e.0 += 1;
            e.1 += v;
        }
        // One output row per build row, sorted like the plan's ORDER BY.
        let mut want: Vec<(i64, i64, i64, i64)> = build
            .iter()
            .map(|&(k, v)| {
                let (n, s) = per_key.get(&k).copied().unwrap_or((0, 0));
                (k, v, n, s)
            })
            .collect();
        want.sort();

        prop_assert_eq!(t.num_rows(), want.len());
        for (r, w) in want.iter().enumerate() {
            let got = (
                t.column(0).as_i64()[r],
                t.column(1).as_i64()[r],
                t.column(2).as_i64()[r],
                t.column(3).as_i64()[r],
            );
            prop_assert_eq!(got, *w, "row {}", r);
        }
    }
}
