//! Configuration-matrix stress: every join algorithm must stay correct
//! under extreme radix configurations, adversarial keys, long strings and
//! engine-knob combinations — the "it's just a tuning knob, not a
//! correctness knob" guarantee.

use joinstudy_core::{Engine, JoinAlgo, JoinType, Plan, RadixConfig};
use joinstudy_exec::ops::{AggFunc, AggSpec};
use joinstudy_storage::column::ColumnData;
use joinstudy_storage::table::{Schema, Table, TableBuilder};
use joinstudy_storage::types::{DataType, Value};
use std::sync::Arc;

fn kv_table(rows: &[(i64, i64)]) -> Arc<Table> {
    let schema = Schema::of(&[("k", DataType::Int64), ("v", DataType::Int64)]);
    let mut b = TableBuilder::with_capacity(schema, rows.len());
    *b.column_mut(0) = ColumnData::Int64(rows.iter().map(|r| r.0).collect());
    *b.column_mut(1) = ColumnData::Int64(rows.iter().map(|r| r.1).collect());
    Arc::new(b.finish())
}

fn count_join(engine: &Engine, bt: &Arc<Table>, pt: &Arc<Table>, algo: JoinAlgo) -> i64 {
    let plan = Plan::scan(bt, &["k", "v"], None)
        .join(
            Plan::scan(pt, &["k", "v"], None),
            algo,
            JoinType::Inner,
            &[0],
            &[0],
        )
        .aggregate(&[], vec![AggSpec::new(AggFunc::CountStar, 0, "cnt")]);
    engine.run(&plan).column_by_name("cnt").as_i64()[0]
}

#[test]
fn radix_config_extremes_are_correct() {
    let build: Vec<(i64, i64)> = (0..5000).map(|i| (i % 700, i)).collect();
    let probe: Vec<(i64, i64)> = (0..20_000).map(|i| (i % 1400, i)).collect();
    let bt = kv_table(&build);
    let pt = kv_table(&probe);
    let expected = count_join(&Engine::new(1), &bt, &pt, JoinAlgo::Bhj);

    let configs = [
        RadixConfig {
            bits_pass1: 1,
            max_bits_pass2: 0,
            ..RadixConfig::default()
        },
        RadixConfig {
            bits_pass1: 1,
            max_bits_pass2: 8,
            target_partition_bytes: 256,
            ..RadixConfig::default()
        },
        RadixConfig {
            bits_pass1: 10,
            max_bits_pass2: 2,
            ..RadixConfig::default()
        },
        RadixConfig {
            bits_pass1: 6,
            max_bits_pass2: 8,
            target_partition_bytes: 1 << 30,
            ..RadixConfig::default()
        },
        RadixConfig {
            use_swwcb: false,
            use_nt_stores: false,
            ..RadixConfig::default()
        },
        RadixConfig {
            use_swwcb: true,
            use_nt_stores: false,
            ..RadixConfig::default()
        },
    ];
    for (i, cfg) in configs.iter().enumerate() {
        for threads in [1, 3] {
            let mut engine = Engine::new(threads);
            engine.radix = *cfg;
            for algo in [JoinAlgo::Rj, JoinAlgo::Brj] {
                assert_eq!(
                    count_join(&engine, &bt, &pt, algo),
                    expected,
                    "config {i} {algo:?} threads={threads}"
                );
            }
        }
    }
}

#[test]
fn adversarial_identical_keys() {
    // Everything hashes to one partition / one bucket chain.
    let build: Vec<(i64, i64)> = (0..300).map(|i| (42, i)).collect();
    let probe: Vec<(i64, i64)> = (0..500).map(|i| (42, i)).collect();
    let bt = kv_table(&build);
    let pt = kv_table(&probe);
    for algo in [JoinAlgo::Bhj, JoinAlgo::Rj, JoinAlgo::Brj] {
        assert_eq!(
            count_join(&Engine::new(2), &bt, &pt, algo),
            300 * 500,
            "{algo:?}"
        );
    }
}

#[test]
fn near_limit_strings_flow_through_joins() {
    // Strings close to the 64 KiB StrRef length limit must survive
    // materialization, partitioning and decoding.
    let schema = Schema::of(&[("k", DataType::Int64), ("s", DataType::Str)]);
    let big = "x".repeat(60_000);
    let mut b = TableBuilder::new(schema.clone());
    for i in 0..20i64 {
        b.push_row(&[Value::Int64(i), Value::Str(format!("{big}-{i}"))]);
    }
    let bt = Arc::new(b.finish());
    let mut p = TableBuilder::new(schema);
    for i in 0..40i64 {
        p.push_row(&[Value::Int64(i % 20), Value::Str("probe".into())]);
    }
    let pt = Arc::new(p.finish());

    for algo in [JoinAlgo::Bhj, JoinAlgo::Rj, JoinAlgo::Brj] {
        let plan = Plan::scan(&bt, &["k", "s"], None).join(
            Plan::scan(&pt, &["k"], None),
            algo,
            JoinType::Inner,
            &[0],
            &[0],
        );
        let t = Engine::new(2).run(&plan);
        assert_eq!(t.num_rows(), 40, "{algo:?}");
        for r in 0..t.num_rows() {
            let s = t.column(1).as_str().get(r);
            assert_eq!(
                s.len(),
                big.len() + 2 + (t.column(0).as_i64()[r] >= 10) as usize
            );
            assert!(s.starts_with("xxx"), "{algo:?}: corrupted string");
        }
    }
}

#[test]
fn bhj_without_prefetch_is_equivalent() {
    let build: Vec<(i64, i64)> = (0..4000).map(|i| (i, i)).collect();
    let probe: Vec<(i64, i64)> = (0..16_000).map(|i| (i % 8000, i)).collect();
    let bt = kv_table(&build);
    let pt = kv_table(&probe);
    let mut with = Engine::new(2);
    with.bhj_prefetch = true;
    let mut without = Engine::new(2);
    without.bhj_prefetch = false;
    assert_eq!(
        count_join(&with, &bt, &pt, JoinAlgo::Bhj),
        count_join(&without, &bt, &pt, JoinAlgo::Bhj),
    );
}

#[test]
fn adaptive_bloom_is_result_transparent() {
    for sel_keys in [100i64, 5000] {
        let build: Vec<(i64, i64)> = (0..5000).map(|i| (i, i)).collect();
        let probe: Vec<(i64, i64)> = (0..200_000).map(|i| (i % sel_keys, i)).collect();
        let bt = kv_table(&build);
        let pt = kv_table(&probe);
        let mut adaptive = Engine::new(2);
        adaptive.adaptive_bloom = true;
        let plain = Engine::new(2);
        assert_eq!(
            count_join(&adaptive, &bt, &pt, JoinAlgo::Brj),
            count_join(&plain, &bt, &pt, JoinAlgo::Brj),
            "sel_keys={sel_keys}"
        );
    }
}

#[test]
fn multi_column_composite_keys_all_algorithms() {
    // (k, v) used as a composite key with partial collisions on each part.
    let schema = Schema::of(&[("a", DataType::Int64), ("b", DataType::Int32)]);
    let mk = |rows: &[(i64, i32)]| -> Arc<Table> {
        let mut t = TableBuilder::new(schema.clone());
        for &(a, b) in rows {
            t.push_row(&[Value::Int64(a), Value::Int32(b)]);
        }
        Arc::new(t.finish())
    };
    let build: Vec<(i64, i32)> = (0..1000).map(|i| (i % 50, (i % 20) as i32)).collect();
    let probe: Vec<(i64, i32)> = (0..3000).map(|i| (i % 100, (i % 40) as i32)).collect();
    let bt = mk(&build);
    let pt = mk(&probe);

    // Reference count via nested loop.
    let expected: usize = build
        .iter()
        .map(|b| probe.iter().filter(|p| *p == b).count())
        .sum();

    for algo in [JoinAlgo::Bhj, JoinAlgo::Rj, JoinAlgo::Brj] {
        let plan = Plan::scan(&bt, &["a", "b"], None)
            .join(
                Plan::scan(&pt, &["a", "b"], None),
                algo,
                JoinType::Inner,
                &[0, 1],
                &[0, 1],
            )
            .aggregate(&[], vec![AggSpec::new(AggFunc::CountStar, 0, "cnt")]);
        let t = Engine::new(2).run(&plan);
        assert_eq!(
            t.column_by_name("cnt").as_i64()[0] as usize,
            expected,
            "{algo:?}"
        );
    }
}
