//! Property tests pinning the dispatch contract of `core::simd`: every AVX2
//! kernel is byte-identical to its scalar reference over random keys, random
//! lengths (including the sub-width tails) and random alignments. On hosts
//! without AVX2 the `*_avx2` entry points fall back to scalar, so the suite
//! degenerates to a self-check instead of failing — the CI `simd` job runs it
//! on an AVX2 runner where the vector path is genuinely exercised.

use joinstudy_core::bloom::BlockedBloom;
use joinstudy_core::hash::{hash_combine, hash_u64};
use joinstudy_core::radix::partition_of;
use joinstudy_core::simd;
use proptest::prelude::*;

/// Deterministic byte filler so chunk contents are reproducible from the
/// proptest seed without a second RNG dependency.
fn fill_bytes(buf: &mut [u8], mut state: u64) {
    for b in buf.iter_mut() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *b = (state >> 56) as u8;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn hash_i64_avx2_matches_scalar(
        vals in prop::collection::vec(any::<i64>(), 0..700),
        seed in any::<u64>(),
        first in any::<bool>(),
    ) {
        let mut scalar = vec![0u64; vals.len()];
        if !first {
            // Pre-seed the accumulators so the combine path is exercised.
            for (i, slot) in scalar.iter_mut().enumerate() {
                *slot = hash_u64(seed ^ i as u64);
            }
        }
        let mut vector = scalar.clone();
        simd::hash_i64_scalar(&vals, &mut scalar, first);
        simd::hash_i64_avx2(&vals, &mut vector, first);
        prop_assert_eq!(&scalar, &vector);
        if first {
            for (v, h) in vals.iter().zip(&scalar) {
                prop_assert_eq!(hash_u64(*v as u64), *h);
            }
        }
    }

    #[test]
    fn hash_i32_avx2_matches_scalar(
        vals in prop::collection::vec(any::<i32>(), 0..700),
        seed in any::<u64>(),
        first in any::<bool>(),
    ) {
        let mut scalar = vec![0u64; vals.len()];
        if !first {
            for (i, slot) in scalar.iter_mut().enumerate() {
                *slot = hash_u64(seed ^ i as u64);
            }
        }
        let mut vector = scalar.clone();
        simd::hash_i32_scalar(&vals, &mut scalar, first);
        simd::hash_i32_avx2(&vals, &mut vector, first);
        prop_assert_eq!(&scalar, &vector);
        if !first {
            for (i, (v, h)) in vals.iter().zip(&scalar).enumerate() {
                let acc = hash_u64(seed ^ i as u64);
                prop_assert_eq!(hash_combine(acc, hash_u64(*v as u64)), *h);
            }
        }
    }

    #[test]
    fn hist_chunk_avx2_matches_scalar(
        rows in 0usize..400,
        words_per_row in 1usize..8,
        off_word in 0usize..8,
        bits1 in 0u32..8,
        bits2 in 0u32..6,
        seed in any::<u64>(),
    ) {
        let stride = words_per_row * 8;
        let hash_off = (off_word % words_per_row) * 8;
        let mut chunk = vec![0u8; rows * stride];
        fill_bytes(&mut chunk, seed);
        let mask2 = (1u64 << bits2) - 1;
        let mut scalar = vec![0usize; 1 << bits2];
        let mut vector = scalar.clone();
        simd::hist_chunk_scalar(&chunk, stride, hash_off, bits1, mask2, &mut scalar);
        simd::hist_chunk_avx2(&chunk, stride, hash_off, bits1, mask2, &mut vector);
        prop_assert_eq!(&scalar, &vector);
        prop_assert_eq!(scalar.iter().sum::<usize>(), rows);
    }

    #[test]
    fn nt_copy_avx2_matches_memcpy(
        words in 0usize..256,
        dst_off_words in 0usize..4,
        seed in any::<u64>(),
    ) {
        let len = words * 8;
        let mut src = vec![0u8; len];
        fill_bytes(&mut src, seed);
        // A Vec<u64> backing guarantees 8-byte alignment; offsetting by whole
        // words sweeps every 32-byte phase the head-alignment loop handles.
        let mut backing = vec![0u64; words + 4];
        let bytes = unsafe {
            std::slice::from_raw_parts_mut(backing.as_mut_ptr().cast::<u8>(), backing.len() * 8)
        };
        let start = dst_off_words * 8;
        simd::nt_copy_avx2(&mut bytes[start..start + len], &src);
        prop_assert_eq!(&bytes[start..start + len], &src[..]);
    }

    #[test]
    fn bloom_probe_sel_matches_contains_loop(
        keys in prop::collection::vec(any::<i64>(), 1..1500),
        probes in prop::collection::vec(any::<i64>(), 0..1500),
        bits1 in 0u32..5,
        bits2 in 0u32..4,
    ) {
        let bloom = BlockedBloom::new(1usize << (bits1 + bits2), keys.len());
        for &k in &keys {
            let h = hash_u64(k as u64);
            bloom.insert(partition_of(h, bits1, bits2), h);
        }
        let hashes: Vec<u64> = probes.iter().map(|&k| hash_u64(k as u64)).collect();
        let mut sel = Vec::new();
        bloom.probe_sel(bits1, bits2, &hashes, &mut sel);
        let expect: Vec<u32> = hashes
            .iter()
            .enumerate()
            .filter(|(_, &h)| bloom.contains(partition_of(h, bits1, bits2), h))
            .map(|(i, _)| i as u32)
            .collect();
        prop_assert_eq!(sel, expect);
    }
}
