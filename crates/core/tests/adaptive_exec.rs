//! End-to-end tests of `JoinAlgo::Adaptive`: the engine answers the join
//! question itself, records the decision in EXPLAIN ANALYZE and the
//! `adaptive.*` registry counters, and a mis-predicted radix join falls
//! back to the BHJ at runtime when the first partitioning pass's measured
//! histogram contradicts the estimate (the skew escape hatch).

use joinstudy_core::cost::{Calibration, CostModel};
use joinstudy_core::{Engine, JoinAlgo, JoinType, Plan};
use joinstudy_exec::registry;
use joinstudy_storage::column::ColumnData;
use joinstudy_storage::table::{Schema, TableBuilder};
use joinstudy_storage::types::DataType;
use std::sync::Arc;

fn table_kv(keys: impl Iterator<Item = i64>) -> Arc<joinstudy_storage::table::Table> {
    let keys: Vec<i64> = keys.collect();
    let schema = Schema::of(&[("k", DataType::Int64), ("v", DataType::Int64)]);
    let mut b = TableBuilder::with_capacity(schema, keys.len());
    let vals: Vec<i64> = (0..keys.len() as i64).collect();
    *b.column_mut(0) = ColumnData::Int64(keys);
    *b.column_mut(1) = ColumnData::Int64(vals);
    Arc::new(b.finish())
}

fn count_inner(engine: &Engine, build: &Plan, probe: &Plan) -> usize {
    let plan = build.clone().join(
        probe.clone(),
        JoinAlgo::Adaptive,
        JoinType::Inner,
        &[0],
        &[0],
    );
    engine.run(&plan).num_rows()
}

/// A calibration whose tiny LLC makes any non-trivial hash table "too big",
/// so the model predicts partitioning pays off (forcing the radix path).
fn radix_happy_calibration() -> Calibration {
    Calibration {
        llc_bytes: 64.0 * 1024.0,
        ..Calibration::default_constants()
    }
}

#[test]
fn adaptive_join_matches_static_results() {
    let build = table_kv(0..3_000);
    let probe = table_kv((0..30_000).map(|i| i % 3_000));
    let bp = Plan::scan(&build, &["k", "v"], None);
    let pp = Plan::scan(&probe, &["k", "v"], None);
    let engine = Engine::new(2);
    let decisions0 = registry::global().counter("adaptive.decisions").get();
    assert_eq!(count_inner(&engine, &bp, &pp), 30_000);
    let decisions = registry::global().counter("adaptive.decisions").get();
    assert!(decisions > decisions0, "decision not counted");
}

#[test]
fn explain_analyze_records_the_decision_and_reason() {
    let build = table_kv(0..2_000);
    let probe = table_kv((0..8_000).map(|i| i % 2_000));
    let plan = Plan::scan(&build, &["k", "v"], None).join(
        Plan::scan(&probe, &["k", "v"], None),
        JoinAlgo::Adaptive,
        JoinType::Inner,
        &[0],
        &[0],
    );
    let engine = Engine::new(2);
    let (table, profile) = engine.execute_profiled(&plan).unwrap();
    assert_eq!(table.num_rows(), 8_000);
    let text = profile.render();
    assert!(text.contains("adaptive_choice"), "missing choice: {text}");
    assert!(text.contains("adaptive_reason"), "missing reason: {text}");
    // 2k × 32 B fits any plausible LLC: the BHJ must have been chosen.
    assert!(text.contains("Join BHJ"), "expected BHJ pick: {text}");
}

#[test]
fn skewed_build_falls_back_to_bhj_at_runtime() {
    // Every build row hashes to the same partition; the plan-time model
    // (with a tiny calibrated LLC) still predicts partitioning pays off.
    let build = table_kv(std::iter::repeat_n(42, 120_000));
    let probe = table_kv(0..10_000);
    let bp = Plan::scan(&build, &["k", "v"], None);
    let pp = Plan::scan(&probe, &["k", "v"], None);
    let engine = Engine::new(2).with_cost_model(CostModel::new(radix_happy_calibration()));

    let model = CostModel::new(radix_happy_calibration());
    let decision = joinstudy_core::adaptive::decide(&model, JoinType::Inner, &bp, &pp, &[0], &[0]);
    assert_ne!(
        decision.algo,
        JoinAlgo::Bhj,
        "plan-time choice must be a radix variant for this test: {decision}"
    );

    let fallbacks0 = registry::global().counter("adaptive.fallbacks").get();
    // Key 42 matches exactly one probe row; every build row pairs with it.
    assert_eq!(count_inner(&engine, &bp, &pp), 120_000);
    let fallbacks = registry::global().counter("adaptive.fallbacks").get();
    assert!(
        fallbacks > fallbacks0,
        "skewed build must trigger the regime-mismatch fallback"
    );
}

#[test]
fn fallback_leaves_a_consistent_profile() {
    let build = table_kv(std::iter::repeat_n(7, 120_000));
    let probe = table_kv(0..5_000);
    let plan = Plan::scan(&build, &["k", "v"], None).join(
        Plan::scan(&probe, &["k", "v"], None),
        JoinAlgo::Adaptive,
        JoinType::Inner,
        &[0],
        &[0],
    );
    let engine = Engine::new(2).with_cost_model(CostModel::new(radix_happy_calibration()));
    let (table, profile) = engine.execute_profiled(&plan).unwrap();
    assert_eq!(table.num_rows(), 120_000);
    let text = profile.render();
    assert!(
        text.contains("adaptive_fallback"),
        "missing fallback annotation: {text}"
    );
    assert!(
        text.contains("Join BHJ"),
        "fallback must re-trace as BHJ: {text}"
    );
}
