//! Out-of-core hybrid hash join properties: exact result equivalence with
//! the in-memory BHJ under arbitrary memory budgets (including recursion
//! depth ≥ 2 and Zipf-skewed keys), the fault-injection matrix with
//! zero-orphan cleanup, and mid-spill cancellation hygiene.
//!
//! The spill fault shim is process-global, so every test in this binary
//! serializes on [`TEST_LOCK`] — a fault armed by one test must never leak
//! into another's I/O.

use joinstudy_core::hybrid::{PartitionSpillSink, SpillConfig};
use joinstudy_core::spill::{fault, SpillDir};
use joinstudy_core::{Engine, JoinAlgo, JoinType, Plan};
use joinstudy_exec::batch::BatchBuilder;
use joinstudy_exec::error::ExecError;
use joinstudy_exec::metrics::MemPhase;
use joinstudy_exec::pipeline::Sink;
use joinstudy_storage::column::ColumnData;
use joinstudy_storage::table::{Schema, Table, TableBuilder};
use joinstudy_storage::types::{DataType, Value};
use proptest::prelude::*;
use std::sync::{Arc, Mutex, OnceLock};

fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static TEST_LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match TEST_LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

const ALL_KINDS: [JoinType; 7] = [
    JoinType::Inner,
    JoinType::ProbeSemi,
    JoinType::ProbeAnti,
    JoinType::ProbeMark,
    JoinType::ProbeOuter,
    JoinType::BuildSemi,
    JoinType::BuildAnti,
];

fn kv_table(rows: &[(i64, i64)]) -> Arc<Table> {
    let schema = Schema::of(&[("k", DataType::Int64), ("v", DataType::Int64)]);
    let mut b = TableBuilder::with_capacity(schema, rows.len());
    *b.column_mut(0) = ColumnData::Int64(rows.iter().map(|r| r.0).collect());
    *b.column_mut(1) = ColumnData::Int64(rows.iter().map(|r| r.1).collect());
    Arc::new(b.finish())
}

fn join_plan(bt: &Arc<Table>, pt: &Arc<Table>, algo: JoinAlgo, kind: JoinType) -> Plan {
    Plan::scan(bt, &["k", "v"], None).join(
        Plan::scan(pt, &["k", "v"], None),
        algo,
        kind,
        &[0],
        &[0],
    )
}

/// Canonical multiset of result rows (order-independent, validity-aware).
fn rows_sorted(t: &Table) -> Vec<String> {
    let mut out: Vec<String> = (0..t.num_rows())
        .map(|r| {
            let cells: Vec<String> = (0..t.num_columns())
                .map(|c| {
                    if t.is_valid(c, r) {
                        format!("{:?}", t.row(r)[c])
                    } else {
                        "NULL".into()
                    }
                })
                .collect();
            cells.join(",")
        })
        .collect();
    out.sort_unstable();
    out
}

/// Run `kind` with the unbounded BHJ and with the budgeted hybrid join and
/// require identical result multisets; returns the hybrid engine for
/// post-hoc counter assertions.
fn check_equivalence(
    bt: &Arc<Table>,
    pt: &Arc<Table>,
    kind: JoinType,
    budget: usize,
    cfg: SpillConfig,
) -> Engine {
    let expected = rows_sorted(&Engine::new(2).run(&join_plan(bt, pt, JoinAlgo::Bhj, kind)));
    let mut engine = Engine::new(2);
    engine.spill = cfg;
    engine.ctx.set_memory_budget(Some(budget));
    let got = engine
        .execute(&join_plan(bt, pt, JoinAlgo::Hybrid, kind))
        .unwrap_or_else(|e| panic!("{kind:?} under {budget} B: {e}"));
    assert_eq!(
        rows_sorted(&got),
        expected,
        "{kind:?} under a {budget} B budget diverged from the BHJ"
    );
    assert_eq!(engine.ctx.used(), 0, "{kind:?}: leaked budget reservations");
    engine
}

#[test]
fn all_join_kinds_match_bhj_under_tiny_budget() {
    let _guard = test_lock();
    let build: Vec<(i64, i64)> = (0..8_000).map(|i| (i % 900, i)).collect();
    let probe: Vec<(i64, i64)> = (0..24_000).map(|i| (i % 1800, i)).collect();
    let bt = kv_table(&build);
    let pt = kv_table(&probe);
    for kind in ALL_KINDS {
        let engine = check_equivalence(&bt, &pt, kind, 256 * 1024, SpillConfig::default());
        assert!(
            engine.ctx.spill_write_bytes() > 0,
            "{kind:?}: a 256 KiB budget over ~500 KiB of input must spill"
        );
    }
}

#[test]
fn recursion_depth_two_is_reached_and_correct() {
    let _guard = test_lock();
    // fanout 2 with a build side ~16x the budget: level 0 halves it, level
    // 1 halves it again — still over budget, so depth ≥ 2 is forced before
    // partitions fit (or the nested loop finishes the stragglers).
    let build: Vec<(i64, i64)> = (0..60_000).map(|i| (i % 50_000, i)).collect();
    let probe: Vec<(i64, i64)> = (0..60_000).map(|i| (i % 50_000, i)).collect();
    let bt = kv_table(&build);
    let pt = kv_table(&probe);
    let cfg = SpillConfig {
        fanout_bits: 1,
        max_depth: 6,
    };
    let engine = check_equivalence(&bt, &pt, JoinType::Inner, 128 * 1024, cfg);
    assert!(
        engine.ctx.spill_max_depth() >= 2,
        "expected recursive repartitioning depth >= 2, got {}",
        engine.ctx.spill_max_depth()
    );
}

#[test]
fn degenerate_keys_fall_back_to_nested_loop() {
    let _guard = test_lock();
    // Every row carries the same key: repartitioning can never shrink the
    // partition, so the join must detect the lack of progress and stream
    // through the block nested loop instead of recursing to the cap.
    let build: Vec<(i64, i64)> = (0..3_000).map(|i| (7, i)).collect();
    let probe: Vec<(i64, i64)> = (0..300).map(|i| (7, i)).collect();
    let bt = kv_table(&build);
    let pt = kv_table(&probe);
    for kind in [JoinType::Inner, JoinType::ProbeOuter, JoinType::BuildAnti] {
        check_equivalence(&bt, &pt, kind, 96 * 1024, SpillConfig::default());
    }
}

#[test]
fn zipf_skewed_keys_match_bhj() {
    let _guard = test_lock();
    // Zipf-ish key frequencies (rank r appears ~N/r times): a few huge key
    // groups plus a long tail, the classic radix-partitioning stressor.
    let mut build = Vec::new();
    for rank in 1i64..=400 {
        for c in 0..(20_000 / rank).min(2_000) {
            build.push((rank, rank * 100_000 + c));
        }
    }
    let probe: Vec<(i64, i64)> = (0..30_000).map(|i| (i % 600, i)).collect();
    let bt = kv_table(&build);
    let pt = kv_table(&probe);
    for kind in [JoinType::Inner, JoinType::ProbeSemi, JoinType::ProbeMark] {
        check_equivalence(&bt, &pt, kind, 192 * 1024, SpillConfig::default());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The headline property: for random inputs, random budgets and every
    /// join variant, the budgeted hybrid join is indistinguishable from the
    /// unbounded in-memory BHJ.
    #[test]
    fn hybrid_equals_bhj_for_random_budgets(
        build_rows in 1usize..6_000,
        probe_rows in 1usize..12_000,
        key_mod in 1i64..3_000,
        budget_kib in 96usize..768,
        kind_idx in 0usize..7,
        fanout_bits in 1u32..5,
    ) {
        let _guard = test_lock();
        let build: Vec<(i64, i64)> = (0..build_rows as i64).map(|i| (i % key_mod, i)).collect();
        let probe: Vec<(i64, i64)> = (0..probe_rows as i64).map(|i| (i % (key_mod * 2), i)).collect();
        let bt = kv_table(&build);
        let pt = kv_table(&probe);
        let cfg = SpillConfig { fanout_bits, max_depth: 4 };
        check_equivalence(&bt, &pt, ALL_KINDS[kind_idx], budget_kib * 1024, cfg);
    }
}

#[test]
fn fault_matrix_yields_typed_errors_and_zero_orphans() {
    let _guard = test_lock();
    let build: Vec<(i64, i64)> = (0..20_000).map(|i| (i % 2_000, i)).collect();
    let probe: Vec<(i64, i64)> = (0..40_000).map(|i| (i % 4_000, i)).collect();
    let bt = kv_table(&build);
    let pt = kv_table(&probe);
    let base = std::env::temp_dir().join(format!("joinstudy-fault-matrix-{}", std::process::id()));
    std::fs::create_dir_all(&base).unwrap();

    for spec in [
        "create:enospc",
        "create:eio:2",
        "write:enospc",
        "write:eio:3",
        "read:eio",
        "read:short",
        "read:short:2",
    ] {
        fault::set_for_test(fault::FaultSpec::parse(spec));
        let engine = Engine::new(2);
        engine.ctx.set_spill_dir(Some(base.clone()));
        engine.ctx.set_memory_budget(Some(256 * 1024));
        let err = engine
            .execute(&join_plan(&bt, &pt, JoinAlgo::Hybrid, JoinType::Inner))
            .expect_err("the armed fault must surface");
        assert!(
            matches!(err, ExecError::SpillIo { .. }),
            "{spec}: expected a typed spill error, got {err:?}"
        );
        assert_eq!(engine.ctx.used(), 0, "{spec}: leaked budget reservations");
        let orphans: Vec<_> = std::fs::read_dir(&base).unwrap().flatten().collect();
        assert!(
            orphans.is_empty(),
            "{spec}: orphan spill files left behind: {orphans:?}"
        );
    }
    fault::set_for_test(None);
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn cancellation_mid_spill_cleans_dir_and_budget() {
    let _guard = test_lock();
    fault::set_for_test(None);
    // Drive the partitioning sink directly so the cancel lands
    // deterministically *between* two spill writes.
    let ctx = joinstudy_exec::context::QueryContext::unbounded();
    ctx.set_memory_budget(Some(256 * 1024));
    let base = std::env::temp_dir().join(format!("joinstudy-cancel-{}", std::process::id()));
    std::fs::create_dir_all(&base).unwrap();
    let dir = SpillDir::create(Some(base.clone())).unwrap();
    let spill_path = dir.path().to_path_buf();

    let sink = PartitionSpillSink::new(
        vec![0],
        1,
        MemPhase::Build,
        "build",
        Arc::clone(&ctx),
        Arc::clone(&dir),
    );
    let mut local = sink.create_local();
    let feed = |sink: &PartitionSpillSink, local: &mut joinstudy_exec::pipeline::LocalState| {
        let mut bb = BatchBuilder::new(vec![DataType::Int64, DataType::Int64]);
        for i in 0..4_096i64 {
            bb.push_row(&[Value::Int64(i % 512), Value::Int64(i)]);
        }
        sink.consume(local, bb.flush().unwrap())
    };
    // Fill past the budget so at least one partition is mid-spill.
    for _ in 0..8 {
        feed(&sink, &mut local).unwrap();
    }
    assert!(
        sink.spilled_partitions() > 0,
        "setup must reach the spill path"
    );

    ctx.cancel();
    let err = feed(&sink, &mut local).expect_err("post-cancel write must stop");
    assert_eq!(err, ExecError::Cancelled);

    // Abandon everything exactly as the executor would on error.
    drop(local);
    drop(sink);
    drop(dir);
    assert_eq!(ctx.used(), 0, "cancelled sink leaked budget reservations");
    assert!(
        !spill_path.exists(),
        "cancelled spill directory must be removed"
    );
    std::fs::remove_dir_all(&base).ok();
}
