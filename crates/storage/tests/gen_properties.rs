//! Property tests for the deterministic generators: bounds, determinism
//! and permutation-ness must hold for arbitrary seeds and sizes.

use joinstudy_storage::gen::{Rng, Zipf};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn u64_below_always_in_bounds(seed: u64, bound in 1u64..u64::MAX) {
        let mut rng = Rng::new(seed);
        for _ in 0..50 {
            prop_assert!(rng.u64_below(bound) < bound);
        }
    }

    #[test]
    fn i64_range_inclusive_bounds(seed: u64, lo in -1000i64..1000, span in 0i64..2000) {
        let hi = lo + span;
        let mut rng = Rng::new(seed);
        for _ in 0..50 {
            let v = rng.i64_range(lo, hi);
            prop_assert!(v >= lo && v <= hi);
        }
    }

    #[test]
    fn same_seed_same_stream(seed: u64) {
        let mut a = Rng::new(seed);
        let mut b = Rng::new(seed);
        for _ in 0..100 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn permutation_property(seed: u64, n in 1usize..2000) {
        let mut rng = Rng::new(seed);
        let mut p = rng.permutation(n);
        p.sort_unstable();
        prop_assert_eq!(p, (0..n as u64).collect::<Vec<_>>());
    }

    #[test]
    fn zipf_stays_in_domain(seed: u64, n in 1u64..100_000, z in 0.0f64..2.5) {
        let mut rng = Rng::new(seed);
        let zipf = Zipf::new(n, z);
        for _ in 0..100 {
            let k = zipf.sample(&mut rng);
            prop_assert!(k >= 1 && k <= n, "z={} n={} k={}", z, n, k);
        }
    }

    #[test]
    fn shuffle_preserves_elements(seed: u64, mut v in prop::collection::vec(any::<i32>(), 0..500)) {
        let mut rng = Rng::new(seed);
        let mut original = v.clone();
        rng.shuffle(&mut v);
        v.sort_unstable();
        original.sort_unstable();
        prop_assert_eq!(v, original);
    }
}
