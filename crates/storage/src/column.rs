//! Typed columnar buffers.
//!
//! A [`ColumnData`] is one column of a [`crate::Table`]: a dense, typed
//! vector without nulls (TPC-H base data is NOT NULL throughout; nullability
//! appears only in intermediate results, where the execution engine carries
//! explicit validity masks). Strings use the classic offsets-plus-arena
//! layout so that scans touch contiguous memory.

use crate::types::{DataType, Date, Decimal, Value};

/// Variable-length string column: `offsets.len() == len + 1`, value `i`
/// occupies `bytes[offsets[i] as usize .. offsets[i + 1] as usize]`.
#[derive(Debug, Clone, Default)]
pub struct StrColumn {
    offsets: Vec<u64>,
    bytes: Vec<u8>,
}

impl StrColumn {
    pub fn new() -> StrColumn {
        StrColumn {
            offsets: vec![0],
            bytes: Vec::new(),
        }
    }

    pub fn with_capacity(rows: usize, bytes: usize) -> StrColumn {
        let mut offsets = Vec::with_capacity(rows + 1);
        offsets.push(0);
        StrColumn {
            offsets,
            bytes: Vec::with_capacity(bytes),
        }
    }

    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn push(&mut self, s: &str) {
        self.bytes.extend_from_slice(s.as_bytes());
        self.offsets.push(self.bytes.len() as u64);
    }

    pub fn get(&self, i: usize) -> &str {
        let start = self.offsets[i] as usize;
        let end = self.offsets[i + 1] as usize;
        // Arena only ever receives whole UTF-8 strings at recorded offsets.
        unsafe { std::str::from_utf8_unchecked(&self.bytes[start..end]) }
    }

    /// Byte length of value `i` without materializing it.
    pub fn value_len(&self, i: usize) -> usize {
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Total arena bytes (for size accounting in the harness).
    pub fn arena_bytes(&self) -> usize {
        self.bytes.len()
    }

    pub fn iter(&self) -> impl Iterator<Item = &str> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }
}

/// One column of data. The enum-of-vectors layout keeps the hot scan loops
/// monomorphic per type while letting schemas be dynamic.
#[derive(Debug, Clone)]
pub enum ColumnData {
    Bool(Vec<bool>),
    Int32(Vec<i32>),
    Int64(Vec<i64>),
    Float64(Vec<f64>),
    /// Days since epoch.
    Date(Vec<i32>),
    /// Scaled by 100 (see [`Decimal`]).
    Decimal(Vec<i64>),
    Str(StrColumn),
}

impl ColumnData {
    /// An empty column of the given type.
    pub fn new(dtype: DataType) -> ColumnData {
        match dtype {
            DataType::Bool => ColumnData::Bool(Vec::new()),
            DataType::Int32 => ColumnData::Int32(Vec::new()),
            DataType::Int64 => ColumnData::Int64(Vec::new()),
            DataType::Float64 => ColumnData::Float64(Vec::new()),
            DataType::Date => ColumnData::Date(Vec::new()),
            DataType::Decimal => ColumnData::Decimal(Vec::new()),
            DataType::Str => ColumnData::Str(StrColumn::new()),
        }
    }

    pub fn with_capacity(dtype: DataType, rows: usize) -> ColumnData {
        match dtype {
            DataType::Bool => ColumnData::Bool(Vec::with_capacity(rows)),
            DataType::Int32 => ColumnData::Int32(Vec::with_capacity(rows)),
            DataType::Int64 => ColumnData::Int64(Vec::with_capacity(rows)),
            DataType::Float64 => ColumnData::Float64(Vec::with_capacity(rows)),
            DataType::Date => ColumnData::Date(Vec::with_capacity(rows)),
            DataType::Decimal => ColumnData::Decimal(Vec::with_capacity(rows)),
            DataType::Str => ColumnData::Str(StrColumn::with_capacity(rows, rows * 16)),
        }
    }

    pub fn data_type(&self) -> DataType {
        match self {
            ColumnData::Bool(_) => DataType::Bool,
            ColumnData::Int32(_) => DataType::Int32,
            ColumnData::Int64(_) => DataType::Int64,
            ColumnData::Float64(_) => DataType::Float64,
            ColumnData::Date(_) => DataType::Date,
            ColumnData::Decimal(_) => DataType::Decimal,
            ColumnData::Str(_) => DataType::Str,
        }
    }

    pub fn len(&self) -> usize {
        match self {
            ColumnData::Bool(v) => v.len(),
            ColumnData::Int32(v) => v.len(),
            ColumnData::Int64(v) => v.len(),
            ColumnData::Float64(v) => v.len(),
            ColumnData::Date(v) => v.len(),
            ColumnData::Decimal(v) => v.len(),
            ColumnData::Str(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dynamically-typed accessor (edges of the system only).
    pub fn value(&self, i: usize) -> Value {
        match self {
            ColumnData::Bool(v) => Value::Bool(v[i]),
            ColumnData::Int32(v) => Value::Int32(v[i]),
            ColumnData::Int64(v) => Value::Int64(v[i]),
            ColumnData::Float64(v) => Value::Float64(v[i]),
            ColumnData::Date(v) => Value::Date(Date(v[i])),
            ColumnData::Decimal(v) => Value::Decimal(Decimal(v[i])),
            ColumnData::Str(v) => Value::Str(v.get(i).to_owned()),
        }
    }

    /// Append a dynamically-typed value; type must match.
    pub fn push_value(&mut self, v: &Value) {
        match (self, v) {
            (ColumnData::Bool(c), Value::Bool(v)) => c.push(*v),
            (ColumnData::Int32(c), Value::Int32(v)) => c.push(*v),
            (ColumnData::Int64(c), Value::Int64(v)) => c.push(*v),
            (ColumnData::Float64(c), Value::Float64(v)) => c.push(*v),
            (ColumnData::Date(c), Value::Date(v)) => c.push(v.0),
            (ColumnData::Decimal(c), Value::Decimal(v)) => c.push(v.0),
            (ColumnData::Str(c), Value::Str(v)) => c.push(v),
            (c, v) => panic!(
                "type mismatch: pushing {v:?} into {:?} column",
                c.data_type()
            ),
        }
    }

    /// Append this type's default value (NULL storage slot; the validity
    /// mask carries the NULL-ness).
    pub fn push_default(&mut self) {
        match self {
            ColumnData::Bool(v) => v.push(false),
            ColumnData::Int32(v) | ColumnData::Date(v) => v.push(0),
            ColumnData::Int64(v) | ColumnData::Decimal(v) => v.push(0),
            ColumnData::Float64(v) => v.push(0.0),
            ColumnData::Str(v) => v.push(""),
        }
    }

    /// Heap footprint in bytes (size accounting for Figures 1/13).
    pub fn byte_size(&self) -> usize {
        match self {
            ColumnData::Bool(v) => v.len(),
            ColumnData::Int32(v) | ColumnData::Date(v) => v.len() * 4,
            ColumnData::Int64(v) | ColumnData::Decimal(v) => v.len() * 8,
            ColumnData::Float64(v) => v.len() * 8,
            ColumnData::Str(v) => v.arena_bytes() + (v.len() + 1) * 8,
        }
    }

    // Typed accessors: panic on type mismatch, which indicates a planner bug.

    pub fn as_bool(&self) -> &[bool] {
        match self {
            ColumnData::Bool(v) => v,
            other => panic!("expected Bool column, got {:?}", other.data_type()),
        }
    }

    pub fn as_i32(&self) -> &[i32] {
        match self {
            ColumnData::Int32(v) | ColumnData::Date(v) => v,
            other => panic!("expected Int32/Date column, got {:?}", other.data_type()),
        }
    }

    pub fn as_i64(&self) -> &[i64] {
        match self {
            ColumnData::Int64(v) | ColumnData::Decimal(v) => v,
            other => panic!("expected Int64/Decimal column, got {:?}", other.data_type()),
        }
    }

    pub fn as_f64(&self) -> &[f64] {
        match self {
            ColumnData::Float64(v) => v,
            other => panic!("expected Float64 column, got {:?}", other.data_type()),
        }
    }

    pub fn as_str(&self) -> &StrColumn {
        match self {
            ColumnData::Str(v) => v,
            other => panic!("expected Str column, got {:?}", other.data_type()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn str_column_roundtrip() {
        let mut c = StrColumn::new();
        c.push("hello");
        c.push("");
        c.push("world");
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(0), "hello");
        assert_eq!(c.get(1), "");
        assert_eq!(c.get(2), "world");
        assert_eq!(c.value_len(0), 5);
        assert_eq!(c.value_len(1), 0);
        assert_eq!(c.arena_bytes(), 10);
        assert_eq!(c.iter().collect::<Vec<_>>(), vec!["hello", "", "world"]);
    }

    #[test]
    fn column_value_roundtrip_all_types() {
        let values = vec![
            Value::Bool(true),
            Value::Int32(-7),
            Value::Int64(1 << 50),
            Value::Float64(3.25),
            Value::Date(Date::from_ymd(1995, 6, 17)),
            Value::Decimal(Decimal::from_parts(9, 99)),
            Value::Str("acme".into()),
        ];
        for v in &values {
            let mut col = ColumnData::new(v.data_type().unwrap());
            col.push_value(v);
            col.push_value(v);
            assert_eq!(col.len(), 2);
            assert_eq!(&col.value(0), v);
            assert_eq!(&col.value(1), v);
        }
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn column_push_type_mismatch_panics() {
        let mut col = ColumnData::new(DataType::Int32);
        col.push_value(&Value::Str("nope".into()));
    }

    #[test]
    fn byte_size_accounting() {
        let mut c = ColumnData::new(DataType::Int32);
        for i in 0..10 {
            c.push_value(&Value::Int32(i));
        }
        assert_eq!(c.byte_size(), 40);

        let mut s = ColumnData::new(DataType::Str);
        s.push_value(&Value::Str("abcd".into()));
        // 4 arena bytes + 2 offsets * 8.
        assert_eq!(s.byte_size(), 4 + 16);
    }

    #[test]
    fn typed_accessors() {
        let mut c = ColumnData::new(DataType::Decimal);
        c.push_value(&Value::Decimal(Decimal(42)));
        assert_eq!(c.as_i64(), &[42]);
        let mut d = ColumnData::new(DataType::Date);
        d.push_value(&Value::Date(Date(100)));
        assert_eq!(d.as_i32(), &[100]);
    }
}
