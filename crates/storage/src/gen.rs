//! Deterministic pseudo-random data generation.
//!
//! Every experiment in the paper depends on synthetic data: the Balkesen
//! workloads A/B, the selectivity/payload/skew sweeps, and TPC-H itself.
//! Using our own small RNG (SplitMix64) instead of an external crate makes
//! generation bit-for-bit reproducible across platforms and versions — the
//! harness can cite a seed and anyone can regenerate the exact relation.
//!
//! The Zipf sampler uses rejection-inversion (Hörmann & Derflinger, 1996),
//! i.e. O(1) per sample with no precomputed CDF, which matters because the
//! skew sweep (Fig 17) draws hundreds of millions of samples.

/// SplitMix64: tiny, fast, passes BigCrush, and — crucially — deterministic.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)` via Lemire's multiply-shift (unbiased).
    #[inline]
    pub fn u64_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "u64_below(0)");
        let mut m = u128::from(self.next_u64()) * u128::from(bound);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                m = u128::from(self.next_u64()) * u128::from(bound);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform in `[lo, hi]` (inclusive).
    #[inline]
    pub fn i64_range(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + self.u64_below(span) as i64
    }

    /// Uniform in `[lo, hi]` (inclusive), 32-bit.
    #[inline]
    pub fn i32_range(&mut self, lo: i32, hi: i32) -> i32 {
        self.i64_range(i64::from(lo), i64::from(hi)) as i32
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    pub fn bool(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.u64_below(items.len() as u64) as usize]
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.u64_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// A random permutation of `0..n` as `u64`s.
    pub fn permutation(&mut self, n: usize) -> Vec<u64> {
        let mut v: Vec<u64> = (0..n as u64).collect();
        self.shuffle(&mut v);
        v
    }

    /// Random ASCII string of lowercase letters with length in `[min, max]`.
    pub fn alpha_string(&mut self, min: usize, max: usize, out: &mut String) {
        let len = min + self.u64_below((max - min + 1) as u64) as usize;
        out.clear();
        for _ in 0..len {
            out.push((b'a' + self.u64_below(26) as u8) as char);
        }
    }

    /// Derive an independent stream (for per-thread / per-table generators).
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64() ^ 0xA076_1D64_78BD_642F)
    }
}

/// Zipf-distributed ranks in `[1, n]` with exponent `z >= 0`.
///
/// `z = 0` degenerates to the uniform distribution (the paper's skew sweep
/// starts there); `z = 2` is the paper's "high skew" endpoint where >50% of
/// probes hit the hottest 20% of build keys.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: f64,
    exponent: f64,
    h_integral_x1: f64,
    h_integral_n: f64,
    s: f64,
}

impl Zipf {
    pub fn new(n: u64, exponent: f64) -> Zipf {
        assert!(n > 0, "Zipf over empty domain");
        assert!(exponent >= 0.0, "negative Zipf exponent");
        let nf = n as f64;
        if exponent == 0.0 {
            // Uniform; sampled via the fast path below.
            return Zipf {
                n: nf,
                exponent,
                h_integral_x1: 0.0,
                h_integral_n: 0.0,
                s: 0.0,
            };
        }
        let h_integral_x1 = h_integral(1.5, exponent) - 1.0;
        let h_integral_n = h_integral(nf + 0.5, exponent);
        let s = 2.0 - h_integral_inv(h_integral(2.5, exponent) - h(2.0, exponent), exponent);
        Zipf {
            n: nf,
            exponent,
            h_integral_x1,
            h_integral_n,
            s,
        }
    }

    /// Draw one rank in `[1, n]`.
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        if self.exponent == 0.0 {
            return 1 + rng.u64_below(self.n as u64);
        }
        loop {
            let u = self.h_integral_n + rng.f64() * (self.h_integral_x1 - self.h_integral_n);
            let x = h_integral_inv(u, self.exponent);
            let k = x.clamp(1.0, self.n).round();
            if k - x <= self.s || u >= h_integral(k + 0.5, self.exponent) - h(k, self.exponent) {
                return k as u64;
            }
        }
    }
}

/// Integral of the hat function: `H(x) = (x^(1-e) - 1) / (1 - e)`, continuous
/// at `e = 1` where it becomes `ln(x)`.
fn h_integral(x: f64, exponent: f64) -> f64 {
    let log_x = x.ln();
    helper2((1.0 - exponent) * log_x) * log_x
}

/// The hat function `h(x) = x^-e`.
fn h(x: f64, exponent: f64) -> f64 {
    (-exponent * x.ln()).exp()
}

/// Inverse of [`h_integral`].
fn h_integral_inv(x: f64, exponent: f64) -> f64 {
    let mut t = x * (1.0 - exponent);
    if t < -1.0 {
        // Round-off guard: t must stay in the domain of ln1p.
        t = -1.0;
    }
    (helper1(t) * x).exp()
}

/// `log(1 + x) / x`, stable near zero.
fn helper1(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.ln_1p() / x
    } else {
        1.0 - x * (0.5 - x * (1.0 / 3.0 - 0.25 * x))
    }
}

/// `(exp(x) - 1) / x`, stable near zero.
fn helper2(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.exp_m1() / x
    } else {
        1.0 + x * 0.5 * (1.0 + x / 3.0 * (1.0 + 0.25 * x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn u64_below_respects_bound() {
        let mut rng = Rng::new(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX / 2] {
            for _ in 0..200 {
                assert!(rng.u64_below(bound) < bound);
            }
        }
    }

    #[test]
    fn i64_range_inclusive_hits_both_ends() {
        let mut rng = Rng::new(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1000 {
            let v = rng.i64_range(-3, 3);
            assert!((-3..=3).contains(&v));
            seen_lo |= v == -3;
            seen_hi |= v == 3;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn f64_in_unit_interval_with_plausible_mean() {
        let mut rng = Rng::new(11);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = rng.f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = Rng::new(13);
        let p = rng.permutation(1000);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..1000).collect::<Vec<u64>>());
        // And it is (overwhelmingly likely) not the identity.
        assert_ne!(p, (0..1000).collect::<Vec<u64>>());
    }

    #[test]
    fn shuffle_preserves_multiset() {
        let mut rng = Rng::new(17);
        let mut v = vec![1, 1, 2, 3, 5, 8, 13];
        let mut expected = v.clone();
        rng.shuffle(&mut v);
        v.sort_unstable();
        expected.sort_unstable();
        assert_eq!(v, expected);
    }

    #[test]
    fn alpha_string_length_bounds() {
        let mut rng = Rng::new(19);
        let mut s = String::new();
        for _ in 0..100 {
            rng.alpha_string(3, 9, &mut s);
            assert!((3..=9).contains(&s.len()));
            assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
        }
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let mut rng = Rng::new(23);
        let z = Zipf::new(10, 0.0);
        let mut counts = [0usize; 11];
        let n = 100_000;
        for _ in 0..n {
            let k = z.sample(&mut rng) as usize;
            assert!((1..=10).contains(&k));
            counts[k] += 1;
        }
        for &c in &counts[1..=10] {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.1).abs() < 0.01, "uniform bucket fraction {frac}");
        }
    }

    #[test]
    fn zipf_one_matches_harmonic_frequencies() {
        let mut rng = Rng::new(29);
        let n_keys = 1000u64;
        let z = Zipf::new(n_keys, 1.0);
        let samples = 200_000;
        let mut count_rank1 = 0usize;
        for _ in 0..samples {
            if z.sample(&mut rng) == 1 {
                count_rank1 += 1;
            }
        }
        let harmonic: f64 = (1..=n_keys).map(|k| 1.0 / k as f64).sum();
        let expected = 1.0 / harmonic;
        let observed = count_rank1 as f64 / samples as f64;
        assert!(
            (observed - expected).abs() < expected * 0.1,
            "rank-1 frequency {observed} vs expected {expected}"
        );
    }

    #[test]
    fn zipf_two_is_heavily_skewed() {
        let mut rng = Rng::new(31);
        let z = Zipf::new(1_000_000, 2.0);
        let samples = 50_000;
        let mut top20 = 0usize;
        for _ in 0..samples {
            let k = z.sample(&mut rng);
            assert!((1..=1_000_000).contains(&k));
            if k <= 200_000 {
                top20 += 1;
            }
        }
        // The paper: for z > 1, "more than 50% of the tuples find their join
        // partner in the first 20% of the build relation".
        assert!(top20 as f64 / samples as f64 > 0.5);
    }

    #[test]
    fn zipf_exponent_sweep_stays_in_range() {
        let mut rng = Rng::new(37);
        for z in [0.0, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0] {
            let d = Zipf::new(12345, z);
            for _ in 0..2000 {
                let k = d.sample(&mut rng);
                assert!((1..=12345).contains(&k), "z={z} produced {k}");
            }
        }
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = Rng::new(99);
        let mut a = root.fork();
        let mut b = root.fork();
        let equal = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(equal, 0);
    }
}
