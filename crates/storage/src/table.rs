//! Schemas, tables and morsels.
//!
//! A [`Table`] is an immutable, fully materialized columnar relation. Query
//! pipelines consume it in [`Morsel`]s — contiguous row ranges of a fixed
//! target size — which is the unit of work stealing in the morsel-driven
//! scheduler (Leis et al., SIGMOD'14), exactly as in the paper's host system.

use crate::column::ColumnData;
use crate::types::{DataType, Value};
use std::sync::Arc;

/// A named, typed column slot in a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    pub name: String,
    pub dtype: DataType,
}

impl Field {
    pub fn new(name: impl Into<String>, dtype: DataType) -> Field {
        Field {
            name: name.into(),
            dtype,
        }
    }
}

/// An ordered list of fields.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    pub fields: Vec<Field>,
}

impl Schema {
    pub fn new(fields: Vec<Field>) -> Schema {
        Schema { fields }
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn of(fields: &[(&str, DataType)]) -> Schema {
        Schema {
            fields: fields.iter().map(|(n, t)| Field::new(*n, *t)).collect(),
        }
    }

    pub fn len(&self) -> usize {
        self.fields.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of a column by name; panics if absent (planner bug).
    pub fn index_of(&self, name: &str) -> usize {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .unwrap_or_else(|| panic!("no column named {name:?} in schema {self:?}"))
    }

    pub fn dtype(&self, idx: usize) -> DataType {
        self.fields[idx].dtype
    }
}

/// A contiguous range of rows, the unit of parallel work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Morsel {
    pub start: usize,
    pub end: usize,
}

impl Morsel {
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// Default number of rows per morsel. The paper's system uses ~10k-row
/// morsels; we follow suit (small enough for load balancing, large enough
/// to amortize scheduling).
pub const MORSEL_ROWS: usize = 16 * 1024;

/// An immutable, fully materialized columnar relation.
///
/// Base TPC-H data is NOT NULL throughout; nullability (`validity`) only
/// appears in materialized intermediate results, e.g. outer-join padding.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Schema,
    columns: Vec<ColumnData>,
    /// Per-column validity; `None` = all rows valid (the common case).
    validity: Vec<Option<Vec<bool>>>,
    rows: usize,
}

impl Table {
    /// Build from a schema and matching columns. Panics if column count,
    /// types or lengths disagree with the schema.
    pub fn new(schema: Schema, columns: Vec<ColumnData>) -> Table {
        assert_eq!(schema.len(), columns.len(), "schema/column count mismatch");
        let rows = columns.first().map_or(0, ColumnData::len);
        for (f, c) in schema.fields.iter().zip(&columns) {
            assert_eq!(f.dtype, c.data_type(), "column {:?} type mismatch", f.name);
            assert_eq!(c.len(), rows, "column {:?} length mismatch", f.name);
        }
        let validity = vec![None; columns.len()];
        Table {
            schema,
            columns,
            validity,
            rows,
        }
    }

    /// An empty table with the given schema.
    pub fn empty(schema: Schema) -> Table {
        let columns: Vec<ColumnData> = schema
            .fields
            .iter()
            .map(|f| ColumnData::new(f.dtype))
            .collect();
        let validity = vec![None; columns.len()];
        Table {
            schema,
            columns,
            validity,
            rows: 0,
        }
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn num_rows(&self) -> usize {
        self.rows
    }

    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    pub fn column(&self, idx: usize) -> &ColumnData {
        &self.columns[idx]
    }

    pub fn column_by_name(&self, name: &str) -> &ColumnData {
        &self.columns[self.schema.index_of(name)]
    }

    pub fn columns(&self) -> &[ColumnData] {
        &self.columns
    }

    /// Per-column validity mask: `None` = all rows valid.
    pub fn validity(&self, col: usize) -> Option<&[bool]> {
        self.validity[col].as_deref()
    }

    /// Whether row `row` of column `col` is valid (non-NULL).
    pub fn is_valid(&self, col: usize, row: usize) -> bool {
        match &self.validity[col] {
            None => true,
            Some(mask) => mask[row],
        }
    }

    /// Dynamically-typed row accessor (tests / result display only).
    pub fn row(&self, i: usize) -> Vec<Value> {
        (0..self.columns.len())
            .map(|c| {
                if self.is_valid(c, i) {
                    self.columns[c].value(i)
                } else {
                    Value::Null
                }
            })
            .collect()
    }

    /// Total heap footprint of all columns in bytes.
    pub fn byte_size(&self) -> usize {
        self.columns.iter().map(ColumnData::byte_size).sum()
    }

    /// Split the row range into morsels of at most `morsel_rows` rows.
    pub fn morsels(&self, morsel_rows: usize) -> Vec<Morsel> {
        morsels_of(self.rows, morsel_rows)
    }
}

/// Split `rows` into contiguous ranges of at most `morsel_rows`.
pub fn morsels_of(rows: usize, morsel_rows: usize) -> Vec<Morsel> {
    assert!(morsel_rows > 0, "morsel size must be positive");
    let mut out = Vec::with_capacity(rows / morsel_rows + 1);
    let mut start = 0;
    while start < rows {
        let end = (start + morsel_rows).min(rows);
        out.push(Morsel { start, end });
        start = end;
    }
    out
}

/// Incremental row-oriented table construction (data generators, tests).
pub struct TableBuilder {
    schema: Schema,
    columns: Vec<ColumnData>,
    validity: Vec<Option<Vec<bool>>>,
}

impl TableBuilder {
    pub fn new(schema: Schema) -> TableBuilder {
        let columns: Vec<ColumnData> = schema
            .fields
            .iter()
            .map(|f| ColumnData::new(f.dtype))
            .collect();
        let validity = vec![None; columns.len()];
        TableBuilder {
            schema,
            columns,
            validity,
        }
    }

    pub fn with_capacity(schema: Schema, rows: usize) -> TableBuilder {
        let columns: Vec<ColumnData> = schema
            .fields
            .iter()
            .map(|f| ColumnData::with_capacity(f.dtype, rows))
            .collect();
        let validity = vec![None; columns.len()];
        TableBuilder {
            schema,
            columns,
            validity,
        }
    }

    /// Direct mutable access to a column for bulk typed appends.
    pub fn column_mut(&mut self, idx: usize) -> &mut ColumnData {
        &mut self.columns[idx]
    }

    /// Append one row of dynamically-typed values. NULLs are stored as a
    /// default value plus a validity bit.
    pub fn push_row(&mut self, row: &[Value]) {
        assert_eq!(row.len(), self.columns.len(), "row arity mismatch");
        for (i, v) in row.iter().enumerate() {
            let col = &mut self.columns[i];
            if v.is_null() {
                let rows = col.len();
                let mask = self.validity[i].get_or_insert_with(|| vec![true; rows]);
                mask.push(false);
                col.push_default();
            } else {
                if let Some(mask) = &mut self.validity[i] {
                    mask.push(true);
                }
                col.push_value(v);
            }
        }
    }

    pub fn finish(self) -> Table {
        let mut t = Table::new(self.schema, self.columns);
        t.validity = self.validity;
        t
    }
}

/// Shared, immutable table handle as passed around between pipelines.
pub type TableRef = Arc<Table>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Decimal;

    fn sample() -> Table {
        let schema = Schema::of(&[("id", DataType::Int64), ("name", DataType::Str)]);
        let mut b = TableBuilder::new(schema);
        b.push_row(&[Value::Int64(1), Value::Str("a".into())]);
        b.push_row(&[Value::Int64(2), Value::Str("b".into())]);
        b.push_row(&[Value::Int64(3), Value::Str("c".into())]);
        b.finish()
    }

    #[test]
    fn build_and_access() {
        let t = sample();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.num_columns(), 2);
        assert_eq!(t.column_by_name("id").as_i64(), &[1, 2, 3]);
        assert_eq!(t.row(1), vec![Value::Int64(2), Value::Str("b".into())]);
    }

    #[test]
    fn schema_lookup() {
        let t = sample();
        assert_eq!(t.schema().index_of("name"), 1);
        assert_eq!(t.schema().dtype(0), DataType::Int64);
    }

    #[test]
    #[should_panic(expected = "no column named")]
    fn schema_lookup_missing_panics() {
        sample().schema().index_of("ghost");
    }

    #[test]
    fn morsel_splitting_exact_and_ragged() {
        assert_eq!(morsels_of(0, 10), vec![]);
        assert_eq!(morsels_of(10, 10), vec![Morsel { start: 0, end: 10 }]);
        let m = morsels_of(25, 10);
        assert_eq!(
            m,
            vec![
                Morsel { start: 0, end: 10 },
                Morsel { start: 10, end: 20 },
                Morsel { start: 20, end: 25 }
            ]
        );
        assert_eq!(m.iter().map(Morsel::len).sum::<usize>(), 25);
    }

    #[test]
    fn byte_size_sums_columns() {
        let schema = Schema::of(&[("v", DataType::Decimal)]);
        let mut b = TableBuilder::new(schema);
        for i in 0..4 {
            b.push_row(&[Value::Decimal(Decimal(i))]);
        }
        assert_eq!(b.finish().byte_size(), 32);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_columns_panic() {
        let schema = Schema::of(&[("a", DataType::Int32), ("b", DataType::Int32)]);
        let c1 = {
            let mut c = ColumnData::new(DataType::Int32);
            c.push_value(&Value::Int32(1));
            c
        };
        let c2 = ColumnData::new(DataType::Int32);
        Table::new(schema, vec![c1, c2]);
    }
}
