//! The type system shared by tables, expressions and join keys.
//!
//! TPC-H needs exactly: 32/64-bit integers, fixed-point decimals (money),
//! dates, strings and booleans. Floats exist for completeness of the
//! expression evaluator. All types are `Copy` except strings, which live in
//! column-owned arenas (see [`crate::column::StrColumn`]).

use std::fmt;

/// Physical data type of a column or expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 1-byte boolean.
    Bool,
    /// 32-bit signed integer.
    Int32,
    /// 64-bit signed integer.
    Int64,
    /// 64-bit IEEE float.
    Float64,
    /// Days since 1970-01-01, stored as `i32`.
    Date,
    /// Fixed-point decimal with two fractional digits, stored as `i64`
    /// (TPC-H money type: `DECIMAL(15,2)`).
    Decimal,
    /// Variable-length UTF-8 string.
    Str,
}

impl DataType {
    /// Width of one value when materialized into a fixed-width row slot.
    ///
    /// Strings are materialized out-of-line; their in-row slot is an 8-byte
    /// arena reference (offset + length packed), which is how Umbra stores
    /// long strings in materialized tuples as well.
    pub fn slot_width(self) -> usize {
        match self {
            DataType::Bool => 1,
            DataType::Int32 | DataType::Date => 4,
            DataType::Int64 | DataType::Float64 | DataType::Decimal | DataType::Str => 8,
        }
    }

    /// True for types whose comparison/grouping is integer-like.
    pub fn is_integer_like(self) -> bool {
        matches!(
            self,
            DataType::Int32 | DataType::Int64 | DataType::Date | DataType::Decimal
        )
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "BOOL",
            DataType::Int32 => "INT",
            DataType::Int64 => "BIGINT",
            DataType::Float64 => "DOUBLE",
            DataType::Date => "DATE",
            DataType::Decimal => "DECIMAL(15,2)",
            DataType::Str => "VARCHAR",
        };
        f.write_str(s)
    }
}

/// A date, stored as days since the Unix epoch (1970-01-01).
///
/// TPC-H only needs construction from year/month/day literals, comparison,
/// year extraction and interval arithmetic in whole days/months/years; this
/// type implements a proleptic Gregorian calendar sufficient for the
/// benchmark's 1992–1998 date range (and far beyond).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date(pub i32);

const DAYS_PER_400Y: i64 = 146_097;
const DAYS_PER_100Y: i64 = 36_524;
const DAYS_PER_4Y: i64 = 1_461;

impl Date {
    /// Construct from a calendar date. Panics on out-of-range month/day.
    pub fn from_ymd(year: i32, month: u32, day: u32) -> Date {
        assert!((1..=12).contains(&month), "month out of range: {month}");
        assert!(
            (1..=31).contains(&day),
            "day out of range: {day} ({year}-{month})"
        );
        // Days since epoch via the civil-from-days inverse (Howard Hinnant's
        // algorithm), which is exact for the whole proleptic calendar.
        let y = i64::from(year) - i64::from(month <= 2);
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400;
        let mp = i64::from((month + 9) % 12);
        let doy = (153 * mp + 2) / 5 + i64::from(day) - 1;
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
        Date((era * DAYS_PER_400Y + doe - 719_468) as i32)
    }

    /// Decompose into `(year, month, day)`.
    pub fn ymd(self) -> (i32, u32, u32) {
        let z = i64::from(self.0) + 719_468;
        let era = if z >= 0 { z } else { z - DAYS_PER_400Y + 1 } / DAYS_PER_400Y;
        let doe = z - era * DAYS_PER_400Y;
        let yoe =
            (doe - doe / (DAYS_PER_4Y - 1) + doe / DAYS_PER_100Y - doe / (DAYS_PER_400Y - 1)) / 365;
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
        let mp = (5 * doy + 2) / 153;
        let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
        let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
        ((y + i64::from(m <= 2)) as i32, m, d)
    }

    /// Calendar year of this date.
    pub fn year(self) -> i32 {
        self.ymd().0
    }

    /// Add whole days (may be negative).
    pub fn add_days(self, days: i32) -> Date {
        Date(self.0 + days)
    }

    /// Add whole months, clamping the day-of-month (SQL interval semantics).
    pub fn add_months(self, months: i32) -> Date {
        let (y, m, d) = self.ymd();
        let total = y * 12 + (m as i32 - 1) + months;
        let ny = total.div_euclid(12);
        let nm = (total.rem_euclid(12) + 1) as u32;
        let max_d = days_in_month(ny, nm);
        Date::from_ymd(ny, nm, d.min(max_d))
    }

    /// Add whole years (clamping Feb 29 → Feb 28 when needed).
    pub fn add_years(self, years: i32) -> Date {
        self.add_months(years * 12)
    }
}

fn is_leap(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap(year) {
                29
            } else {
                28
            }
        }
        _ => unreachable!("invalid month {month}"),
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

/// Fixed-point decimal with two fractional digits, stored as scaled `i64`.
///
/// `Decimal(12345)` represents `123.45`. Multiplication of two decimals
/// rescales (rounding toward zero), matching how TPC-H reference answers are
/// computed with `DECIMAL(15,2)` arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Decimal(pub i64);

impl Decimal {
    pub const SCALE: i64 = 100;

    /// From an integral value (e.g. `Decimal::from_int(5)` is `5.00`).
    pub fn from_int(v: i64) -> Decimal {
        Decimal(v * Self::SCALE)
    }

    /// From cents, i.e. the raw scaled representation.
    pub fn from_scaled(v: i64) -> Decimal {
        Decimal(v)
    }

    /// Parse from `whole.frac` with up to two fractional digits.
    pub fn from_parts(whole: i64, cents: i64) -> Decimal {
        debug_assert!((0..100).contains(&cents));
        Decimal(whole * Self::SCALE + if whole < 0 { -cents } else { cents })
    }

    /// Lossy conversion to `f64` (display / final result rows only).
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / Self::SCALE as f64
    }

    /// Decimal × decimal with rescaling (truncating, like integer SQL engines).
    #[allow(clippy::should_implement_trait)] // rescaling semantics differ from Mul
    pub fn mul(self, rhs: Decimal) -> Decimal {
        Decimal((i128::from(self.0) * i128::from(rhs.0) / i128::from(Self::SCALE)) as i64)
    }

    /// Decimal ÷ decimal with rescaling (truncating).
    #[allow(clippy::should_implement_trait)] // rescaling semantics differ from Div
    pub fn div(self, rhs: Decimal) -> Decimal {
        Decimal((i128::from(self.0) * i128::from(Self::SCALE) / i128::from(rhs.0)) as i64)
    }
}

impl std::ops::Add for Decimal {
    type Output = Decimal;
    fn add(self, rhs: Decimal) -> Decimal {
        Decimal(self.0 + rhs.0)
    }
}

impl std::ops::Sub for Decimal {
    type Output = Decimal;
    fn sub(self, rhs: Decimal) -> Decimal {
        Decimal(self.0 - rhs.0)
    }
}

impl std::ops::Neg for Decimal {
    type Output = Decimal;
    fn neg(self) -> Decimal {
        Decimal(-self.0)
    }
}

impl fmt::Display for Decimal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = if self.0 < 0 { "-" } else { "" };
        let abs = self.0.unsigned_abs();
        write!(f, "{sign}{}.{:02}", abs / 100, abs % 100)
    }
}

/// A single dynamically-typed value. Used at the *edges* of the system
/// (constants in expressions, final result rows, test assertions) — never on
/// the per-tuple hot path.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Bool(bool),
    Int32(i32),
    Int64(i64),
    Float64(f64),
    Date(Date),
    Decimal(Decimal),
    Str(String),
    /// SQL NULL (produced by outer joins and empty aggregates).
    Null,
}

impl Value {
    /// The data type, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int32(_) => Some(DataType::Int32),
            Value::Int64(_) => Some(DataType::Int64),
            Value::Float64(_) => Some(DataType::Float64),
            Value::Date(_) => Some(DataType::Date),
            Value::Decimal(_) => Some(DataType::Decimal),
            Value::Str(_) => Some(DataType::Str),
            Value::Null => None,
        }
    }

    /// Interpret as `i64` for integer-like types; panics otherwise.
    pub fn as_i64(&self) -> i64 {
        match self {
            Value::Int32(v) => i64::from(*v),
            Value::Int64(v) => *v,
            Value::Date(d) => i64::from(d.0),
            Value::Decimal(d) => d.0,
            Value::Bool(b) => i64::from(*b),
            other => panic!("as_i64 on non-integer value {other:?}"),
        }
    }

    pub fn as_str(&self) -> &str {
        match self {
            Value::Str(s) => s,
            other => panic!("as_str on non-string value {other:?}"),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(v) => write!(f, "{v}"),
            Value::Int32(v) => write!(f, "{v}"),
            Value::Int64(v) => write!(f, "{v}"),
            Value::Float64(v) => write!(f, "{v:.4}"),
            Value::Date(v) => write!(f, "{v}"),
            Value::Decimal(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
            Value::Null => write!(f, "NULL"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_roundtrip_epoch() {
        assert_eq!(Date::from_ymd(1970, 1, 1).0, 0);
        assert_eq!(Date(0).ymd(), (1970, 1, 1));
    }

    #[test]
    fn date_roundtrip_tpch_range() {
        // Every day of the TPC-H date range must round-trip exactly.
        let start = Date::from_ymd(1992, 1, 1);
        let end = Date::from_ymd(1998, 12, 31);
        for d in start.0..=end.0 {
            let (y, m, day) = Date(d).ymd();
            assert_eq!(Date::from_ymd(y, m, day).0, d);
        }
    }

    #[test]
    fn date_known_values() {
        // Cross-checked against `date -d ... +%s / 86400`.
        assert_eq!(Date::from_ymd(1995, 3, 15).0, 9204);
        assert_eq!(Date::from_ymd(1998, 12, 1).0, 10561);
        assert_eq!(Date::from_ymd(2000, 2, 29).0, 11016);
    }

    #[test]
    fn date_year_extraction() {
        assert_eq!(Date::from_ymd(1996, 7, 4).year(), 1996);
        assert_eq!(Date::from_ymd(1992, 1, 1).year(), 1992);
        assert_eq!(Date::from_ymd(1992, 12, 31).year(), 1992);
    }

    #[test]
    fn date_interval_arithmetic() {
        let d = Date::from_ymd(1995, 1, 31);
        assert_eq!(d.add_months(1), Date::from_ymd(1995, 2, 28));
        assert_eq!(d.add_months(3), Date::from_ymd(1995, 4, 30));
        assert_eq!(d.add_years(1), Date::from_ymd(1996, 1, 31));
        assert_eq!(
            Date::from_ymd(1996, 2, 29).add_years(1),
            Date::from_ymd(1997, 2, 28)
        );
        assert_eq!(d.add_days(1), Date::from_ymd(1995, 2, 1));
        assert_eq!(
            Date::from_ymd(1995, 3, 15).add_months(-3),
            Date::from_ymd(1994, 12, 15)
        );
    }

    #[test]
    fn date_ordering_matches_calendar() {
        assert!(Date::from_ymd(1994, 12, 31) < Date::from_ymd(1995, 1, 1));
        assert!(Date::from_ymd(1995, 1, 1) < Date::from_ymd(1995, 1, 2));
    }

    #[test]
    fn decimal_arithmetic() {
        let a = Decimal::from_parts(12, 34); // 12.34
        let b = Decimal::from_int(2); // 2.00
        assert_eq!((a + b).0, 1434);
        assert_eq!((a - b).0, 1034);
        assert_eq!(a.mul(b).0, 2468);
        assert_eq!(a.div(b).0, 617);
        assert_eq!((-a).0, -1234);
    }

    #[test]
    fn decimal_mul_no_overflow_on_large_money() {
        // SF-100 revenue sums exceed i64 when squared naively; mul must go
        // through i128.
        let a = Decimal::from_int(3_000_000_000);
        let b = Decimal::from_parts(0, 90);
        assert_eq!(a.mul(b), Decimal::from_int(2_700_000_000));
    }

    #[test]
    fn decimal_display() {
        assert_eq!(Decimal::from_parts(12, 5).to_string(), "12.05");
        assert_eq!(Decimal(-7).to_string(), "-0.07");
        assert_eq!(Decimal::from_int(0).to_string(), "0.00");
    }

    #[test]
    fn value_as_i64_covers_integer_like() {
        assert_eq!(Value::Int32(-5).as_i64(), -5);
        assert_eq!(Value::Int64(1 << 40).as_i64(), 1 << 40);
        assert_eq!(Value::Date(Date(123)).as_i64(), 123);
        assert_eq!(Value::Decimal(Decimal(456)).as_i64(), 456);
        assert_eq!(Value::Bool(true).as_i64(), 1);
    }

    #[test]
    fn slot_widths() {
        assert_eq!(DataType::Int32.slot_width(), 4);
        assert_eq!(DataType::Date.slot_width(), 4);
        assert_eq!(DataType::Str.slot_width(), 8);
        assert_eq!(DataType::Decimal.slot_width(), 8);
        assert_eq!(DataType::Bool.slot_width(), 1);
    }
}
