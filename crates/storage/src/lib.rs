//! Columnar in-memory storage layer for the join study.
//!
//! This crate provides the substrate every other crate builds on:
//!
//! * [`types`] — the SQL-ish type system ([`DataType`], [`Value`], [`Date`],
//!   [`Decimal`]) used by tables, expressions and join keys,
//! * [`column`] — typed columnar buffers ([`ColumnData`]) including a
//!   compact offset/arena string column,
//! * [`table`] — [`Schema`], [`Table`] and [`Morsel`] (the unit of
//!   morsel-driven parallelism, cf. Leis et al., SIGMOD'14),
//! * [`gen`] — deterministic pseudo-random data generation (SplitMix64,
//!   uniform, Zipf via rejection-inversion, permutations) so that every
//!   experiment is reproducible bit-for-bit across runs and platforms.
//!
//! The design mirrors what the paper's host system (Umbra) exposes to its
//! join operators: relations are stored column-wise, scanned morsel-wise,
//! and materialized into rows only at pipeline breakers.

pub mod column;
pub mod gen;
pub mod table;
pub mod types;

pub use column::{ColumnData, StrColumn};
pub use gen::{Rng, Zipf};
pub use table::{Field, Morsel, Schema, Table, TableBuilder};
pub use types::{DataType, Date, Decimal, Value};
