//! End-to-end tests for the telemetry surface of an embedded session:
//! `jsys.*` virtual system tables queried through plain SQL, statement
//! fingerprint folding, and the slow-query log driven by SQL `SET`
//! variables.

use joinstudy_sql::Session;
use joinstudy_storage::types::Value;

fn session_with_data() -> Session {
    let mut s = Session::new(2);
    s.execute("CREATE TABLE r (k BIGINT NOT NULL, v BIGINT NOT NULL)")
        .unwrap();
    s.execute("INSERT INTO r VALUES (1, 10), (2, 20), (3, 30)")
        .unwrap();
    s.execute("CREATE TABLE b (key BIGINT NOT NULL, pay BIGINT NOT NULL)")
        .unwrap();
    s.execute("INSERT INTO b VALUES (1, 100), (3, 300)")
        .unwrap();
    s
}

/// Column index by name, so the tests survive schema column reordering.
fn col(t: &joinstudy_storage::table::Table, name: &str) -> usize {
    t.schema()
        .fields
        .iter()
        .position(|f| f.name == name)
        .unwrap_or_else(|| panic!("no column {name:?}"))
}

#[test]
fn statements_table_counts_every_statement() {
    let mut s = session_with_data();
    // Two literal variants of the same statement → one fingerprint, 2 calls.
    s.execute("SELECT v FROM r WHERE k = 1").unwrap();
    s.execute("SELECT v FROM r WHERE k = 2").unwrap();
    // One failing statement → errors = 1 under its own fingerprint.
    assert!(s.execute("SELECT nope FROM r").is_err());

    let t = s
        .execute("SELECT fingerprint, calls, errors FROM jsys.statements")
        .unwrap();
    let (fp, calls, errors) = (col(&t, "fingerprint"), col(&t, "calls"), col(&t, "errors"));

    let mut total_calls = 0i64;
    let mut saw_folded = false;
    let mut saw_error = false;
    for r in 0..t.num_rows() {
        let row = t.row(r);
        let c = match row[calls] {
            Value::Int64(c) => c,
            ref other => panic!("calls should be Int64, got {other:?}"),
        };
        total_calls += c;
        if let Value::Str(f) = &row[fp] {
            if f == "select v from r where k = ?" {
                assert_eq!(c, 2, "literal variants must fold into one fingerprint");
                saw_folded = true;
            }
            if f == "select nope from r" {
                assert_eq!(row[errors], Value::Int64(1));
                saw_error = true;
            }
        }
    }
    assert!(saw_folded, "folded fingerprint row missing");
    assert!(saw_error, "error fingerprint row missing");
    // Everything executed so far is accounted for: 4 setup statements,
    // 2 folded SELECTs, 1 error. The jsys query itself snapshots before
    // its own recording, so it is not in its own result.
    assert_eq!(total_calls, 7);
}

#[test]
fn plan_failed_statement_does_not_inherit_engine_counters() {
    let mut s = session_with_data();
    // A join leaves a join-shape mask on the query context ...
    s.execute("SELECT count(*) FROM r, b WHERE r.k = b.key")
        .unwrap();
    // ... which a statement that fails *before* arming the context (plan
    // error) must not pick up as its own.
    assert!(s.execute("SELECT r.v, b.pay FROM r, b").is_err());

    let t = s
        .execute("SELECT fingerprint, errors, algos FROM jsys.statements")
        .unwrap();
    let (fp, algos) = (col(&t, "fingerprint"), col(&t, "algos"));
    let row = (0..t.num_rows())
        .find(|&r| t.row(r)[fp] == Value::Str("select r.v, b.pay from r, b".into()))
        .expect("plan-error fingerprint row");
    assert_eq!(
        t.row(row)[algos],
        Value::Str("-".into()),
        "a statement that never armed the context must not report the \
         previous query's join shapes"
    );
}

#[test]
fn recent_queries_ring_and_active_queries() {
    let mut s = session_with_data();
    s.execute("SELECT count(*) FROM r, b WHERE r.k = b.key")
        .unwrap();

    let t = s
        .execute("SELECT seq, sql, ok, rows_out FROM jsys.recent_queries")
        .unwrap();
    let sql_col = col(&t, "sql");
    let texts: Vec<String> = (0..t.num_rows())
        .map(|r| match &t.row(r)[sql_col] {
            Value::Str(s) => s.clone(),
            other => panic!("sql should be Str, got {other:?}"),
        })
        .collect();
    assert!(
        texts.iter().any(|q| q.contains("count(*)")),
        "recent ring should hold the join query, got {texts:?}"
    );

    // Nothing is in flight while the jsys.active_queries statement itself
    // runs — except that statement, which upserted itself before planning.
    let t = s
        .execute("SELECT conn, state, sql FROM jsys.active_queries")
        .unwrap();
    assert_eq!(t.num_rows(), 1);
    assert_eq!(t.row(0)[col(&t, "state")], Value::Str("running".into()));
}

#[test]
fn statements_table_supports_wildcard_and_joins_with_limits() {
    let mut s = session_with_data();
    s.execute("SELECT v FROM r WHERE k = 1").unwrap();
    // `SELECT *` exercises the planner's wildcard expansion over a
    // materialized system table; ORDER BY + LIMIT run the normal operator
    // pipeline on top of it.
    let t = s
        .execute("SELECT * FROM jsys.statements ORDER BY total_ns DESC LIMIT 3")
        .unwrap();
    assert!(t.num_rows() >= 1 && t.num_rows() <= 3);
    assert_eq!(t.schema().fields.len(), 15);
    assert_eq!(t.schema().fields[0].name, "fingerprint");
}

#[test]
fn metrics_and_pool_tables_materialize() {
    let mut s = session_with_data();
    s.execute("SELECT count(*) FROM r, b WHERE r.k = b.key")
        .unwrap();
    let t = s.execute("SELECT name, value FROM jsys.metrics").unwrap();
    let names: Vec<String> = (0..t.num_rows())
        .map(|r| match &t.row(r)[0] {
            Value::Str(s) => s.clone(),
            other => panic!("name should be Str, got {other:?}"),
        })
        .collect();
    // The global registry is process-wide and other tests feed it too, so
    // assert only on presence of this crate's own counters.
    assert!(!names.is_empty(), "metrics table should not be empty");

    let t = s.execute("SELECT name, value FROM jsys.pool").unwrap();
    let names: Vec<String> = (0..t.num_rows())
        .map(|r| match &t.row(r)[0] {
            Value::Str(s) => s.clone(),
            other => panic!("name should be Str, got {other:?}"),
        })
        .collect();
    // Embedded session: no shared pool, no admission controller — only
    // the in-flight pipeline gauge is known.
    assert!(names.contains(&"pool.active_pipelines".to_string()));
}

#[test]
fn unknown_system_table_is_a_plan_error() {
    let mut s = session_with_data();
    let err = s.execute("SELECT * FROM jsys.nope").unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("unknown system table") && msg.contains("jsys.statements"),
        "error should list the valid system tables, got: {msg}"
    );
}

#[test]
fn slow_query_log_via_set_variables() {
    let path = std::env::temp_dir().join(format!(
        "joinstudy_slowlog_{}_{:?}.jsonl",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_file(&path);

    let mut s = session_with_data();
    s.execute(&format!("SET slow_query_log = '{}'", path.display()))
        .unwrap();
    // Threshold 1ns: every statement is slow.
    s.execute("SET slow_query_ns = 1").unwrap();
    s.execute("SELECT v FROM r WHERE k = 2").unwrap();
    // Turning the threshold off stops the stream.
    s.execute("SET slow_query_ns = 0").unwrap();
    s.execute("SELECT v FROM r WHERE k = 3").unwrap();
    s.execute("SET slow_query_log = off").unwrap();

    let text = std::fs::read_to_string(&path).expect("slow log file written");
    let lines: Vec<&str> = text.lines().collect();
    // The finish hook reads the threshold *after* the statement applied it,
    // so `SET slow_query_ns = 1` logs itself, the first SELECT is logged,
    // and everything from `SET slow_query_ns = 0` on is absent.
    assert!(
        lines
            .iter()
            .any(|l| l.contains("\"fingerprint\":\"select v from r where k = ?\"")),
        "slow log should contain the query fingerprint, got: {text}"
    );
    assert!(
        !lines.iter().any(|l| l.contains("k = 3")),
        "statements after SET slow_query_ns = 0 must not be logged: {text}"
    );
    for l in &lines {
        assert!(
            l.starts_with('{') && l.ends_with('}') && l.contains("\"latency_ns\":"),
            "each slow-log line is one JSON document: {l}"
        );
    }
    let _ = std::fs::remove_file(&path);
}
