//! Live-server tests for the active-session-history surface: the
//! wait-state sampler (`jsys.ash`), live per-operator progress
//! (`jsys.query_progress`), and the 1-second gauge ring
//! (`jsys.timeseries`) — all answered over plain SQL through the line
//! protocol, exactly as `joinstudy_top` reads them.
//!
//! The second test is the acceptance scenario from DESIGN.md §14: a
//! deliberately spill-heavy join under a 16 MiB budget must surface
//! `spill_io` wait samples in the ASH ring and strictly monotone
//! per-operator progress counters while the query is in flight.

use joinstudy_sql::server::Client;
use joinstudy_sql::{ServerConfig, SqlServer};
use joinstudy_storage::table::{Schema, Table, TableBuilder};
use joinstudy_storage::types::{DataType, Value};
use std::collections::BTreeMap;
use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

const WAIT_STATES: [&str; 9] = [
    "other",
    "admission_queued",
    "pool_wait",
    "cpu_build",
    "cpu_partition",
    "cpu_probe",
    "cpu_scan",
    "spill_io",
    "finalizing",
];

fn keyed_table(rows: usize) -> Arc<Table> {
    let schema = Schema::of(&[("k", DataType::Int64), ("v", DataType::Int64)]);
    let mut b = TableBuilder::with_capacity(schema, rows);
    for i in 0..rows {
        b.push_row(&[Value::Int64(i as i64), Value::Int64(i as i64 * 2)]);
    }
    Arc::new(b.finish())
}

/// Run `sql`, assert success, and parse the framed body into rows of
/// tab-separated fields (header dropped).
fn rows(client: &mut Client, sql: &str) -> Vec<Vec<String>> {
    let response = client.query(sql).expect("round trip");
    assert!(
        response.starts_with("OK"),
        "query {sql:?} failed: {}",
        response.lines().next().unwrap_or("")
    );
    response
        .lines()
        .skip(2) // OK header + column names
        .take_while(|l| *l != ".")
        .map(|l| l.split('\t').map(str::to_string).collect())
        .collect()
}

/// Column-name header of a successful response.
fn header(client: &mut Client, sql: &str) -> Vec<String> {
    let response = client.query(sql).expect("round trip");
    assert!(response.starts_with("OK"), "query {sql:?} failed");
    response
        .lines()
        .nth(1)
        .unwrap_or("")
        .split('\t')
        .map(str::to_string)
        .collect()
}

fn spawn_server(
    config: ServerConfig,
    tables: &[(&str, Arc<Table>)],
) -> joinstudy_sql::server::ServerHandle {
    let mut server = SqlServer::new(config);
    for (name, table) in tables {
        server.register(*name, Arc::clone(table));
    }
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    Arc::new(server).spawn(listener).expect("spawn server")
}

#[test]
fn ash_progress_and_timeseries_answer_over_plain_sql() {
    let config = ServerConfig {
        threads: 2,
        pool_bytes: 64 << 20,
        query_bytes: 16 << 20,
        min_grant_bytes: 1 << 20,
        ash_enabled: true,
        ash_interval: Duration::from_millis(2),
        timeseries_interval: Duration::from_millis(20),
    };
    let t = keyed_table(50_000);
    let handle = spawn_server(config, &[("t", Arc::clone(&t)), ("u", t)]);
    let addr = handle.addr();

    // Concurrent load: two clients, enough statements that the 2 ms
    // sampler catches plenty of them in flight.
    let mut clients = Vec::new();
    for _ in 0..2 {
        clients.push(std::thread::spawn(move || {
            let mut c = Client::connect(addr).expect("connect");
            for _ in 0..15 {
                let body = rows(&mut c, "SELECT count(*) FROM t, u WHERE t.k = u.k");
                assert_eq!(body[0][0], "50000");
            }
            c.query(".quit").ok();
        }));
    }
    for c in clients {
        c.join().expect("client thread");
    }
    // Let at least a few timeseries ticks land.
    std::thread::sleep(Duration::from_millis(80));

    let mut observer = Client::connect(addr).expect("connect observer");

    // jsys.ash: non-empty, every wait state from the taxonomy, and
    // joinable to jsys.statements on fingerprint.
    let ash = rows(
        &mut observer,
        "SELECT at_ms, conn, query_id, fingerprint, wait_state, pipeline, rows, \
         granted_bytes FROM jsys.ash",
    );
    assert!(!ash.is_empty(), "sampler took no samples under load");
    for sample in &ash {
        assert!(
            WAIT_STATES.contains(&sample[4].as_str()),
            "unknown wait state {:?}",
            sample[4]
        );
    }
    let statement_fps: Vec<String> = rows(&mut observer, "SELECT fingerprint FROM jsys.statements")
        .into_iter()
        .map(|mut r| r.remove(0))
        .collect();
    assert!(
        ash.iter().any(|s| statement_fps.contains(&s[3])),
        "ash samples must join to jsys.statements on fingerprint"
    );
    assert!(
        ash.iter().any(|s| s[4].starts_with("cpu_") && s[2] != "0"),
        "load this heavy must be caught on-CPU with an armed query id"
    );

    // jsys.query_progress: answers with the full column set (the load has
    // drained, so it is usually empty — the shape is the contract here).
    let cols = header(&mut observer, "SELECT * FROM jsys.query_progress");
    assert_eq!(
        cols,
        [
            "query_id",
            "conn",
            "pipeline",
            "stage",
            "batches",
            "rows_in",
            "rows_out",
            "morsels_done",
            "morsels_total",
            "est_rows",
            "fraction",
            "spill_bytes"
        ]
    );

    // jsys.timeseries: ticks accumulated, and the gauges describe this
    // server (2 pool threads).
    let ticks = rows(
        &mut observer,
        "SELECT at_ms, queue_depth, pool_threads, active_queries FROM jsys.timeseries",
    );
    assert!(ticks.len() >= 2, "expected several 20 ms ticks");
    for tick in &ticks {
        assert_eq!(tick[2], "2", "pool_threads gauge should match config");
    }
    let at: Vec<i64> = ticks.iter().map(|t| t[0].parse().unwrap()).collect();
    assert!(at.windows(2).all(|w| w[0] <= w[1]), "ticks oldest-first");

    observer.query(".quit").ok();
    handle.stop();
}

#[test]
fn spill_heavy_query_shows_spill_io_samples_and_monotone_progress() {
    // 16 MiB query budget, build side ~19 MiB raw: the join must degrade
    // to the spilling HHJ. The pool is bigger than one grant so the
    // observer connection's jsys statements are admitted mid-join.
    let config = ServerConfig {
        threads: 2,
        pool_bytes: 24 << 20,
        query_bytes: 16 << 20,
        min_grant_bytes: 1 << 20,
        ash_enabled: true,
        ash_interval: Duration::from_millis(1),
        timeseries_interval: Duration::from_millis(50),
    };
    let rows_n = 1_200_000usize;
    let big = keyed_table(rows_n);
    let handle = spawn_server(config, &[("big_r", Arc::clone(&big)), ("big_s", big)]);
    let addr = handle.addr();

    let runner = std::thread::spawn(move || {
        let mut c = Client::connect(addr).expect("connect runner");
        let body = rows(
            &mut c,
            "SELECT count(*) FROM big_r, big_s WHERE big_r.k = big_s.k",
        );
        c.query(".quit").ok();
        body[0][0].clone()
    });

    // Poll live progress while the join runs. Counters are relaxed
    // atomics, but per (query_id, pipeline, stage) they must only grow.
    let mut observer = Client::connect(addr).expect("connect observer");
    let mut last: BTreeMap<(String, String, String), (i64, i64, i64)> = BTreeMap::new();
    let mut saw_live = false;
    let mut advanced = 0usize;
    let deadline = Instant::now() + Duration::from_secs(120);
    while !runner.is_finished() {
        assert!(Instant::now() < deadline, "spill join did not finish");
        let snapshot = rows(
            &mut observer,
            "SELECT query_id, pipeline, stage, rows_in, rows_out, morsels_done \
             FROM jsys.query_progress",
        );
        for row in snapshot {
            saw_live = true;
            let key = (row[0].clone(), row[1].clone(), row[2].clone());
            let now: (i64, i64, i64) = (
                row[3].parse().unwrap(),
                row[4].parse().unwrap(),
                row[5].parse().unwrap(),
            );
            if let Some(prev) = last.get(&key) {
                assert!(
                    now.0 >= prev.0 && now.1 >= prev.1 && now.2 >= prev.2,
                    "progress went backwards for {key:?}: {prev:?} -> {now:?}"
                );
                if now != *prev {
                    advanced += 1;
                }
            }
            last.insert(key, now);
        }
        std::thread::sleep(Duration::from_millis(3));
    }
    let count = runner.join().expect("runner thread");
    assert_eq!(count, rows_n.to_string(), "join result wrong");
    assert!(saw_live, "never observed a live pipeline mid-join");
    assert!(
        advanced > 0,
        "progress counters never advanced between polls"
    );

    // The statement really spilled ...
    let stmts = rows(
        &mut observer,
        "SELECT fingerprint, spill_bytes FROM jsys.statements",
    );
    let spill_bytes: i64 = stmts
        .iter()
        .find(|r| r[0].contains("big_r"))
        .expect("join fingerprint row")[1]
        .parse()
        .unwrap();
    assert!(
        spill_bytes > 0,
        "16 MiB budget over a ~19 MiB build side must spill"
    );

    // ... and the sampler caught it doing spill I/O, with live pipeline
    // attribution on at least some samples.
    let ash = rows(&mut observer, "SELECT wait_state, pipeline FROM jsys.ash");
    assert!(
        ash.iter().any(|s| s[0] == "spill_io"),
        "no spill_io wait samples; states seen: {:?}",
        ash.iter()
            .map(|s| s[0].as_str())
            .collect::<std::collections::BTreeSet<_>>()
    );
    assert!(
        ash.iter().any(|s| !s[1].is_empty()),
        "no ash sample carried a pipeline label"
    );

    observer.query(".quit").ok();
    handle.stop();
}
