//! End-to-end SQL: the paper's own statements run verbatim, results
//! cross-validated against hand-built plans and references.

use joinstudy_core::JoinAlgo;
use joinstudy_sql::Session;
use joinstudy_storage::column::ColumnData;
use joinstudy_storage::gen::Rng;
use joinstudy_storage::table::{Schema, TableBuilder};
use joinstudy_storage::types::DataType;
use std::sync::Arc;

/// Register Workload-A'-shaped tables b(key, pay) / r(k, p1).
fn microbench_session(build_n: usize, probe_n: usize, seed: u64) -> Session {
    let mut rng = Rng::new(seed);
    let mut session = Session::new(2);

    let bschema = Schema::of(&[("key", DataType::Int64), ("pay", DataType::Int64)]);
    let mut b = TableBuilder::with_capacity(bschema, build_n);
    let keys = rng.permutation(build_n);
    *b.column_mut(0) = ColumnData::Int64(keys.iter().map(|&k| k as i64).collect());
    *b.column_mut(1) = ColumnData::Int64(keys.iter().map(|&k| k as i64).collect());
    session.register("build", Arc::new(b.finish()));

    let pschema = Schema::of(&[("k", DataType::Int64), ("p1", DataType::Int64)]);
    let mut p = TableBuilder::with_capacity(pschema, probe_n);
    *p.column_mut(0) = ColumnData::Int64(
        (0..probe_n)
            .map(|_| rng.u64_below(build_n as u64) as i64)
            .collect(),
    );
    *p.column_mut(1) = ColumnData::Int64((0..probe_n as i64).collect());
    session.register("probe", Arc::new(p.finish()));
    session
}

#[test]
fn papers_count_query_runs_verbatim() {
    // §5.2: "SELECT count(*) FROM probe r, build s WHERE r.k = s.k;"
    let mut session = microbench_session(1000, 16_000, 1);
    for algo in [JoinAlgo::Bhj, JoinAlgo::Rj, JoinAlgo::Brj] {
        session.set_join_algo(algo);
        let t = session
            .execute("SELECT count(*) FROM probe r, build s WHERE r.k = s.key;")
            .unwrap();
        assert_eq!(t.column(0).as_i64(), &[16_000], "{algo:?}");
    }
}

#[test]
fn papers_sum_query_runs_verbatim() {
    // §5.4.2: "SELECT sum(s.p1) FROM build r, probe s WHERE r.k = s.k;"
    let mut session = microbench_session(500, 4_000, 2);
    let reference: i64 = {
        // Every probe row matches exactly once → sum of all p1 values.
        let t = session.table("probe").unwrap();
        t.column_by_name("p1").as_i64().iter().sum()
    };
    for algo in [JoinAlgo::Bhj, JoinAlgo::Rj, JoinAlgo::Brj] {
        session.set_join_algo(algo);
        let t = session
            .execute("SELECT sum(s.p1) FROM build r, probe s WHERE r.key = s.k")
            .unwrap();
        assert_eq!(t.column(0).as_i64(), &[reference], "{algo:?}");
    }
}

#[test]
fn papers_create_table_and_insert() {
    // §5.1.2: "CREATE TABLE b(key BIGINT NOT NULL, pay BIGINT NOT NULL);"
    let mut session = Session::new(1);
    session
        .execute("CREATE TABLE b(key BIGINT NOT NULL, pay BIGINT NOT NULL);")
        .unwrap();
    session
        .execute("INSERT INTO b VALUES (1, 10), (2, 20), (3, 30)")
        .unwrap();
    let t = session.execute("SELECT count(*), sum(pay) FROM b").unwrap();
    assert_eq!(t.column(0).as_i64(), &[3]);
    assert_eq!(t.column(1).as_i64(), &[60]);
}

#[test]
fn group_by_order_by_limit() {
    let mut session = Session::new(2);
    session
        .execute("CREATE TABLE s (cat VARCHAR, amount DECIMAL(15,2))")
        .unwrap();
    session
        .execute(
            "INSERT INTO s VALUES ('a', 1.50), ('b', 2.00), ('a', 0.50), ('c', 9.99), ('b', 1.00)",
        )
        .unwrap();
    let t = session
        .execute(
            "SELECT cat, count(*) AS n, sum(amount) AS total FROM s \
             GROUP BY cat ORDER BY total DESC LIMIT 2",
        )
        .unwrap();
    assert_eq!(t.num_rows(), 2);
    assert_eq!(t.column_by_name("cat").as_str().get(0), "c");
    assert_eq!(t.column_by_name("total").as_i64(), &[999, 300]);
    assert_eq!(t.column_by_name("n").as_i64(), &[1, 2]);
}

#[test]
fn three_table_join_with_filters() {
    let mut session = Session::new(2);
    session
        .execute("CREATE TABLE region (rid BIGINT, rname VARCHAR)")
        .unwrap();
    session
        .execute("INSERT INTO region VALUES (1, 'ASIA'), (2, 'EUROPE')")
        .unwrap();
    session
        .execute("CREATE TABLE nation (nid BIGINT, nregion BIGINT)")
        .unwrap();
    session
        .execute("INSERT INTO nation VALUES (10, 1), (11, 1), (12, 2)")
        .unwrap();
    session
        .execute("CREATE TABLE city (cid BIGINT, cnation BIGINT, pop BIGINT)")
        .unwrap();
    session
        .execute("INSERT INTO city VALUES (100, 10, 5), (101, 10, 7), (102, 11, 11), (103, 12, 2)")
        .unwrap();
    for algo in [JoinAlgo::Bhj, JoinAlgo::Rj, JoinAlgo::Brj] {
        session.set_join_algo(algo);
        let t = session
            .execute(
                "SELECT count(*), sum(c.pop) FROM city c, nation n, region r \
                 WHERE c.cnation = n.nid AND n.nregion = r.rid AND r.rname = 'ASIA'",
            )
            .unwrap();
        assert_eq!(t.column(0).as_i64(), &[3], "{algo:?}");
        assert_eq!(t.column(1).as_i64(), &[23], "{algo:?}");
    }
}

#[test]
fn tpch_query_in_sql_matches_reference() {
    // A simplified TPC-H Q3 over the real generated data, in SQL.
    let data = joinstudy_tpch_testdata();
    let mut session = Session::new(2);
    session.register("customer", Arc::clone(&data.customer));
    session.register("orders", Arc::clone(&data.orders));
    session.register("lineitem", Arc::clone(&data.lineitem));

    session.set_join_algo(JoinAlgo::Brj);
    let t = session
        .execute(
            "SELECT o_orderkey, sum(l_extendedprice * (1 - l_discount)) AS revenue \
             FROM customer, orders, lineitem \
             WHERE c_mktsegment = 'BUILDING' AND c_custkey = o_custkey \
               AND l_orderkey = o_orderkey \
               AND o_orderdate < DATE '1995-03-15' AND l_shipdate > DATE '1995-03-15' \
             GROUP BY o_orderkey ORDER BY revenue DESC, o_orderkey LIMIT 5",
        )
        .unwrap();
    assert!(t.num_rows() > 0 && t.num_rows() <= 5);
    let rev = t.column_by_name("revenue").as_i64();
    assert!(
        rev.windows(2).all(|w| w[0] >= w[1]),
        "not sorted by revenue"
    );

    // Same result under a different join implementation.
    session.set_join_algo(JoinAlgo::Bhj);
    let t2 = session
        .execute(
            "SELECT o_orderkey, sum(l_extendedprice * (1 - l_discount)) AS revenue \
             FROM customer, orders, lineitem \
             WHERE c_mktsegment = 'BUILDING' AND c_custkey = o_custkey \
               AND l_orderkey = o_orderkey \
               AND o_orderdate < DATE '1995-03-15' AND l_shipdate > DATE '1995-03-15' \
             GROUP BY o_orderkey ORDER BY revenue DESC, o_orderkey LIMIT 5",
        )
        .unwrap();
    assert_eq!(t.column(0).as_i64(), t2.column(0).as_i64());
    assert_eq!(rev, t2.column_by_name("revenue").as_i64());
}

fn joinstudy_tpch_testdata() -> joinstudy_tpch::TpchData {
    joinstudy_tpch::generate(0.01, 99)
}

#[test]
fn explain_shows_the_join_tree() {
    let mut session = microbench_session(100, 1000, 3);
    session.set_join_algo(JoinAlgo::Brj);
    let text = session
        .explain("SELECT count(*) FROM probe r, build s WHERE r.k = s.key")
        .unwrap();
    assert!(text.contains("Join #1 BRJ Inner"), "{text}");
    assert!(text.contains("Scan"), "{text}");
    // The smaller table (build, 100 rows) must be the build side:
    // its scan line appears directly under the join header.
    let join_line = text.lines().position(|l| l.contains("Join #1")).unwrap();
    let next = text.lines().nth(join_line + 1).unwrap();
    assert!(
        next.contains("(100 rows)"),
        "build side should be the smaller table: {text}"
    );
}

#[test]
fn error_messages_are_helpful() {
    let mut session = Session::new(1);
    session.execute("CREATE TABLE t (a BIGINT)").unwrap();
    let err = session.execute("SELECT b FROM t").unwrap_err().to_string();
    assert!(err.contains("unknown column"), "{err}");
    let err = session
        .execute("SELECT a FROM missing")
        .unwrap_err()
        .to_string();
    assert!(err.contains("unknown table"), "{err}");
    let err = session
        .execute("SELECT a, count(*) FROM t")
        .unwrap_err()
        .to_string();
    assert!(err.contains("GROUP BY"), "{err}");
    let err = session
        .execute("SELECT a FROM t, t")
        .unwrap_err()
        .to_string();
    assert!(err.contains("duplicate"), "{err}");
}

#[test]
fn case_when_and_residual_predicates() {
    let mut session = Session::new(2);
    session
        .execute("CREATE TABLE a (x BIGINT, y BIGINT)")
        .unwrap();
    session
        .execute("INSERT INTO a VALUES (1, 5), (2, 1), (3, 9)")
        .unwrap();
    session
        .execute("CREATE TABLE b (x BIGINT, z BIGINT)")
        .unwrap();
    session
        .execute("INSERT INTO b VALUES (1, 4), (2, 3), (3, 10)")
        .unwrap();
    // Residual non-equi predicate a.y < b.z survives above the equi join.
    let t = session
        .execute(
            "SELECT sum(CASE WHEN a.y > 4 THEN 1 ELSE 0 END) AS big, count(*) AS n \
             FROM a, b WHERE a.x = b.x AND a.y < b.z",
        )
        .unwrap();
    // Matching rows: (2: y=1 < z=3), (3: y=9 < z=10) → n=2, big=1 (y=9).
    assert_eq!(t.column_by_name("n").as_i64(), &[2]);
    assert_eq!(t.column_by_name("big").as_i64(), &[1]);
}

#[test]
fn set_join_algo_statement_switches_the_session() {
    let mut session = microbench_session(200, 2_000, 7);
    // The session answers the join question itself out of the box.
    assert_eq!(session.join_algo(), JoinAlgo::Adaptive);
    for (value, algo) in [
        ("bhj", JoinAlgo::Bhj),
        ("rj", JoinAlgo::Rj),
        ("brj", JoinAlgo::Brj),
        ("adaptive", JoinAlgo::Adaptive),
        ("hybrid", JoinAlgo::Hybrid),
    ] {
        session
            .execute(&format!("SET join_algo = {value};"))
            .unwrap();
        assert_eq!(session.join_algo(), algo, "SET join_algo = {value}");
        let t = session
            .execute("SELECT count(*) FROM probe r, build s WHERE r.k = s.key")
            .unwrap();
        assert_eq!(t.column(0).as_i64(), &[2_000], "{value}");
    }

    let err = session
        .execute("SET join_algo = quantum")
        .unwrap_err()
        .to_string();
    assert!(err.contains("unknown join_algo"), "{err}");
    let err = session
        .execute("SET partition_bits = 6")
        .unwrap_err()
        .to_string();
    assert!(err.contains("unknown session variable"), "{err}");
}
