//! Session-level resource limits: typed errors for timeouts, cancellation
//! and budget breaches, the transparent RJ→BHJ degradation, and the
//! guarantee that a failed statement leaves the session fully usable.

use joinstudy_core::JoinAlgo;
use joinstudy_exec::metrics;
use joinstudy_sql::{Session, SqlError};
use joinstudy_storage::column::ColumnData;
use joinstudy_storage::table::{Schema, TableBuilder};
use joinstudy_storage::types::DataType;
use std::sync::Arc;
use std::time::Duration;

const COUNT_SQL: &str = "SELECT count(*) FROM probe r, build s WHERE r.k = s.key;";

/// b(key, pay) with unique keys 0..build_n, r(k, p1) with k = i % build_n:
/// every probe row matches exactly once.
fn joined_session(build_n: usize, probe_n: usize) -> Session {
    let mut session = Session::new(2);
    let bschema = Schema::of(&[("key", DataType::Int64), ("pay", DataType::Int64)]);
    let mut b = TableBuilder::with_capacity(bschema, build_n);
    *b.column_mut(0) = ColumnData::Int64((0..build_n as i64).collect());
    *b.column_mut(1) = ColumnData::Int64((0..build_n as i64).collect());
    session.register("build", Arc::new(b.finish()));

    let pschema = Schema::of(&[("k", DataType::Int64), ("p1", DataType::Int64)]);
    let mut p = TableBuilder::with_capacity(pschema, probe_n);
    *p.column_mut(0) = ColumnData::Int64((0..probe_n).map(|i| (i % build_n) as i64).collect());
    *p.column_mut(1) = ColumnData::Int64((0..probe_n as i64).collect());
    session.register("probe", Arc::new(p.finish()));
    session
}

#[test]
fn timeout_is_typed_and_session_recovers() {
    let mut session = joined_session(60_000, 400_000);
    session.set_timeout(Some(Duration::from_millis(1)));
    let err = session.execute(COUNT_SQL).unwrap_err();
    assert_eq!(err, SqlError::Timeout { budget_ms: 1 });
    assert!(err.to_string().contains("1 ms"), "{err}");

    session.set_timeout(None);
    let t = session.execute(COUNT_SQL).unwrap();
    assert_eq!(t.column(0).as_i64(), &[400_000]);
}

#[test]
fn cancellation_from_another_thread_is_typed() {
    let mut session = joined_session(60_000, 400_000);
    session.set_join_algo(JoinAlgo::Rj);
    let ctx = session.context();
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(5));
        ctx.cancel();
    });
    let err = session.execute(COUNT_SQL).unwrap_err();
    canceller.join().unwrap();
    assert_eq!(err, SqlError::Cancelled);

    // The cancel flag is re-armed per statement: the session still works.
    session.set_join_algo(JoinAlgo::Bhj);
    let t = session.execute(COUNT_SQL).unwrap();
    assert_eq!(t.column(0).as_i64(), &[400_000]);
}

#[test]
fn budget_degradation_is_transparent_in_sql() {
    // 16 KiB build side, 3.2 MiB probe side: a 512 KiB budget kills the
    // radix join's probe partitioning but fits the BHJ's build-only
    // materialization, so the statement silently degrades and succeeds.
    let mut session = joined_session(1_000, 200_000);
    session.set_join_algo(JoinAlgo::Rj);
    session.set_memory_budget(Some(512 * 1024));
    let before = metrics::degradations();
    let t = session.execute(COUNT_SQL).unwrap();
    assert_eq!(t.column(0).as_i64(), &[200_000]);
    assert_eq!(metrics::degradations(), before + 1);

    // A budget too small even for the BHJ surfaces the typed error.
    session.set_memory_budget(Some(1024));
    match session.execute(COUNT_SQL) {
        Err(SqlError::BudgetExceeded { budget, .. }) => assert_eq!(budget, 1024),
        other => panic!("expected budget breach, got {other:?}"),
    }
    session.set_memory_budget(None);
    let t = session.execute(COUNT_SQL).unwrap();
    assert_eq!(t.column(0).as_i64(), &[200_000]);
}

#[test]
fn plan_and_parse_errors_are_distinguishable() {
    let mut session = joined_session(10, 10);
    assert!(matches!(
        session.execute("SELEC count(*) FROM build"),
        Err(SqlError::Parse(_))
    ));
    assert!(matches!(
        session.execute("SELECT nope FROM build"),
        Err(SqlError::Plan(_))
    ));
    // Both failures leave the session usable.
    let t = session.execute("SELECT count(*) FROM build").unwrap();
    assert_eq!(t.column(0).as_i64(), &[10]);
}
