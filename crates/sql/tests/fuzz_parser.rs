//! Robustness: the lexer and parser must never panic — arbitrary input
//! yields `Ok` or `Err`, never an abort. (The engine behind them assumes
//! planner-validated plans; the SQL boundary is where garbage stops.)

use joinstudy_sql::Session;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lexer_never_panics(input in "\\PC{0,120}") {
        let _ = joinstudy_sql::lexer::tokenize(&input);
    }

    #[test]
    fn parser_never_panics(input in "[a-zA-Z0-9_ ,.*()<>=';%-]{0,120}") {
        let _ = joinstudy_sql::parser::parse(&input);
    }

    #[test]
    fn sql_fragments_fail_gracefully(
        head in prop::sample::select(vec![
            "SELECT", "SELECT *", "SELECT count(*)", "SELECT a, b",
            "CREATE TABLE", "INSERT INTO",
        ]),
        tail in "[a-z0-9_ ,.()='\\*]{0,60}",
    ) {
        // Executing malformed statements on a session must error, not panic.
        let mut session = Session::new(1);
        session.execute("CREATE TABLE t (a BIGINT, b VARCHAR)").unwrap();
        let _ = session.execute(&format!("{head} {tail}"));
    }
}

#[test]
fn deeply_nested_expressions_parse() {
    let mut sql = String::from("SELECT a FROM t WHERE ");
    for _ in 0..60 {
        sql.push('(');
    }
    sql.push_str("a = 1");
    for _ in 0..60 {
        sql.push(')');
    }
    assert!(joinstudy_sql::parser::parse(&sql).is_ok());
}

#[test]
fn statement_separator_and_whitespace_forms() {
    for sql in [
        "SELECT count(*) FROM t",
        "SELECT count(*) FROM t;",
        "  \n\tSELECT\ncount( * )\nFROM\n t ;",
        "select COUNT(*) from T -- trailing comment",
    ] {
        let mut session = Session::new(1);
        session.execute("CREATE TABLE t (a BIGINT)").unwrap();
        session.execute("INSERT INTO t VALUES (1), (2)").unwrap();
        let t = session.execute(sql).unwrap();
        assert_eq!(t.column(0).as_i64(), &[2], "{sql:?}");
    }
}
