//! Robustness: the lexer and parser must never panic — arbitrary input
//! yields `Ok` or `Err`, never an abort. (The engine behind them assumes
//! planner-validated plans; the SQL boundary is where garbage stops.)

use joinstudy_sql::Session;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lexer_never_panics(input in "\\PC{0,120}") {
        let _ = joinstudy_sql::lexer::tokenize(&input);
    }

    #[test]
    fn parser_never_panics(input in "[a-zA-Z0-9_ ,.*()<>=';%-]{0,120}") {
        let _ = joinstudy_sql::parser::parse(&input);
    }

    #[test]
    fn sql_fragments_fail_gracefully(
        head in prop::sample::select(vec![
            "SELECT", "SELECT *", "SELECT count(*)", "SELECT a, b",
            "CREATE TABLE", "INSERT INTO",
            "EXPLAIN", "EXPLAIN ANALYZE", "EXPLAIN SELECT", "EXPLAIN ANALYZE SELECT",
        ]),
        tail in "[a-z0-9_ ,.()='\\*]{0,60}",
    ) {
        // Executing malformed statements on a session must error, not panic.
        let mut session = Session::new(1);
        session.execute("CREATE TABLE t (a BIGINT, b VARCHAR)").unwrap();
        let _ = session.execute(&format!("{head} {tail}"));
    }
}

#[test]
fn explain_accepts_only_select_statements() {
    use joinstudy_sql::ast::Statement;

    // Both EXPLAIN variants parse a trailing SELECT through the same path.
    match joinstudy_sql::parser::parse("EXPLAIN SELECT a FROM t").unwrap() {
        Statement::Explain { analyze, .. } => assert!(!analyze),
        other => panic!("expected Explain, got {other:?}"),
    }
    match joinstudy_sql::parser::parse("EXPLAIN ANALYZE SELECT a FROM t;").unwrap() {
        Statement::Explain { analyze, .. } => assert!(analyze),
        other => panic!("expected Explain, got {other:?}"),
    }

    // Non-SELECT statements are rejected with the same message on both
    // paths — including EXPLAIN ANALYZE, which executes and must never
    // reach the engine with DDL/DML.
    for sql in [
        "EXPLAIN INSERT INTO t VALUES (1)",
        "EXPLAIN ANALYZE INSERT INTO t VALUES (1)",
        "EXPLAIN CREATE TABLE t (a BIGINT)",
        "EXPLAIN ANALYZE CREATE TABLE t (a BIGINT)",
        "EXPLAIN EXPLAIN SELECT a FROM t",
        "EXPLAIN",
        "EXPLAIN ANALYZE",
    ] {
        let err = joinstudy_sql::parser::parse(sql).unwrap_err();
        assert!(
            err.contains("EXPLAIN supports SELECT statements"),
            "{sql:?} -> {err:?}"
        );
    }
}

#[test]
fn deeply_nested_expressions_parse() {
    let mut sql = String::from("SELECT a FROM t WHERE ");
    for _ in 0..60 {
        sql.push('(');
    }
    sql.push_str("a = 1");
    for _ in 0..60 {
        sql.push(')');
    }
    assert!(joinstudy_sql::parser::parse(&sql).is_ok());
}

#[test]
fn statement_separator_and_whitespace_forms() {
    for sql in [
        "SELECT count(*) FROM t",
        "SELECT count(*) FROM t;",
        "  \n\tSELECT\ncount( * )\nFROM\n t ;",
        "select COUNT(*) from T -- trailing comment",
    ] {
        let mut session = Session::new(1);
        session.execute("CREATE TABLE t (a BIGINT)").unwrap();
        session.execute("INSERT INTO t VALUES (1), (2)").unwrap();
        let t = session.execute(sql).unwrap();
        assert_eq!(t.column(0).as_i64(), &[2], "{sql:?}");
    }
}
