//! End-to-end EXPLAIN ANALYZE through the SQL session: the statement
//! executes the query, returns the annotated plan as a one-column table,
//! and the same text is reachable through [`Session::explain_analyze`].
//! Plain EXPLAIN stays execution-free.

use joinstudy_sql::Session;
use joinstudy_storage::table::{Schema, TableBuilder};
use joinstudy_storage::types::{DataType, Value};
use std::sync::Arc;

fn session_with_data() -> Session {
    let schema = Schema::of(&[("k", DataType::Int64), ("v", DataType::Int64)]);
    let mut t = TableBuilder::new(schema.clone());
    for i in 0..600i64 {
        t.push_row(&[Value::Int64(i % 50), Value::Int64(i)]);
    }
    let mut u = TableBuilder::new(schema);
    for i in 0..200i64 {
        u.push_row(&[Value::Int64(i % 50), Value::Int64(i)]);
    }
    let mut session = Session::new(2);
    session.register("t", Arc::new(t.finish()));
    session.register("u", Arc::new(u.finish()));
    session
}

const JOIN_SQL: &str = "SELECT count(*) AS c FROM t, u WHERE t.k = u.k";

fn plan_text(t: &joinstudy_storage::table::Table) -> String {
    assert_eq!(t.schema().fields[0].name, "plan");
    (0..t.num_rows())
        .map(|r| match &t.row(r)[0] {
            Value::Str(s) => s.clone(),
            other => panic!("plan column holds {other:?}"),
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn explain_analyze_statement_returns_annotated_plan() {
    let mut session = session_with_data();
    let result = session
        .execute(&format!("EXPLAIN ANALYZE {JOIN_SQL}"))
        .unwrap();
    let text = plan_text(&result);

    // Header + per-operator annotations prove the query actually ran.
    assert!(text.contains("wall="), "missing header: {text}");
    assert!(text.contains("Join BHJ"), "missing join node: {text}");
    // 600 x 200 rows sharing 50 keys -> 12 x 4 x 50 = 2400 join tuples.
    assert!(
        text.contains("rows_out=2400"),
        "join output count not annotated: {text}"
    );
    assert!(
        text.contains("ht_load_factor"),
        "missing join details: {text}"
    );
}

#[test]
fn plain_explain_does_not_execute() {
    let mut session = session_with_data();
    let result = session.execute(&format!("EXPLAIN {JOIN_SQL}")).unwrap();
    let text = plan_text(&result);
    assert!(text.contains("Join"), "plan tree expected: {text}");
    assert!(
        !text.contains("rows_out=") && !text.contains("wall="),
        "plain EXPLAIN must not carry runtime stats: {text}"
    );
    // No profile is stashed by either variant's EXPLAIN result path.
    assert!(session.take_profile().is_none());
}

#[test]
fn explain_analyze_method_accepts_bare_and_prefixed_select() {
    let session_text = |sql: &str| {
        let session = {
            let mut s = session_with_data();
            s.set_join_algo(joinstudy_core::JoinAlgo::Brj);
            s
        };
        session.explain_analyze(sql).unwrap()
    };
    for sql in [
        JOIN_SQL.to_string(),
        format!("EXPLAIN {JOIN_SQL}"),
        format!("EXPLAIN ANALYZE {JOIN_SQL};"),
    ] {
        let text = session_text(&sql);
        assert!(text.contains("Join BRJ"), "{sql:?} -> {text}");
        assert!(text.contains("bloom_selectivity"), "{sql:?} -> {text}");
    }
}

#[test]
fn profiling_session_flag_records_profiles_per_statement() {
    let mut session = session_with_data();
    session.set_profiling(true);

    let result = session.execute(JOIN_SQL).unwrap();
    assert_eq!(result.column_by_name("c").as_i64(), &[2400]);
    let profile = session.take_profile().expect("profile recorded");
    assert_eq!(profile.root.rows_in, 1); // one aggregated row collected
    assert!(session.take_profile().is_none(), "take_profile drains");

    session.set_profiling(false);
    session.execute(JOIN_SQL).unwrap();
    assert!(
        session.take_profile().is_none(),
        "profiling off records nothing"
    );
}
