//! Concurrent-session stress for the profiler: two sessions on separate
//! threads, each over tables of a different cardinality, both profiling.
//! Every profile must describe its own session's data (no
//! cross-contamination through the engine or global metrics), and
//! interleaved `metrics::reset()` / `metrics::set_enabled` calls from a
//! third thread must never panic a profiled query.

use joinstudy_exec::metrics;
use joinstudy_sql::Session;
use joinstudy_storage::table::{Schema, TableBuilder};
use joinstudy_storage::types::{DataType, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn keyed_table(rows: usize) -> Arc<joinstudy_storage::table::Table> {
    let schema = Schema::of(&[("k", DataType::Int64), ("v", DataType::Int64)]);
    let mut b = TableBuilder::with_capacity(schema, rows);
    for i in 0..rows {
        b.push_row(&[Value::Int64(i as i64 % 100), Value::Int64(i as i64)]);
    }
    Arc::new(b.finish())
}

/// One session's workload: `rows` drives both the expected COUNT(*) and
/// the expected profiler tuple counts, so any cross-talk between the two
/// sessions is caught by either assertion.
fn session_loop(rows: usize, iters: usize) {
    let mut session = Session::new(2);
    session.register("t", keyed_table(rows));
    session.register("u", keyed_table(rows));
    session.set_profiling(true);

    for i in 0..iters {
        let sql = "SELECT count(*) AS c FROM t, u WHERE t.k = u.k";
        let result = session.execute(sql).expect("query failed");
        let expected = (rows / 100) as i64 * (rows / 100) as i64 * 100;
        assert_eq!(
            result.column_by_name("c").as_i64()[0],
            expected,
            "iter {i}: wrong join count for {rows}-row session"
        );

        let profile = session
            .take_profile()
            .expect("profiling on but no profile recorded");
        assert_eq!(
            profile.root.rows_in, 1,
            "iter {i}: COUNT(*) collects exactly one row"
        );
        let nodes = profile.nodes();
        let join = nodes
            .iter()
            .find(|n| n.label.starts_with("Join"))
            .expect("join node present");
        assert_eq!(
            join.rows_out, expected as u64,
            "iter {i}: profile describes another session's data ({rows} rows)"
        );
        for scan in nodes.iter().filter(|n| n.label.starts_with("Scan")) {
            assert_eq!(
                scan.rows_out, rows as u64,
                "iter {i}: scan count from the wrong session"
            );
        }

        // A second take must drain: profiles never leak across statements.
        assert!(session.take_profile().is_none());
    }
}

#[test]
fn concurrent_profiled_sessions_do_not_cross_contaminate() {
    let stop = Arc::new(AtomicBool::new(false));
    // Third thread: thrash the global metrics registry while both
    // sessions profile. QueryProfile must be unaffected (its counts come
    // from per-query observation, not the global registry).
    let chaos = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                metrics::reset();
                metrics::set_enabled(true);
                metrics::record_degradation();
                metrics::set_enabled(false);
                std::thread::yield_now();
            }
        })
    };

    let big = std::thread::spawn(|| session_loop(10_000, 20));
    let small = std::thread::spawn(|| session_loop(1_000, 20));
    big.join().expect("big session panicked");
    small.join().expect("small session panicked");

    stop.store(true, Ordering::Relaxed);
    chaos.join().expect("metrics thread panicked");
    metrics::reset();
    metrics::set_enabled(true);
}
