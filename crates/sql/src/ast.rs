//! Abstract syntax for the supported SQL subset.

use joinstudy_storage::types::{DataType, Decimal};

/// A column reference, possibly qualified (`r.k`) or bare (`k`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnRef {
    pub qualifier: Option<String>,
    pub name: String,
}

/// Scalar literals.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    Int(i64),
    Decimal(Decimal),
    Str(String),
    /// `DATE 'YYYY-MM-DD'`.
    Date(joinstudy_storage::types::Date),
    Bool(bool),
    Null,
}

/// Binary comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinCmp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinArith {
    Add,
    Sub,
    Mul,
    Div,
}

/// Scalar expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprAst {
    Column(ColumnRef),
    Literal(Literal),
    Cmp(BinCmp, Box<ExprAst>, Box<ExprAst>),
    Arith(BinArith, Box<ExprAst>, Box<ExprAst>),
    And(Box<ExprAst>, Box<ExprAst>),
    Or(Box<ExprAst>, Box<ExprAst>),
    Not(Box<ExprAst>),
    Between {
        expr: Box<ExprAst>,
        lo: Box<ExprAst>,
        hi: Box<ExprAst>,
        negated: bool,
    },
    InList {
        expr: Box<ExprAst>,
        list: Vec<Literal>,
        negated: bool,
    },
    Like {
        expr: Box<ExprAst>,
        pattern: String,
        negated: bool,
    },
    Case {
        cond: Box<ExprAst>,
        then: Box<ExprAst>,
        otherwise: Box<ExprAst>,
    },
    ExtractYear(Box<ExprAst>),
    Substring {
        expr: Box<ExprAst>,
        start: usize,
        len: usize,
    },
}

/// Aggregate functions in the projection list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggCall {
    CountStar,
    Count,
    CountDistinct,
    Sum,
    Avg,
    Min,
    Max,
}

/// One projection item: an expression, an aggregate over an expression
/// (each with an optional alias), or the `*` wildcard (every column of
/// every FROM table, in FROM order — expanded by the planner).
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    Expr {
        expr: ExprAst,
        alias: Option<String>,
    },
    Agg {
        func: AggCall,
        arg: Option<ExprAst>,
        alias: Option<String>,
    },
    Wildcard,
}

/// `FROM` entry: table name + optional alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    pub table: String,
    pub alias: Option<String>,
}

impl TableRef {
    /// The name expressions refer to this table by.
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

/// `ORDER BY` key: 1-based projection ordinal or output column name.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    pub target: OrderTarget,
    pub ascending: bool,
}

#[derive(Debug, Clone, PartialEq)]
pub enum OrderTarget {
    Ordinal(usize),
    Name(String),
}

/// A SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    pub items: Vec<SelectItem>,
    pub from: Vec<TableRef>,
    pub where_clause: Option<ExprAst>,
    pub group_by: Vec<ExprAst>,
    pub order_by: Vec<OrderKey>,
    pub limit: Option<usize>,
}

/// A column definition in CREATE TABLE.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    pub name: String,
    pub dtype: DataType,
}

/// Any supported statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Select(Select),
    /// `EXPLAIN [ANALYZE] <select>`: render the plan tree, with `ANALYZE`
    /// additionally executing the query and annotating per-operator stats.
    Explain {
        analyze: bool,
        select: Select,
    },
    CreateTable {
        name: String,
        columns: Vec<ColumnDef>,
    },
    Insert {
        table: String,
        rows: Vec<Vec<Literal>>,
    },
    /// `SET <name> = <value>`: a session variable assignment
    /// (`SET join_algo = adaptive`). Both sides are lower-cased idents.
    Set {
        name: String,
        value: String,
    },
}
