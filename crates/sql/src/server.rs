//! A minimal line-protocol SQL server for concurrent query serving.
//!
//! One TCP connection is one [`Session`]: every connection gets its own
//! catalog view (the server's registered tables) and its own
//! [`QueryContext`], but all connections share one process-wide
//! [`WorkerPool`] (morsels of concurrent queries interleave on the same
//! worker team) and one [`AdmissionController`] (a global memory pool;
//! queries queue when it is exhausted, and get *reduced* grants under
//! pressure, which degrades their joins RJ → BHJ → spilling HHJ instead
//! of failing — see `joinstudy_exec::admission`).
//!
//! # Protocol
//!
//! Requests are newline-delimited: one SQL statement per line (a trailing
//! `;` is allowed), or `.quit` to close the connection. Every statement
//! gets exactly one response, terminated by a line containing a single
//! `.`:
//!
//! ```text
//! OK <rows> <cols>
//! <tab-separated header>
//! <tab-separated row> ...
//! .
//! ```
//!
//! or, on failure:
//!
//! ```text
//! ERR <message>
//! .
//! ```
//!
//! The encoding lives in [`encode_table`] / [`encode_error`] so the
//! multi-client equivalence tests can render a serial single-session run
//! with byte-identical framing.
//!
//! Besides SQL, two protocol commands are recognized: `.quit` closes the
//! connection, and `METRICS` returns the server's current metrics in
//! Prometheus text exposition (terminated by the same `.` line; see
//! [`SqlServer::metrics_text`]). Telemetry-wise, every connection shares
//! the server's [`StatLog`] and [`SlowLog`], so `SELECT * FROM
//! jsys.statements` on any connection sees every connection's statements.
//!
//! # Disconnects
//!
//! A watchdog thread per connection `peek`s the socket; when the client
//! goes away mid-query it repeatedly cancels the session's
//! [`QueryContext`] (repeatedly, because a statement that has not yet
//! armed its context would otherwise clear a single cancel). The running
//! query unwinds through the normal error path: spill files are removed
//! by their directory guards and the admission grant is returned by RAII,
//! so a vanished client leaks neither disk nor memory budget.

use crate::session::{Session, SqlError};
use crate::stats::{
    now_ms, render_exposition, AshRing, AshSample, SlowLog, StatLog, TimeseriesRing, TsSample,
};
use joinstudy_exec::admission::AdmissionController;
use joinstudy_exec::pool::WorkerPool;
use joinstudy_exec::progress;
use joinstudy_exec::registry;
use joinstudy_storage::table::Table;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How often the per-connection watchdog polls the socket for EOF, and
/// how often it re-cancels a query whose client is gone.
const WATCHDOG_TICK: Duration = Duration::from_millis(5);

/// Sizing knobs for a [`SqlServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Workers in the shared pool.
    pub threads: usize,
    /// Bytes in the global admission memory pool.
    pub pool_bytes: usize,
    /// Bytes each query asks the admission controller for. Grants may
    /// come back smaller under pressure (never below `min_grant_bytes`).
    pub query_bytes: usize,
    /// Smallest grant worth admitting a query with.
    pub min_grant_bytes: usize,
    /// Run the active-session-history sampler thread. Off, `jsys.ash`
    /// stays empty (the table still answers); the A/B knob behind the
    /// sampler-overhead contract in DESIGN.md §14.
    pub ash_enabled: bool,
    /// Wait-state sampling interval.
    pub ash_interval: Duration,
    /// Gauge time-series tick interval (`jsys.timeseries`).
    pub timeseries_interval: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ServerConfig {
            threads,
            pool_bytes: 256 << 20,
            query_bytes: 64 << 20,
            min_grant_bytes: 8 << 20,
            ash_enabled: true,
            ash_interval: Duration::from_millis(10),
            timeseries_interval: Duration::from_secs(1),
        }
    }
}

/// The shared serving state: catalog, worker pool, admission controller.
/// Create one, [`register`](SqlServer::register) tables, wrap in an `Arc`,
/// and [`serve`](SqlServer::serve) or [`spawn`](SqlServer::spawn).
pub struct SqlServer {
    catalog: BTreeMap<String, Arc<Table>>,
    pool: Arc<WorkerPool>,
    admission: Arc<AdmissionController>,
    /// One statement-statistics log shared by every connection, so
    /// `jsys.statements` is a server-wide view.
    statlog: Arc<StatLog>,
    /// One slow-query sink shared by every connection.
    slowlog: Arc<SlowLog>,
    /// Active session history: the wait-state sampler's output ring.
    ash: Arc<AshRing>,
    /// 1-second server gauges (`jsys.timeseries`).
    timeseries: Arc<TimeseriesRing>,
    /// Stops the sampler and ticker threads when the server drops.
    telemetry_stop: Arc<AtomicBool>,
    telemetry_threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    config: ServerConfig,
}

impl SqlServer {
    pub fn new(config: ServerConfig) -> SqlServer {
        let server = SqlServer {
            catalog: BTreeMap::new(),
            pool: WorkerPool::new(config.threads),
            admission: AdmissionController::new(config.pool_bytes, config.min_grant_bytes),
            statlog: Arc::new(StatLog::new()),
            slowlog: Arc::new(SlowLog::from_env()),
            ash: Arc::new(AshRing::new()),
            timeseries: Arc::new(TimeseriesRing::new()),
            telemetry_stop: Arc::new(AtomicBool::new(false)),
            telemetry_threads: Mutex::new(Vec::new()),
            config,
        };
        server.start_telemetry();
        server
    }

    /// Spawn the ASH sampler (when enabled) and the gauge ticker. Both are
    /// pure readers of shared state — they never take a lock a query's hot
    /// path holds for more than a registry push/snapshot — so sampling
    /// cost stays off the serving path (the <2% p50 contract is tested in
    /// `bench_serve`'s sampler A/B).
    fn start_telemetry(&self) {
        let mut threads = self
            .telemetry_threads
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if self.config.ash_enabled {
            let stop = Arc::clone(&self.telemetry_stop);
            let statlog = Arc::clone(&self.statlog);
            let ash = Arc::clone(&self.ash);
            let interval = self.config.ash_interval;
            threads.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    let at_ms = now_ms();
                    for q in statlog.active_detail() {
                        let (query_id, wait_state) = match &q.ctx {
                            Some(ctx) => (ctx.query_id(), ctx.wait_state().name()),
                            // A statement queued before its session ever
                            // shared a context: classify from the registry
                            // state alone.
                            None if q.state == "queued" => (0, "admission_queued"),
                            None => (0, "other"),
                        };
                        let reg = progress::global();
                        let (pipeline, rows) = if query_id != 0 {
                            (
                                reg.current_pipeline(query_id).unwrap_or_default(),
                                reg.rows_so_far(query_id),
                            )
                        } else {
                            (String::new(), 0)
                        };
                        ash.push(AshSample {
                            at_ms,
                            conn: q.conn,
                            query_id,
                            fingerprint: q.fingerprint,
                            wait_state,
                            pipeline,
                            rows,
                            granted_bytes: q.granted_bytes,
                        });
                    }
                    std::thread::sleep(interval);
                }
            }));
        }
        let stop = Arc::clone(&self.telemetry_stop);
        let statlog = Arc::clone(&self.statlog);
        let admission = Arc::clone(&self.admission);
        let pool = Arc::clone(&self.pool);
        let timeseries = Arc::clone(&self.timeseries);
        let interval = self.config.timeseries_interval;
        threads.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Acquire) {
                let reg = registry::global();
                let available = admission.available() as u64;
                timeseries.push(TsSample {
                    at_ms: now_ms(),
                    queue_depth: admission.queued() as u64,
                    available_bytes: available,
                    admitted_bytes: admission.total() as u64 - available,
                    pool_threads: pool.threads() as u64,
                    active_pipelines: pool.active_pipelines() as u64,
                    active_queries: statlog.active_snapshot().len() as u64,
                    spill_write_bytes: reg.counter("spill.write_bytes").get(),
                    spill_read_bytes: reg.counter("spill.read_bytes").get(),
                });
                // Sleep in short slices so dropping the server never
                // blocks a full tick behind the join.
                let mut slept = Duration::ZERO;
                while slept < interval && !stop.load(Ordering::Acquire) {
                    let slice = WATCHDOG_TICK.min(interval - slept);
                    std::thread::sleep(slice);
                    slept += slice;
                }
            }
        }));
    }

    /// Register a table every connection's session will see.
    pub fn register(&mut self, name: impl Into<String>, table: Arc<Table>) {
        self.catalog.insert(name.into(), table);
    }

    /// The shared worker pool (for tests and stats).
    pub fn pool(&self) -> Arc<WorkerPool> {
        Arc::clone(&self.pool)
    }

    /// The shared admission controller (for tests and stats).
    pub fn admission(&self) -> Arc<AdmissionController> {
        Arc::clone(&self.admission)
    }

    /// The server-wide statement-statistics log.
    pub fn statlog(&self) -> Arc<StatLog> {
        Arc::clone(&self.statlog)
    }

    /// The server-wide slow-query sink.
    pub fn slowlog(&self) -> Arc<SlowLog> {
        Arc::clone(&self.slowlog)
    }

    /// The active-session-history ring (for tests and benches).
    pub fn ash(&self) -> Arc<AshRing> {
        Arc::clone(&self.ash)
    }

    /// The gauge time-series ring (for tests and benches).
    pub fn timeseries(&self) -> Arc<TimeseriesRing> {
        Arc::clone(&self.timeseries)
    }

    /// Build the per-connection session: shared pool, registered tables,
    /// shared telemetry, and a fresh connection id.
    fn session(&self) -> Session {
        let mut session = Session::new(self.config.threads);
        session.set_worker_pool(Some(Arc::clone(&self.pool)));
        session.set_statlog(Arc::clone(&self.statlog));
        session.set_slowlog(Arc::clone(&self.slowlog));
        session.set_conn_id(self.statlog.next_conn_id());
        session.set_admission(Some(Arc::clone(&self.admission)));
        session.set_ash(Some(Arc::clone(&self.ash)));
        session.set_timeseries(Some(Arc::clone(&self.timeseries)));
        for (name, table) in &self.catalog {
            session.register(name.clone(), Arc::clone(table));
        }
        session
    }

    /// Current metrics in Prometheus text exposition: every global-registry
    /// counter and histogram quantile plus live pool and admission gauges,
    /// each prefixed `joinstudy_`. Served by the `METRICS` protocol command.
    pub fn metrics_text(&self) -> String {
        let mut samples = registry::global().snapshot();
        samples.push(("pool.threads".to_string(), self.pool.threads() as f64));
        samples.push((
            "pool.active_pipelines".to_string(),
            self.pool.active_pipelines() as f64,
        ));
        samples.push((
            "admission.total_bytes".to_string(),
            self.admission.total() as f64,
        ));
        samples.push((
            "admission.available_bytes".to_string(),
            self.admission.available() as f64,
        ));
        samples.push((
            "admission.queued".to_string(),
            self.admission.queued() as f64,
        ));
        samples.push((
            "admission.peak_granted_bytes".to_string(),
            self.admission.peak_granted() as f64,
        ));
        samples.push((
            "statements.recorded".to_string(),
            self.statlog.total_recorded() as f64,
        ));
        samples.push(("ash.samples".to_string(), self.ash.total_samples() as f64));
        render_exposition(&samples)
    }

    /// Accept loop: one thread per connection, until the process exits.
    pub fn serve(self: &Arc<SqlServer>, listener: TcpListener) -> std::io::Result<()> {
        for stream in listener.incoming() {
            let stream = stream?;
            let server = Arc::clone(self);
            std::thread::spawn(move || server.handle_connection(stream));
        }
        Ok(())
    }

    /// Background accept loop for tests and benches: returns a handle with
    /// the bound address; dropping (or [`ServerHandle::stop`]) stops
    /// accepting new connections (existing ones run to completion).
    pub fn spawn(self: Arc<SqlServer>, listener: TcpListener) -> std::io::Result<ServerHandle> {
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let join = std::thread::spawn(move || {
            while !accept_stop.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let _ = stream.set_nonblocking(false);
                        let server = Arc::clone(&self);
                        std::thread::spawn(move || server.handle_connection(stream));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(WATCHDOG_TICK);
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(ServerHandle {
            addr,
            stop,
            join: Some(join),
        })
    }

    /// One connection: read statements line by line, run them through the
    /// admission controller and the shared pool, write framed responses.
    fn handle_connection(&self, stream: TcpStream) {
        let mut session = self.session();
        let conn = session.conn_id();
        let ctx = session.context();

        // Watchdog: peek for EOF; once the client is gone, cancel the
        // context every tick (see module docs for why repeatedly).
        let stop = Arc::new(AtomicBool::new(false));
        let watchdog = stream.try_clone().ok().map(|peek_stream| {
            let stop = Arc::clone(&stop);
            let ctx = Arc::clone(&ctx);
            std::thread::spawn(move || {
                let _ = peek_stream.set_read_timeout(Some(WATCHDOG_TICK));
                let mut buf = [0u8; 1];
                let mut gone = false;
                while !stop.load(Ordering::Acquire) {
                    if !gone {
                        match peek_stream.peek(&mut buf) {
                            Ok(0) => gone = true,
                            Ok(_) => std::thread::sleep(WATCHDOG_TICK),
                            Err(e)
                                if e.kind() == std::io::ErrorKind::WouldBlock
                                    || e.kind() == std::io::ErrorKind::TimedOut => {}
                            Err(_) => gone = true,
                        }
                    } else {
                        ctx.cancel();
                        std::thread::sleep(WATCHDOG_TICK);
                    }
                }
            })
        });

        let mut reader = BufReader::new(match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        });
        let mut writer = stream;
        let mut line = String::new();
        'conn: loop {
            line.clear();
            // The watchdog's read timeout lives on the shared socket (a
            // `try_clone` duplicates the fd, and `SO_RCVTIMEO` belongs to
            // the underlying socket), so an idle gap between statements
            // surfaces here as WouldBlock/TimedOut with a possibly
            // partial line accumulated — keep reading until the newline.
            loop {
                match reader.read_line(&mut line) {
                    Ok(0) => break 'conn,
                    Ok(_) => break,
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut => {}
                    Err(_) => break 'conn,
                }
            }
            let stmt = line.trim();
            if stmt.is_empty() {
                continue;
            }
            if stmt == ".quit" {
                break;
            }
            // `METRICS` is a protocol command, not SQL: it answers from
            // shared server state without touching the session, so a
            // scraper never queues behind admission control.
            if stmt.eq_ignore_ascii_case("METRICS") {
                let mut response = self.metrics_text();
                response.push_str(".\n");
                if writer.write_all(response.as_bytes()).is_err() || writer.flush().is_err() {
                    break;
                }
                continue;
            }
            let response = self.run_statement(&mut session, conn, stmt);
            if writer.write_all(response.as_bytes()).is_err() || writer.flush().is_err() {
                break;
            }
        }
        stop.store(true, Ordering::Release);
        if let Some(w) = watchdog {
            let _ = w.join();
        }
    }

    /// Admission + execution of one statement, encoded for the wire.
    fn run_statement(&self, session: &mut Session, conn: u64, stmt: &str) -> String {
        let ctx = session.context();
        // Show up in `jsys.active_queries` while waiting for memory; the
        // session flips the state to `running` once it starts executing.
        // Attaching the context here lets the ASH sampler see the
        // admission wait before the statement ever arms.
        self.statlog
            .active_upsert(conn, stmt, "queued", 0, Some(&ctx));
        let grant = match self.admission.admit(self.config.query_bytes, &ctx) {
            Ok(grant) => grant,
            Err(e) => {
                self.statlog.active_end(conn);
                return encode_error(&SqlError::from(e));
            }
        };
        session.set_memory_budget(Some(grant.bytes()));
        let result = session.execute(stmt);
        session.set_memory_budget(None);
        drop(grant);
        match result {
            Ok(table) => encode_table(&table),
            Err(e) => encode_error(&e),
        }
    }
}

impl Drop for SqlServer {
    fn drop(&mut self) {
        self.telemetry_stop.store(true, Ordering::Release);
        let threads = std::mem::take(
            &mut *self
                .telemetry_threads
                .lock()
                .unwrap_or_else(|e| e.into_inner()),
        );
        for t in threads {
            let _ = t.join();
        }
    }
}

/// Handle to a [`SqlServer::spawn`]ed accept loop.
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address clients should connect to.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stop accepting new connections and join the accept thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Render a result table in wire framing (`OK` header, tab-separated
/// rows, `.` terminator). Public so tests can compare a serial reference
/// run byte-for-byte against server responses.
pub fn encode_table(t: &Table) -> String {
    let mut out = String::new();
    let header: Vec<&str> = t.schema().fields.iter().map(|f| f.name.as_str()).collect();
    out.push_str(&format!("OK {} {}\n", t.num_rows(), header.len()));
    out.push_str(&header.join("\t"));
    out.push('\n');
    for r in 0..t.num_rows() {
        let row: Vec<String> = t.row(r).iter().map(|v| v.to_string()).collect();
        out.push_str(&row.join("\t"));
        out.push('\n');
    }
    out.push_str(".\n");
    out
}

/// Render an error in wire framing (`ERR` line, `.` terminator).
pub fn encode_error(e: &SqlError) -> String {
    let msg = e.to_string().replace('\n', " ");
    format!("ERR {msg}\n.\n")
}

/// Read one framed response (everything up to and including the `.`
/// terminator line) from the server. The client half of the protocol,
/// shared by the tests and `bench_serve`.
pub fn read_response<R: BufRead>(reader: &mut R) -> std::io::Result<String> {
    let mut out = String::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-response",
            ));
        }
        let done = line.trim_end_matches(['\r', '\n']) == ".";
        out.push_str(&line);
        if done {
            return Ok(out);
        }
    }
}

/// Convenience client for tests and benches: a connected line-protocol
/// client with one method per round trip.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    pub fn connect(addr: std::net::SocketAddr) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Send one statement and read its framed response.
    pub fn query(&mut self, stmt: &str) -> std::io::Result<String> {
        self.writer.write_all(stmt.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        read_response(&mut self.reader)
    }

    /// Send a statement and drop the connection without reading the
    /// response — the disconnect-mid-query scenario.
    pub fn fire_and_disconnect(mut self, stmt: &str) -> std::io::Result<()> {
        self.writer.write_all(stmt.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        drop(self.reader);
        drop(self.writer);
        Ok(())
    }
}
