//! Recursive-descent parser for the supported SQL subset.
//!
//! Grammar (informal):
//!
//! ```text
//! stmt      := select | explain | create | insert
//! explain   := EXPLAIN ['ANALYZE'] select
//! select    := SELECT item (',' item)* FROM table (',' table)*
//!              [WHERE expr] [GROUP BY expr (',' expr)*]
//!              [ORDER BY key (',' key)*] [LIMIT int] [';']
//! item      := '*'
//!            | agg '(' ['DISTINCT'] (expr|'*') ')' [AS? ident]
//!            | expr [AS? ident]
//! table     := ident ['.' ident] [AS? ident]
//! expr      := or_expr  (standard precedence: OR < AND < NOT < cmp < +- < */)
//! primary   := literal | column | '(' expr ')' | CASE WHEN ... | EXTRACT |
//!              SUBSTRING '(' expr ',' int ',' int ')' | DATE 'lit'
//! create    := CREATE TABLE ident '(' col (',' col)* ')' [';']
//! insert    := INSERT INTO ident VALUES row (',' row)* [';']
//! set       := SET ident '=' ident [';']
//! ```

use crate::ast::*;
use crate::lexer::{tokenize, Token};
use joinstudy_storage::types::{DataType, Date, Decimal};

pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

type PResult<T> = Result<T, String>;

/// Parse one statement.
pub fn parse(sql: &str) -> PResult<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = if p.peek_keyword("SELECT") {
        Statement::Select(p.parse_select()?)
    } else if p.peek_keyword("EXPLAIN") {
        // Unified EXPLAIN handling: both EXPLAIN and EXPLAIN ANALYZE reject
        // non-SELECT statements here, at parse time, with one message.
        p.pos += 1;
        let analyze = p.eat_keyword("ANALYZE");
        if !p.peek_keyword("SELECT") {
            return Err(format!(
                "EXPLAIN supports SELECT statements, got {:?}",
                p.peek()
            ));
        }
        Statement::Explain {
            analyze,
            select: p.parse_select()?,
        }
    } else if p.peek_keyword("CREATE") {
        p.parse_create()?
    } else if p.peek_keyword("INSERT") {
        p.parse_insert()?
    } else if p.peek_keyword("SET") {
        p.parse_set()?
    } else {
        return Err(format!(
            "expected SELECT/CREATE/INSERT/SET, got {:?}",
            p.peek()
        ));
    };
    p.eat(&Token::Semicolon);
    if p.pos != p.tokens.len() {
        return Err(format!("trailing tokens after statement: {:?}", p.peek()));
    }
    Ok(stmt)
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Keyword(k)) if k == kw)
    }

    fn next(&mut self) -> PResult<Token> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or("unexpected end of input")?;
        self.pos += 1;
        Ok(t)
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> PResult<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(format!("expected {t}, got {:?}", self.peek()))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> PResult<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(format!("expected {kw}, got {:?}", self.peek()))
        }
    }

    fn ident(&mut self) -> PResult<String> {
        match self.next()? {
            Token::Ident(s) => Ok(s),
            other => Err(format!("expected identifier, got {other}")),
        }
    }

    // ---------------------------------------------------------- SELECT

    fn parse_select(&mut self) -> PResult<Select> {
        self.expect_keyword("SELECT")?;
        let mut items = vec![self.parse_select_item()?];
        while self.eat(&Token::Comma) {
            items.push(self.parse_select_item()?);
        }
        self.expect_keyword("FROM")?;
        let mut from = vec![self.parse_table_ref()?];
        while self.eat(&Token::Comma) {
            from.push(self.parse_table_ref()?);
        }
        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            group_by.push(self.parse_expr()?);
            while self.eat(&Token::Comma) {
                group_by.push(self.parse_expr()?);
            }
        }
        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let target = match self.peek() {
                    Some(Token::Int(n)) => {
                        let n = *n;
                        self.pos += 1;
                        OrderTarget::Ordinal(n as usize)
                    }
                    _ => OrderTarget::Name(self.ident()?),
                };
                let ascending = if self.eat_keyword("DESC") {
                    false
                } else {
                    self.eat_keyword("ASC");
                    true
                };
                order_by.push(OrderKey { target, ascending });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_keyword("LIMIT") {
            match self.next()? {
                Token::Int(n) if n >= 0 => Some(n as usize),
                other => return Err(format!("expected LIMIT count, got {other}")),
            }
        } else {
            None
        };
        Ok(Select {
            items,
            from,
            where_clause,
            group_by,
            order_by,
            limit,
        })
    }

    fn parse_select_item(&mut self) -> PResult<SelectItem> {
        if self.eat(&Token::Star) {
            return Ok(SelectItem::Wildcard);
        }
        let agg = match self.peek() {
            Some(Token::Keyword(k)) => match k.as_str() {
                "COUNT" => Some(AggCall::Count),
                "SUM" => Some(AggCall::Sum),
                "AVG" => Some(AggCall::Avg),
                "MIN" => Some(AggCall::Min),
                "MAX" => Some(AggCall::Max),
                _ => None,
            },
            _ => None,
        };
        if let Some(mut func) = agg {
            self.pos += 1;
            self.expect(&Token::LParen)?;
            let arg = if func == AggCall::Count && self.eat(&Token::Star) {
                func = AggCall::CountStar;
                None
            } else {
                if func == AggCall::Count && self.eat_keyword("DISTINCT") {
                    func = AggCall::CountDistinct;
                }
                Some(self.parse_expr()?)
            };
            self.expect(&Token::RParen)?;
            let alias = self.parse_alias()?;
            return Ok(SelectItem::Agg { func, arg, alias });
        }
        let expr = self.parse_expr()?;
        let alias = self.parse_alias()?;
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_alias(&mut self) -> PResult<Option<String>> {
        if self.eat_keyword("AS") {
            return Ok(Some(self.ident()?));
        }
        if let Some(Token::Ident(s)) = self.peek() {
            let s = s.clone();
            self.pos += 1;
            return Ok(Some(s));
        }
        Ok(None)
    }

    fn parse_table_ref(&mut self) -> PResult<TableRef> {
        let mut table = self.ident()?;
        // Dotted table names (`jsys.statements`) address namespaced tables;
        // the catalog keys them by the full dotted string.
        if self.eat(&Token::Dot) {
            table = format!("{table}.{}", self.ident()?);
        }
        let alias = self.parse_alias()?;
        Ok(TableRef { table, alias })
    }

    // ------------------------------------------------------ expressions

    pub(crate) fn parse_expr(&mut self) -> PResult<ExprAst> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> PResult<ExprAst> {
        let mut lhs = self.parse_and()?;
        while self.eat_keyword("OR") {
            let rhs = self.parse_and()?;
            lhs = ExprAst::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> PResult<ExprAst> {
        let mut lhs = self.parse_not()?;
        while self.eat_keyword("AND") {
            let rhs = self.parse_not()?;
            lhs = ExprAst::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_not(&mut self) -> PResult<ExprAst> {
        if self.eat_keyword("NOT") {
            return Ok(ExprAst::Not(Box::new(self.parse_not()?)));
        }
        self.parse_predicate()
    }

    /// Comparison / BETWEEN / IN / LIKE level.
    fn parse_predicate(&mut self) -> PResult<ExprAst> {
        let lhs = self.parse_additive()?;
        // Optional NOT before BETWEEN/IN/LIKE.
        let negated = self.eat_keyword("NOT");
        if self.eat_keyword("BETWEEN") {
            let lo = self.parse_additive()?;
            self.expect_keyword("AND")?;
            let hi = self.parse_additive()?;
            return Ok(ExprAst::Between {
                expr: Box::new(lhs),
                lo: Box::new(lo),
                hi: Box::new(hi),
                negated,
            });
        }
        if self.eat_keyword("IN") {
            self.expect(&Token::LParen)?;
            let mut list = vec![self.parse_literal()?];
            while self.eat(&Token::Comma) {
                list.push(self.parse_literal()?);
            }
            self.expect(&Token::RParen)?;
            return Ok(ExprAst::InList {
                expr: Box::new(lhs),
                list,
                negated,
            });
        }
        if self.eat_keyword("LIKE") {
            let pattern = match self.next()? {
                Token::Str(s) => s,
                other => return Err(format!("expected LIKE pattern, got {other}")),
            };
            return Ok(ExprAst::Like {
                expr: Box::new(lhs),
                pattern,
                negated,
            });
        }
        if negated {
            return Err("dangling NOT before a non-predicate".into());
        }
        let cmp = match self.peek() {
            Some(Token::Eq) => Some(BinCmp::Eq),
            Some(Token::Ne) => Some(BinCmp::Ne),
            Some(Token::Lt) => Some(BinCmp::Lt),
            Some(Token::Le) => Some(BinCmp::Le),
            Some(Token::Gt) => Some(BinCmp::Gt),
            Some(Token::Ge) => Some(BinCmp::Ge),
            _ => None,
        };
        if let Some(op) = cmp {
            self.pos += 1;
            let rhs = self.parse_additive()?;
            return Ok(ExprAst::Cmp(op, Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn parse_additive(&mut self) -> PResult<ExprAst> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinArith::Add,
                Some(Token::Minus) => BinArith::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.parse_multiplicative()?;
            lhs = ExprAst::Arith(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_multiplicative(&mut self) -> PResult<ExprAst> {
        let mut lhs = self.parse_primary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinArith::Mul,
                Some(Token::Slash) => BinArith::Div,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.parse_primary()?;
            lhs = ExprAst::Arith(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_literal(&mut self) -> PResult<Literal> {
        match self.next()? {
            Token::Int(v) => Ok(Literal::Int(v)),
            Token::Dec(v) => Ok(Literal::Decimal(Decimal(v))),
            Token::Str(s) => Ok(Literal::Str(s)),
            Token::Minus => match self.next()? {
                Token::Int(v) => Ok(Literal::Int(-v)),
                Token::Dec(v) => Ok(Literal::Decimal(Decimal(-v))),
                other => Err(format!("expected number after '-', got {other}")),
            },
            Token::Keyword(k) if k == "TRUE" => Ok(Literal::Bool(true)),
            Token::Keyword(k) if k == "FALSE" => Ok(Literal::Bool(false)),
            Token::Keyword(k) if k == "NULL" => Ok(Literal::Null),
            Token::Keyword(k) if k == "DATE" => match self.next()? {
                Token::Str(s) => parse_date(&s).map(Literal::Date),
                other => Err(format!("expected date string, got {other}")),
            },
            other => Err(format!("expected literal, got {other}")),
        }
    }

    fn parse_primary(&mut self) -> PResult<ExprAst> {
        match self.peek().cloned() {
            Some(Token::LParen) => {
                self.pos += 1;
                let e = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::Keyword(k)) if k == "CASE" => {
                self.pos += 1;
                self.expect_keyword("WHEN")?;
                let cond = self.parse_expr()?;
                self.expect_keyword("THEN")?;
                let then = self.parse_expr()?;
                self.expect_keyword("ELSE")?;
                let otherwise = self.parse_expr()?;
                self.expect_keyword("END")?;
                Ok(ExprAst::Case {
                    cond: Box::new(cond),
                    then: Box::new(then),
                    otherwise: Box::new(otherwise),
                })
            }
            Some(Token::Keyword(k)) if k == "EXTRACT" => {
                self.pos += 1;
                self.expect(&Token::LParen)?;
                self.expect_keyword("YEAR")?;
                self.expect_keyword("FROM")?;
                let e = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                Ok(ExprAst::ExtractYear(Box::new(e)))
            }
            Some(Token::Keyword(k)) if k == "SUBSTRING" => {
                self.pos += 1;
                self.expect(&Token::LParen)?;
                let e = self.parse_expr()?;
                self.expect(&Token::Comma)?;
                let start = match self.next()? {
                    Token::Int(v) if v >= 1 => v as usize,
                    other => return Err(format!("substring start must be ≥ 1, got {other}")),
                };
                self.expect(&Token::Comma)?;
                let len = match self.next()? {
                    Token::Int(v) if v >= 0 => v as usize,
                    other => return Err(format!("substring length, got {other}")),
                };
                self.expect(&Token::RParen)?;
                Ok(ExprAst::Substring {
                    expr: Box::new(e),
                    start,
                    len,
                })
            }
            Some(Token::Ident(name)) => {
                self.pos += 1;
                if self.eat(&Token::Dot) {
                    let col = self.ident()?;
                    Ok(ExprAst::Column(ColumnRef {
                        qualifier: Some(name),
                        name: col,
                    }))
                } else {
                    Ok(ExprAst::Column(ColumnRef {
                        qualifier: None,
                        name,
                    }))
                }
            }
            Some(Token::Int(_))
            | Some(Token::Dec(_))
            | Some(Token::Str(_))
            | Some(Token::Minus)
            | Some(Token::Keyword(_)) => self.parse_literal().map(ExprAst::Literal),
            other => Err(format!("unexpected token in expression: {other:?}")),
        }
    }

    // ------------------------------------------------------------ DDL/DML

    fn parse_set(&mut self) -> PResult<Statement> {
        self.expect_keyword("SET")?;
        let name = self.ident()?;
        self.expect(&Token::Eq)?;
        let value = match self.next()? {
            Token::Ident(s) => s,
            Token::Keyword(k) => k.to_ascii_lowercase(),
            // String literals keep their case: `SET spill_dir = '/Tmp/X'`
            // must not mangle the path. Variables that want case-folding
            // (join_algo) fold at the session layer instead.
            Token::Str(s) => s,
            Token::Int(v) => v.to_string(),
            other => {
                return Err(format!(
                    "expected a value after SET {name} =, got {other:?}"
                ))
            }
        };
        Ok(Statement::Set { name, value })
    }

    fn parse_create(&mut self) -> PResult<Statement> {
        self.expect_keyword("CREATE")?;
        self.expect_keyword("TABLE")?;
        let name = self.ident()?;
        self.expect(&Token::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col = self.ident()?;
            let dtype = self.parse_type()?;
            // Optional NOT NULL (accepted, not enforced beyond generation).
            if self.eat_keyword("NOT") {
                self.expect_keyword("NULL")?;
            }
            columns.push(ColumnDef { name: col, dtype });
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        Ok(Statement::CreateTable { name, columns })
    }

    fn parse_type(&mut self) -> PResult<DataType> {
        match self.next()? {
            Token::Keyword(k) => match k.as_str() {
                "BIGINT" => Ok(DataType::Int64),
                "INT" | "INTEGER" => Ok(DataType::Int32),
                "DOUBLE" => Ok(DataType::Float64),
                "DATE" => Ok(DataType::Date),
                "BOOLEAN" => Ok(DataType::Bool),
                "VARCHAR" | "TEXT" => {
                    // Optional (n).
                    if self.eat(&Token::LParen) {
                        self.next()?;
                        self.expect(&Token::RParen)?;
                    }
                    Ok(DataType::Str)
                }
                "DECIMAL" => {
                    if self.eat(&Token::LParen) {
                        self.next()?;
                        if self.eat(&Token::Comma) {
                            self.next()?;
                        }
                        self.expect(&Token::RParen)?;
                    }
                    Ok(DataType::Decimal)
                }
                other => Err(format!("unsupported type {other}")),
            },
            other => Err(format!("expected type, got {other}")),
        }
    }

    fn parse_insert(&mut self) -> PResult<Statement> {
        self.expect_keyword("INSERT")?;
        self.expect_keyword("INTO")?;
        let table = self.ident()?;
        self.expect_keyword("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect(&Token::LParen)?;
            let mut row = vec![self.parse_literal()?];
            while self.eat(&Token::Comma) {
                row.push(self.parse_literal()?);
            }
            self.expect(&Token::RParen)?;
            rows.push(row);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        Ok(Statement::Insert { table, rows })
    }
}

/// Parse `YYYY-MM-DD`.
pub fn parse_date(s: &str) -> Result<Date, String> {
    let parts: Vec<&str> = s.split('-').collect();
    if parts.len() != 3 {
        return Err(format!("bad date literal {s:?}"));
    }
    let y: i32 = parts[0].parse().map_err(|_| format!("bad year in {s:?}"))?;
    let m: u32 = parts[1]
        .parse()
        .map_err(|_| format!("bad month in {s:?}"))?;
    let d: u32 = parts[2].parse().map_err(|_| format!("bad day in {s:?}"))?;
    Ok(Date::from_ymd(y, m, d))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_count_query() {
        let stmt = parse("SELECT count(*) FROM probe r, build s WHERE r.k = s.k;").unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        assert_eq!(s.items.len(), 1);
        assert!(matches!(
            s.items[0],
            SelectItem::Agg {
                func: AggCall::CountStar,
                ..
            }
        ));
        assert_eq!(s.from.len(), 2);
        assert_eq!(s.from[0].binding(), "r");
        assert_eq!(s.from[1].binding(), "s");
        assert!(s.where_clause.is_some());
    }

    #[test]
    fn parses_the_papers_sum_query() {
        let stmt = parse("SELECT sum(s.p1) FROM build r, probe s WHERE r.k = s.k").unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        assert!(matches!(
            &s.items[0],
            SelectItem::Agg { func: AggCall::Sum, arg: Some(ExprAst::Column(c)), .. }
                if c.qualifier.as_deref() == Some("s") && c.name == "p1"
        ));
    }

    #[test]
    fn parses_the_papers_create_table() {
        let stmt = parse("CREATE TABLE b(key BIGINT NOT NULL, pay BIGINT NOT NULL);").unwrap();
        let Statement::CreateTable { name, columns } = stmt else {
            panic!()
        };
        assert_eq!(name, "b");
        assert_eq!(columns.len(), 2);
        assert_eq!(columns[0].dtype, DataType::Int64);
    }

    #[test]
    fn precedence_and_parens() {
        let Statement::Select(s) = parse("SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3").unwrap()
        else {
            panic!()
        };
        // AND binds tighter: Or(a=1, And(b=2, c=3)).
        match s.where_clause.unwrap() {
            ExprAst::Or(lhs, rhs) => {
                assert!(matches!(*lhs, ExprAst::Cmp(BinCmp::Eq, _, _)));
                assert!(matches!(*rhs, ExprAst::And(_, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn between_in_like_with_not() {
        let Statement::Select(s) = parse(
            "SELECT a FROM t WHERE a BETWEEN 1 AND 5 AND b NOT IN ('x','y') AND c LIKE '%z%' AND d NOT LIKE 'w%'",
        )
        .unwrap() else {
            panic!()
        };
        let mut found = (false, false, false, false);
        fn walk(e: &ExprAst, f: &mut (bool, bool, bool, bool)) {
            match e {
                ExprAst::And(a, b) => {
                    walk(a, f);
                    walk(b, f);
                }
                ExprAst::Between { negated: false, .. } => f.0 = true,
                ExprAst::InList { negated: true, .. } => f.1 = true,
                ExprAst::Like { negated: false, .. } => f.2 = true,
                ExprAst::Like { negated: true, .. } => f.3 = true,
                _ => {}
            }
        }
        walk(&s.where_clause.unwrap(), &mut found);
        assert_eq!(found, (true, true, true, true));
    }

    #[test]
    fn date_literals_and_arithmetic() {
        let Statement::Select(s) = parse(
            "SELECT l_extendedprice * (1 - l_discount) AS revenue FROM lineitem \
             WHERE l_shipdate >= DATE '1994-01-01'",
        )
        .unwrap() else {
            panic!()
        };
        assert!(matches!(
            &s.items[0],
            SelectItem::Expr { alias: Some(a), .. } if a == "revenue"
        ));
        match s.where_clause.unwrap() {
            ExprAst::Cmp(BinCmp::Ge, _, rhs) => {
                assert_eq!(
                    *rhs,
                    ExprAst::Literal(Literal::Date(Date::from_ymd(1994, 1, 1)))
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn group_order_limit() {
        let Statement::Select(s) =
            parse("SELECT g, count(*) c FROM t GROUP BY g ORDER BY 2 DESC, g LIMIT 10").unwrap()
        else {
            panic!()
        };
        assert_eq!(s.group_by.len(), 1);
        assert_eq!(s.order_by.len(), 2);
        assert!(!s.order_by[0].ascending);
        assert_eq!(s.order_by[0].target, OrderTarget::Ordinal(2));
        assert_eq!(s.limit, Some(10));
    }

    #[test]
    fn insert_values() {
        let Statement::Insert { table, rows } =
            parse("INSERT INTO t VALUES (1, 'a', 0.05), (-2, 'b', 3.50)").unwrap()
        else {
            panic!()
        };
        assert_eq!(table, "t");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][2], Literal::Decimal(Decimal(5)));
        assert_eq!(rows[1][0], Literal::Int(-2));
    }

    #[test]
    fn wildcard_and_dotted_table_names() {
        let Statement::Select(s) = parse("SELECT * FROM jsys.statements").unwrap() else {
            panic!()
        };
        assert_eq!(s.items, vec![SelectItem::Wildcard]);
        assert_eq!(s.from[0].table, "jsys.statements");
        assert_eq!(s.from[0].binding(), "jsys.statements");

        let Statement::Select(s) = parse("SELECT *, fingerprint FROM jsys.statements q").unwrap()
        else {
            panic!()
        };
        assert_eq!(s.items.len(), 2);
        assert_eq!(s.from[0].binding(), "q");
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("SELECT FROM t").is_err());
        assert!(parse("SELECT a FROM").is_err());
        assert!(parse("SELECT a FROM t WHERE").is_err());
        assert!(parse("CREATE TABLE t (a FLOAT32)").is_err());
        assert!(parse("SELECT a FROM t extra garbage ,").is_err());
    }
}
