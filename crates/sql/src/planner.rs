//! Lowering SQL to physical [`Plan`]s.
//!
//! The planner is deliberately simple but honest about it:
//!
//! * single-table WHERE conjuncts are pushed into the scans,
//! * `a.x = b.y` conjuncts become hash-join edges (several edges between
//!   the same pair form one composite-key join, as in TPC-H Q9),
//! * join order is greedy: start from the first FROM entry, repeatedly
//!   attach a connected table, putting the *smaller base table* on the
//!   build side — the heuristic every textbook optimizer starts from,
//! * remaining multi-table conjuncts become a residual filter above the
//!   joins,
//! * aggregation requires every non-aggregate projection to appear in
//!   GROUP BY (standard SQL), and `ORDER BY` accepts output names or
//!   1-based ordinals.
//!
//! Integer literals are coerced to the column side's type (`Int32`,
//! `Decimal`) so `price > 100` means `100.00` against money columns.

use crate::ast::*;
use joinstudy_core::{JoinAlgo, JoinType, Plan};
use joinstudy_exec::expr::{CmpOp, Expr};
use joinstudy_exec::ops::{AggFunc, AggSpec, SortKey};
use joinstudy_storage::table::Table;
use joinstudy_storage::types::{DataType, Decimal, Value};
use std::collections::HashMap;
use std::sync::Arc;

type PResult<T> = Result<T, String>;

/// Column layout of an in-flight plan: which (binding, column) each output
/// position carries.
#[derive(Clone)]
struct Layout {
    slots: Vec<(String, String, DataType)>,
}

impl Layout {
    fn find(&self, col: &ColumnRef) -> PResult<usize> {
        let matches: Vec<usize> = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, (b, n, _))| {
                n == &col.name && col.qualifier.as_ref().is_none_or(|q| q == b)
            })
            .map(|(i, _)| i)
            .collect();
        match matches.len() {
            0 => Err(format!(
                "unknown column {}{}",
                col.qualifier
                    .as_ref()
                    .map(|q| format!("{q}."))
                    .unwrap_or_default(),
                col.name
            )),
            1 => Ok(matches[0]),
            _ => Err(format!("ambiguous column {:?}", col.name)),
        }
    }

    fn dtype(&self, i: usize) -> DataType {
        self.slots[i].2
    }
}

/// Which bindings an expression references.
fn bindings_of(
    e: &ExprAst,
    layouts: &HashMap<String, Layout>,
    out: &mut Vec<String>,
) -> PResult<()> {
    match e {
        ExprAst::Column(c) => {
            let binding = resolve_binding(c, layouts)?;
            if !out.contains(&binding) {
                out.push(binding);
            }
            Ok(())
        }
        ExprAst::Literal(_) => Ok(()),
        ExprAst::Cmp(_, a, b)
        | ExprAst::Arith(_, a, b)
        | ExprAst::And(a, b)
        | ExprAst::Or(a, b) => {
            bindings_of(a, layouts, out)?;
            bindings_of(b, layouts, out)
        }
        ExprAst::Not(a) | ExprAst::ExtractYear(a) => bindings_of(a, layouts, out),
        ExprAst::Between { expr, lo, hi, .. } => {
            bindings_of(expr, layouts, out)?;
            bindings_of(lo, layouts, out)?;
            bindings_of(hi, layouts, out)
        }
        ExprAst::InList { expr, .. } | ExprAst::Like { expr, .. } => {
            bindings_of(expr, layouts, out)
        }
        ExprAst::Case {
            cond,
            then,
            otherwise,
        } => {
            bindings_of(cond, layouts, out)?;
            bindings_of(then, layouts, out)?;
            bindings_of(otherwise, layouts, out)
        }
        ExprAst::Substring { expr, .. } => bindings_of(expr, layouts, out),
    }
}

fn resolve_binding(c: &ColumnRef, layouts: &HashMap<String, Layout>) -> PResult<String> {
    if let Some(q) = &c.qualifier {
        if !layouts.contains_key(q) {
            return Err(format!("unknown table alias {q:?}"));
        }
        return Ok(q.clone());
    }
    let owners: Vec<&String> = layouts
        .iter()
        .filter(|(_, l)| l.slots.iter().any(|(_, n, _)| n == &c.name))
        .map(|(b, _)| b)
        .collect();
    match owners.len() {
        0 => Err(format!("unknown column {:?}", c.name)),
        1 => Ok(owners[0].clone()),
        _ => Err(format!("ambiguous column {:?} (qualify it)", c.name)),
    }
}

/// Flatten an AND tree into conjuncts.
fn conjuncts(e: ExprAst, out: &mut Vec<ExprAst>) {
    match e {
        ExprAst::And(a, b) => {
            conjuncts(*a, out);
            conjuncts(*b, out);
        }
        other => out.push(other),
    }
}

fn coerce_literal(lit: &Literal, target: DataType) -> PResult<Value> {
    Ok(match (lit, target) {
        (Literal::Int(v), DataType::Int64) => Value::Int64(*v),
        (Literal::Int(v), DataType::Int32) => {
            Value::Int32(i32::try_from(*v).map_err(|_| format!("{v} out of INT range"))?)
        }
        (Literal::Int(v), DataType::Decimal) => Value::Decimal(Decimal::from_int(*v)),
        (Literal::Int(v), DataType::Float64) => Value::Float64(*v as f64),
        (Literal::Decimal(d), DataType::Decimal) => Value::Decimal(*d),
        (Literal::Decimal(d), DataType::Float64) => Value::Float64(d.to_f64()),
        (Literal::Str(s), DataType::Str) => Value::Str(s.clone()),
        (Literal::Date(d), DataType::Date) => Value::Date(*d),
        (Literal::Bool(b), DataType::Bool) => Value::Bool(*b),
        (l, t) => return Err(format!("cannot use literal {l:?} where {t} is expected")),
    })
}

fn literal_value(lit: &Literal) -> PResult<Value> {
    Ok(match lit {
        Literal::Int(v) => Value::Int64(*v),
        Literal::Decimal(d) => Value::Decimal(*d),
        Literal::Str(s) => Value::Str(s.clone()),
        Literal::Date(d) => Value::Date(*d),
        Literal::Bool(b) => Value::Bool(*b),
        Literal::Null => return Err("NULL literals are not supported in expressions".into()),
    })
}

/// Lower an AST expression against a layout into a physical [`Expr`].
fn lower(e: &ExprAst, layout: &Layout) -> PResult<Expr> {
    Ok(match e {
        ExprAst::Column(c) => Expr::col(layout.find(c)?),
        ExprAst::Literal(l) => Expr::Const(literal_value(l)?),
        ExprAst::Cmp(op, a, b) => {
            let (ea, eb) = lower_coerced_pair(a, b, layout)?;
            let op = match op {
                BinCmp::Eq => CmpOp::Eq,
                BinCmp::Ne => CmpOp::Ne,
                BinCmp::Lt => CmpOp::Lt,
                BinCmp::Le => CmpOp::Le,
                BinCmp::Gt => CmpOp::Gt,
                BinCmp::Ge => CmpOp::Ge,
            };
            Expr::Cmp(op, Box::new(ea), Box::new(eb))
        }
        ExprAst::Arith(op, a, b) => {
            let (ea, eb) = lower_coerced_pair(a, b, layout)?;
            match op {
                BinArith::Add => ea.add(eb),
                BinArith::Sub => ea.sub(eb),
                BinArith::Mul => ea.mul(eb),
                BinArith::Div => ea.div(eb),
            }
        }
        ExprAst::And(a, b) => Expr::and(vec![lower(a, layout)?, lower(b, layout)?]),
        ExprAst::Or(a, b) => Expr::or(vec![lower(a, layout)?, lower(b, layout)?]),
        ExprAst::Not(a) => lower(a, layout)?.not(),
        ExprAst::Between {
            expr,
            lo,
            hi,
            negated,
        } => {
            let target = expr_dtype(expr, layout)?;
            let e = lower(expr, layout)?;
            let lo = lower_literal_side(lo, target, layout)?;
            let hi = lower_literal_side(hi, target, layout)?;
            let between = Expr::and(vec![e.clone().ge(lo), e.le(hi)]);
            if *negated {
                between.not()
            } else {
                between
            }
        }
        ExprAst::InList {
            expr,
            list,
            negated,
        } => {
            let target = expr_dtype(expr, layout)?;
            let e = lower(expr, layout)?;
            let values: Vec<Value> = list
                .iter()
                .map(|l| coerce_literal(l, target))
                .collect::<PResult<_>>()?;
            let inlist = e.in_list(values);
            if *negated {
                inlist.not()
            } else {
                inlist
            }
        }
        ExprAst::Like {
            expr,
            pattern,
            negated,
        } => {
            let e = lower(expr, layout)?.like(pattern.clone());
            if *negated {
                e.not()
            } else {
                e
            }
        }
        ExprAst::Case {
            cond,
            then,
            otherwise,
        } => {
            let (t, o) = lower_coerced_pair(then, otherwise, layout)?;
            Expr::case_when(lower(cond, layout)?, t, o)
        }
        ExprAst::ExtractYear(a) => lower(a, layout)?.extract_year(),
        ExprAst::Substring { expr, start, len } => lower(expr, layout)?.substr(*start, *len),
    })
}

/// Result type of an AST expression against a layout.
fn expr_dtype(e: &ExprAst, layout: &Layout) -> PResult<DataType> {
    Ok(match e {
        ExprAst::Column(c) => layout.dtype(layout.find(c)?),
        ExprAst::Literal(l) => match l {
            Literal::Int(_) => DataType::Int64,
            Literal::Decimal(_) => DataType::Decimal,
            Literal::Str(_) => DataType::Str,
            Literal::Date(_) => DataType::Date,
            Literal::Bool(_) => DataType::Bool,
            Literal::Null => return Err("NULL literal has no type".into()),
        },
        ExprAst::Cmp(..)
        | ExprAst::And(..)
        | ExprAst::Or(..)
        | ExprAst::Not(..)
        | ExprAst::Between { .. }
        | ExprAst::InList { .. }
        | ExprAst::Like { .. } => DataType::Bool,
        ExprAst::Arith(_, a, b) => {
            let (ta, tb) = (expr_dtype(a, layout)?, expr_dtype(b, layout)?);
            // Int literal beside a Decimal operand promotes to Decimal.
            if ta == DataType::Decimal || tb == DataType::Decimal {
                DataType::Decimal
            } else {
                ta
            }
        }
        ExprAst::Case { then, .. } => expr_dtype(then, layout)?,
        ExprAst::ExtractYear(_) => DataType::Int32,
        ExprAst::Substring { .. } => DataType::Str,
    })
}

/// Lower two operand expressions, coercing a bare Int literal to the other
/// side's type (the `price > 100` / `1 - l_discount` cases).
fn lower_coerced_pair(a: &ExprAst, b: &ExprAst, layout: &Layout) -> PResult<(Expr, Expr)> {
    let ta = expr_dtype(a, layout);
    let tb = expr_dtype(b, layout);
    let ea = match (a, &tb) {
        (ExprAst::Literal(l), Ok(t)) if matches!(l, Literal::Int(_) | Literal::Decimal(_)) => {
            Expr::Const(coerce_literal(l, *t)?)
        }
        _ => lower(a, layout)?,
    };
    let eb = match (b, &ta) {
        (ExprAst::Literal(l), Ok(t)) if matches!(l, Literal::Int(_) | Literal::Decimal(_)) => {
            Expr::Const(coerce_literal(l, *t)?)
        }
        _ => lower(b, layout)?,
    };
    Ok((ea, eb))
}

fn lower_literal_side(e: &ExprAst, target: DataType, layout: &Layout) -> PResult<Expr> {
    match e {
        ExprAst::Literal(l) => Ok(Expr::Const(coerce_literal(l, target)?)),
        other => lower(other, layout),
    }
}

/// A join edge `left_binding.col = right_binding.col`.
struct JoinEdge {
    a: (String, String),
    b: (String, String),
}

/// Plan a SELECT against the catalog.
pub fn plan_select(
    select: &Select,
    catalog: &HashMap<String, Arc<Table>>,
    algo: JoinAlgo,
) -> PResult<Plan> {
    if select.from.is_empty() {
        return Err("FROM clause is required".into());
    }
    // Bindings.
    let mut tables: HashMap<String, Arc<Table>> = HashMap::new();
    let mut order: Vec<String> = Vec::new();
    for t in &select.from {
        let table = catalog
            .get(&t.table)
            .ok_or_else(|| format!("unknown table {:?}", t.table))?;
        let binding = t.binding().to_string();
        if tables.insert(binding.clone(), Arc::clone(table)).is_some() {
            return Err(format!("duplicate table binding {binding:?}"));
        }
        order.push(binding);
    }
    // Expand `*` into every column of every FROM binding, in FROM order
    // (schema order within a binding) — after bindings resolve, so the
    // wildcard sees aliases and dotted system tables alike.
    let items: Vec<SelectItem> = select
        .items
        .iter()
        .flat_map(|item| match item {
            SelectItem::Wildcard => order
                .iter()
                .flat_map(|b| {
                    tables[b].schema().fields.iter().map(|f| SelectItem::Expr {
                        expr: ExprAst::Column(ColumnRef {
                            qualifier: Some(b.clone()),
                            name: f.name.clone(),
                        }),
                        alias: Some(f.name.clone()),
                    })
                })
                .collect::<Vec<_>>(),
            other => vec![other.clone()],
        })
        .collect();
    if items.is_empty() {
        return Err("SELECT * found no columns to expand".into());
    }
    let full_layouts: HashMap<String, Layout> = tables
        .iter()
        .map(|(b, t)| {
            let slots = t
                .schema()
                .fields
                .iter()
                .map(|f| (b.clone(), f.name.clone(), f.dtype))
                .collect();
            (b.clone(), Layout { slots })
        })
        .collect();

    // Classify WHERE conjuncts.
    let mut filters: HashMap<String, Vec<ExprAst>> = HashMap::new();
    let mut edges: Vec<JoinEdge> = Vec::new();
    let mut residual: Vec<ExprAst> = Vec::new();
    if let Some(w) = &select.where_clause {
        let mut cs = Vec::new();
        conjuncts(w.clone(), &mut cs);
        for c in cs {
            let mut bs = Vec::new();
            bindings_of(&c, &full_layouts, &mut bs)?;
            match bs.len() {
                0 | 1 => {
                    let b = bs.into_iter().next().unwrap_or_else(|| order[0].clone());
                    filters.entry(b).or_default().push(c);
                }
                2 => {
                    if let ExprAst::Cmp(BinCmp::Eq, l, r) = &c {
                        if let (ExprAst::Column(lc), ExprAst::Column(rc)) = (&**l, &**r) {
                            let lb = resolve_binding(lc, &full_layouts)?;
                            let rb = resolve_binding(rc, &full_layouts)?;
                            edges.push(JoinEdge {
                                a: (lb, lc.name.clone()),
                                b: (rb, rc.name.clone()),
                            });
                            continue;
                        }
                    }
                    residual.push(c);
                }
                _ => residual.push(c),
            }
        }
    }

    // Column pruning: keep what any expression or edge references.
    let mut needed: HashMap<String, Vec<String>> = HashMap::new();
    {
        let mut note = |binding: &str, col: &str| {
            let v = needed.entry(binding.to_string()).or_default();
            if !v.iter().any(|c| c == col) {
                v.push(col.to_string());
            }
        };
        let note_expr = |e: &ExprAst, note: &mut dyn FnMut(&str, &str)| -> PResult<()> {
            collect_columns(e, &full_layouts, note)
        };
        for item in &items {
            match item {
                SelectItem::Expr { expr, .. } => note_expr(expr, &mut note)?,
                SelectItem::Agg { arg: Some(a), .. } => note_expr(a, &mut note)?,
                SelectItem::Agg { arg: None, .. } => {}
                SelectItem::Wildcard => unreachable!("wildcards expanded above"),
            }
        }
        for g in &select.group_by {
            note_expr(g, &mut note)?;
        }
        for (b, fs) in &filters {
            let _ = b;
            for f in fs {
                note_expr(f, &mut note)?;
            }
        }
        for r in &residual {
            note_expr(r, &mut note)?;
        }
        for e in &edges {
            note(&e.a.0, &e.a.1);
            note(&e.b.0, &e.b.1);
        }
        // Every binding must scan at least one column.
        for b in &order {
            needed
                .entry(b.clone())
                .or_insert_with(|| vec![tables[b].schema().fields[0].name.clone()]);
        }
    }

    // Per-binding scans with pushed filters.
    let mut scans: HashMap<String, (Plan, Layout)> = HashMap::new();
    for b in &order {
        let table = &tables[b];
        let cols = &needed[b];
        let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
        let layout = Layout {
            slots: cols
                .iter()
                .map(|c| {
                    let idx = table.schema().index_of(c);
                    (b.clone(), c.clone(), table.schema().dtype(idx))
                })
                .collect(),
        };
        let mut plan = Plan::scan(table, &col_refs, None);
        if let Some(fs) = filters.get(b) {
            let mut pred: Option<Expr> = None;
            for f in fs {
                let e = lower(f, &layout)?;
                pred = Some(match pred {
                    None => e,
                    Some(p) => Expr::and(vec![p, e]),
                });
            }
            // Push into the scan (the engine applies it during the scan).
            if let Plan::Scan { filter, .. } = &mut plan {
                *filter = pred;
            }
        }
        scans.insert(b.clone(), (plan, layout));
    }

    // Greedy join tree from the first FROM entry.
    let first = order[0].clone();
    let (mut plan, mut layout) = scans.remove(&first).unwrap();
    let mut joined: Vec<String> = vec![first];
    let mut remaining: Vec<String> = order[1..].to_vec();

    while !remaining.is_empty() {
        // Find a remaining binding connected to the joined set.
        let next = remaining
            .iter()
            .position(|b| {
                edges.iter().any(|e| {
                    (joined.contains(&e.a.0) && &e.b.0 == b)
                        || (joined.contains(&e.b.0) && &e.a.0 == b)
                })
            })
            .ok_or_else(|| {
                format!(
                    "no join predicate connects {:?} to {:?} (cross joins unsupported)",
                    remaining, joined
                )
            })?;
        let binding = remaining.remove(next);
        let (scan, scan_layout) = scans.remove(&binding).unwrap();

        // All edges between the joined set and this binding → composite key.
        let mut left_keys: Vec<usize> = Vec::new(); // in current plan
        let mut right_keys: Vec<usize> = Vec::new(); // in new scan
        for e in &edges {
            let (cur, new) = if joined.contains(&e.a.0) && e.b.0 == binding {
                (&e.a, &e.b)
            } else if joined.contains(&e.b.0) && e.a.0 == binding {
                (&e.b, &e.a)
            } else {
                continue;
            };
            let cur_idx = layout.find(&ColumnRef {
                qualifier: Some(cur.0.clone()),
                name: cur.1.clone(),
            })?;
            let new_idx = scan_layout.find(&ColumnRef {
                qualifier: Some(new.0.clone()),
                name: new.1.clone(),
            })?;
            left_keys.push(cur_idx);
            right_keys.push(new_idx);
        }
        debug_assert!(!left_keys.is_empty());

        // Build side: the smaller base table. Output = build ++ probe.
        let new_rows = tables[&binding].num_rows();
        let joined_max: usize = joined
            .iter()
            .map(|b| tables[b].num_rows())
            .max()
            .unwrap_or(0);
        if new_rows <= joined_max {
            plan = scan.join(plan, algo, JoinType::Inner, &right_keys, &left_keys);
            let mut slots = scan_layout.slots;
            slots.extend(layout.slots);
            layout = Layout { slots };
        } else {
            plan = plan.join(scan, algo, JoinType::Inner, &left_keys, &right_keys);
            layout.slots.extend(scan_layout.slots);
        }
        joined.push(binding);
    }

    // Residual predicates above the joins.
    for r in &residual {
        plan = plan.filter(lower(r, &layout)?);
    }

    // Projection / aggregation.
    let has_agg =
        items.iter().any(|i| matches!(i, SelectItem::Agg { .. })) || !select.group_by.is_empty();

    let mut out_names: Vec<String> = Vec::new();
    if has_agg {
        // Pre-projection: group keys, then agg inputs.
        let mut exprs: Vec<Expr> = Vec::new();
        let mut names: Vec<String> = Vec::new();
        for (i, g) in select.group_by.iter().enumerate() {
            exprs.push(lower(g, &layout)?);
            names.push(format!("@g{i}"));
        }
        let mut agg_specs: Vec<AggSpec> = Vec::new();
        let mut agg_names: Vec<String> = Vec::new();
        for (i, item) in items.iter().enumerate() {
            if let SelectItem::Agg { func, arg, alias } = item {
                let name = alias.clone().unwrap_or_else(|| format!("@a{i}"));
                let input = match arg {
                    Some(a) => {
                        let idx = exprs.len();
                        let dtype = expr_dtype(a, &layout)?;
                        if *func == AggCall::Avg && dtype != DataType::Decimal {
                            return Err("AVG is supported over DECIMAL columns".into());
                        }
                        exprs.push(lower(a, &layout)?);
                        names.push(format!("@in{i}"));
                        idx
                    }
                    None => 0,
                };
                let func = match func {
                    AggCall::CountStar | AggCall::Count => AggFunc::CountStar,
                    AggCall::CountDistinct => AggFunc::CountDistinct,
                    AggCall::Sum => AggFunc::Sum,
                    AggCall::Avg => AggFunc::Avg,
                    AggCall::Min => AggFunc::Min,
                    AggCall::Max => AggFunc::Max,
                };
                agg_specs.push(AggSpec::new(func, input, name.clone()));
                agg_names.push(name);
            }
        }
        // A bare `count(*)` has nothing to pre-project; a zero-column
        // projection would lose the row count, so skip the map entirely.
        if !exprs.is_empty() {
            let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
            plan = plan.map(exprs, &name_refs);
        }
        let group_cols: Vec<usize> = (0..select.group_by.len()).collect();
        plan = plan.aggregate(&group_cols, agg_specs);

        // Final projection in SELECT order: group expressions must appear
        // in GROUP BY; aggregates are read from the aggregate output.
        let agg_schema = plan.schema();
        let mut final_exprs: Vec<Expr> = Vec::new();
        let mut agg_cursor = 0usize;
        for item in &items {
            match item {
                SelectItem::Expr { expr, alias } => {
                    let pos = select
                        .group_by
                        .iter()
                        .position(|g| g == expr)
                        .ok_or("non-aggregate SELECT item must appear in GROUP BY")?;
                    final_exprs.push(Expr::col(pos));
                    out_names.push(alias.clone().unwrap_or_else(|| default_name(expr)));
                }
                SelectItem::Agg { alias, func, .. } => {
                    let col = select.group_by.len() + agg_cursor;
                    agg_cursor += 1;
                    final_exprs.push(Expr::col(col));
                    out_names.push(
                        alias
                            .clone()
                            .unwrap_or_else(|| format!("{:?}", func).to_ascii_lowercase()),
                    );
                    let _ = &agg_schema;
                }
                SelectItem::Wildcard => unreachable!("wildcards expanded above"),
            }
        }
        let name_refs: Vec<&str> = out_names.iter().map(String::as_str).collect();
        plan = plan.map(final_exprs, &name_refs);
    } else {
        let mut exprs = Vec::new();
        for item in &items {
            let SelectItem::Expr { expr, alias } = item else {
                unreachable!()
            };
            exprs.push(lower(expr, &layout)?);
            out_names.push(alias.clone().unwrap_or_else(|| default_name(expr)));
        }
        let name_refs: Vec<&str> = out_names.iter().map(String::as_str).collect();
        plan = plan.map(exprs, &name_refs);
    }

    // ORDER BY / LIMIT.
    if !select.order_by.is_empty() || select.limit.is_some() {
        let mut keys = Vec::new();
        for k in &select.order_by {
            let col = match &k.target {
                OrderTarget::Ordinal(n) => {
                    if *n == 0 || *n > out_names.len() {
                        return Err(format!("ORDER BY ordinal {n} out of range"));
                    }
                    n - 1
                }
                OrderTarget::Name(n) => out_names
                    .iter()
                    .position(|o| o == n)
                    .ok_or_else(|| format!("ORDER BY references unknown column {n:?}"))?,
            };
            keys.push(if k.ascending {
                SortKey::asc(col)
            } else {
                SortKey::desc(col)
            });
        }
        plan = plan.sort(keys, select.limit);
    }
    Ok(plan)
}

fn default_name(e: &ExprAst) -> String {
    match e {
        ExprAst::Column(c) => c.name.clone(),
        _ => "expr".to_string(),
    }
}

fn collect_columns(
    e: &ExprAst,
    layouts: &HashMap<String, Layout>,
    note: &mut dyn FnMut(&str, &str),
) -> PResult<()> {
    match e {
        ExprAst::Column(c) => {
            let b = resolve_binding(c, layouts)?;
            note(&b, &c.name);
            Ok(())
        }
        ExprAst::Literal(_) => Ok(()),
        ExprAst::Cmp(_, a, b)
        | ExprAst::Arith(_, a, b)
        | ExprAst::And(a, b)
        | ExprAst::Or(a, b) => {
            collect_columns(a, layouts, note)?;
            collect_columns(b, layouts, note)
        }
        ExprAst::Not(a) | ExprAst::ExtractYear(a) => collect_columns(a, layouts, note),
        ExprAst::Between { expr, lo, hi, .. } => {
            collect_columns(expr, layouts, note)?;
            collect_columns(lo, layouts, note)?;
            collect_columns(hi, layouts, note)
        }
        ExprAst::InList { expr, .. } | ExprAst::Like { expr, .. } => {
            collect_columns(expr, layouts, note)
        }
        ExprAst::Case {
            cond,
            then,
            otherwise,
        } => {
            collect_columns(cond, layouts, note)?;
            collect_columns(then, layouts, note)?;
            collect_columns(otherwise, layouts, note)
        }
        ExprAst::Substring { expr, .. } => collect_columns(expr, layouts, note),
    }
}
