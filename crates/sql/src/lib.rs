//! A small SQL frontend for the join study.
//!
//! The paper's host system "accepts the queries using a SQL frontend"
//! (§4), and the paper specifies its microbenchmarks as SQL (§5.1.2,
//! §5.2, §5.4.2). This crate makes those statements runnable verbatim:
//!
//! ```
//! use joinstudy_sql::Session;
//! use joinstudy_core::JoinAlgo;
//!
//! let mut session = Session::new(2);
//! session.execute("CREATE TABLE b (key BIGINT NOT NULL, pay BIGINT NOT NULL)").unwrap();
//! session.execute("INSERT INTO b VALUES (1, 10), (2, 20), (3, 30)").unwrap();
//! session.execute("CREATE TABLE r (k BIGINT, p BIGINT)").unwrap();
//! session.execute("INSERT INTO r VALUES (2, 0), (2, 1), (9, 2)").unwrap();
//!
//! session.set_join_algo(JoinAlgo::Brj);
//! let t = session.execute("SELECT count(*) FROM r, b WHERE r.k = b.key").unwrap();
//! assert_eq!(t.column(0).as_i64()[0], 2);
//! ```
//!
//! Supported subset (documented in [`parser`]): `CREATE TABLE`,
//! multi-row `INSERT INTO ... VALUES`, and `SELECT` with multi-table FROM
//! (comma joins), WHERE (including join predicates, `BETWEEN`, `IN`,
//! `LIKE`, `CASE`, `EXTRACT(YEAR ...)`, `substring`), aggregates
//! (`count(*)`, `count(distinct)`, `sum`, `avg`, `min`, `max`), `GROUP
//! BY`, `ORDER BY ... [DESC]`, and `LIMIT`. Equality predicates between
//! two tables become hash joins, planned left-deep smallest-build-first
//! and executed with the session's configured join algorithm.

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod planner;
pub mod server;
pub mod session;
pub mod stats;

pub use server::{ServerConfig, SqlServer};
pub use session::{Session, SqlError};
pub use stats::{AshRing, AshSample, SlowLog, StatLog, TimeseriesRing, TsSample};
