//! Always-on serving telemetry: statement statistics, recent/active query
//! registries, the slow-query log, and the Prometheus-style exposition.
//!
//! The paper's thesis is that join decisions must be grounded in
//! measurement on a *real system*; this module is the serving side of that
//! argument. Every statement a [`crate::Session`] executes is
//! fingerprinted ([`fingerprint`]: literals normalized to `?`, whitespace
//! collapsed) and folded into a per-fingerprint [`StatEntry`] — call and
//! error counts, total/min/max latency plus a 65-bucket log₂ latency
//! histogram (the p50/p95/p99 source), rows out, spill traffic, admission
//! waits and grants, join-algorithm choices and degradation events. The
//! same record feeds a bounded ring of [`RecentQuery`] rows and, above a
//! session threshold, one JSON line in the [`SlowLog`].
//!
//! The module also owns the sampler-facing rings: the [`AshRing`] of
//! active-session-history samples (the server's wait-state sampler pushes
//! one [`AshSample`] per active query every ~10 ms) and the
//! [`TimeseriesRing`] of 1-second server gauges ([`TsSample`]). Both are
//! the same fixed-slot structure as the recent-query ring and surface as
//! `jsys.ash` / `jsys.timeseries`.
//!
//! # Overhead contract
//!
//! Collection must stay cheap enough to leave on in production:
//!
//! * The per-statement path takes two short mutex critical sections (one
//!   `HashMap` lookup to resolve the entry, one slot write in the recent
//!   ring) and otherwise updates the resolved [`StatEntry`] with *relaxed
//!   atomics only* — the same ordering contract as
//!   [`joinstudy_exec::registry`]: reads are advisory mid-flight and exact
//!   once recording threads are joined.
//! * Nothing here runs per morsel or per batch. Recording happens once per
//!   statement, after the result is materialized, so the executor's hot
//!   loops are untouched.
//! * Fingerprinting is one linear scan of the statement text.
//!
//! The system tables (`jsys.*`, materialized by [`crate::Session`]) and
//! the `METRICS` exposition are snapshot readers over these structures;
//! they pay their cost at read time, never on the execute path.

use joinstudy_exec::context::{algo_bits, QueryContext};
use joinstudy_exec::registry::Histogram;
use std::collections::HashMap;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// How many [`RecentQuery`] rows the ring buffer keeps.
pub const RECENT_CAP: usize = 256;

/// How many [`AshSample`] rows the active-session-history ring keeps
/// (~40 s of history at the default 10 ms sampling interval with one
/// active query).
pub const ASH_CAP: usize = 4096;

/// How many [`TsSample`] rows the gauge time-series ring keeps (10
/// minutes at the 1 s tick).
pub const TIMESERIES_CAP: usize = 600;

/// Milliseconds since the Unix epoch, the timestamp unit every ring here
/// shares (0 if the clock is before the epoch).
pub fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

// ---------------------------------------------------------------------------
// Fixed-slot ring
// ---------------------------------------------------------------------------

/// A bounded ring of fixed slots with a head index. `head` is the next
/// slot to overwrite, which after wrap-around is also the *oldest* live
/// slot — so an oldest-first scan must start at `head`, not at slot 0
/// (slot 0 holds a newer row than the head slot once the ring has
/// wrapped).
#[derive(Debug)]
struct Ring<T> {
    slots: Vec<Option<T>>,
    head: usize,
    len: usize,
}

impl<T: Clone> Ring<T> {
    fn new(cap: usize) -> Ring<T> {
        Ring {
            slots: vec![None; cap.max(1)],
            head: 0,
            len: 0,
        }
    }

    fn push(&mut self, item: T) {
        self.slots[self.head] = Some(item);
        self.head = (self.head + 1) % self.slots.len();
        self.len = (self.len + 1).min(self.slots.len());
    }

    /// Oldest-first snapshot: starts at the head once full (see type
    /// docs), at slot 0 while still filling.
    fn snapshot(&self) -> Vec<T> {
        let cap = self.slots.len();
        let start = if self.len == cap { self.head } else { 0 };
        (0..self.len)
            .filter_map(|i| self.slots[(start + i) % cap].clone())
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Fingerprinting
// ---------------------------------------------------------------------------

/// Normalize a statement to its fingerprint: string/number literals become
/// `?`, identifiers and keywords are lowercased, whitespace collapses to
/// single spaces, literal lists collapse to one `?` (so `IN (1, 2, 3)` and
/// `IN (4)` share a fingerprint, as do multi-row `VALUES` lists), and a
/// trailing `;` is dropped.
pub fn fingerprint(sql: &str) -> String {
    let mut out = String::with_capacity(sql.len());
    let mut chars = sql.chars().peekable();
    let mut prev_ident = false; // last pushed char was part of an identifier
    while let Some(c) = chars.next() {
        match c {
            '\'' => {
                // String literal ('' escapes a quote); dates included.
                loop {
                    match chars.next() {
                        Some('\'') if chars.peek() == Some(&'\'') => {
                            chars.next();
                        }
                        Some('\'') | None => break,
                        Some(_) => {}
                    }
                }
                out.push('?');
                prev_ident = false;
            }
            '0'..='9' if !prev_ident => {
                while matches!(chars.peek(), Some('0'..='9') | Some('.')) {
                    chars.next();
                }
                out.push('?');
                prev_ident = false;
            }
            c if c.is_whitespace() => {
                if !out.ends_with(' ') && !out.is_empty() {
                    out.push(' ');
                }
                prev_ident = false;
            }
            c => {
                out.push(c.to_ascii_lowercase());
                prev_ident = c.is_ascii_alphanumeric() || c == '_';
            }
        }
    }
    let mut s = out.trim().trim_end_matches(';').trim_end().to_string();
    // Collapse literal lists: `(?, ?, ?)` -> `(?)`, `(?), (?)` -> `(?)`.
    for pat in ["?, ?", "?,?"] {
        while s.contains(pat) {
            s = s.replace(pat, "?");
        }
    }
    for pat in ["(?), (?)", "(?),(?)"] {
        while s.contains(pat) {
            s = s.replace(pat, "(?)");
        }
    }
    s
}

// ---------------------------------------------------------------------------
// Per-fingerprint aggregates
// ---------------------------------------------------------------------------

/// Relaxed-atomic aggregate for one statement fingerprint. Resolved once
/// under the [`StatLog`] lock, then updated lock-free.
#[derive(Debug)]
pub struct StatEntry {
    calls: AtomicU64,
    errors: AtomicU64,
    total_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
    latency: Histogram,
    rows_out: AtomicU64,
    spill_bytes: AtomicU64,
    admission_wait_ns: AtomicU64,
    granted_bytes: AtomicU64,
    degradations: AtomicU64,
    algo_mask: AtomicU64,
}

impl Default for StatEntry {
    fn default() -> StatEntry {
        StatEntry {
            calls: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
            latency: Histogram::new(),
            rows_out: AtomicU64::new(0),
            spill_bytes: AtomicU64::new(0),
            admission_wait_ns: AtomicU64::new(0),
            granted_bytes: AtomicU64::new(0),
            degradations: AtomicU64::new(0),
            algo_mask: AtomicU64::new(0),
        }
    }
}

impl StatEntry {
    fn fold(&self, rec: &StatRecord<'_>) {
        self.calls.fetch_add(1, Ordering::Relaxed);
        if !rec.ok {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.total_ns.fetch_add(rec.latency_ns, Ordering::Relaxed);
        self.min_ns.fetch_min(rec.latency_ns, Ordering::Relaxed);
        self.max_ns.fetch_max(rec.latency_ns, Ordering::Relaxed);
        self.latency.record(rec.latency_ns);
        self.rows_out.fetch_add(rec.rows_out, Ordering::Relaxed);
        self.spill_bytes
            .fetch_add(rec.spill_bytes, Ordering::Relaxed);
        self.admission_wait_ns
            .fetch_add(rec.admission_wait_ns, Ordering::Relaxed);
        self.granted_bytes
            .fetch_add(rec.granted_bytes, Ordering::Relaxed);
        self.degradations
            .fetch_add(rec.degradations, Ordering::Relaxed);
        self.algo_mask.fetch_or(rec.algo_mask, Ordering::Relaxed);
    }
}

/// One statement execution, as handed to [`StatLog::record`] by the
/// session after the statement finished (success or failure).
#[derive(Debug, Clone, Copy)]
pub struct StatRecord<'a> {
    pub conn: u64,
    pub sql: &'a str,
    pub ok: bool,
    pub latency_ns: u64,
    pub rows_out: u64,
    pub spill_bytes: u64,
    pub admission_wait_ns: u64,
    pub granted_bytes: u64,
    pub degradations: u64,
    /// [`algo_bits`] mask of join shapes the statement's plan compiled.
    pub algo_mask: u64,
}

/// A read-time snapshot of one [`StatEntry`], plus its quantiles.
#[derive(Debug, Clone)]
pub struct StatementStats {
    pub fingerprint: String,
    pub calls: u64,
    pub errors: u64,
    pub total_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
    pub rows_out: u64,
    pub spill_bytes: u64,
    pub admission_wait_ns: u64,
    pub granted_bytes: u64,
    pub degradations: u64,
    /// `+`-joined join-shape label (`"bhj+rj"`), `-` when no join ran.
    pub algos: String,
}

/// One row of the bounded recent-query ring.
#[derive(Debug, Clone)]
pub struct RecentQuery {
    pub seq: u64,
    /// Completion time, milliseconds since the Unix epoch — what lets
    /// `bench_serve --ash` join a finished request against the ASH
    /// samples taken while it ran.
    pub ts_ms: u64,
    pub conn: u64,
    pub sql: String,
    pub fingerprint: String,
    pub ok: bool,
    pub latency_ns: u64,
    pub rows_out: u64,
    pub spill_bytes: u64,
    pub admission_wait_ns: u64,
    pub granted_bytes: u64,
}

#[derive(Debug)]
struct ActiveQuery {
    sql: String,
    fingerprint: String,
    state: &'static str,
    started: Instant,
    granted_bytes: u64,
    /// The statement's query context, when the caller has one — the ASH
    /// sampler reads wait state / query id / time breakdowns through it.
    ctx: Option<Arc<QueryContext>>,
}

/// A read-time snapshot of one in-flight statement.
#[derive(Debug, Clone)]
pub struct ActiveQuerySnapshot {
    pub conn: u64,
    pub state: &'static str,
    pub sql: String,
    pub elapsed_ns: u64,
    pub granted_bytes: u64,
}

/// The sampler's view of one in-flight statement: fingerprint plus the
/// live [`QueryContext`] (when the session shared one).
#[derive(Debug, Clone)]
pub struct ActiveQueryDetail {
    pub conn: u64,
    pub state: &'static str,
    pub fingerprint: String,
    pub granted_bytes: u64,
    pub ctx: Option<Arc<QueryContext>>,
}

/// The statement-statistics log: per-fingerprint aggregates, the
/// recent-query ring, and the active-query registry. One per embedded
/// [`crate::Session`]; the [`crate::SqlServer`] shares a single instance
/// across every connection (`Arc`), which is what makes `jsys.statements`
/// a server-wide view.
#[derive(Debug)]
pub struct StatLog {
    entries: Mutex<HashMap<String, Arc<StatEntry>>>,
    recent: Mutex<Ring<RecentQuery>>,
    active: Mutex<HashMap<u64, ActiveQuery>>,
    seq: AtomicU64,
    next_conn: AtomicU64,
}

impl Default for StatLog {
    fn default() -> StatLog {
        StatLog::new()
    }
}

impl StatLog {
    pub fn new() -> StatLog {
        StatLog::with_capacity(RECENT_CAP)
    }

    /// A log whose recent-query ring keeps `recent_cap` rows.
    pub fn with_capacity(recent_cap: usize) -> StatLog {
        StatLog {
            entries: Mutex::new(HashMap::new()),
            recent: Mutex::new(Ring::new(recent_cap)),
            active: Mutex::new(HashMap::new()),
            seq: AtomicU64::new(0),
            next_conn: AtomicU64::new(1),
        }
    }

    /// Allocate a connection id (the server calls this per accept; the
    /// embedded shell uses the session default of 0).
    pub fn next_conn_id(&self) -> u64 {
        self.next_conn.fetch_add(1, Ordering::Relaxed)
    }

    /// Fold one finished statement into the aggregates and the ring.
    /// Returns the fingerprint so callers (the slow log) can reuse it
    /// without re-scanning the statement.
    pub fn record(&self, rec: &StatRecord<'_>) -> String {
        let fp = fingerprint(rec.sql);
        let entry = {
            let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
            Arc::clone(entries.entry(fp.clone()).or_default())
        };
        entry.fold(rec);
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let row = RecentQuery {
            seq,
            ts_ms: now_ms(),
            conn: rec.conn,
            sql: rec.sql.to_string(),
            fingerprint: fp.clone(),
            ok: rec.ok,
            latency_ns: rec.latency_ns,
            rows_out: rec.rows_out,
            spill_bytes: rec.spill_bytes,
            admission_wait_ns: rec.admission_wait_ns,
            granted_bytes: rec.granted_bytes,
        };
        self.recent
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(row);
        fp
    }

    /// Register (or update) connection `conn`'s in-flight statement. An
    /// existing entry for the same connection keeps its original start
    /// time — the server marks a statement `queued` before admission and
    /// the session re-marks it `running` after, and elapsed time should
    /// span both. `ctx` (when the caller has one) lets the ASH sampler
    /// read the statement's wait state mid-flight; an upsert without a
    /// context keeps the one already attached.
    pub fn active_upsert(
        &self,
        conn: u64,
        sql: &str,
        state: &'static str,
        granted_bytes: u64,
        ctx: Option<&Arc<QueryContext>>,
    ) {
        let mut active = self.active.lock().unwrap_or_else(|e| e.into_inner());
        match active.get_mut(&conn) {
            Some(q) if q.sql == sql => {
                q.state = state;
                q.granted_bytes = granted_bytes;
                if let Some(ctx) = ctx {
                    q.ctx = Some(Arc::clone(ctx));
                }
            }
            _ => {
                active.insert(
                    conn,
                    ActiveQuery {
                        sql: sql.to_string(),
                        fingerprint: fingerprint(sql),
                        state,
                        started: Instant::now(),
                        granted_bytes,
                        ctx: ctx.map(Arc::clone),
                    },
                );
            }
        }
    }

    /// Drop connection `conn`'s in-flight statement (it finished).
    pub fn active_end(&self, conn: u64) {
        self.active
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&conn);
    }

    /// Snapshot the per-fingerprint aggregates, busiest first (by total
    /// latency). Advisory mid-flight, exact after workers join — the
    /// registry's ordering contract.
    pub fn statements_snapshot(&self) -> Vec<StatementStats> {
        let entries: Vec<(String, Arc<StatEntry>)> = {
            let map = self.entries.lock().unwrap_or_else(|e| e.into_inner());
            map.iter()
                .map(|(k, v)| (k.clone(), Arc::clone(v)))
                .collect()
        };
        let mut out: Vec<StatementStats> = entries
            .into_iter()
            .map(|(fp, e)| {
                let min = e.min_ns.load(Ordering::Relaxed);
                StatementStats {
                    fingerprint: fp,
                    calls: e.calls.load(Ordering::Relaxed),
                    errors: e.errors.load(Ordering::Relaxed),
                    total_ns: e.total_ns.load(Ordering::Relaxed),
                    min_ns: if min == u64::MAX { 0 } else { min },
                    max_ns: e.max_ns.load(Ordering::Relaxed),
                    p50_ns: e.latency.quantile(0.5),
                    p95_ns: e.latency.quantile(0.95),
                    p99_ns: e.latency.quantile(0.99),
                    rows_out: e.rows_out.load(Ordering::Relaxed),
                    spill_bytes: e.spill_bytes.load(Ordering::Relaxed),
                    admission_wait_ns: e.admission_wait_ns.load(Ordering::Relaxed),
                    granted_bytes: e.granted_bytes.load(Ordering::Relaxed),
                    degradations: e.degradations.load(Ordering::Relaxed),
                    algos: algo_bits::label(e.algo_mask.load(Ordering::Relaxed)),
                }
            })
            .collect();
        out.sort_by(|a, b| {
            b.total_ns
                .cmp(&a.total_ns)
                .then(a.fingerprint.cmp(&b.fingerprint))
        });
        out
    }

    /// Snapshot the recent-query ring, oldest first (the scan starts at
    /// the ring head once the ring has wrapped — see [`Ring`]).
    pub fn recent_snapshot(&self) -> Vec<RecentQuery> {
        self.recent
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .snapshot()
    }

    /// Snapshot the in-flight statements, by connection id.
    pub fn active_snapshot(&self) -> Vec<ActiveQuerySnapshot> {
        let active = self.active.lock().unwrap_or_else(|e| e.into_inner());
        let mut out: Vec<ActiveQuerySnapshot> = active
            .iter()
            .map(|(&conn, q)| ActiveQuerySnapshot {
                conn,
                state: q.state,
                sql: q.sql.clone(),
                elapsed_ns: q.started.elapsed().as_nanos() as u64,
                granted_bytes: q.granted_bytes,
            })
            .collect();
        out.sort_by_key(|q| q.conn);
        out
    }

    /// The in-flight statements with their query contexts attached — the
    /// ASH sampler's read path.
    pub fn active_detail(&self) -> Vec<ActiveQueryDetail> {
        let active = self.active.lock().unwrap_or_else(|e| e.into_inner());
        let mut out: Vec<ActiveQueryDetail> = active
            .iter()
            .map(|(&conn, q)| ActiveQueryDetail {
                conn,
                state: q.state,
                fingerprint: q.fingerprint.clone(),
                granted_bytes: q.granted_bytes,
                ctx: q.ctx.clone(),
            })
            .collect();
        out.sort_by_key(|q| q.conn);
        out
    }

    /// Total statements recorded (== sum of per-fingerprint `calls`).
    pub fn total_recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Active session history
// ---------------------------------------------------------------------------

/// One wait-state sample of one active query, as taken by the server's
/// ASH sampler thread. `wait_state` is a
/// [`WaitState`](joinstudy_exec::progress::WaitState) name; `pipeline` is
/// the label of the query's most recently registered live pipeline (empty
/// between pipelines).
#[derive(Debug, Clone)]
pub struct AshSample {
    pub at_ms: u64,
    pub conn: u64,
    pub query_id: u64,
    pub fingerprint: String,
    pub wait_state: &'static str,
    pub pipeline: String,
    /// Source rows emitted so far across the query's live pipelines.
    pub rows: u64,
    pub granted_bytes: u64,
}

/// Bounded ring of [`AshSample`]s — `jsys.ash`. One per server; shared
/// (`Arc`) with every connection's session so any connection can query
/// the history.
#[derive(Debug)]
pub struct AshRing {
    ring: Mutex<Ring<AshSample>>,
    taken: AtomicU64,
}

impl Default for AshRing {
    fn default() -> AshRing {
        AshRing::with_capacity(ASH_CAP)
    }
}

impl AshRing {
    pub fn new() -> AshRing {
        AshRing::default()
    }

    pub fn with_capacity(cap: usize) -> AshRing {
        AshRing {
            ring: Mutex::new(Ring::new(cap)),
            taken: AtomicU64::new(0),
        }
    }

    pub fn push(&self, sample: AshSample) {
        self.taken.fetch_add(1, Ordering::Relaxed);
        self.ring
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(sample);
    }

    /// Oldest-first snapshot of the retained samples.
    pub fn snapshot(&self) -> Vec<AshSample> {
        self.ring
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .snapshot()
    }

    /// Samples ever taken (retained or evicted).
    pub fn total_samples(&self) -> u64 {
        self.taken.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Gauge time series
// ---------------------------------------------------------------------------

/// One 1-second tick of server-wide gauges — a row of `jsys.timeseries`.
#[derive(Debug, Clone, Default)]
pub struct TsSample {
    pub at_ms: u64,
    /// Queries waiting in the admission queue.
    pub queue_depth: u64,
    /// Admission pool bytes not currently leased out.
    pub available_bytes: u64,
    /// Admission pool bytes currently leased out.
    pub admitted_bytes: u64,
    pub pool_threads: u64,
    pub active_pipelines: u64,
    /// Statements in flight (queued or running).
    pub active_queries: u64,
    /// Cumulative spill bytes written (process-wide counter; diff adjacent
    /// rows for throughput).
    pub spill_write_bytes: u64,
    /// Cumulative spill bytes read back.
    pub spill_read_bytes: u64,
}

/// Bounded ring of [`TsSample`]s — `jsys.timeseries`. Pushed once a
/// second by the server's ticker thread.
#[derive(Debug)]
pub struct TimeseriesRing {
    ring: Mutex<Ring<TsSample>>,
}

impl Default for TimeseriesRing {
    fn default() -> TimeseriesRing {
        TimeseriesRing::with_capacity(TIMESERIES_CAP)
    }
}

impl TimeseriesRing {
    pub fn new() -> TimeseriesRing {
        TimeseriesRing::default()
    }

    pub fn with_capacity(cap: usize) -> TimeseriesRing {
        TimeseriesRing {
            ring: Mutex::new(Ring::new(cap)),
        }
    }

    pub fn push(&self, sample: TsSample) {
        self.ring
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(sample);
    }

    /// Oldest-first snapshot of the retained ticks.
    pub fn snapshot(&self) -> Vec<TsSample> {
        self.ring
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .snapshot()
    }
}

// ---------------------------------------------------------------------------
// Slow-query log
// ---------------------------------------------------------------------------

/// Whether a statement of `latency_ns` crosses the slow-log `threshold_ns`
/// (0 disables the log; a latency exactly at the threshold logs).
#[inline]
pub fn should_log_slow(latency_ns: u64, threshold_ns: u64) -> bool {
    threshold_ns > 0 && latency_ns >= threshold_ns
}

#[derive(Debug)]
enum SlowSink {
    Off,
    Stderr,
    File(PathBuf),
}

/// Destination for slow-query JSON lines. Shared (`Arc`) across a server's
/// connections so `SET slow_query_log = ...` on one connection and the
/// `JOINSTUDY_SLOW_LOG` env default compose; the per-statement *threshold*
/// stays per session (`SET slow_query_ns = ...`).
#[derive(Debug)]
pub struct SlowLog {
    sink: Mutex<SlowSink>,
}

impl Default for SlowLog {
    fn default() -> SlowLog {
        SlowLog {
            sink: Mutex::new(SlowSink::Off),
        }
    }
}

impl SlowLog {
    pub fn new() -> SlowLog {
        SlowLog::default()
    }

    /// A slow log honoring `JOINSTUDY_SLOW_LOG` (`stderr`, or a file path;
    /// unset/empty means off).
    pub fn from_env() -> SlowLog {
        let log = SlowLog::new();
        if let Ok(v) = std::env::var("JOINSTUDY_SLOW_LOG") {
            log.set_target(&v);
        }
        log
    }

    /// Point the log at `target`: `off`/`` disables, `stderr` writes to
    /// standard error, anything else is a file path (append).
    pub fn set_target(&self, target: &str) {
        let sink = match target.trim() {
            "" | "off" => SlowSink::Off,
            "stderr" => SlowSink::Stderr,
            path => SlowSink::File(PathBuf::from(path)),
        };
        *self.sink.lock().unwrap_or_else(|e| e.into_inner()) = sink;
    }

    /// Human-readable description of the current sink.
    pub fn describe(&self) -> String {
        match &*self.sink.lock().unwrap_or_else(|e| e.into_inner()) {
            SlowSink::Off => "off".to_string(),
            SlowSink::Stderr => "stderr".to_string(),
            SlowSink::File(p) => p.display().to_string(),
        }
    }

    /// Whether any sink is configured (lets the execute path skip building
    /// the JSON line entirely).
    pub fn enabled(&self) -> bool {
        !matches!(
            &*self.sink.lock().unwrap_or_else(|e| e.into_inner()),
            SlowSink::Off
        )
    }

    /// Write one pre-rendered JSON line. Errors are swallowed: losing a
    /// slow-log line must never fail a query.
    pub fn emit(&self, line: &str) {
        let sink = self.sink.lock().unwrap_or_else(|e| e.into_inner());
        match &*sink {
            SlowSink::Off => {}
            SlowSink::Stderr => {
                let _ = writeln!(std::io::stderr(), "{line}");
            }
            SlowSink::File(path) => {
                if let Ok(mut f) = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
                {
                    let _ = writeln!(f, "{line}");
                }
            }
        }
    }
}

/// Everything one slow-query line carries; [`SlowEvent::to_json`] renders
/// the single-line JSON document.
#[derive(Debug, Clone)]
pub struct SlowEvent<'a> {
    pub ts_ms: u128,
    pub conn: u64,
    pub fingerprint: &'a str,
    pub sql: &'a str,
    pub ok: bool,
    pub latency_ns: u64,
    pub threshold_ns: u64,
    pub rows_out: u64,
    pub spill_bytes: u64,
    pub admission_wait_ns: u64,
    /// Worker CPU time the statement's morsels consumed (summed across
    /// workers, so it can exceed wall latency).
    pub cpu_ns: u64,
    /// Time spent blocked on spill-partition writes and read-backs.
    pub spill_io_ns: u64,
    pub granted_bytes: u64,
    pub degradations: u64,
    pub algos: &'a str,
    pub peak_bytes: u64,
}

impl SlowEvent<'_> {
    pub fn to_json(&self) -> String {
        format!(
            "{{\"ts_ms\":{},\"conn\":{},\"fingerprint\":{},\"latency_ns\":{},\
             \"threshold_ns\":{},\"ok\":{},\"rows_out\":{},\"spill_bytes\":{},\
             \"admission_wait_ns\":{},\"cpu_ns\":{},\"spill_io_ns\":{},\
             \"granted_bytes\":{},\"degradations\":{},\
             \"algos\":{},\"peak_bytes\":{},\"sql\":{}}}",
            self.ts_ms,
            self.conn,
            json_str(self.fingerprint),
            self.latency_ns,
            self.threshold_ns,
            self.ok,
            self.rows_out,
            self.spill_bytes,
            self.admission_wait_ns,
            self.cpu_ns,
            self.spill_io_ns,
            self.granted_bytes,
            self.degradations,
            json_str(self.algos),
            self.peak_bytes,
            json_str(self.sql),
        )
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---------------------------------------------------------------------------
// Prometheus-style text exposition
// ---------------------------------------------------------------------------

/// Sanitize a registry metric name into the exposition charset
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): dots and other foreign characters become
/// `_`, and a leading digit gets a `_` prefix.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else if ok {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Render `(name, value)` samples as Prometheus text exposition, each
/// sample prefixed `joinstudy_` with a `# TYPE ... gauge` comment.
/// Non-finite values are skipped (the exposition format has no place for
/// them that scrapers agree on).
pub fn render_exposition(samples: &[(String, f64)]) -> String {
    let mut out = String::new();
    for (name, value) in samples {
        if !value.is_finite() {
            continue;
        }
        let name = format!("joinstudy_{}", sanitize_metric_name(name));
        out.push_str(&format!("# TYPE {name} gauge\n"));
        if *value == value.trunc() && value.abs() < 1e15 {
            out.push_str(&format!("{name} {}\n", *value as i64));
        } else {
            out.push_str(&format!("{name} {value}\n"));
        }
    }
    out
}

/// Check a text exposition parses: every line is a comment or a
/// `name value` sample with a legal metric name and a float value.
/// Returns the number of samples.
pub fn validate_exposition(text: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, value) = line
            .split_once(' ')
            .ok_or_else(|| format!("line {}: no sample value: {line:?}", lineno + 1))?;
        let mut chars = name.chars();
        let head_ok = chars
            .next()
            .map(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
            .unwrap_or(false);
        if !head_ok || !chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':') {
            return Err(format!("line {}: bad metric name {name:?}", lineno + 1));
        }
        value
            .trim()
            .parse::<f64>()
            .map_err(|_| format!("line {}: bad sample value {value:?}", lineno + 1))?;
        samples += 1;
    }
    if samples == 0 {
        return Err("no samples in exposition".to_string());
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    // -- fingerprinting (satellite: normalization units) --------------------

    #[test]
    fn fingerprint_normalizes_literals_and_whitespace() {
        assert_eq!(
            fingerprint("SELECT  count(*)\n FROM r WHERE r.k = 42;"),
            "select count(*) from r where r.k = ?"
        );
        assert_eq!(
            fingerprint("select * from t where name = 'Alice' and d < '1998-09-02'"),
            "select * from t where name = ? and d < ?"
        );
        // Same shape, different literals -> same fingerprint.
        assert_eq!(
            fingerprint("SELECT a FROM t WHERE x = 1"),
            fingerprint("select a from t  where x = 999")
        );
    }

    #[test]
    fn fingerprint_keeps_identifiers_with_digits() {
        assert_eq!(
            fingerprint("SELECT c1, l_tax2 FROM t8 WHERE c1 = 3"),
            "select c1, l_tax2 from t8 where c1 = ?"
        );
    }

    #[test]
    fn fingerprint_collapses_in_and_values_lists() {
        assert_eq!(
            fingerprint("SELECT a FROM t WHERE x IN (1, 2, 3)"),
            "select a from t where x in (?)"
        );
        assert_eq!(
            fingerprint("SELECT a FROM t WHERE x IN (7)"),
            "select a from t where x in (?)"
        );
        assert_eq!(
            fingerprint("INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c')"),
            "insert into t values (?)"
        );
    }

    #[test]
    fn fingerprint_distinguishes_ddl_from_select() {
        let ddl = fingerprint("CREATE TABLE t (k BIGINT NOT NULL)");
        let sel = fingerprint("SELECT k FROM t");
        assert_ne!(ddl, sel);
        assert!(ddl.starts_with("create table t"));
    }

    #[test]
    fn fingerprint_escaped_quote_and_decimal() {
        assert_eq!(
            fingerprint("SELECT a FROM t WHERE s = 'it''s' AND f < 0.05"),
            "select a from t where s = ? and f < ?"
        );
    }

    // -- aggregates ---------------------------------------------------------

    fn rec(sql: &str, latency: u64) -> StatRecord<'_> {
        StatRecord {
            conn: 1,
            sql,
            ok: true,
            latency_ns: latency,
            rows_out: 10,
            spill_bytes: 0,
            admission_wait_ns: 5,
            granted_bytes: 100,
            degradations: 0,
            algo_mask: algo_bits::BHJ,
        }
    }

    #[test]
    fn statlog_folds_by_fingerprint() {
        let log = StatLog::new();
        log.record(&rec("SELECT a FROM t WHERE x = 1", 100));
        log.record(&rec("SELECT a FROM t WHERE x = 2", 300));
        log.record(&rec("SELECT b FROM u", 50));
        let stats = log.statements_snapshot();
        assert_eq!(stats.len(), 2);
        // Busiest (by total latency) first.
        assert_eq!(stats[0].fingerprint, "select a from t where x = ?");
        assert_eq!(stats[0].calls, 2);
        assert_eq!(stats[0].total_ns, 400);
        assert_eq!(stats[0].min_ns, 100);
        assert_eq!(stats[0].max_ns, 300);
        assert_eq!(stats[0].rows_out, 20);
        assert_eq!(stats[0].admission_wait_ns, 10);
        assert_eq!(stats[0].algos, "bhj");
        assert!(stats[0].p95_ns >= stats[0].p50_ns);
        assert_eq!(stats[1].calls, 1);
        assert_eq!(log.total_recorded(), 3);
    }

    #[test]
    fn statlog_counts_errors_and_min_defaults_to_zero_when_empty() {
        let log = StatLog::new();
        let mut r = rec("SELECT oops", 10);
        r.ok = false;
        log.record(&r);
        let stats = log.statements_snapshot();
        assert_eq!(stats[0].errors, 1);
        assert_eq!(stats[0].calls, 1);
    }

    #[test]
    fn recent_ring_is_bounded() {
        let log = StatLog::with_capacity(3);
        for i in 0..5 {
            log.record(&rec("SELECT a FROM t", 10 + i));
        }
        let recent = log.recent_snapshot();
        assert_eq!(recent.len(), 3);
        assert_eq!(recent[0].seq, 3, "oldest two rows evicted");
        assert_eq!(recent[2].seq, 5);
        assert_eq!(log.total_recorded(), 5);
    }

    #[test]
    fn recent_ring_stays_oldest_first_after_wrapping_full_capacity() {
        // Overflow the default 256-slot ring. After wrap-around the ring
        // head is in the middle of the slot array; an oldest-first scan
        // that started at slot 0 would splice the newest 40 rows in front
        // of the oldest — the exact bug this ring's head-based scan fixes.
        let log = StatLog::new();
        let total = RECENT_CAP as u64 + 40;
        for i in 0..total {
            log.record(&rec("SELECT a FROM t", 10 + i));
        }
        let recent = log.recent_snapshot();
        assert_eq!(recent.len(), RECENT_CAP);
        assert_eq!(recent[0].seq, 41, "oldest retained row after 40 evictions");
        assert_eq!(recent.last().unwrap().seq, total);
        for w in recent.windows(2) {
            assert!(
                w[0].seq < w[1].seq,
                "oldest-first must be monotone across the wrap point: {} then {}",
                w[0].seq,
                w[1].seq
            );
        }
        assert!(recent[0].ts_ms > 0, "rows carry an epoch timestamp");
    }

    #[test]
    fn active_registry_tracks_state_and_preserves_start() {
        let log = StatLog::new();
        log.active_upsert(7, "SELECT 1", "queued", 0, None);
        std::thread::sleep(std::time::Duration::from_millis(2));
        log.active_upsert(7, "SELECT 1", "running", 4096, None);
        let snap = log.active_snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].state, "running");
        assert_eq!(snap[0].granted_bytes, 4096);
        assert!(
            snap[0].elapsed_ns >= 2_000_000,
            "elapsed spans the queued phase: {}",
            snap[0].elapsed_ns
        );
        log.active_end(7);
        assert!(log.active_snapshot().is_empty());
    }

    #[test]
    fn active_detail_carries_context_across_state_flips() {
        let log = StatLog::new();
        let ctx = QueryContext::unbounded();
        log.active_upsert(3, "SELECT 1", "queued", 0, Some(&ctx));
        // The running upsert without a context keeps the attached one.
        log.active_upsert(3, "SELECT 1", "running", 64, None);
        let detail = log.active_detail();
        assert_eq!(detail.len(), 1);
        assert_eq!(detail[0].fingerprint, "select ?");
        assert_eq!(detail[0].state, "running");
        assert!(
            Arc::ptr_eq(detail[0].ctx.as_ref().unwrap(), &ctx),
            "sampler sees the statement's own context"
        );
    }

    // -- ASH / timeseries rings ---------------------------------------------

    fn ash(at_ms: u64) -> AshSample {
        AshSample {
            at_ms,
            conn: 1,
            query_id: at_ms,
            fingerprint: "select ?".to_string(),
            wait_state: "cpu_probe",
            pipeline: "probe".to_string(),
            rows: at_ms * 100,
            granted_bytes: 0,
        }
    }

    #[test]
    fn ash_ring_is_bounded_and_oldest_first() {
        let ring = AshRing::with_capacity(4);
        for i in 1..=10 {
            ring.push(ash(i));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 4);
        assert_eq!(snap[0].at_ms, 7, "oldest retained sample");
        assert_eq!(snap[3].at_ms, 10);
        assert_eq!(ring.total_samples(), 10, "evicted samples still counted");
    }

    #[test]
    fn timeseries_ring_is_bounded_and_oldest_first() {
        let ring = TimeseriesRing::with_capacity(3);
        for i in 1..=5 {
            ring.push(TsSample {
                at_ms: i,
                queue_depth: i,
                ..TsSample::default()
            });
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0].at_ms, 3);
        assert_eq!(snap[2].at_ms, 5);
        assert_eq!(snap[2].queue_depth, 5);
    }

    // -- slow log (satellite: threshold boundaries) -------------------------

    #[test]
    fn slow_threshold_boundaries() {
        assert!(!should_log_slow(999, 0), "threshold 0 disables");
        assert!(!should_log_slow(0, 0));
        assert!(!should_log_slow(999, 1000), "just under");
        assert!(should_log_slow(1000, 1000), "exactly at threshold logs");
        assert!(should_log_slow(1001, 1000));
        assert!(should_log_slow(u64::MAX, 1));
    }

    #[test]
    fn slow_event_renders_one_json_line() {
        let ev = SlowEvent {
            ts_ms: 1,
            conn: 2,
            fingerprint: "select ?",
            sql: "SELECT 'x\n'",
            ok: true,
            latency_ns: 5_000,
            threshold_ns: 1_000,
            rows_out: 3,
            spill_bytes: 0,
            admission_wait_ns: 10,
            cpu_ns: 4_000,
            spill_io_ns: 250,
            granted_bytes: 64,
            degradations: 0,
            algos: "-",
            peak_bytes: 128,
        };
        let line = ev.to_json();
        assert!(!line.contains('\n'), "must be a single line: {line}");
        assert!(line.contains("\"latency_ns\":5000"), "{line}");
        assert!(
            line.contains("\"admission_wait_ns\":10,\"cpu_ns\":4000,\"spill_io_ns\":250"),
            "wait-state breakdown rides along: {line}"
        );
        assert!(line.contains("\"sql\":\"SELECT 'x\\n'\""), "{line}");
        assert!(line.starts_with('{') && line.ends_with('}'));
    }

    #[test]
    fn slowlog_writes_to_file_and_describes_sinks() {
        let dir = std::env::temp_dir().join(format!("joinstudy_slowlog_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("slow.jsonl");
        let log = SlowLog::new();
        assert!(!log.enabled());
        assert_eq!(log.describe(), "off");
        log.set_target(path.to_str().unwrap());
        assert!(log.enabled());
        log.emit("{\"a\":1}");
        log.emit("{\"a\":2}");
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, "{\"a\":1}\n{\"a\":2}\n");
        log.set_target("off");
        assert!(!log.enabled());
        let _ = std::fs::remove_dir_all(&dir);
    }

    // -- exposition ---------------------------------------------------------

    #[test]
    fn exposition_sanitizes_and_validates() {
        assert_eq!(
            sanitize_metric_name("admission.wait_ns.p95"),
            "admission_wait_ns_p95"
        );
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        let samples = vec![
            ("pool.active_pipelines".to_string(), 3.0),
            ("spill.write_bytes".to_string(), 1.5e9),
            ("bad".to_string(), f64::NAN),
        ];
        let text = render_exposition(&samples);
        assert!(text.contains("# TYPE joinstudy_pool_active_pipelines gauge"));
        assert!(text.contains("joinstudy_pool_active_pipelines 3\n"));
        assert!(text.contains("joinstudy_spill_write_bytes 1500000000\n"));
        assert!(!text.contains("bad"), "non-finite values are skipped");
        assert_eq!(validate_exposition(&text), Ok(2));
    }

    #[test]
    fn exposition_empty_histogram_has_zero_quantiles_and_stays_valid() {
        // An idle server scrapes before any statement ran: every latency
        // histogram is empty, every quantile must render as a parseable 0
        // rather than NaN or a missing sample.
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(0.99), 0);
        for (_, v) in h.quantiles() {
            assert_eq!(v, 0, "zero-sample quantiles are 0");
        }
        let samples = vec![
            (
                "statements.latency_ns.p50".to_string(),
                h.quantile(0.5) as f64,
            ),
            (
                "statements.latency_ns.p99".to_string(),
                h.quantile(0.99) as f64,
            ),
        ];
        let text = render_exposition(&samples);
        assert!(
            text.contains("joinstudy_statements_latency_ns_p50 0\n"),
            "{text}"
        );
        assert_eq!(validate_exposition(&text), Ok(2));
    }

    #[test]
    fn exposition_sanitizes_fingerprints_with_braces_and_utf8() {
        // Fingerprints flow into metric names (per-statement gauges);
        // brace characters collide with Prometheus label syntax and
        // multi-byte characters are outside the charset — both must
        // flatten to `_`.
        let fp = fingerprint("SELECT 名前 FROM t{} WHERE tag = '{\"k\":1}' AND x = 42");
        assert!(fp.contains('{') && fp.contains('}'), "precondition: {fp}");
        assert!(!fp.is_ascii(), "precondition: {fp}");
        let name = sanitize_metric_name(&format!("stmt.{fp}.p99_ns"));
        assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "sanitized name stays in the exposition charset: {name}"
        );
        let text = render_exposition(&[(format!("stmt.{fp}.p99_ns"), 7.0)]);
        assert!(!text.contains('{') && !text.contains('}'), "{text}");
        assert_eq!(validate_exposition(&text), Ok(1));
        // Braces alone, as a scraper would inject via label syntax.
        let braced = sanitize_metric_name("q{instance=\"a\"}.count");
        assert!(
            !braced.contains('{') && !braced.contains('}') && !braced.contains('"'),
            "{braced}"
        );
    }

    #[test]
    fn validate_rejects_malformed_exposition() {
        assert!(validate_exposition("").is_err(), "no samples");
        assert!(validate_exposition("# only comments\n").is_err());
        assert!(validate_exposition("no-dashes-allowed 1\n").is_err());
        assert!(validate_exposition("name notanumber\n").is_err());
        assert!(validate_exposition("nameonly\n").is_err());
        assert_eq!(validate_exposition("ok_name 1.25\n"), Ok(1));
    }

    #[test]
    fn concurrent_recording_conserves_calls() {
        let log = Arc::new(StatLog::new());
        let threads = 8;
        let per = 50;
        std::thread::scope(|s| {
            for t in 0..threads {
                let log = Arc::clone(&log);
                s.spawn(move || {
                    for i in 0..per {
                        let sql = format!("SELECT a FROM t WHERE x = {}", t * per + i);
                        log.record(&rec(&sql, 10));
                    }
                });
            }
        });
        let stats = log.statements_snapshot();
        assert_eq!(stats.len(), 1, "all statements share one fingerprint");
        assert_eq!(stats[0].calls, (threads * per) as u64);
        assert_eq!(log.total_recorded(), (threads * per) as u64);
    }
}
