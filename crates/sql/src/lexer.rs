//! SQL tokenizer. Case-insensitive keywords, `'...'` string literals
//! (with `''` escaping), integer/decimal numbers, identifiers, and the
//! operator/punctuation set the supported grammar needs.

use std::fmt;

#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Unquoted identifier, lower-cased.
    Ident(String),
    /// Keyword (subset), upper-cased.
    Keyword(String),
    /// Integer literal.
    Int(i64),
    /// Decimal literal with its scale-2 cents value (e.g. `0.05` → 5).
    Dec(i64),
    /// String literal (quotes stripped, `''` unescaped).
    Str(String),
    // Punctuation / operators.
    Comma,
    LParen,
    RParen,
    Star,
    Plus,
    Minus,
    Slash,
    Dot,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Semicolon,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Keyword(s) => write!(f, "{s}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Dec(v) => write!(f, "{}.{:02}", v / 100, (v % 100).abs()),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Comma => write!(f, ","),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Star => write!(f, "*"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Slash => write!(f, "/"),
            Token::Dot => write!(f, "."),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::Semicolon => write!(f, ";"),
        }
    }
}

const KEYWORDS: &[&str] = &[
    "SELECT",
    "FROM",
    "WHERE",
    "GROUP",
    "ORDER",
    "BY",
    "LIMIT",
    "AS",
    "AND",
    "OR",
    "NOT",
    "BETWEEN",
    "IN",
    "LIKE",
    "CASE",
    "WHEN",
    "THEN",
    "ELSE",
    "END",
    "COUNT",
    "SUM",
    "AVG",
    "MIN",
    "MAX",
    "DISTINCT",
    "EXTRACT",
    "YEAR",
    "SUBSTRING",
    "DATE",
    "CREATE",
    "SET",
    "TABLE",
    "INSERT",
    "INTO",
    "VALUES",
    "NULL",
    "BIGINT",
    "INT",
    "INTEGER",
    "DOUBLE",
    "DECIMAL",
    "VARCHAR",
    "TEXT",
    "BOOLEAN",
    "ASC",
    "DESC",
    "TRUE",
    "FALSE",
    "EXPLAIN",
    "ANALYZE",
];

/// Tokenize a statement. Errors carry a byte position.
pub fn tokenize(sql: &str) -> Result<Vec<Token>, String> {
    let bytes = sql.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '-' => {
                // `--` line comment.
                if bytes.get(i + 1) == Some(&b'-') {
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                } else {
                    out.push(Token::Minus);
                    i += 1;
                }
            }
            '/' => {
                out.push(Token::Slash);
                i += 1;
            }
            '.' => {
                out.push(Token::Dot);
                i += 1;
            }
            ';' => {
                out.push(Token::Semicolon);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Le);
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    return Err(format!("unexpected '!' at byte {i}"));
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => return Err("unterminated string literal".into()),
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                out.push(Token::Str(s));
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)
                {
                    // Decimal literal: up to 2 fractional digits honored.
                    let whole: i64 = sql[start..i].parse().map_err(|e| format!("{e}"))?;
                    i += 1;
                    let fstart = i;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let frac = &sql[fstart..i];
                    let cents: i64 = match frac.len() {
                        0 => 0,
                        1 => frac.parse::<i64>().unwrap() * 10,
                        _ => frac[..2].parse::<i64>().unwrap(),
                    };
                    out.push(Token::Dec(whole * 100 + cents));
                } else {
                    let v: i64 = sql[start..i].parse().map_err(|e| format!("{e}"))?;
                    out.push(Token::Int(v));
                }
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &sql[start..i];
                let upper = word.to_ascii_uppercase();
                if KEYWORDS.contains(&upper.as_str()) {
                    out.push(Token::Keyword(upper));
                } else {
                    out.push(Token::Ident(word.to_ascii_lowercase()));
                }
            }
            other => return Err(format!("unexpected character {other:?} at byte {i}")),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_the_papers_count_query() {
        let toks = tokenize("SELECT count(*) FROM probe r, build s WHERE r.k = s.k;").unwrap();
        assert_eq!(toks[0], Token::Keyword("SELECT".into()));
        assert_eq!(toks[1], Token::Keyword("COUNT".into()));
        assert!(toks.contains(&Token::Star));
        assert!(toks.contains(&Token::Ident("probe".into())));
        assert_eq!(*toks.last().unwrap(), Token::Semicolon);
    }

    #[test]
    fn numbers_and_decimals() {
        assert_eq!(tokenize("42").unwrap(), vec![Token::Int(42)]);
        assert_eq!(tokenize("0.05").unwrap(), vec![Token::Dec(5)]);
        assert_eq!(tokenize("12.3").unwrap(), vec![Token::Dec(1230)]);
        assert_eq!(tokenize("12.345").unwrap(), vec![Token::Dec(1234)]);
    }

    #[test]
    fn strings_with_escapes_and_comments() {
        assert_eq!(
            tokenize("'BRAND''S' -- trailing comment\n42").unwrap(),
            vec![Token::Str("BRAND'S".into()), Token::Int(42)]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            tokenize("a <= b <> c >= d != e").unwrap(),
            vec![
                Token::Ident("a".into()),
                Token::Le,
                Token::Ident("b".into()),
                Token::Ne,
                Token::Ident("c".into()),
                Token::Ge,
                Token::Ident("d".into()),
                Token::Ne,
                Token::Ident("e".into()),
            ]
        );
    }

    #[test]
    fn keywords_case_insensitive_idents_lowercased() {
        let toks = tokenize("select MyCol from T").unwrap();
        assert_eq!(toks[0], Token::Keyword("SELECT".into()));
        assert_eq!(toks[1], Token::Ident("mycol".into()));
        assert_eq!(toks[3], Token::Ident("t".into()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize("SELECT @x").is_err());
        assert!(tokenize("'unterminated").is_err());
    }
}
