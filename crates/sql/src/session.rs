//! The SQL session: a catalog of registered tables plus an engine.

use crate::ast::{Literal, Statement};
use crate::parser::parse;
use crate::planner::plan_select;
use joinstudy_core::{Engine, JoinAlgo};
use joinstudy_storage::table::{Field, Schema, Table, TableBuilder};
use joinstudy_storage::types::{DataType, Decimal, Value};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Anything that can go wrong between SQL text and a result table.
#[derive(Debug)]
pub struct SqlError(pub String);

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SQL error: {}", self.0)
    }
}

impl std::error::Error for SqlError {}

impl From<String> for SqlError {
    fn from(s: String) -> SqlError {
        SqlError(s)
    }
}

/// A SQL session over the join-study engine.
pub struct Session {
    catalog: HashMap<String, Arc<Table>>,
    engine: Engine,
    algo: JoinAlgo,
}

impl Session {
    pub fn new(threads: usize) -> Session {
        Session {
            catalog: HashMap::new(),
            engine: Engine::new(threads),
            algo: JoinAlgo::Bhj,
        }
    }

    /// Select the join implementation every planned join uses (the paper's
    /// drop-in replacement switch).
    pub fn set_join_algo(&mut self, algo: JoinAlgo) {
        self.algo = algo;
    }

    /// Replace the engine (thread count, radix configuration, ...).
    pub fn set_engine(&mut self, engine: Engine) {
        self.engine = engine;
    }

    /// Register an existing table (e.g. a generated TPC-H relation).
    pub fn register(&mut self, name: impl Into<String>, table: Arc<Table>) {
        self.catalog.insert(name.into().to_ascii_lowercase(), table);
    }

    /// A registered table, if present.
    pub fn table(&self, name: &str) -> Option<&Arc<Table>> {
        self.catalog.get(&name.to_ascii_lowercase())
    }

    /// Parse and execute one statement. DDL/DML return an empty table.
    pub fn execute(&mut self, sql: &str) -> Result<Table, SqlError> {
        match parse(sql)? {
            Statement::Select(select) => {
                let plan = plan_select(&select, &self.catalog, self.algo)?;
                Ok(self.engine.execute(&plan))
            }
            Statement::CreateTable { name, columns } => {
                if self.catalog.contains_key(&name) {
                    return Err(SqlError(format!("table {name:?} already exists")));
                }
                let schema = Schema::new(
                    columns
                        .iter()
                        .map(|c| Field::new(c.name.clone(), c.dtype))
                        .collect(),
                );
                self.catalog
                    .insert(name, Arc::new(Table::empty(schema.clone())));
                Ok(Table::empty(schema))
            }
            Statement::Insert { table, rows } => {
                let existing = self
                    .catalog
                    .get(&table)
                    .ok_or_else(|| SqlError(format!("unknown table {table:?}")))?;
                let schema = existing.schema().clone();
                let mut b =
                    TableBuilder::with_capacity(schema.clone(), existing.num_rows() + rows.len());
                for r in 0..existing.num_rows() {
                    b.push_row(&existing.row(r));
                }
                for row in &rows {
                    if row.len() != schema.len() {
                        return Err(SqlError(format!(
                            "INSERT arity {} does not match table {} ({} columns)",
                            row.len(),
                            table,
                            schema.len()
                        )));
                    }
                    let values: Vec<Value> = row
                        .iter()
                        .zip(&schema.fields)
                        .map(|(lit, f)| coerce_insert(lit, f.dtype))
                        .collect::<Result<_, String>>()?;
                    b.push_row(&values);
                }
                self.catalog.insert(table, Arc::new(b.finish()));
                Ok(Table::empty(schema))
            }
        }
    }

    /// Plan a SELECT and render its operator tree (EXPLAIN).
    pub fn explain(&self, sql: &str) -> Result<String, SqlError> {
        match parse(sql)? {
            Statement::Select(select) => {
                let plan = plan_select(&select, &self.catalog, self.algo)?;
                Ok(plan.explain())
            }
            _ => Err(SqlError("EXPLAIN supports SELECT statements".into())),
        }
    }
}

fn coerce_insert(lit: &Literal, dtype: DataType) -> Result<Value, String> {
    Ok(match (lit, dtype) {
        (Literal::Null, _) => Value::Null,
        (Literal::Int(v), DataType::Int64) => Value::Int64(*v),
        (Literal::Int(v), DataType::Int32) => {
            Value::Int32(i32::try_from(*v).map_err(|_| format!("{v} out of INT range"))?)
        }
        (Literal::Int(v), DataType::Decimal) => Value::Decimal(Decimal::from_int(*v)),
        (Literal::Int(v), DataType::Float64) => Value::Float64(*v as f64),
        (Literal::Decimal(d), DataType::Decimal) => Value::Decimal(*d),
        (Literal::Decimal(d), DataType::Float64) => Value::Float64(d.to_f64()),
        (Literal::Str(s), DataType::Str) => Value::Str(s.clone()),
        (Literal::Date(d), DataType::Date) => Value::Date(*d),
        (Literal::Str(s), DataType::Date) => Value::Date(crate::parser::parse_date(s)?),
        (Literal::Bool(b), DataType::Bool) => Value::Bool(*b),
        (l, t) => return Err(format!("cannot insert {l:?} into {t} column")),
    })
}
