//! The SQL session: a catalog of registered tables plus an engine.
//!
//! # Telemetry
//!
//! Every statement a session executes — queries, DDL, even statements that
//! fail to parse — is recorded into the session's [`StatLog`]
//! (fingerprinted aggregates + recent-query ring) and, above the
//! `slow_query_ns` threshold, into the shared [`SlowLog`]. The log also
//! backs the `jsys.*` virtual system tables: a SELECT whose FROM names a
//! `jsys.`-prefixed table gets that table materialized from live telemetry
//! at plan time, so plain SQL (`SELECT * FROM jsys.statements`) works
//! against serving state.

use crate::ast::{Literal, Select, Statement};
use crate::parser::parse;
use crate::planner::plan_select;
use crate::stats::{
    should_log_slow, AshRing, SlowEvent, SlowLog, StatLog, StatRecord, TimeseriesRing,
};
use joinstudy_core::{Engine, JoinAlgo};
use joinstudy_exec::admission::AdmissionController;
use joinstudy_exec::context::{algo_bits, QueryContext};
use joinstudy_exec::error::ExecError;
use joinstudy_exec::profile::QueryProfile;
use joinstudy_exec::registry;
use joinstudy_exec::trace::QueryTrace;
use joinstudy_storage::table::{Field, Schema, Table, TableBuilder};
use joinstudy_storage::types::{DataType, Decimal, Value};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Anything that can go wrong between SQL text and a result table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlError {
    /// The statement did not lex or parse.
    Parse(String),
    /// The statement parsed but could not be planned or applied to the
    /// catalog (unknown tables or columns, arity mismatches, ...).
    Plan(String),
    /// The engine failed mid-execution (worker panic, operator failure).
    Exec(ExecError),
    /// The query was cancelled via the session's [`QueryContext`].
    Cancelled,
    /// The session's statement timeout elapsed.
    Timeout {
        /// The configured time budget, in milliseconds.
        budget_ms: u64,
    },
    /// The session's memory budget could not hold a materialization and no
    /// degraded execution strategy applied.
    BudgetExceeded {
        requested: usize,
        in_use: usize,
        budget: usize,
        /// Execution phase that issued the failed reservation.
        phase: &'static str,
    },
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Parse(m) | SqlError::Plan(m) => write!(f, "SQL error: {m}"),
            SqlError::Exec(e) => write!(f, "SQL error: {e}"),
            SqlError::Cancelled => write!(f, "SQL error: {}", ExecError::Cancelled),
            SqlError::Timeout { budget_ms } => {
                write!(
                    f,
                    "SQL error: {}",
                    ExecError::Timeout {
                        budget_ms: *budget_ms
                    }
                )
            }
            SqlError::BudgetExceeded {
                requested,
                in_use,
                budget,
                phase,
            } => write!(
                f,
                "SQL error: {}",
                ExecError::BudgetExceeded {
                    requested: *requested,
                    in_use: *in_use,
                    budget: *budget,
                    phase,
                }
            ),
        }
    }
}

impl std::error::Error for SqlError {}

/// Parser and planner report plain strings; both surface as planning-stage
/// failures unless mapped explicitly (parse errors are tagged in
/// [`Session::execute`]).
impl From<String> for SqlError {
    fn from(s: String) -> SqlError {
        SqlError::Plan(s)
    }
}

/// Resource-limit failures keep their own variants so callers can react
/// (retry with a bigger budget, report a timeout) without string matching.
impl From<ExecError> for SqlError {
    fn from(e: ExecError) -> SqlError {
        match e {
            ExecError::Cancelled => SqlError::Cancelled,
            ExecError::Timeout { budget_ms } => SqlError::Timeout { budget_ms },
            ExecError::BudgetExceeded {
                requested,
                in_use,
                budget,
                phase,
            } => SqlError::BudgetExceeded {
                requested,
                in_use,
                budget,
                phase,
            },
            other => SqlError::Exec(other),
        }
    }
}

/// A SQL session over the join-study engine.
pub struct Session {
    catalog: HashMap<String, Arc<Table>>,
    engine: Engine,
    algo: JoinAlgo,
    /// Statement statistics; a server shares one log across all
    /// connections, an embedded session gets its own.
    statlog: Arc<StatLog>,
    /// Slow-query sink (shared like the statlog).
    slowlog: Arc<SlowLog>,
    /// Slow-query threshold in nanoseconds; 0 disables.
    slow_query_ns: u64,
    /// Connection id stamped on telemetry rows (0 for embedded sessions).
    conn_id: u64,
    /// The server's admission controller, for `jsys.pool` gauges.
    admission: Option<Arc<AdmissionController>>,
    /// The server's active-session-history ring, for `jsys.ash` (`None`
    /// for embedded sessions, which have no sampler — the table is then
    /// empty rather than an error).
    ash: Option<Arc<AshRing>>,
    /// The server's 1-second gauge ring, for `jsys.timeseries`.
    timeseries: Option<Arc<TimeseriesRing>>,
}

impl Session {
    pub fn new(threads: usize) -> Session {
        let slow_query_ns = std::env::var("JOINSTUDY_SLOW_QUERY_NS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(0);
        Session {
            catalog: HashMap::new(),
            engine: Engine::new(threads),
            // The engine answers the join question itself by default; the
            // static algorithms stay one `SET join_algo = ...` away (the
            // paper's drop-in replacement switch).
            algo: JoinAlgo::Adaptive,
            statlog: Arc::new(StatLog::new()),
            slowlog: Arc::new(SlowLog::from_env()),
            slow_query_ns,
            conn_id: 0,
            admission: None,
            ash: None,
            timeseries: None,
        }
    }

    /// Select the join implementation every planned join uses (the paper's
    /// drop-in replacement switch). [`JoinAlgo::Adaptive`] — the default —
    /// lets the calibrated cost model pick per join node.
    pub fn set_join_algo(&mut self, algo: JoinAlgo) {
        self.algo = algo;
    }

    /// The session's current join-algorithm setting.
    pub fn join_algo(&self) -> JoinAlgo {
        self.algo
    }

    /// Replace the engine (thread count, radix configuration, ...). The new
    /// engine brings its own [`QueryContext`]; any timeout or budget set on
    /// the old one no longer applies.
    pub fn set_engine(&mut self, engine: Engine) {
        self.engine = engine;
    }

    /// The session's query context: share it with another thread to cancel
    /// a running statement.
    pub fn context(&self) -> Arc<QueryContext> {
        Arc::clone(&self.engine.ctx)
    }

    /// Route this session's pipelines through a shared worker pool
    /// (`None` restores a private per-query worker team). Used by the
    /// server so all connections share one process-wide team; the
    /// session's thread count follows the pool's.
    pub fn set_worker_pool(&mut self, pool: Option<Arc<joinstudy_exec::pool::WorkerPool>>) {
        self.engine.set_worker_pool(pool);
    }

    /// Per-statement wall-clock timeout (`None` disables).
    pub fn set_timeout(&mut self, timeout: Option<Duration>) {
        self.engine.ctx.set_timeout(timeout);
    }

    /// Per-statement memory budget in bytes (`None` disables). Joins that
    /// cannot partition within the budget degrade to the non-partitioned
    /// hash join before this surfaces as [`SqlError::BudgetExceeded`].
    pub fn set_memory_budget(&mut self, bytes: Option<usize>) {
        self.engine.ctx.set_memory_budget(bytes);
    }

    /// Enable or disable per-operator profiling for subsequent statements.
    /// While enabled, every executed SELECT records a [`QueryProfile`]
    /// retrievable with [`Session::take_profile`].
    pub fn set_profiling(&mut self, on: bool) {
        self.engine.ctx.set_profiling(on);
    }

    /// The profile of the most recent profiled statement, if any. Draining:
    /// a second call returns `None` until another profiled statement runs.
    /// After a failed profiled statement this yields the *partial* profile
    /// of the pipelines that completed before the error.
    pub fn take_profile(&self) -> Option<QueryProfile> {
        self.engine.take_profile()
    }

    /// Enable or disable worker-timeline tracing for subsequent statements.
    /// While enabled, every executed SELECT records a [`QueryTrace`]
    /// retrievable with [`Session::take_trace`] and exportable as
    /// Chrome/Perfetto `trace_event` JSON.
    pub fn set_tracing(&mut self, on: bool) {
        self.engine.ctx.set_tracing(on);
    }

    /// The worker-timeline trace of the most recent traced statement, if
    /// any. Draining, like [`Session::take_profile`].
    pub fn take_trace(&self) -> Option<QueryTrace> {
        self.engine.take_trace()
    }

    /// Enable or disable hardware PMU counter sampling for subsequent
    /// statements. While enabled (and where `perf_event_open` is permitted),
    /// worker threads sample cycle/cache/TLB counters per pipeline, EXPLAIN
    /// ANALYZE shows per-operator counter deltas, and traces carry counter
    /// tracks. Where the PMU is unavailable this is a harmless no-op:
    /// results and output are identical to counters-off.
    pub fn set_counters(&mut self, on: bool) {
        self.engine.ctx.set_counters(on);
        joinstudy_exec::pmu::set_enabled(on);
    }

    /// Share a statement-statistics log (the server passes one log to
    /// every connection's session, making `jsys.statements` server-wide).
    pub fn set_statlog(&mut self, log: Arc<StatLog>) {
        self.statlog = log;
    }

    /// This session's statement-statistics log.
    pub fn statlog(&self) -> Arc<StatLog> {
        Arc::clone(&self.statlog)
    }

    /// Share a slow-query sink (server-wide, like the statlog).
    pub fn set_slowlog(&mut self, log: Arc<SlowLog>) {
        self.slowlog = log;
    }

    /// This session's slow-query sink.
    pub fn slowlog(&self) -> Arc<SlowLog> {
        Arc::clone(&self.slowlog)
    }

    /// Slow-query threshold in nanoseconds (0 disables). Also settable in
    /// SQL: `SET slow_query_ns = 1000000`.
    pub fn set_slow_query_ns(&mut self, ns: u64) {
        self.slow_query_ns = ns;
    }

    /// The current slow-query threshold in nanoseconds.
    pub fn slow_query_ns(&self) -> u64 {
        self.slow_query_ns
    }

    /// Stamp telemetry rows from this session with a connection id. Also
    /// stamped on the engine's [`QueryContext`] so ASH samples taken from
    /// executor state carry the same id.
    pub fn set_conn_id(&mut self, conn: u64) {
        self.conn_id = conn;
        self.engine.ctx.set_conn_id(conn);
    }

    /// The connection id stamped on this session's telemetry rows.
    pub fn conn_id(&self) -> u64 {
        self.conn_id
    }

    /// Give the session a view of the server's admission controller so
    /// `jsys.pool` can report pool-wide memory gauges.
    pub fn set_admission(&mut self, admission: Option<Arc<AdmissionController>>) {
        self.admission = admission;
    }

    /// Share the server's active-session-history ring so `jsys.ash`
    /// answers on this session.
    pub fn set_ash(&mut self, ash: Option<Arc<AshRing>>) {
        self.ash = ash;
    }

    /// Share the server's gauge time-series ring so `jsys.timeseries`
    /// answers on this session.
    pub fn set_timeseries(&mut self, ts: Option<Arc<TimeseriesRing>>) {
        self.timeseries = ts;
    }

    /// Register an existing table (e.g. a generated TPC-H relation).
    pub fn register(&mut self, name: impl Into<String>, table: Arc<Table>) {
        self.catalog.insert(name.into().to_ascii_lowercase(), table);
    }

    /// A registered table, if present.
    pub fn table(&self, name: &str) -> Option<&Arc<Table>> {
        self.catalog.get(&name.to_ascii_lowercase())
    }

    /// Parse and execute one statement. DDL/DML return an empty table.
    ///
    /// Every call — including parse failures — lands in the session's
    /// [`StatLog`] and, past the `slow_query_ns` threshold, the
    /// [`SlowLog`].
    pub fn execute(&mut self, sql: &str) -> Result<Table, SqlError> {
        let started = Instant::now();
        self.statlog.active_upsert(
            self.conn_id,
            sql,
            "running",
            self.engine.ctx.admission_granted(),
            Some(&self.engine.ctx),
        );
        let (result, is_query) = match parse(sql).map_err(SqlError::Parse) {
            Ok(stmt) => {
                // Only queries arm the engine context; SET/DDL would read
                // stale spill/degradation counters from the previous query.
                let is_query = matches!(
                    stmt,
                    Statement::Select(_) | Statement::Explain { analyze: true, .. }
                );
                (self.execute_stmt(stmt), is_query)
            }
            Err(e) => (Err(e), false),
        };
        self.finish_statement(sql, started, is_query, &result);
        result
    }

    fn execute_stmt(&mut self, stmt: Statement) -> Result<Table, SqlError> {
        match stmt {
            Statement::Select(select) => {
                let jsys = self.catalog_for(&select)?;
                let catalog = jsys.as_ref().unwrap_or(&self.catalog);
                let plan = plan_select(&select, catalog, self.algo)?;
                Ok(self.engine.execute(&plan)?)
            }
            Statement::Explain { analyze, select } => {
                let jsys = self.catalog_for(&select)?;
                let catalog = jsys.as_ref().unwrap_or(&self.catalog);
                let plan = plan_select(&select, catalog, self.algo)?;
                let text = if analyze {
                    let (_, profile) = self.engine.execute_profiled(&plan)?;
                    profile.render()
                } else {
                    plan.explain()
                };
                Ok(text_table(&text))
            }
            Statement::CreateTable { name, columns } => {
                if self.catalog.contains_key(&name) {
                    return Err(SqlError::Plan(format!("table {name:?} already exists")));
                }
                let schema = Schema::new(
                    columns
                        .iter()
                        .map(|c| Field::new(c.name.clone(), c.dtype))
                        .collect(),
                );
                self.catalog
                    .insert(name, Arc::new(Table::empty(schema.clone())));
                Ok(Table::empty(schema))
            }
            Statement::Insert { table, rows } => {
                let existing = self
                    .catalog
                    .get(&table)
                    .ok_or_else(|| SqlError::Plan(format!("unknown table {table:?}")))?;
                let schema = existing.schema().clone();
                let mut b =
                    TableBuilder::with_capacity(schema.clone(), existing.num_rows() + rows.len());
                for r in 0..existing.num_rows() {
                    b.push_row(&existing.row(r));
                }
                for row in &rows {
                    if row.len() != schema.len() {
                        return Err(SqlError::Plan(format!(
                            "INSERT arity {} does not match table {} ({} columns)",
                            row.len(),
                            table,
                            schema.len()
                        )));
                    }
                    let values: Vec<Value> = row
                        .iter()
                        .zip(&schema.fields)
                        .map(|(lit, f)| coerce_insert(lit, f.dtype))
                        .collect::<Result<_, String>>()?;
                    b.push_row(&values);
                }
                self.catalog.insert(table, Arc::new(b.finish()));
                Ok(Table::empty(schema))
            }
            Statement::Set { name, value } => {
                match name.as_str() {
                    "join_algo" => {
                        let algo = match value.to_ascii_lowercase().as_str() {
                            "bhj" => JoinAlgo::Bhj,
                            "rj" => JoinAlgo::Rj,
                            "brj" => JoinAlgo::Brj,
                            "adaptive" => JoinAlgo::Adaptive,
                            "hybrid" | "hhj" => JoinAlgo::Hybrid,
                            other => {
                                return Err(SqlError::Plan(format!(
                                    "unknown join_algo {other:?} (expected bhj, rj, brj, \
                                     adaptive, or hybrid)"
                                )))
                            }
                        };
                        self.set_join_algo(algo);
                    }
                    "spill_dir" => {
                        // `default` (or an empty string) reverts to the
                        // engine's temp-directory fallback.
                        let dir = match value.as_str() {
                            "" | "default" => None,
                            path => Some(std::path::PathBuf::from(path)),
                        };
                        self.engine.ctx.set_spill_dir(dir);
                    }
                    "slow_query_ns" => {
                        let ns = value.trim().parse::<u64>().map_err(|_| {
                            SqlError::Plan(format!(
                                "slow_query_ns expects a non-negative integer of \
                                 nanoseconds, got {value:?}"
                            ))
                        })?;
                        self.slow_query_ns = ns;
                    }
                    "slow_query_log" => {
                        // `off`, `stderr`, or a file path (appended to).
                        self.slowlog.set_target(&value);
                    }
                    other => {
                        return Err(SqlError::Plan(format!(
                            "unknown session variable {other:?} (expected join_algo, \
                             spill_dir, slow_query_ns, or slow_query_log)"
                        )))
                    }
                }
                Ok(text_table(&format!("SET {name} = {value}")))
            }
        }
    }

    /// Close out one statement: drop it from the active registry, fold it
    /// into the statement statistics, and emit a slow-query line when it
    /// crossed the threshold. Engine-context readings (spill, admission,
    /// degradations, join shapes) are taken only from statements that armed
    /// the context — SET/DDL never execute through the engine, and a query
    /// that failed at parse/plan time never reached `arm()`, so in both
    /// cases the counters still describe the previous query.
    fn finish_statement(
        &self,
        sql: &str,
        started: Instant,
        is_query: bool,
        result: &Result<Table, SqlError>,
    ) {
        self.statlog.active_end(self.conn_id);
        let latency_ns = started.elapsed().as_nanos() as u64;
        let ctx = &self.engine.ctx;
        let armed = is_query && !matches!(result, Err(SqlError::Parse(_)) | Err(SqlError::Plan(_)));
        let (spill_bytes, admission_wait_ns, granted_bytes, degradations, algo_mask, peak_bytes) =
            if armed {
                (
                    ctx.spill_write_bytes(),
                    ctx.admission_wait_ns(),
                    ctx.admission_granted(),
                    ctx.degradations(),
                    ctx.join_algos(),
                    ctx.high_water() as u64,
                )
            } else {
                (0, 0, 0, 0, 0, 0)
            };
        let (cpu_ns, spill_io_ns) = if armed {
            (ctx.cpu_ns(), ctx.spill_io_ns())
        } else {
            (0, 0)
        };
        let rows_out = match result {
            Ok(t) => t.num_rows() as u64,
            Err(_) => 0,
        };
        let fingerprint = self.statlog.record(&StatRecord {
            conn: self.conn_id,
            sql,
            ok: result.is_ok(),
            latency_ns,
            rows_out,
            spill_bytes,
            admission_wait_ns,
            granted_bytes,
            degradations,
            algo_mask,
        });
        if should_log_slow(latency_ns, self.slow_query_ns) && self.slowlog.enabled() {
            let ts_ms = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_millis())
                .unwrap_or(0);
            let algos = algo_bits::label(algo_mask);
            self.slowlog.emit(
                &SlowEvent {
                    ts_ms,
                    conn: self.conn_id,
                    fingerprint: &fingerprint,
                    sql,
                    ok: result.is_ok(),
                    latency_ns,
                    threshold_ns: self.slow_query_ns,
                    rows_out,
                    spill_bytes,
                    admission_wait_ns,
                    cpu_ns,
                    spill_io_ns,
                    granted_bytes,
                    degradations,
                    algos: &algos,
                    peak_bytes,
                }
                .to_json(),
            );
        }
    }

    /// The catalog a SELECT should plan against: `None` (plan against the
    /// session catalog) unless the FROM clause names `jsys.*` system tables,
    /// in which case a copy of the catalog (cheap: `Arc` clones) is extended
    /// with those tables materialized from live telemetry. Materializing
    /// *before* planning means a `jsys.statements` query observes the state
    /// prior to its own recording — counts stay exact.
    fn catalog_for(
        &self,
        select: &Select,
    ) -> Result<Option<HashMap<String, Arc<Table>>>, SqlError> {
        if !select.from.iter().any(|t| t.table.starts_with("jsys.")) {
            return Ok(None);
        }
        let mut catalog = self.catalog.clone();
        for t in &select.from {
            if t.table.starts_with("jsys.") {
                catalog.insert(t.table.clone(), Arc::new(self.system_table(&t.table)?));
            }
        }
        Ok(Some(catalog))
    }

    /// Materialize one `jsys.*` virtual table from current telemetry.
    fn system_table(&self, name: &str) -> Result<Table, SqlError> {
        match name {
            "jsys.statements" => Ok(self.jsys_statements()),
            "jsys.recent_queries" => Ok(self.jsys_recent_queries()),
            "jsys.active_queries" => Ok(self.jsys_active_queries()),
            "jsys.metrics" => Ok(self.jsys_metrics()),
            "jsys.pool" => Ok(self.jsys_pool()),
            "jsys.ash" => Ok(self.jsys_ash()),
            "jsys.query_progress" => Ok(self.jsys_query_progress()),
            "jsys.timeseries" => Ok(self.jsys_timeseries()),
            other => Err(SqlError::Plan(format!(
                "unknown system table {other:?} (expected jsys.statements, \
                 jsys.recent_queries, jsys.active_queries, jsys.metrics, jsys.pool, \
                 jsys.ash, jsys.query_progress, or jsys.timeseries)"
            ))),
        }
    }

    fn jsys_statements(&self) -> Table {
        let schema = Schema::new(vec![
            Field::new("fingerprint", DataType::Str),
            Field::new("calls", DataType::Int64),
            Field::new("errors", DataType::Int64),
            Field::new("total_ns", DataType::Int64),
            Field::new("min_ns", DataType::Int64),
            Field::new("max_ns", DataType::Int64),
            Field::new("p50_ns", DataType::Int64),
            Field::new("p95_ns", DataType::Int64),
            Field::new("p99_ns", DataType::Int64),
            Field::new("rows_out", DataType::Int64),
            Field::new("spill_bytes", DataType::Int64),
            Field::new("admission_wait_ns", DataType::Int64),
            Field::new("granted_bytes", DataType::Int64),
            Field::new("degradations", DataType::Int64),
            Field::new("algos", DataType::Str),
        ]);
        let stats = self.statlog.statements_snapshot();
        let mut b = TableBuilder::with_capacity(schema, stats.len());
        for s in stats {
            b.push_row(&[
                Value::Str(s.fingerprint),
                Value::Int64(s.calls as i64),
                Value::Int64(s.errors as i64),
                Value::Int64(s.total_ns as i64),
                Value::Int64(s.min_ns as i64),
                Value::Int64(s.max_ns as i64),
                Value::Int64(s.p50_ns as i64),
                Value::Int64(s.p95_ns as i64),
                Value::Int64(s.p99_ns as i64),
                Value::Int64(s.rows_out as i64),
                Value::Int64(s.spill_bytes as i64),
                Value::Int64(s.admission_wait_ns as i64),
                Value::Int64(s.granted_bytes as i64),
                Value::Int64(s.degradations as i64),
                Value::Str(s.algos),
            ]);
        }
        b.finish()
    }

    fn jsys_recent_queries(&self) -> Table {
        let schema = Schema::new(vec![
            Field::new("seq", DataType::Int64),
            Field::new("ts_ms", DataType::Int64),
            Field::new("conn", DataType::Int64),
            Field::new("sql", DataType::Str),
            Field::new("fingerprint", DataType::Str),
            Field::new("ok", DataType::Bool),
            Field::new("latency_ns", DataType::Int64),
            Field::new("rows_out", DataType::Int64),
            Field::new("spill_bytes", DataType::Int64),
            Field::new("admission_wait_ns", DataType::Int64),
            Field::new("granted_bytes", DataType::Int64),
        ]);
        let recent = self.statlog.recent_snapshot();
        let mut b = TableBuilder::with_capacity(schema, recent.len());
        for q in recent {
            b.push_row(&[
                Value::Int64(q.seq as i64),
                Value::Int64(q.ts_ms as i64),
                Value::Int64(q.conn as i64),
                Value::Str(q.sql),
                Value::Str(q.fingerprint),
                Value::Bool(q.ok),
                Value::Int64(q.latency_ns as i64),
                Value::Int64(q.rows_out as i64),
                Value::Int64(q.spill_bytes as i64),
                Value::Int64(q.admission_wait_ns as i64),
                Value::Int64(q.granted_bytes as i64),
            ]);
        }
        b.finish()
    }

    fn jsys_active_queries(&self) -> Table {
        let schema = Schema::new(vec![
            Field::new("conn", DataType::Int64),
            Field::new("state", DataType::Str),
            Field::new("sql", DataType::Str),
            Field::new("elapsed_ns", DataType::Int64),
            Field::new("granted_bytes", DataType::Int64),
        ]);
        let active = self.statlog.active_snapshot();
        let mut b = TableBuilder::with_capacity(schema, active.len());
        for q in active {
            b.push_row(&[
                Value::Int64(q.conn as i64),
                Value::Str(q.state.to_string()),
                Value::Str(q.sql),
                Value::Int64(q.elapsed_ns as i64),
                Value::Int64(q.granted_bytes as i64),
            ]);
        }
        b.finish()
    }

    fn jsys_metrics(&self) -> Table {
        let schema = Schema::new(vec![
            Field::new("name", DataType::Str),
            Field::new("value", DataType::Float64),
        ]);
        let snap = registry::global().snapshot();
        let mut b = TableBuilder::with_capacity(schema, snap.len());
        for (name, value) in snap {
            b.push_row(&[Value::Str(name), Value::Float64(value)]);
        }
        b.finish()
    }

    fn jsys_pool(&self) -> Table {
        let schema = Schema::new(vec![
            Field::new("name", DataType::Str),
            Field::new("value", DataType::Int64),
        ]);
        let mut rows: Vec<(&str, i64)> = Vec::new();
        if let Some(pool) = self.engine.worker_pool() {
            rows.push(("pool.threads", pool.threads() as i64));
            rows.push(("pool.active_pipelines", pool.active_pipelines() as i64));
        } else {
            rows.push((
                "pool.active_pipelines",
                joinstudy_exec::pool::pipelines_in_flight() as i64,
            ));
        }
        if let Some(adm) = &self.admission {
            rows.push(("admission.total_bytes", adm.total() as i64));
            rows.push(("admission.available_bytes", adm.available() as i64));
            rows.push(("admission.queued", adm.queued() as i64));
            rows.push(("admission.admitted", adm.admitted() as i64));
            rows.push(("admission.peak_granted_bytes", adm.peak_granted() as i64));
        }
        let mut b = TableBuilder::with_capacity(schema, rows.len());
        for (name, value) in rows {
            b.push_row(&[Value::Str(name.to_string()), Value::Int64(value)]);
        }
        b.finish()
    }

    fn jsys_ash(&self) -> Table {
        let schema = Schema::new(vec![
            Field::new("at_ms", DataType::Int64),
            Field::new("conn", DataType::Int64),
            Field::new("query_id", DataType::Int64),
            Field::new("fingerprint", DataType::Str),
            Field::new("wait_state", DataType::Str),
            Field::new("pipeline", DataType::Str),
            Field::new("rows", DataType::Int64),
            Field::new("granted_bytes", DataType::Int64),
        ]);
        let samples = self.ash.as_ref().map(|a| a.snapshot()).unwrap_or_default();
        let mut b = TableBuilder::with_capacity(schema, samples.len());
        for s in samples {
            b.push_row(&[
                Value::Int64(s.at_ms as i64),
                Value::Int64(s.conn as i64),
                Value::Int64(s.query_id as i64),
                Value::Str(s.fingerprint),
                Value::Str(s.wait_state.to_string()),
                Value::Str(s.pipeline),
                Value::Int64(s.rows as i64),
                Value::Int64(s.granted_bytes as i64),
            ]);
        }
        b.finish()
    }

    /// Live per-operator progress of every in-flight pipeline, one row per
    /// (pipeline, stage). Reads the process-global progress registry, so
    /// it works for embedded sessions and servers alike; counters are
    /// relaxed-atomic advisory values (the executor's mid-flight ordering
    /// contract).
    fn jsys_query_progress(&self) -> Table {
        let schema = Schema::new(vec![
            Field::new("query_id", DataType::Int64),
            Field::new("conn", DataType::Int64),
            Field::new("pipeline", DataType::Str),
            Field::new("stage", DataType::Str),
            Field::new("batches", DataType::Int64),
            Field::new("rows_in", DataType::Int64),
            Field::new("rows_out", DataType::Int64),
            Field::new("morsels_done", DataType::Int64),
            Field::new("morsels_total", DataType::Int64),
            Field::new("est_rows", DataType::Int64),
            Field::new("fraction", DataType::Float64),
            Field::new("spill_bytes", DataType::Int64),
        ]);
        let pipelines = joinstudy_exec::progress::global().snapshot();
        let mut b = TableBuilder::new(schema);
        for p in &pipelines {
            let fraction = p.fraction();
            for s in &p.stages {
                b.push_row(&[
                    Value::Int64(p.query_id as i64),
                    Value::Int64(p.conn as i64),
                    Value::Str(p.label.clone()),
                    Value::Str(s.stage.clone()),
                    Value::Int64(s.batches as i64),
                    Value::Int64(s.rows_in as i64),
                    Value::Int64(s.rows_out as i64),
                    Value::Int64(p.tasks_done as i64),
                    Value::Int64(p.tasks_total as i64),
                    Value::Int64(p.est_rows as i64),
                    Value::Float64(fraction),
                    Value::Int64(p.spill_bytes as i64),
                ]);
            }
        }
        b.finish()
    }

    fn jsys_timeseries(&self) -> Table {
        let schema = Schema::new(vec![
            Field::new("at_ms", DataType::Int64),
            Field::new("queue_depth", DataType::Int64),
            Field::new("available_bytes", DataType::Int64),
            Field::new("admitted_bytes", DataType::Int64),
            Field::new("pool_threads", DataType::Int64),
            Field::new("active_pipelines", DataType::Int64),
            Field::new("active_queries", DataType::Int64),
            Field::new("spill_write_bytes", DataType::Int64),
            Field::new("spill_read_bytes", DataType::Int64),
        ]);
        let ticks = self
            .timeseries
            .as_ref()
            .map(|t| t.snapshot())
            .unwrap_or_default();
        let mut b = TableBuilder::with_capacity(schema, ticks.len());
        for t in ticks {
            b.push_row(&[
                Value::Int64(t.at_ms as i64),
                Value::Int64(t.queue_depth as i64),
                Value::Int64(t.available_bytes as i64),
                Value::Int64(t.admitted_bytes as i64),
                Value::Int64(t.pool_threads as i64),
                Value::Int64(t.active_pipelines as i64),
                Value::Int64(t.active_queries as i64),
                Value::Int64(t.spill_write_bytes as i64),
                Value::Int64(t.spill_read_bytes as i64),
            ]);
        }
        b.finish()
    }

    /// Plan a SELECT and render its operator tree (EXPLAIN). Accepts both a
    /// bare SELECT and an `EXPLAIN`-prefixed statement.
    pub fn explain(&self, sql: &str) -> Result<String, SqlError> {
        match parse(sql).map_err(SqlError::Parse)? {
            Statement::Select(select)
            | Statement::Explain {
                analyze: false,
                select,
            } => {
                let jsys = self.catalog_for(&select)?;
                let catalog = jsys.as_ref().unwrap_or(&self.catalog);
                let plan = plan_select(&select, catalog, self.algo)?;
                Ok(plan.explain())
            }
            Statement::Explain { analyze: true, .. } => self.explain_analyze(sql),
            _ => Err(SqlError::Plan("EXPLAIN supports SELECT statements".into())),
        }
    }

    /// Execute a SELECT with per-operator profiling and render the annotated
    /// plan tree (EXPLAIN ANALYZE). Accepts both a bare SELECT and an
    /// `EXPLAIN [ANALYZE]`-prefixed statement.
    pub fn explain_analyze(&self, sql: &str) -> Result<String, SqlError> {
        let select = match parse(sql).map_err(SqlError::Parse)? {
            Statement::Select(select) | Statement::Explain { select, .. } => select,
            _ => return Err(SqlError::Plan("EXPLAIN supports SELECT statements".into())),
        };
        let jsys = self.catalog_for(&select)?;
        let catalog = jsys.as_ref().unwrap_or(&self.catalog);
        let plan = plan_select(&select, catalog, self.algo)?;
        let (_, profile) = self.engine.execute_profiled(&plan)?;
        Ok(profile.render())
    }
}

/// Wrap rendered text into a one-column table (EXPLAIN result shape).
fn text_table(text: &str) -> Table {
    let schema = Schema::new(vec![Field::new("plan", DataType::Str)]);
    let mut b = TableBuilder::new(schema);
    for line in text.lines() {
        b.push_row(&[Value::Str(line.to_string())]);
    }
    b.finish()
}

fn coerce_insert(lit: &Literal, dtype: DataType) -> Result<Value, String> {
    Ok(match (lit, dtype) {
        (Literal::Null, _) => Value::Null,
        (Literal::Int(v), DataType::Int64) => Value::Int64(*v),
        (Literal::Int(v), DataType::Int32) => {
            Value::Int32(i32::try_from(*v).map_err(|_| format!("{v} out of INT range"))?)
        }
        (Literal::Int(v), DataType::Decimal) => Value::Decimal(Decimal::from_int(*v)),
        (Literal::Int(v), DataType::Float64) => Value::Float64(*v as f64),
        (Literal::Decimal(d), DataType::Decimal) => Value::Decimal(*d),
        (Literal::Decimal(d), DataType::Float64) => Value::Float64(d.to_f64()),
        (Literal::Str(s), DataType::Str) => Value::Str(s.clone()),
        (Literal::Date(d), DataType::Date) => Value::Date(*d),
        (Literal::Str(s), DataType::Date) => Value::Date(crate::parser::parse_date(s)?),
        (Literal::Bool(b), DataType::Bool) => Value::Bool(*b),
        (l, t) => return Err(format!("cannot insert {l:?} into {t} column")),
    })
}
