//! The SQL session: a catalog of registered tables plus an engine.

use crate::ast::{Literal, Statement};
use crate::parser::parse;
use crate::planner::plan_select;
use joinstudy_core::{Engine, JoinAlgo};
use joinstudy_exec::context::QueryContext;
use joinstudy_exec::error::ExecError;
use joinstudy_exec::profile::QueryProfile;
use joinstudy_exec::trace::QueryTrace;
use joinstudy_storage::table::{Field, Schema, Table, TableBuilder};
use joinstudy_storage::types::{DataType, Decimal, Value};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Anything that can go wrong between SQL text and a result table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlError {
    /// The statement did not lex or parse.
    Parse(String),
    /// The statement parsed but could not be planned or applied to the
    /// catalog (unknown tables or columns, arity mismatches, ...).
    Plan(String),
    /// The engine failed mid-execution (worker panic, operator failure).
    Exec(ExecError),
    /// The query was cancelled via the session's [`QueryContext`].
    Cancelled,
    /// The session's statement timeout elapsed.
    Timeout {
        /// The configured time budget, in milliseconds.
        budget_ms: u64,
    },
    /// The session's memory budget could not hold a materialization and no
    /// degraded execution strategy applied.
    BudgetExceeded {
        requested: usize,
        in_use: usize,
        budget: usize,
        /// Execution phase that issued the failed reservation.
        phase: &'static str,
    },
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Parse(m) | SqlError::Plan(m) => write!(f, "SQL error: {m}"),
            SqlError::Exec(e) => write!(f, "SQL error: {e}"),
            SqlError::Cancelled => write!(f, "SQL error: {}", ExecError::Cancelled),
            SqlError::Timeout { budget_ms } => {
                write!(
                    f,
                    "SQL error: {}",
                    ExecError::Timeout {
                        budget_ms: *budget_ms
                    }
                )
            }
            SqlError::BudgetExceeded {
                requested,
                in_use,
                budget,
                phase,
            } => write!(
                f,
                "SQL error: {}",
                ExecError::BudgetExceeded {
                    requested: *requested,
                    in_use: *in_use,
                    budget: *budget,
                    phase,
                }
            ),
        }
    }
}

impl std::error::Error for SqlError {}

/// Parser and planner report plain strings; both surface as planning-stage
/// failures unless mapped explicitly (parse errors are tagged in
/// [`Session::execute`]).
impl From<String> for SqlError {
    fn from(s: String) -> SqlError {
        SqlError::Plan(s)
    }
}

/// Resource-limit failures keep their own variants so callers can react
/// (retry with a bigger budget, report a timeout) without string matching.
impl From<ExecError> for SqlError {
    fn from(e: ExecError) -> SqlError {
        match e {
            ExecError::Cancelled => SqlError::Cancelled,
            ExecError::Timeout { budget_ms } => SqlError::Timeout { budget_ms },
            ExecError::BudgetExceeded {
                requested,
                in_use,
                budget,
                phase,
            } => SqlError::BudgetExceeded {
                requested,
                in_use,
                budget,
                phase,
            },
            other => SqlError::Exec(other),
        }
    }
}

/// A SQL session over the join-study engine.
pub struct Session {
    catalog: HashMap<String, Arc<Table>>,
    engine: Engine,
    algo: JoinAlgo,
}

impl Session {
    pub fn new(threads: usize) -> Session {
        Session {
            catalog: HashMap::new(),
            engine: Engine::new(threads),
            // The engine answers the join question itself by default; the
            // static algorithms stay one `SET join_algo = ...` away (the
            // paper's drop-in replacement switch).
            algo: JoinAlgo::Adaptive,
        }
    }

    /// Select the join implementation every planned join uses (the paper's
    /// drop-in replacement switch). [`JoinAlgo::Adaptive`] — the default —
    /// lets the calibrated cost model pick per join node.
    pub fn set_join_algo(&mut self, algo: JoinAlgo) {
        self.algo = algo;
    }

    /// The session's current join-algorithm setting.
    pub fn join_algo(&self) -> JoinAlgo {
        self.algo
    }

    /// Replace the engine (thread count, radix configuration, ...). The new
    /// engine brings its own [`QueryContext`]; any timeout or budget set on
    /// the old one no longer applies.
    pub fn set_engine(&mut self, engine: Engine) {
        self.engine = engine;
    }

    /// The session's query context: share it with another thread to cancel
    /// a running statement.
    pub fn context(&self) -> Arc<QueryContext> {
        Arc::clone(&self.engine.ctx)
    }

    /// Route this session's pipelines through a shared worker pool
    /// (`None` restores a private per-query worker team). Used by the
    /// server so all connections share one process-wide team; the
    /// session's thread count follows the pool's.
    pub fn set_worker_pool(&mut self, pool: Option<Arc<joinstudy_exec::pool::WorkerPool>>) {
        self.engine.set_worker_pool(pool);
    }

    /// Per-statement wall-clock timeout (`None` disables).
    pub fn set_timeout(&mut self, timeout: Option<Duration>) {
        self.engine.ctx.set_timeout(timeout);
    }

    /// Per-statement memory budget in bytes (`None` disables). Joins that
    /// cannot partition within the budget degrade to the non-partitioned
    /// hash join before this surfaces as [`SqlError::BudgetExceeded`].
    pub fn set_memory_budget(&mut self, bytes: Option<usize>) {
        self.engine.ctx.set_memory_budget(bytes);
    }

    /// Enable or disable per-operator profiling for subsequent statements.
    /// While enabled, every executed SELECT records a [`QueryProfile`]
    /// retrievable with [`Session::take_profile`].
    pub fn set_profiling(&mut self, on: bool) {
        self.engine.ctx.set_profiling(on);
    }

    /// The profile of the most recent profiled statement, if any. Draining:
    /// a second call returns `None` until another profiled statement runs.
    /// After a failed profiled statement this yields the *partial* profile
    /// of the pipelines that completed before the error.
    pub fn take_profile(&self) -> Option<QueryProfile> {
        self.engine.take_profile()
    }

    /// Enable or disable worker-timeline tracing for subsequent statements.
    /// While enabled, every executed SELECT records a [`QueryTrace`]
    /// retrievable with [`Session::take_trace`] and exportable as
    /// Chrome/Perfetto `trace_event` JSON.
    pub fn set_tracing(&mut self, on: bool) {
        self.engine.ctx.set_tracing(on);
    }

    /// The worker-timeline trace of the most recent traced statement, if
    /// any. Draining, like [`Session::take_profile`].
    pub fn take_trace(&self) -> Option<QueryTrace> {
        self.engine.take_trace()
    }

    /// Enable or disable hardware PMU counter sampling for subsequent
    /// statements. While enabled (and where `perf_event_open` is permitted),
    /// worker threads sample cycle/cache/TLB counters per pipeline, EXPLAIN
    /// ANALYZE shows per-operator counter deltas, and traces carry counter
    /// tracks. Where the PMU is unavailable this is a harmless no-op:
    /// results and output are identical to counters-off.
    pub fn set_counters(&mut self, on: bool) {
        self.engine.ctx.set_counters(on);
        joinstudy_exec::pmu::set_enabled(on);
    }

    /// Register an existing table (e.g. a generated TPC-H relation).
    pub fn register(&mut self, name: impl Into<String>, table: Arc<Table>) {
        self.catalog.insert(name.into().to_ascii_lowercase(), table);
    }

    /// A registered table, if present.
    pub fn table(&self, name: &str) -> Option<&Arc<Table>> {
        self.catalog.get(&name.to_ascii_lowercase())
    }

    /// Parse and execute one statement. DDL/DML return an empty table.
    pub fn execute(&mut self, sql: &str) -> Result<Table, SqlError> {
        match parse(sql).map_err(SqlError::Parse)? {
            Statement::Select(select) => {
                let plan = plan_select(&select, &self.catalog, self.algo)?;
                Ok(self.engine.execute(&plan)?)
            }
            Statement::Explain { analyze, select } => {
                let plan = plan_select(&select, &self.catalog, self.algo)?;
                let text = if analyze {
                    let (_, profile) = self.engine.execute_profiled(&plan)?;
                    profile.render()
                } else {
                    plan.explain()
                };
                Ok(text_table(&text))
            }
            Statement::CreateTable { name, columns } => {
                if self.catalog.contains_key(&name) {
                    return Err(SqlError::Plan(format!("table {name:?} already exists")));
                }
                let schema = Schema::new(
                    columns
                        .iter()
                        .map(|c| Field::new(c.name.clone(), c.dtype))
                        .collect(),
                );
                self.catalog
                    .insert(name, Arc::new(Table::empty(schema.clone())));
                Ok(Table::empty(schema))
            }
            Statement::Insert { table, rows } => {
                let existing = self
                    .catalog
                    .get(&table)
                    .ok_or_else(|| SqlError::Plan(format!("unknown table {table:?}")))?;
                let schema = existing.schema().clone();
                let mut b =
                    TableBuilder::with_capacity(schema.clone(), existing.num_rows() + rows.len());
                for r in 0..existing.num_rows() {
                    b.push_row(&existing.row(r));
                }
                for row in &rows {
                    if row.len() != schema.len() {
                        return Err(SqlError::Plan(format!(
                            "INSERT arity {} does not match table {} ({} columns)",
                            row.len(),
                            table,
                            schema.len()
                        )));
                    }
                    let values: Vec<Value> = row
                        .iter()
                        .zip(&schema.fields)
                        .map(|(lit, f)| coerce_insert(lit, f.dtype))
                        .collect::<Result<_, String>>()?;
                    b.push_row(&values);
                }
                self.catalog.insert(table, Arc::new(b.finish()));
                Ok(Table::empty(schema))
            }
            Statement::Set { name, value } => {
                match name.as_str() {
                    "join_algo" => {
                        let algo = match value.to_ascii_lowercase().as_str() {
                            "bhj" => JoinAlgo::Bhj,
                            "rj" => JoinAlgo::Rj,
                            "brj" => JoinAlgo::Brj,
                            "adaptive" => JoinAlgo::Adaptive,
                            "hybrid" | "hhj" => JoinAlgo::Hybrid,
                            other => {
                                return Err(SqlError::Plan(format!(
                                    "unknown join_algo {other:?} (expected bhj, rj, brj, \
                                     adaptive, or hybrid)"
                                )))
                            }
                        };
                        self.set_join_algo(algo);
                    }
                    "spill_dir" => {
                        // `default` (or an empty string) reverts to the
                        // engine's temp-directory fallback.
                        let dir = match value.as_str() {
                            "" | "default" => None,
                            path => Some(std::path::PathBuf::from(path)),
                        };
                        self.engine.ctx.set_spill_dir(dir);
                    }
                    other => {
                        return Err(SqlError::Plan(format!(
                            "unknown session variable {other:?} (expected join_algo \
                             or spill_dir)"
                        )))
                    }
                }
                Ok(text_table(&format!("SET {name} = {value}")))
            }
        }
    }

    /// Plan a SELECT and render its operator tree (EXPLAIN). Accepts both a
    /// bare SELECT and an `EXPLAIN`-prefixed statement.
    pub fn explain(&self, sql: &str) -> Result<String, SqlError> {
        match parse(sql).map_err(SqlError::Parse)? {
            Statement::Select(select)
            | Statement::Explain {
                analyze: false,
                select,
            } => {
                let plan = plan_select(&select, &self.catalog, self.algo)?;
                Ok(plan.explain())
            }
            Statement::Explain { analyze: true, .. } => self.explain_analyze(sql),
            _ => Err(SqlError::Plan("EXPLAIN supports SELECT statements".into())),
        }
    }

    /// Execute a SELECT with per-operator profiling and render the annotated
    /// plan tree (EXPLAIN ANALYZE). Accepts both a bare SELECT and an
    /// `EXPLAIN [ANALYZE]`-prefixed statement.
    pub fn explain_analyze(&self, sql: &str) -> Result<String, SqlError> {
        let select = match parse(sql).map_err(SqlError::Parse)? {
            Statement::Select(select) | Statement::Explain { select, .. } => select,
            _ => return Err(SqlError::Plan("EXPLAIN supports SELECT statements".into())),
        };
        let plan = plan_select(&select, &self.catalog, self.algo)?;
        let (_, profile) = self.engine.execute_profiled(&plan)?;
        Ok(profile.render())
    }
}

/// Wrap rendered text into a one-column table (EXPLAIN result shape).
fn text_table(text: &str) -> Table {
    let schema = Schema::new(vec![Field::new("plan", DataType::Str)]);
    let mut b = TableBuilder::new(schema);
    for line in text.lines() {
        b.push_row(&[Value::Str(line.to_string())]);
    }
    b.finish()
}

fn coerce_insert(lit: &Literal, dtype: DataType) -> Result<Value, String> {
    Ok(match (lit, dtype) {
        (Literal::Null, _) => Value::Null,
        (Literal::Int(v), DataType::Int64) => Value::Int64(*v),
        (Literal::Int(v), DataType::Int32) => {
            Value::Int32(i32::try_from(*v).map_err(|_| format!("{v} out of INT range"))?)
        }
        (Literal::Int(v), DataType::Decimal) => Value::Decimal(Decimal::from_int(*v)),
        (Literal::Int(v), DataType::Float64) => Value::Float64(*v as f64),
        (Literal::Decimal(d), DataType::Decimal) => Value::Decimal(*d),
        (Literal::Decimal(d), DataType::Float64) => Value::Float64(d.to_f64()),
        (Literal::Str(s), DataType::Str) => Value::Str(s.clone()),
        (Literal::Date(d), DataType::Date) => Value::Date(*d),
        (Literal::Str(s), DataType::Date) => Value::Date(crate::parser::parse_date(s)?),
        (Literal::Bool(b), DataType::Bool) => Value::Bool(*b),
        (l, t) => return Err(format!("cannot insert {l:?} into {t} column")),
    })
}
