//! Chunked, constant-memory streaming TPC-H generator.
//!
//! The materializing generator ([`crate::dbgen`]) caps experiments at the
//! scale factors that fit in RAM. This module removes that cap in the
//! spirit of tpchgen-rs: every table is generated in bounded **chunks**,
//! and each *unit* (one supplier, one part, one partsupp row, one order
//! together with its lineitems) is produced by its own deterministically
//! seeded [`Rng`], so a chunk's content depends only on
//! `(scale, seed, table, unit range)` — never on chunk size, chunk order,
//! or how many worker threads are generating concurrently.
//!
//! # Determinism guarantee
//!
//! For a fixed `(sf, seed)`, concatenating the chunks of a table in unit
//! order yields byte-identical rows for **any** chunk size and any degree
//! of parallelism. [`crate::dbgen::generate`] is itself built on this
//! module (one materializing pass over the chunks), so the streaming and
//! materializing paths cannot drift apart: they are the same code.
//!
//! # Constant memory
//!
//! A [`StreamScan`] holds no table data; each executor task materializes
//! one chunk (default [`CHUNK_UNITS`] units, a few MiB at most), slices it
//! into batches, and drops it. Peak generator memory is
//! `chunks_in_flight × chunk_bytes`, independent of scale factor — SF 10+
//! flows straight into the (spilling) join path without ever existing as
//! a whole table.

use crate::dbgen::{cardinalities, retail_price_cents, supp_for_part};
use crate::text;
use joinstudy_exec::batch::{slice_column, Batch};
use joinstudy_exec::error::ExecResult;
use joinstudy_exec::metrics;
use joinstudy_exec::pipeline::{Emit, Source};
use joinstudy_exec::BATCH_ROWS;
use joinstudy_storage::column::ColumnData;
use joinstudy_storage::gen::{Rng, Zipf};
use joinstudy_storage::table::{Field, Schema, Table, TableBuilder};
use joinstudy_storage::types::{DataType, Date};
use std::ops::Range;
use std::sync::Arc;

/// Default generation units per chunk. One unit is one row for the base
/// tables and one *order* (with its 1–7 lineitems) for orders/lineitem, so
/// a default chunk stays well under a few MiB for every table.
pub const CHUNK_UNITS: usize = 8 * 1024;

/// The eight TPC-H relations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TpchTable {
    Region,
    Nation,
    Supplier,
    Part,
    Partsupp,
    Customer,
    Orders,
    Lineitem,
}

/// All tables, in generation order.
pub const TABLES: [TpchTable; 8] = [
    TpchTable::Region,
    TpchTable::Nation,
    TpchTable::Supplier,
    TpchTable::Part,
    TpchTable::Partsupp,
    TpchTable::Customer,
    TpchTable::Orders,
    TpchTable::Lineitem,
];

impl TpchTable {
    pub fn name(self) -> &'static str {
        match self {
            TpchTable::Region => "region",
            TpchTable::Nation => "nation",
            TpchTable::Supplier => "supplier",
            TpchTable::Part => "part",
            TpchTable::Partsupp => "partsupp",
            TpchTable::Customer => "customer",
            TpchTable::Orders => "orders",
            TpchTable::Lineitem => "lineitem",
        }
    }

    pub fn by_name(name: &str) -> TpchTable {
        TABLES
            .into_iter()
            .find(|t| t.name() == name)
            .unwrap_or_else(|| panic!("unknown TPC-H table {name:?}"))
    }

    /// The table's schema (shared by the streaming and materializing paths).
    pub fn schema(self) -> Schema {
        match self {
            TpchTable::Region => Schema::of(&[
                ("r_regionkey", DataType::Int64),
                ("r_name", DataType::Str),
                ("r_comment", DataType::Str),
            ]),
            TpchTable::Nation => Schema::of(&[
                ("n_nationkey", DataType::Int64),
                ("n_name", DataType::Str),
                ("n_regionkey", DataType::Int64),
                ("n_comment", DataType::Str),
            ]),
            TpchTable::Supplier => Schema::of(&[
                ("s_suppkey", DataType::Int64),
                ("s_name", DataType::Str),
                ("s_address", DataType::Str),
                ("s_nationkey", DataType::Int64),
                ("s_phone", DataType::Str),
                ("s_acctbal", DataType::Decimal),
                ("s_comment", DataType::Str),
            ]),
            TpchTable::Part => Schema::of(&[
                ("p_partkey", DataType::Int64),
                ("p_name", DataType::Str),
                ("p_mfgr", DataType::Str),
                ("p_brand", DataType::Str),
                ("p_type", DataType::Str),
                ("p_size", DataType::Int32),
                ("p_container", DataType::Str),
                ("p_retailprice", DataType::Decimal),
                ("p_comment", DataType::Str),
            ]),
            TpchTable::Partsupp => Schema::of(&[
                ("ps_partkey", DataType::Int64),
                ("ps_suppkey", DataType::Int64),
                ("ps_availqty", DataType::Int32),
                ("ps_supplycost", DataType::Decimal),
                ("ps_comment", DataType::Str),
            ]),
            TpchTable::Customer => Schema::of(&[
                ("c_custkey", DataType::Int64),
                ("c_name", DataType::Str),
                ("c_address", DataType::Str),
                ("c_nationkey", DataType::Int64),
                ("c_phone", DataType::Str),
                ("c_acctbal", DataType::Decimal),
                ("c_mktsegment", DataType::Str),
                ("c_comment", DataType::Str),
            ]),
            TpchTable::Orders => Schema::of(&[
                ("o_orderkey", DataType::Int64),
                ("o_custkey", DataType::Int64),
                ("o_orderstatus", DataType::Str),
                ("o_totalprice", DataType::Decimal),
                ("o_orderdate", DataType::Date),
                ("o_orderpriority", DataType::Str),
                ("o_clerk", DataType::Str),
                ("o_shippriority", DataType::Int32),
                ("o_comment", DataType::Str),
            ]),
            TpchTable::Lineitem => Schema::of(&[
                ("l_orderkey", DataType::Int64),
                ("l_partkey", DataType::Int64),
                ("l_suppkey", DataType::Int64),
                ("l_linenumber", DataType::Int32),
                ("l_quantity", DataType::Decimal),
                ("l_extendedprice", DataType::Decimal),
                ("l_discount", DataType::Decimal),
                ("l_tax", DataType::Decimal),
                ("l_returnflag", DataType::Str),
                ("l_linestatus", DataType::Str),
                ("l_shipdate", DataType::Date),
                ("l_commitdate", DataType::Date),
                ("l_receiptdate", DataType::Date),
                ("l_shipinstruct", DataType::Str),
                ("l_shipmode", DataType::Str),
                ("l_comment", DataType::Str),
            ]),
        }
    }

    /// Per-table stream tag mixed into every unit's seed, so the same unit
    /// index in different tables draws unrelated values.
    fn tag(self) -> u64 {
        (self as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F)
    }
}

/// SplitMix64 output permutation — the seed scrambler that makes per-unit
/// RNG streams independent even for consecutive unit indices.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The RNG owning all value draws of one generation unit.
fn unit_rng(seed: u64, table: TpchTable, unit: u64) -> Rng {
    let a = mix64(seed ^ 0x7063_6854_7374_726D); // "pchTstrm"
    let b = mix64(a ^ table.tag());
    Rng::new(mix64(b.wrapping_add(unit)))
}

/// Foreign-key skew configuration (the JCC-H-style extension the paper's
/// footnote 11 points at). `o_custkey` / `l_partkey` are drawn Zipf over
/// permuted key domains; referential integrity is preserved because
/// `(l_partkey, l_suppkey)` pairs still come from the spec formula.
pub(crate) struct FkSkew {
    cust: Zipf,
    cust_perm: Vec<u64>,
    part: Zipf,
    part_perm: Vec<u64>,
}

impl FkSkew {
    /// The permutations are seeded from `(seed)` alone, so skewed streams
    /// keep the same determinism guarantee as uniform ones. At large scale
    /// factors the permutations are the only non-constant memory
    /// (8 bytes/key); the SF-10+ streaming path uses uniform keys.
    fn new(seed: u64, customers: usize, parts: usize, zipf: f64) -> FkSkew {
        let mut rng = Rng::new(mix64(seed ^ 0x6A63_6348_536B_6577)); // "jccHSkew"
        FkSkew {
            cust: Zipf::new(customers as u64, zipf),
            cust_perm: rng.permutation(customers),
            part: Zipf::new(parts as u64, zipf),
            part_perm: rng.permutation(parts),
        }
    }
}

/// The streaming generator: scale, seed, optional skew, chunk granularity.
pub struct StreamGen {
    sf: f64,
    seed: u64,
    suppliers: usize,
    parts: usize,
    customers: usize,
    orders: usize,
    clerks: i64,
    chunk_units: usize,
    skew: Option<FkSkew>,
    date_lo: i32,
    date_hi: i32,
    current: i32,
}

impl StreamGen {
    pub fn new(sf: f64, seed: u64) -> StreamGen {
        let (suppliers, parts, customers, orders) = cardinalities(sf);
        StreamGen {
            sf,
            seed,
            suppliers,
            parts,
            customers,
            orders,
            clerks: ((orders / 1000).max(1)) as i64,
            chunk_units: CHUNK_UNITS,
            skew: None,
            date_lo: Date::from_ymd(1992, 1, 1).0,
            // Last order date: 1998-08-02 (spec: end - 151 days).
            date_hi: Date::from_ymd(1998, 8, 2).0,
            current: Date::from_ymd(1995, 6, 17).0,
        }
    }

    /// Zipf-skewed foreign keys (JCC-H-flavoured variant).
    pub fn skewed(sf: f64, seed: u64, zipf: f64) -> StreamGen {
        let mut g = StreamGen::new(sf, seed);
        g.skew = Some(FkSkew::new(seed, g.customers, g.parts, zipf));
        g
    }

    /// Override the chunk granularity (units per chunk). Chunk size changes
    /// *packaging only* — the generated rows are identical for any value.
    pub fn with_chunk_units(mut self, units: usize) -> StreamGen {
        assert!(units > 0);
        self.chunk_units = units;
        self
    }

    pub fn sf(&self) -> f64 {
        self.sf
    }

    /// Generation units of a table: rows for base tables, *orders* for both
    /// orders and lineitem (one order unit emits 1–7 lineitems).
    pub fn units(&self, table: TpchTable) -> usize {
        match table {
            TpchTable::Region => text::REGIONS.len(),
            TpchTable::Nation => text::NATIONS.len(),
            TpchTable::Supplier => self.suppliers,
            TpchTable::Part => self.parts,
            TpchTable::Partsupp => self.parts * 4,
            TpchTable::Customer => self.customers,
            TpchTable::Orders | TpchTable::Lineitem => self.orders,
        }
    }

    pub fn chunk_count(&self, table: TpchTable) -> usize {
        self.units(table).div_ceil(self.chunk_units)
    }

    /// The unit range of chunk `idx`.
    pub fn unit_range(&self, table: TpchTable, idx: usize) -> Range<usize> {
        let lo = idx * self.chunk_units;
        let hi = (lo + self.chunk_units).min(self.units(table));
        lo..hi
    }

    /// Estimated output rows of a full scan (lineitem averages 4 per order).
    pub fn est_rows(&self, table: TpchTable) -> f64 {
        match table {
            TpchTable::Lineitem => self.orders as f64 * 4.0,
            t => self.units(t) as f64,
        }
    }

    /// Materialize one chunk as a standalone table — deterministic in
    /// `(sf, seed, table, unit range)` only.
    pub fn chunk(&self, table: TpchTable, idx: usize) -> Table {
        let range = self.unit_range(table, idx);
        let cap = match table {
            TpchTable::Lineitem => range.len() * 5,
            _ => range.len(),
        };
        let mut b = TableBuilder::with_capacity(table.schema(), cap);
        match table {
            TpchTable::Orders => self.append_orders_lineitem(range, Some(&mut b), None),
            TpchTable::Lineitem => self.append_orders_lineitem(range, None, Some(&mut b)),
            t => self.append_units(t, range, &mut b),
        }
        b.finish()
    }

    /// Materialize a whole base table (the materializing generator's path).
    pub fn materialize(&self, table: TpchTable) -> Table {
        assert!(
            !matches!(table, TpchTable::Orders | TpchTable::Lineitem),
            "orders/lineitem are co-generated; use materialize_orders_lineitem"
        );
        let units = self.units(table);
        let mut b = TableBuilder::with_capacity(table.schema(), units);
        self.append_units(table, 0..units, &mut b);
        b.finish()
    }

    /// Materialize orders and lineitem in one co-generating pass.
    pub fn materialize_orders_lineitem(&self) -> (Table, Table) {
        let mut ob = TableBuilder::with_capacity(TpchTable::Orders.schema(), self.orders);
        let mut lb = TableBuilder::with_capacity(TpchTable::Lineitem.schema(), self.orders * 4);
        self.append_orders_lineitem(0..self.orders, Some(&mut ob), Some(&mut lb));
        (ob.finish(), lb.finish())
    }

    /// Generate the units `range` of a base table into `b`.
    fn append_units(&self, table: TpchTable, range: Range<usize>, b: &mut TableBuilder) {
        let mut buf = String::new();
        let mut c = String::new();
        for u in range {
            let mut rng = unit_rng(self.seed, table, u as u64);
            match table {
                TpchTable::Region => {
                    comment(&mut rng, &mut c);
                    push_i64(b, 0, u as i64);
                    push_str(b, 1, text::REGIONS[u]);
                    push_str(b, 2, &c);
                }
                TpchTable::Nation => {
                    let (name, region) = text::NATIONS[u];
                    comment(&mut rng, &mut c);
                    push_i64(b, 0, u as i64);
                    push_str(b, 1, name);
                    push_i64(b, 2, region);
                    push_str(b, 3, &c);
                }
                TpchTable::Supplier => self.supplier_row(&mut rng, u as i64 + 1, b, &mut buf),
                TpchTable::Part => self.part_row(&mut rng, u as i64 + 1, b, &mut buf),
                TpchTable::Partsupp => {
                    // Unit u is the u-th partsupp row: part u/4, slot u%4.
                    let pk = (u / 4) as i64 + 1;
                    let i = (u % 4) as i64;
                    push_i64(b, 0, pk);
                    push_i64(b, 1, supp_for_part(pk, i, self.suppliers as i64));
                    push_i32(b, 2, rng.i32_range(1, 9_999));
                    push_dec(b, 3, rng.i64_range(100, 100_000));
                    comment(&mut rng, &mut buf);
                    push_str(b, 4, &buf);
                }
                TpchTable::Customer => self.customer_row(&mut rng, u as i64 + 1, b, &mut buf),
                TpchTable::Orders | TpchTable::Lineitem => unreachable!(),
            }
        }
    }

    fn supplier_row(&self, rng: &mut Rng, k: i64, b: &mut TableBuilder, buf: &mut String) {
        let nation = rng.u64_below(25) as i64;
        push_i64(b, 0, k);
        push_str(b, 1, &format!("Supplier#{k:09}"));
        rng.alpha_string(10, 30, buf);
        push_str(b, 2, buf);
        push_i64(b, 3, nation);
        phone(rng, nation, buf);
        push_str(b, 4, buf);
        push_dec(b, 5, rng.i64_range(-99_999, 999_999));
        // Q16's pattern: the spec injects complaints into 5 per 10k suppliers.
        if rng.bool(0.0005) {
            push_str(b, 6, "the slyly final Customer ironic Complaints sleep");
        } else {
            comment(rng, buf);
            push_str(b, 6, buf);
        }
    }

    fn part_row(&self, rng: &mut Rng, k: i64, b: &mut TableBuilder, buf: &mut String) {
        push_i64(b, 0, k);
        // p_name: five distinct color words.
        buf.clear();
        let mut used = [usize::MAX; 5];
        for w in 0..5 {
            let mut idx;
            loop {
                idx = rng.u64_below(text::COLORS.len() as u64) as usize;
                if !used[..w].contains(&idx) {
                    break;
                }
            }
            used[w] = idx;
            if w > 0 {
                buf.push(' ');
            }
            buf.push_str(text::COLORS[idx]);
        }
        push_str(b, 1, buf);
        let mfgr = 1 + rng.u64_below(5);
        push_str(b, 2, &format!("Manufacturer#{mfgr}"));
        push_str(b, 3, &format!("Brand#{}{}", mfgr, 1 + rng.u64_below(5)));
        let ptype = format!(
            "{} {} {}",
            *rng.pick::<&str>(&text::TYPE_S1),
            *rng.pick::<&str>(&text::TYPE_S2),
            *rng.pick::<&str>(&text::TYPE_S3)
        );
        push_str(b, 4, &ptype);
        push_i32(b, 5, rng.i32_range(1, 50));
        let container = format!(
            "{} {}",
            *rng.pick::<&str>(&text::CONTAINER_S1),
            *rng.pick::<&str>(&text::CONTAINER_S2)
        );
        push_str(b, 6, &container);
        push_dec(b, 7, retail_price_cents(k));
        comment(rng, buf);
        push_str(b, 8, buf);
    }

    fn customer_row(&self, rng: &mut Rng, k: i64, b: &mut TableBuilder, buf: &mut String) {
        let nation = rng.u64_below(25) as i64;
        push_i64(b, 0, k);
        push_str(b, 1, &format!("Customer#{k:09}"));
        rng.alpha_string(10, 40, buf);
        push_str(b, 2, buf);
        push_i64(b, 3, nation);
        phone(rng, nation, buf);
        push_str(b, 4, buf);
        push_dec(b, 5, rng.i64_range(-99_999, 999_999));
        push_str(b, 6, rng.pick::<&str>(&text::SEGMENTS));
        comment(rng, buf);
        push_str(b, 7, buf);
    }

    /// Generate orders `range`, appending order rows to `ob` and their
    /// lineitems to `lb` (either side optional: a lineitem-only stream
    /// still draws the order-level values its dates derive from).
    fn append_orders_lineitem(
        &self,
        range: Range<usize>,
        mut ob: Option<&mut TableBuilder>,
        mut lb: Option<&mut TableBuilder>,
    ) {
        let mut buf = String::new();
        for u in range {
            let mut rng = unit_rng(self.seed, TpchTable::Orders, u as u64);
            let i = u as i64;
            // Sparse keys: 8 used out of every 32 consecutive values.
            let orderkey = (i / 8) * 32 + i % 8 + 1;
            // A third of the customers place no orders (custkey % 3 == 0).
            let custkey = loop {
                let c = match &self.skew {
                    None => 1 + rng.u64_below(self.customers as u64) as i64,
                    Some(s) => 1 + s.cust_perm[(s.cust.sample(&mut rng) - 1) as usize] as i64,
                };
                if c % 3 != 0 || self.customers < 3 {
                    break c;
                }
            };
            let orderdate = rng.i32_range(self.date_lo, self.date_hi);

            let nlines = 1 + rng.u64_below(7) as i32;
            let mut total = 0i64;
            let mut any_open = false;
            let mut any_fulfilled = false;
            for ln in 1..=nlines {
                let partkey = match &self.skew {
                    None => 1 + rng.u64_below(self.parts as u64) as i64,
                    Some(s) => 1 + s.part_perm[(s.part.sample(&mut rng) - 1) as usize] as i64,
                };
                let suppkey =
                    supp_for_part(partkey, rng.u64_below(4) as i64, self.suppliers as i64);
                let qty = rng.i64_range(1, 50);
                let extprice = qty * retail_price_cents(partkey);
                let discount = rng.i64_range(0, 10); // 0.00 – 0.10
                let tax = rng.i64_range(0, 8);
                let shipdate = orderdate + rng.i32_range(1, 121);
                let commitdate = orderdate + rng.i32_range(30, 90);
                let receiptdate = shipdate + rng.i32_range(1, 30);
                let returnflag = if receiptdate <= self.current {
                    if rng.bool(0.5) {
                        "R"
                    } else {
                        "A"
                    }
                } else {
                    "N"
                };
                let linestatus = if shipdate > self.current { "O" } else { "F" };
                if linestatus == "O" {
                    any_open = true;
                } else {
                    any_fulfilled = true;
                }
                total += extprice * (100 - discount) / 100 * (100 + tax) / 100;

                // The order-level draws below (instruction, mode, comment)
                // must happen whether or not lineitems are materialized, so
                // both streams see identical values.
                let instruction = *rng.pick::<&str>(&text::INSTRUCTIONS);
                let mode = *rng.pick::<&str>(&text::MODES);
                comment(&mut rng, &mut buf);
                if let Some(lb) = lb.as_deref_mut() {
                    push_i64(lb, 0, orderkey);
                    push_i64(lb, 1, partkey);
                    push_i64(lb, 2, suppkey);
                    push_i32(lb, 3, ln);
                    push_dec(lb, 4, qty * 100);
                    push_dec(lb, 5, extprice);
                    push_dec(lb, 6, discount);
                    push_dec(lb, 7, tax);
                    push_str(lb, 8, returnflag);
                    push_str(lb, 9, linestatus);
                    push_date(lb, 10, shipdate);
                    push_date(lb, 11, commitdate);
                    push_date(lb, 12, receiptdate);
                    push_str(lb, 13, instruction);
                    push_str(lb, 14, mode);
                    push_str(lb, 15, &buf);
                }
            }

            let status = match (any_open, any_fulfilled) {
                (true, false) => "O",
                (false, true) => "F",
                _ => "P",
            };
            let priority = *rng.pick::<&str>(&text::PRIORITIES);
            let clerk = 1 + rng.u64_below(self.clerks as u64);
            comment(&mut rng, &mut buf);
            if let Some(ob) = ob.as_deref_mut() {
                push_i64(ob, 0, orderkey);
                push_i64(ob, 1, custkey);
                push_str(ob, 2, status);
                push_dec(ob, 3, total);
                push_date(ob, 4, orderdate);
                push_str(ob, 5, priority);
                push_str(ob, 6, &format!("Clerk#{clerk:09}"));
                push_i32(ob, 7, 0);
                push_str(ob, 8, &buf);
            }
        }
    }
}

fn comment(rng: &mut Rng, out: &mut String) {
    out.clear();
    let words = 3 + rng.u64_below(5);
    for w in 0..words {
        if w > 0 {
            out.push(' ');
        }
        match w % 3 {
            0 => out.push_str(rng.pick::<&str>(&text::ADVERBS)),
            1 => out.push_str(rng.pick::<&str>(&text::NOUNS)),
            _ => out.push_str(rng.pick::<&str>(&text::VERBS)),
        }
    }
}

fn phone(rng: &mut Rng, nationkey: i64, out: &mut String) {
    use std::fmt::Write;
    out.clear();
    let _ = write!(
        out,
        "{}-{:03}-{:03}-{:04}",
        10 + nationkey,
        100 + rng.u64_below(900),
        100 + rng.u64_below(900),
        1000 + rng.u64_below(9000)
    );
}

// Typed push helpers (hot path: no Value boxing).

pub(crate) fn push_i64(b: &mut TableBuilder, col: usize, v: i64) {
    match b.column_mut(col) {
        ColumnData::Int64(c) => c.push(v),
        _ => unreachable!(),
    }
}

pub(crate) fn push_i32(b: &mut TableBuilder, col: usize, v: i32) {
    match b.column_mut(col) {
        ColumnData::Int32(c) => c.push(v),
        _ => unreachable!(),
    }
}

pub(crate) fn push_dec(b: &mut TableBuilder, col: usize, cents: i64) {
    match b.column_mut(col) {
        ColumnData::Decimal(c) => c.push(cents),
        _ => unreachable!(),
    }
}

pub(crate) fn push_date(b: &mut TableBuilder, col: usize, days: i32) {
    match b.column_mut(col) {
        ColumnData::Date(c) => c.push(days),
        _ => unreachable!(),
    }
}

pub(crate) fn push_str(b: &mut TableBuilder, col: usize, v: &str) {
    match b.column_mut(col) {
        ColumnData::Str(c) => c.push(v),
        _ => unreachable!(),
    }
}

/// A [`Source`] that generates a TPC-H table on the fly, one chunk per
/// executor task. Plugged into the engine's pipelines it gets
/// morsel-stealing [`WorkerPool`](joinstudy_exec::pool::WorkerPool)
/// parallelism for free, and never holds more than the in-flight chunks.
pub struct StreamScan {
    gen: Arc<StreamGen>,
    table: TpchTable,
    /// Projected column indices (in output order).
    cols: Vec<usize>,
    chunks: usize,
}

impl StreamScan {
    pub fn new(gen: Arc<StreamGen>, table: TpchTable, cols: Vec<usize>) -> StreamScan {
        let chunks = gen.chunk_count(table);
        StreamScan {
            gen,
            table,
            cols,
            chunks,
        }
    }

    /// Stream projecting columns by name.
    pub fn by_names(gen: Arc<StreamGen>, table: TpchTable, names: &[&str]) -> StreamScan {
        let schema = table.schema();
        let cols = names.iter().map(|n| schema.index_of(n)).collect();
        StreamScan::new(gen, table, cols)
    }

    /// The schema of emitted batches.
    pub fn output_schema(&self) -> Schema {
        let schema = self.table.schema();
        let fields: Vec<Field> = self
            .cols
            .iter()
            .map(|&i| schema.fields[i].clone())
            .collect();
        Schema::new(fields)
    }

    pub fn est_rows(&self) -> f64 {
        self.gen.est_rows(self.table)
    }

    pub fn label(&self) -> String {
        format!("stream {} sf={}", self.table.name(), self.gen.sf())
    }
}

impl Source for StreamScan {
    fn task_count(&self) -> usize {
        self.chunks
    }

    fn poll_task(&self, task: usize, out: Emit) -> ExecResult {
        let chunk = self.gen.chunk(self.table, task);
        let rows = chunk.num_rows();
        metrics::add_source_rows(rows as u64);
        let mut start = 0usize;
        while start < rows {
            let end = (start + BATCH_ROWS).min(rows);
            let columns: Vec<ColumnData> = self
                .cols
                .iter()
                .map(|&c| slice_column(chunk.column(c), start, end))
                .collect();
            let batch = Batch::new(columns);
            if metrics::enabled() {
                let bytes: usize = batch.columns().iter().map(ColumnData::byte_size).sum();
                metrics::record_read(metrics::MemPhase::Other, bytes as u64);
            }
            out(batch);
            start = end;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_size_does_not_change_rows() {
        let a = StreamGen::new(0.001, 11).with_chunk_units(64);
        let b = StreamGen::new(0.001, 11).with_chunk_units(1000);
        for table in TABLES {
            let ta: Vec<Table> = (0..a.chunk_count(table))
                .map(|i| a.chunk(table, i))
                .collect();
            let tb: Vec<Table> = (0..b.chunk_count(table))
                .map(|i| b.chunk(table, i))
                .collect();
            let rows_a: usize = ta.iter().map(Table::num_rows).sum();
            let rows_b: usize = tb.iter().map(Table::num_rows).sum();
            assert_eq!(rows_a, rows_b, "{}", table.name());
        }
    }

    #[test]
    fn stream_scan_emits_all_units() {
        let gen = Arc::new(StreamGen::new(0.001, 3).with_chunk_units(100));
        let scan = StreamScan::by_names(gen.clone(), TpchTable::Customer, &["c_custkey"]);
        assert!(scan.task_count() > 1);
        let mut rows = 0usize;
        let mut keys = Vec::new();
        for t in 0..scan.task_count() {
            scan.poll_task(t, &mut |b: Batch| {
                rows += b.num_rows();
                keys.extend_from_slice(b.column(0).as_i64());
            })
            .unwrap();
        }
        assert_eq!(rows, gen.units(TpchTable::Customer));
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), rows, "customer keys must be unique");
    }
}
