//! TPC-H Q18 — large-volume customers (sum(l_quantity) > 300). The
//! having-clause subquery is pre-aggregated into a tiny key set that then
//! drives three joins; grouping dominates (§5.3.1).

use super::*;
use joinstudy_exec::ops::{AggFunc, AggSpec, SortKey};
use joinstudy_storage::types::Decimal;
use std::sync::Arc;

pub fn run(data: &TpchData, cfg: &QueryConfig, engine: &Engine) -> Table {
    // Orders whose total quantity exceeds 300.
    let big_plan = filter_where(
        Plan::scan(&data.lineitem, &["l_orderkey", "l_quantity"], None)
            .aggregate(&[0], vec![AggSpec::new(AggFunc::Sum, 1, "sum_qty")]),
        |s| cx(s, "sum_qty").gt(Expr::dec(Decimal::from_int(300))),
    );
    let big = Arc::new(engine.run(&big_plan));

    let orders = Plan::scan(
        &data.orders,
        &["o_orderkey", "o_custkey", "o_orderdate", "o_totalprice"],
        None,
    );
    let t = join_on(
        Plan::scan(&big, &["l_orderkey"], None),
        orders,
        JoinType::Inner,
        &["l_orderkey"],
        &["o_orderkey"],
    );
    let customer = Plan::scan(&data.customer, &["c_custkey", "c_name"], None);
    let t2 = join_on(t, customer, JoinType::Inner, &["o_custkey"], &["c_custkey"]);
    let lineitem = Plan::scan(&data.lineitem, &["l_orderkey", "l_quantity"], None);
    let t3 = join_on(
        t2,
        lineitem,
        JoinType::Inner,
        &["o_orderkey"],
        &["l_orderkey"],
    );

    let ts = t3.schema();
    let mut plan = t3
        .aggregate(
            &[
                ts.index_of("c_name"),
                ts.index_of("c_custkey"),
                ts.index_of("o_orderkey"),
                ts.index_of("o_orderdate"),
                ts.index_of("o_totalprice"),
            ],
            vec![AggSpec::new(
                AggFunc::Sum,
                ts.index_of("l_quantity"),
                "sum_qty",
            )],
        )
        .sort(vec![SortKey::desc(4), SortKey::asc(3)], Some(100));
    cfg.apply(&mut plan);
    engine.run(&plan)
}
