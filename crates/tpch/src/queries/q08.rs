//! TPC-H Q8 — national market share (AMERICA, ECONOMY ANODIZED STEEL).
//! Seven joins; its differentiating join probes the unfiltered 20 GB
//! lineitem side against a 1 MB build — the BHJ wins by 60% there
//! (§5.3.2). Late materialization defers the two money columns of
//! lineitem, shrinking four of the seven build sides (§5.3.1).

use super::*;
use joinstudy_exec::ops::scan::TID_COLUMN;
use joinstudy_exec::ops::{AggFunc, AggSpec, SortKey};
use joinstudy_storage::types::{Date, Decimal};

pub fn run(data: &TpchData, cfg: &QueryConfig, engine: &Engine) -> Table {
    let lo = Date::from_ymd(1995, 1, 1);
    let hi = Date::from_ymd(1996, 12, 31);

    let part = scan_where(&data.part, &["p_partkey", "p_type"], |s| {
        cx(s, "p_type").eq(Expr::str("ECONOMY ANODIZED STEEL"))
    });
    // Late materialization: carry only keys + tid; fetch the money columns
    // after the last join.
    let lineitem = if cfg.lm {
        Plan::scan_tid(
            &data.lineitem,
            &["l_partkey", "l_suppkey", "l_orderkey"],
            None,
        )
    } else {
        Plan::scan(
            &data.lineitem,
            &[
                "l_partkey",
                "l_suppkey",
                "l_orderkey",
                "l_extendedprice",
                "l_discount",
            ],
            None,
        )
    };
    let pl = join_on(
        part,
        lineitem,
        JoinType::Inner,
        &["p_partkey"],
        &["l_partkey"],
    );

    let orders = scan_where(
        &data.orders,
        &["o_orderkey", "o_custkey", "o_orderdate"],
        |s| {
            Expr::and(vec![
                cx(s, "o_orderdate").ge(Expr::date(lo)),
                cx(s, "o_orderdate").le(Expr::date(hi)),
            ])
        },
    );
    let plo = join_on(
        pl,
        orders,
        JoinType::Inner,
        &["l_orderkey"],
        &["o_orderkey"],
    );

    let region = scan_where(&data.region, &["r_regionkey", "r_name"], |s| {
        cx(s, "r_name").eq(Expr::str("AMERICA"))
    });
    let nation = Plan::scan(&data.nation, &["n_nationkey", "n_regionkey"], None);
    let rn = join_on(
        region,
        nation,
        JoinType::Inner,
        &["r_regionkey"],
        &["n_regionkey"],
    );
    let customer = Plan::scan(&data.customer, &["c_custkey", "c_nationkey"], None);
    let c = join_on(
        rn,
        customer,
        JoinType::Inner,
        &["n_nationkey"],
        &["c_nationkey"],
    );

    let t = join_on(c, plo, JoinType::Inner, &["c_custkey"], &["o_custkey"]);

    // Supplier's nation (renamed: the customer chain already has n_* names).
    let n2 = map_where(
        Plan::scan(&data.nation, &["n_nationkey", "n_name"], None),
        |s| {
            vec![
                (cx(s, "n_nationkey"), "n2_key"),
                (cx(s, "n_name"), "supp_nation"),
            ]
        },
    );
    let supplier = Plan::scan(&data.supplier, &["s_suppkey", "s_nationkey"], None);
    let n2s = join_on(n2, supplier, JoinType::Inner, &["n2_key"], &["s_nationkey"]);

    let mut t2 = join_on(n2s, t, JoinType::Inner, &["s_suppkey"], &["l_suppkey"]);
    if cfg.lm {
        let ts = t2.schema();
        t2 = Plan::LateLoad {
            input: Box::new(t2),
            table: std::sync::Arc::clone(&data.lineitem),
            tid_col: ts.index_of(TID_COLUMN),
            cols: vec![
                data.lineitem.schema().index_of("l_extendedprice"),
                data.lineitem.schema().index_of("l_discount"),
            ],
        };
    }

    let projected = map_where(t2, |s| {
        let volume = revenue_expr(s);
        vec![
            (cx(s, "o_orderdate").extract_year(), "o_year"),
            (volume.clone(), "volume"),
            (
                Expr::case_when(
                    cx(s, "supp_nation").eq(Expr::str("BRAZIL")),
                    volume,
                    Expr::dec(Decimal::from_int(0)),
                ),
                "brazil_volume",
            ),
        ]
    });
    let agg = projected.aggregate(
        &[0],
        vec![
            AggSpec::new(AggFunc::Sum, 2, "num"),
            AggSpec::new(AggFunc::Sum, 1, "den"),
        ],
    );
    let share = map_where(agg, |s| {
        vec![
            (cx(s, "o_year"), "o_year"),
            (cx(s, "num").div(cx(s, "den")), "mkt_share"),
        ]
    });
    let mut plan = share.sort(vec![SortKey::asc(0)], None);
    cfg.apply(&mut plan);
    engine.run(&plan)
}
