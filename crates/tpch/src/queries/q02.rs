//! TPC-H Q2 — minimum-cost supplier. Small build sides throughout: the
//! paper's example of a query where every hash table fits in cache and
//! partitioning cannot pay off (§5.3.1 "Small Build Size").

use super::*;
use joinstudy_exec::ops::{AggFunc, AggSpec, SortKey};

/// region(EUROPE) ⋈ nation ⋈ supplier(+`extra` columns) ⋈ partsupp.
fn cost_chain(data: &TpchData, extra_supplier_cols: &[&str]) -> Plan {
    let region = scan_where(&data.region, &["r_regionkey", "r_name"], |s| {
        cx(s, "r_name").eq(Expr::str("EUROPE"))
    });
    let nation = Plan::scan(
        &data.nation,
        &["n_nationkey", "n_name", "n_regionkey"],
        None,
    );
    let rn = join_on(
        region,
        nation,
        JoinType::Inner,
        &["r_regionkey"],
        &["n_regionkey"],
    );

    let mut sup_cols = vec!["s_suppkey", "s_nationkey"];
    sup_cols.extend_from_slice(extra_supplier_cols);
    let supplier = Plan::scan(&data.supplier, &sup_cols, None);
    let rns = join_on(
        rn,
        supplier,
        JoinType::Inner,
        &["n_nationkey"],
        &["s_nationkey"],
    );

    let partsupp = Plan::scan(
        &data.partsupp,
        &["ps_partkey", "ps_suppkey", "ps_supplycost"],
        None,
    );
    join_on(
        rns,
        partsupp,
        JoinType::Inner,
        &["s_suppkey"],
        &["ps_suppkey"],
    )
}

pub fn run(data: &TpchData, cfg: &QueryConfig, engine: &Engine) -> Table {
    // Subquery chain: per-part minimum supply cost within EUROPE (the spec
    // repeats the region/nation/supplier joins — so do we).
    let sub = cost_chain(data, &[]);
    let ss = sub.schema();
    let minc = sub.aggregate(
        &[ss.index_of("ps_partkey")],
        vec![AggSpec::new(
            AggFunc::Min,
            ss.index_of("ps_supplycost"),
            "min_cost",
        )],
    );

    let part = scan_where(
        &data.part,
        &["p_partkey", "p_mfgr", "p_size", "p_type"],
        |s| {
            Expr::and(vec![
                cx(s, "p_size").eq(Expr::i32(15)),
                cx(s, "p_type").like("%BRASS"),
            ])
        },
    );
    let main = cost_chain(
        data,
        &["s_acctbal", "s_name", "s_address", "s_phone", "s_comment"],
    );
    let pm = join_on(part, main, JoinType::Inner, &["p_partkey"], &["ps_partkey"]);
    let joined = join_on(
        minc,
        pm,
        JoinType::Inner,
        &["ps_partkey", "min_cost"],
        &["p_partkey", "ps_supplycost"],
    );

    let projected = map_where(joined, |s| {
        vec![
            (cx(s, "s_acctbal"), "s_acctbal"),
            (cx(s, "s_name"), "s_name"),
            (cx(s, "n_name"), "n_name"),
            (cx(s, "p_partkey"), "p_partkey"),
            (cx(s, "p_mfgr"), "p_mfgr"),
            (cx(s, "s_address"), "s_address"),
            (cx(s, "s_phone"), "s_phone"),
            (cx(s, "s_comment"), "s_comment"),
        ]
    });
    let mut plan = projected.sort(
        vec![
            SortKey::desc(0),
            SortKey::asc(2),
            SortKey::asc(1),
            SortKey::asc(3),
        ],
        Some(100),
    );
    cfg.apply(&mut plan);
    engine.run(&plan)
}
