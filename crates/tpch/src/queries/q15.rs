//! TPC-H Q15 — top supplier. The revenue view and its maximum are
//! evaluated as separate plans (uncorrelated subqueries); the single join
//! matches suppliers against the best-revenue rows.

use super::*;
use joinstudy_exec::ops::{AggFunc, AggSpec, SortKey};
use joinstudy_storage::types::{Date, Decimal};
use std::sync::Arc;

pub fn run(data: &TpchData, cfg: &QueryConfig, engine: &Engine) -> Table {
    let lo = Date::from_ymd(1996, 1, 1);
    let hi = lo.add_months(3);

    // revenue view: supplier → total revenue in the quarter.
    let rev_plan = map_where(
        scan_where(
            &data.lineitem,
            &["l_suppkey", "l_extendedprice", "l_discount", "l_shipdate"],
            |s| {
                Expr::and(vec![
                    cx(s, "l_shipdate").ge(Expr::date(lo)),
                    cx(s, "l_shipdate").lt(Expr::date(hi)),
                ])
            },
        ),
        |s| {
            vec![
                (cx(s, "l_suppkey"), "supplier_no"),
                (revenue_expr(s), "rev"),
            ]
        },
    )
    .aggregate(&[0], vec![AggSpec::new(AggFunc::Sum, 1, "total_revenue")]);
    let revenue = Arc::new(engine.run(&rev_plan));

    let max_plan = Plan::scan(&revenue, &["total_revenue"], None)
        .aggregate(&[], vec![AggSpec::new(AggFunc::Max, 0, "m")]);
    let max_rev = Decimal(engine.run(&max_plan).column_by_name("m").as_i64()[0]);

    let best = scan_where(&revenue, &["supplier_no", "total_revenue"], |s| {
        cx(s, "total_revenue").eq(Expr::dec(max_rev))
    });
    let supplier = Plan::scan(
        &data.supplier,
        &["s_suppkey", "s_name", "s_address", "s_phone"],
        None,
    );
    let joined = join_on(
        best,
        supplier,
        JoinType::Inner,
        &["supplier_no"],
        &["s_suppkey"],
    );
    let projected = map_where(joined, |s| {
        vec![
            (cx(s, "s_suppkey"), "s_suppkey"),
            (cx(s, "s_name"), "s_name"),
            (cx(s, "s_address"), "s_address"),
            (cx(s, "s_phone"), "s_phone"),
            (cx(s, "total_revenue"), "total_revenue"),
        ]
    });
    let mut plan = projected.sort(vec![SortKey::asc(0)], None);
    cfg.apply(&mut plan);
    engine.run(&plan)
}
