//! TPC-H Q16 — parts/supplier relationship. Dominated by the distinct
//! grouping (§5.3.1 "Otherwise dominated"); the anti join against the
//! complaints suppliers preserves the probe (partsupp) side.

use super::*;
use joinstudy_exec::ops::{AggFunc, AggSpec, SortKey};
use joinstudy_storage::types::Value;

pub fn run(data: &TpchData, cfg: &QueryConfig, engine: &Engine) -> Table {
    let sizes: Vec<Value> = [49, 14, 23, 45, 19, 3, 36, 9]
        .iter()
        .map(|&v| Value::Int32(v))
        .collect();
    let part = scan_where(
        &data.part,
        &["p_partkey", "p_brand", "p_type", "p_size"],
        |s| {
            Expr::and(vec![
                cx(s, "p_brand").ne(Expr::str("Brand#45")),
                cx(s, "p_type").like("MEDIUM POLISHED%").not(),
                cx(s, "p_size").in_list(sizes),
            ])
        },
    );
    let partsupp = Plan::scan(&data.partsupp, &["ps_partkey", "ps_suppkey"], None);
    let t = join_on(
        part,
        partsupp,
        JoinType::Inner,
        &["p_partkey"],
        &["ps_partkey"],
    );

    // ps_suppkey NOT IN (complaints suppliers): anti join preserving partsupp.
    let bad = scan_where(&data.supplier, &["s_suppkey", "s_comment"], |s| {
        cx(s, "s_comment").like("%Customer%Complaints%")
    });
    let t2 = join_on(bad, t, JoinType::ProbeAnti, &["s_suppkey"], &["ps_suppkey"]);

    let ts = t2.schema();
    let mut plan = t2
        .aggregate(
            &[
                ts.index_of("p_brand"),
                ts.index_of("p_type"),
                ts.index_of("p_size"),
            ],
            vec![AggSpec::new(
                AggFunc::CountDistinct,
                ts.index_of("ps_suppkey"),
                "supplier_cnt",
            )],
        )
        .sort(
            vec![
                SortKey::desc(3),
                SortKey::asc(0),
                SortKey::asc(1),
                SortKey::asc(2),
            ],
            None,
        );
    cfg.apply(&mut plan);
    engine.run(&plan)
}
