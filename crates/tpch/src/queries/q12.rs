//! TPC-H Q12 — shipping modes and order priority. One join whose build
//! side is the *filtered lineitem* (87 MB at SF 100 — 4× LLC); the BHJ
//! stays flat thanks to ROF prefetching while the RJ pays full
//! materialization (§5.3.1).

use super::*;
use joinstudy_exec::ops::{AggFunc, AggSpec, SortKey};
use joinstudy_storage::types::{Date, Value};

pub fn run(data: &TpchData, cfg: &QueryConfig, engine: &Engine) -> Table {
    let lo = Date::from_ymd(1994, 1, 1);
    let hi = lo.add_years(1);

    let lineitem = scan_where(
        &data.lineitem,
        &[
            "l_orderkey",
            "l_shipmode",
            "l_shipdate",
            "l_commitdate",
            "l_receiptdate",
        ],
        |s| {
            Expr::and(vec![
                cx(s, "l_shipmode")
                    .in_list(vec![Value::Str("MAIL".into()), Value::Str("SHIP".into())]),
                cx(s, "l_commitdate").lt(cx(s, "l_receiptdate")),
                cx(s, "l_shipdate").lt(cx(s, "l_commitdate")),
                cx(s, "l_receiptdate").ge(Expr::date(lo)),
                cx(s, "l_receiptdate").lt(Expr::date(hi)),
            ])
        },
    );
    let orders = Plan::scan(&data.orders, &["o_orderkey", "o_orderpriority"], None);
    let t = join_on(
        lineitem,
        orders,
        JoinType::Inner,
        &["l_orderkey"],
        &["o_orderkey"],
    );

    let projected = map_where(t, |s| {
        let is_high = cx(s, "o_orderpriority").in_list(vec![
            Value::Str("1-URGENT".into()),
            Value::Str("2-HIGH".into()),
        ]);
        vec![
            (cx(s, "l_shipmode"), "l_shipmode"),
            (
                Expr::case_when(is_high.clone(), Expr::i64(1), Expr::i64(0)),
                "high_line",
            ),
            (
                Expr::case_when(is_high, Expr::i64(0), Expr::i64(1)),
                "low_line",
            ),
        ]
    });
    let mut plan = projected
        .aggregate(
            &[0],
            vec![
                AggSpec::new(AggFunc::Sum, 1, "high_line_count"),
                AggSpec::new(AggFunc::Sum, 2, "low_line_count"),
            ],
        )
        .sort(vec![SortKey::asc(0)], None);
    cfg.apply(&mut plan);
    engine.run(&plan)
}
