//! TPC-H Q3 — shipping priority (BUILDING segment, cutoff 1995-03-15).
//! In the paper's system this query is dominated by a group join; here the
//! two hash joins feed a hash aggregation.

use super::*;
use joinstudy_exec::ops::{AggFunc, AggSpec, SortKey};
use joinstudy_storage::types::Date;

pub fn run(data: &TpchData, cfg: &QueryConfig, engine: &Engine) -> Table {
    let cutoff = Date::from_ymd(1995, 3, 15);

    let customer = scan_where(&data.customer, &["c_custkey", "c_mktsegment"], |s| {
        cx(s, "c_mktsegment").eq(Expr::str("BUILDING"))
    });
    let orders = scan_where(
        &data.orders,
        &["o_orderkey", "o_custkey", "o_orderdate", "o_shippriority"],
        |s| cx(s, "o_orderdate").lt(Expr::date(cutoff)),
    );
    let co = join_on(
        customer,
        orders,
        JoinType::Inner,
        &["c_custkey"],
        &["o_custkey"],
    );

    let lineitem = if cfg.lm {
        // LM: carry only key + filter column + tid through the join.
        let idx: Vec<usize> = ["l_orderkey", "l_shipdate"]
            .iter()
            .map(|n| data.lineitem.schema().index_of(n))
            .collect();
        let schema = joinstudy_storage::table::Schema::new(
            idx.iter()
                .map(|&i| data.lineitem.schema().fields[i].clone())
                .collect(),
        );
        Plan::Scan {
            table: std::sync::Arc::clone(&data.lineitem),
            cols: idx,
            filter: Some(cx(&schema, "l_shipdate").gt(Expr::date(cutoff))),
            tid: true,
        }
    } else {
        scan_where(
            &data.lineitem,
            &["l_orderkey", "l_extendedprice", "l_discount", "l_shipdate"],
            |s| cx(s, "l_shipdate").gt(Expr::date(cutoff)),
        )
    };
    let mut t = join_on(
        co,
        lineitem,
        JoinType::Inner,
        &["o_orderkey"],
        &["l_orderkey"],
    );
    if cfg.lm {
        t = late_load_lineitem(t, data, &["l_extendedprice", "l_discount"]);
    }

    let projected = map_where(t, |s| {
        vec![
            (cx(s, "o_orderkey"), "l_orderkey"),
            (cx(s, "o_orderdate"), "o_orderdate"),
            (cx(s, "o_shippriority"), "o_shippriority"),
            (revenue_expr(s), "revenue"),
        ]
    });
    let mut plan = projected
        .aggregate(&[0, 1, 2], vec![AggSpec::new(AggFunc::Sum, 3, "revenue")])
        .sort(vec![SortKey::desc(3), SortKey::asc(1)], Some(10));
    cfg.apply(&mut plan);
    engine.run(&plan)
}
