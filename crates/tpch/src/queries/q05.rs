//! TPC-H Q5 — local supplier volume (ASIA, 1994). Five joins; the
//! lineitem join has a 1:117 build:probe size ratio, the paper's example of
//! a size difference too large for partitioning to pay off (§5.3.2).

use super::*;
use joinstudy_exec::ops::{AggFunc, AggSpec, SortKey};
use joinstudy_storage::types::Date;

pub fn run(data: &TpchData, cfg: &QueryConfig, engine: &Engine) -> Table {
    let lo = Date::from_ymd(1994, 1, 1);
    let hi = lo.add_years(1);

    let region = scan_where(&data.region, &["r_regionkey", "r_name"], |s| {
        cx(s, "r_name").eq(Expr::str("ASIA"))
    });
    let nation = Plan::scan(
        &data.nation,
        &["n_nationkey", "n_name", "n_regionkey"],
        None,
    );
    let rn = join_on(
        region,
        nation,
        JoinType::Inner,
        &["r_regionkey"],
        &["n_regionkey"],
    );

    let customer = Plan::scan(&data.customer, &["c_custkey", "c_nationkey"], None);
    let c = join_on(
        rn,
        customer,
        JoinType::Inner,
        &["n_nationkey"],
        &["c_nationkey"],
    );

    let orders = scan_where(
        &data.orders,
        &["o_orderkey", "o_custkey", "o_orderdate"],
        |s| {
            Expr::and(vec![
                cx(s, "o_orderdate").ge(Expr::date(lo)),
                cx(s, "o_orderdate").lt(Expr::date(hi)),
            ])
        },
    );
    let co = join_on(c, orders, JoinType::Inner, &["c_custkey"], &["o_custkey"]);

    let lineitem = if cfg.lm {
        Plan::scan_tid(&data.lineitem, &["l_orderkey", "l_suppkey"], None)
    } else {
        Plan::scan(
            &data.lineitem,
            &["l_orderkey", "l_suppkey", "l_extendedprice", "l_discount"],
            None,
        )
    };
    let col = join_on(
        co,
        lineitem,
        JoinType::Inner,
        &["o_orderkey"],
        &["l_orderkey"],
    );

    // Supplier must be in the customer's nation: a two-column join key.
    let supplier = Plan::scan(&data.supplier, &["s_suppkey", "s_nationkey"], None);
    let mut t = join_on(
        supplier,
        col,
        JoinType::Inner,
        &["s_suppkey", "s_nationkey"],
        &["l_suppkey", "n_nationkey"],
    );
    if cfg.lm {
        t = late_load_lineitem(t, data, &["l_extendedprice", "l_discount"]);
    }

    let projected = map_where(t, |s| {
        vec![(cx(s, "n_name"), "n_name"), (revenue_expr(s), "revenue")]
    });
    let mut plan = projected
        .aggregate(&[0], vec![AggSpec::new(AggFunc::Sum, 1, "revenue")])
        .sort(vec![SortKey::desc(1)], None);
    cfg.apply(&mut plan);
    engine.run(&plan)
}
