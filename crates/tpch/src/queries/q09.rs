//! TPC-H Q9 — product-type profit (parts named `%green%`). Like Q7, the
//! topmost joins carry wide (> 48 B) build tuples, which makes
//! partitioning too expensive (§5.3.2).

use super::*;
use joinstudy_exec::ops::{AggFunc, AggSpec, SortKey};

pub fn run(data: &TpchData, cfg: &QueryConfig, engine: &Engine) -> Table {
    let part = scan_where(&data.part, &["p_partkey", "p_name"], |s| {
        cx(s, "p_name").like("%green%")
    });
    let lineitem = if cfg.lm {
        Plan::scan_tid(
            &data.lineitem,
            &["l_partkey", "l_suppkey", "l_orderkey"],
            None,
        )
    } else {
        Plan::scan(
            &data.lineitem,
            &[
                "l_partkey",
                "l_suppkey",
                "l_orderkey",
                "l_quantity",
                "l_extendedprice",
                "l_discount",
            ],
            None,
        )
    };
    let pl = join_on(
        part,
        lineitem,
        JoinType::Inner,
        &["p_partkey"],
        &["l_partkey"],
    );

    // partsupp joined on the composite (partkey, suppkey) key.
    let partsupp = Plan::scan(
        &data.partsupp,
        &["ps_partkey", "ps_suppkey", "ps_supplycost"],
        None,
    );
    let t = join_on(
        partsupp,
        pl,
        JoinType::Inner,
        &["ps_partkey", "ps_suppkey"],
        &["l_partkey", "l_suppkey"],
    );

    let nation = Plan::scan(&data.nation, &["n_nationkey", "n_name"], None);
    let supplier = Plan::scan(&data.supplier, &["s_suppkey", "s_nationkey"], None);
    let ns = join_on(
        nation,
        supplier,
        JoinType::Inner,
        &["n_nationkey"],
        &["s_nationkey"],
    );
    let t2 = join_on(ns, t, JoinType::Inner, &["s_suppkey"], &["l_suppkey"]);

    // Wide build side against the orders probe.
    let orders = Plan::scan(&data.orders, &["o_orderkey", "o_orderdate"], None);
    let mut t3 = join_on(
        t2,
        orders,
        JoinType::Inner,
        &["l_orderkey"],
        &["o_orderkey"],
    );
    if cfg.lm {
        t3 = late_load_lineitem(t3, data, &["l_quantity", "l_extendedprice", "l_discount"]);
    }

    let projected = map_where(t3, |s| {
        let amount = revenue_expr(s).sub(cx(s, "ps_supplycost").mul(cx(s, "l_quantity")));
        vec![
            (cx(s, "n_name"), "nation"),
            (cx(s, "o_orderdate").extract_year(), "o_year"),
            (amount, "amount"),
        ]
    });
    let mut plan = projected
        .aggregate(&[0, 1], vec![AggSpec::new(AggFunc::Sum, 2, "sum_profit")])
        .sort(vec![SortKey::asc(0), SortKey::desc(1)], None);
    cfg.apply(&mut plan);
    engine.run(&plan)
}
