//! TPC-H Q19 — discounted revenue (three brand/container/quantity
//! brackets). The build side is ~2 MB and cache-resident, yet the Bloom
//! filter drops 90% of probes before partitioning, so BHJ and BRJ end up
//! close (§5.3.1).

use super::*;
use joinstudy_exec::ops::{AggFunc, AggSpec};
use joinstudy_storage::types::{Decimal, Value};

struct Bracket {
    brand: &'static str,
    containers: [&'static str; 4],
    qty_lo: i64,
    qty_hi: i64,
    size_hi: i32,
}

const BRACKETS: [Bracket; 3] = [
    Bracket {
        brand: "Brand#12",
        containers: ["SM CASE", "SM BOX", "SM PACK", "SM PKG"],
        qty_lo: 1,
        qty_hi: 11,
        size_hi: 5,
    },
    Bracket {
        brand: "Brand#23",
        containers: ["MED BAG", "MED BOX", "MED PKG", "MED PACK"],
        qty_lo: 10,
        qty_hi: 20,
        size_hi: 10,
    },
    Bracket {
        brand: "Brand#34",
        containers: ["LG CASE", "LG BOX", "LG PACK", "LG PKG"],
        qty_lo: 20,
        qty_hi: 30,
        size_hi: 15,
    },
];

fn part_bracket(s: &Schema, b: &Bracket) -> Expr {
    Expr::and(vec![
        cx(s, "p_brand").eq(Expr::str(b.brand)),
        cx(s, "p_container").in_list(
            b.containers
                .iter()
                .map(|c| Value::Str((*c).into()))
                .collect(),
        ),
        cx(s, "p_size").ge(Expr::i32(1)),
        cx(s, "p_size").le(Expr::i32(b.size_hi)),
    ])
}

fn full_bracket(s: &Schema, b: &Bracket) -> Expr {
    Expr::and(vec![
        part_bracket(s, b),
        cx(s, "l_quantity").ge(Expr::dec(Decimal::from_int(b.qty_lo))),
        cx(s, "l_quantity").le(Expr::dec(Decimal::from_int(b.qty_hi))),
    ])
}

pub fn run(data: &TpchData, cfg: &QueryConfig, engine: &Engine) -> Table {
    let part = scan_where(
        &data.part,
        &["p_partkey", "p_brand", "p_size", "p_container"],
        |s| Expr::or(BRACKETS.iter().map(|b| part_bracket(s, b)).collect()),
    );
    let lineitem = scan_where(
        &data.lineitem,
        &[
            "l_partkey",
            "l_quantity",
            "l_extendedprice",
            "l_discount",
            "l_shipinstruct",
            "l_shipmode",
        ],
        |s| {
            Expr::and(vec![
                cx(s, "l_shipmode")
                    .in_list(vec![Value::Str("AIR".into()), Value::Str("REG AIR".into())]),
                cx(s, "l_shipinstruct").eq(Expr::str("DELIVER IN PERSON")),
            ])
        },
    );
    let t = join_on(
        part,
        lineitem,
        JoinType::Inner,
        &["p_partkey"],
        &["l_partkey"],
    );
    // Residual predicate: the OR of the full brand × container × quantity
    // × size brackets.
    let t = filter_where(t, |s| {
        Expr::or(BRACKETS.iter().map(|b| full_bracket(s, b)).collect())
    });
    let projected = map_where(t, |s| vec![(revenue_expr(s), "revenue")]);
    let mut plan = projected.aggregate(&[], vec![AggSpec::new(AggFunc::Sum, 0, "revenue")]);
    cfg.apply(&mut plan);
    engine.run(&plan)
}
