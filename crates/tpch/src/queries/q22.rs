//! TPC-H Q22 — global sales opportunity. The one join in all of TPC-H
//! where the Bloom radix join beats the BHJ (by ~30% at SF 100): an anti
//! join preserving the 155 MB customer build side, probed by the unfiltered
//! orders relation with narrow 12 B probe tuples (§5.3.2).

use super::*;
use joinstudy_exec::ops::{AggFunc, AggSpec, SortKey};
use joinstudy_storage::types::{Decimal, Value};

const CODES: [&str; 7] = ["13", "31", "23", "29", "30", "18", "17"];

fn code_list() -> Vec<Value> {
    CODES.iter().map(|c| Value::Str((*c).into())).collect()
}

pub fn run(data: &TpchData, cfg: &QueryConfig, engine: &Engine) -> Table {
    // Scalar subquery: average positive balance among the country codes.
    let mut avg_plan = scan_where(&data.customer, &["c_phone", "c_acctbal"], |s| {
        Expr::and(vec![
            cx(s, "c_acctbal").gt(Expr::dec(Decimal::from_int(0))),
            cx(s, "c_phone").substr(1, 2).in_list(code_list()),
        ])
    })
    .aggregate(&[], vec![AggSpec::new(AggFunc::Avg, 1, "avg_bal")]);
    cfg.apply_aux(&mut avg_plan);
    let avg_bal = Decimal(engine.run(&avg_plan).column_by_name("avg_bal").as_i64()[0]);

    // Main plan: rich, idle customers with NO orders (build-side anti join).
    let customer = scan_where(
        &data.customer,
        &["c_custkey", "c_phone", "c_acctbal"],
        |s| {
            Expr::and(vec![
                cx(s, "c_phone").substr(1, 2).in_list(code_list()),
                cx(s, "c_acctbal").gt(Expr::dec(avg_bal)),
            ])
        },
    );
    let orders = Plan::scan(&data.orders, &["o_custkey"], None);
    let anti = join_on(
        customer,
        orders,
        JoinType::BuildAnti,
        &["c_custkey"],
        &["o_custkey"],
    );

    let projected = map_where(anti, |s| {
        vec![
            (cx(s, "c_phone").substr(1, 2), "cntrycode"),
            (cx(s, "c_acctbal"), "c_acctbal"),
        ]
    });
    let mut plan = projected
        .aggregate(
            &[0],
            vec![
                AggSpec::new(AggFunc::CountStar, 0, "numcust"),
                AggSpec::new(AggFunc::Sum, 1, "totacctbal"),
            ],
        )
        .sort(vec![SortKey::asc(0)], None);
    cfg.apply(&mut plan);
    engine.run(&plan)
}
