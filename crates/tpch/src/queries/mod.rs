//! Physical plans for every join-bearing TPC-H query (the paper's §5.3
//! evaluation set: 2, 3, 4, 5, 7–12, 14–22) plus Q13 as an extension.
//!
//! Queries 1, 6 contain no join; query 13 uses a groupjoin in the paper's
//! system and is excluded from its join comparison (footnote 6) — our Q13
//! implements that groupjoin and is skipped by harnesses that compare
//! swappable joins (`main_joins == 0`). Each query module
//! exposes `run(data, cfg, engine) -> Table`; queries with uncorrelated
//! scalar subqueries (11, 15, 17, 18, 20, 21, 22) execute those as separate
//! plans first — exactly how a real engine evaluates them — and feed the
//! resulting constants/tables into the main plan.
//!
//! [`QueryConfig`] selects the join implementation for *all* joins (the
//! §5.3.1 methodology), applies per-join overrides on the main plan (the
//! §5.3.2 permutation study), and toggles late materialization for the
//! queries where the paper found it meaningful (Q8, Q14, Q20).

pub mod q02;
pub mod q03;
pub mod q04;
pub mod q05;
pub mod q07;
pub mod q08;
pub mod q09;
pub mod q10;
pub mod q11;
pub mod q12;
pub mod q13;
pub mod q14;
pub mod q15;
pub mod q16;
pub mod q17;
pub mod q18;
pub mod q19;
pub mod q20;
pub mod q21;
pub mod q22;

use crate::dbgen::TpchData;
use joinstudy_core::{Engine, JoinAlgo, JoinType, Plan};
use joinstudy_exec::expr::Expr;
use joinstudy_storage::table::{Schema, Table};

/// Join-implementation configuration for one query run.
#[derive(Debug, Clone)]
pub struct QueryConfig {
    /// Algorithm for every join.
    pub algo: JoinAlgo,
    /// Late materialization (honored by the queries where it matters).
    pub lm: bool,
    /// Per-join overrides on the main plan, post-order numbered
    /// (the Figure 12 permutation study).
    pub overrides: Vec<(usize, JoinAlgo)>,
}

impl QueryConfig {
    pub fn new(algo: JoinAlgo) -> QueryConfig {
        QueryConfig {
            algo,
            lm: false,
            overrides: Vec::new(),
        }
    }

    pub fn with_lm(mut self) -> QueryConfig {
        self.lm = true;
        self
    }

    pub fn with_override(mut self, join_idx: usize, algo: JoinAlgo) -> QueryConfig {
        self.overrides.push((join_idx, algo));
        self
    }

    /// Apply algorithm selection + overrides to a query's main plan.
    pub fn apply(&self, plan: &mut Plan) {
        plan.set_all_join_algos(self.algo);
        for &(idx, algo) in &self.overrides {
            plan.override_join_algo(idx, algo);
        }
    }

    /// Apply only the global algorithm (auxiliary subquery plans).
    pub fn apply_aux(&self, plan: &mut Plan) {
        plan.set_all_join_algos(self.algo);
    }
}

/// Column reference by name within a plan's schema.
pub(crate) fn cx(schema: &Schema, name: &str) -> Expr {
    Expr::col(schema.index_of(name))
}

/// Scan with a predicate built against the *projected* schema.
pub(crate) fn scan_where(
    table: &std::sync::Arc<Table>,
    cols: &[&str],
    pred: impl FnOnce(&Schema) -> Expr,
) -> Plan {
    let schema = Schema::new(
        cols.iter()
            .map(|n| table.schema().fields[table.schema().index_of(n)].clone())
            .collect(),
    );
    Plan::scan(table, cols, Some(pred(&schema)))
}

/// Filter with a predicate built against the input plan's schema.
pub(crate) fn filter_where(plan: Plan, pred: impl FnOnce(&Schema) -> Expr) -> Plan {
    let s = plan.schema();
    plan.filter(pred(&s))
}

/// Projection with expressions built against the input plan's schema.
pub(crate) fn map_where(plan: Plan, f: impl FnOnce(&Schema) -> Vec<(Expr, &'static str)>) -> Plan {
    let s = plan.schema();
    let (exprs, names): (Vec<Expr>, Vec<&str>) = f(&s).into_iter().unzip();
    plan.map(exprs, &names)
}

/// `build ⋈ probe` with keys given by column names resolved against each
/// side's schema. The algorithm placeholder is BHJ; `QueryConfig::apply`
/// rewrites it.
pub(crate) fn join_on(
    build: Plan,
    probe: Plan,
    kind: JoinType,
    build_keys: &[&str],
    probe_keys: &[&str],
) -> Plan {
    let bs = build.schema();
    let ps = probe.schema();
    let bk: Vec<usize> = build_keys.iter().map(|n| bs.index_of(n)).collect();
    let pk: Vec<usize> = probe_keys.iter().map(|n| ps.index_of(n)).collect();
    build.join(probe, JoinAlgo::Bhj, kind, &bk, &pk)
}

/// Late-materialization helper: re-fetch deferred lineitem columns by the
/// `@tid` carried from a `scan_tid` of lineitem (the §4.2 late-load
/// operator). No-op concerns are the caller's: only use after a
/// tid-carrying scan.
pub(crate) fn late_load_lineitem(plan: Plan, data: &TpchData, cols: &[&str]) -> Plan {
    let tid_col = plan
        .schema()
        .index_of(joinstudy_exec::ops::scan::TID_COLUMN);
    plan.late_load(&data.lineitem, tid_col, cols)
}

/// `revenue = l_extendedprice * (1 - l_discount)` over the given schema.
pub(crate) fn revenue_expr(schema: &Schema) -> Expr {
    cx(schema, "l_extendedprice").mul(
        Expr::dec(joinstudy_storage::types::Decimal::from_int(1)).sub(cx(schema, "l_discount")),
    )
}

/// One registered query.
pub struct TpchQuery {
    pub id: u32,
    /// Number of joins in the main plan (Fig 12 permutation bound).
    pub main_joins: usize,
    pub run: fn(&TpchData, &QueryConfig, &Engine) -> Table,
}

/// All join-bearing queries in the paper's evaluation set.
pub fn all_queries() -> Vec<TpchQuery> {
    vec![
        TpchQuery {
            id: 2,
            main_joins: 8,
            run: q02::run,
        },
        TpchQuery {
            id: 3,
            main_joins: 2,
            run: q03::run,
        },
        TpchQuery {
            id: 4,
            main_joins: 1,
            run: q04::run,
        },
        TpchQuery {
            id: 5,
            main_joins: 5,
            run: q05::run,
        },
        TpchQuery {
            id: 7,
            main_joins: 5,
            run: q07::run,
        },
        TpchQuery {
            id: 8,
            main_joins: 7,
            run: q08::run,
        },
        TpchQuery {
            id: 9,
            main_joins: 5,
            run: q09::run,
        },
        TpchQuery {
            id: 10,
            main_joins: 3,
            run: q10::run,
        },
        TpchQuery {
            id: 11,
            main_joins: 2,
            run: q11::run,
        },
        TpchQuery {
            id: 12,
            main_joins: 1,
            run: q12::run,
        },
        TpchQuery {
            id: 13,
            main_joins: 0,
            run: q13::run,
        },
        TpchQuery {
            id: 14,
            main_joins: 1,
            run: q14::run,
        },
        TpchQuery {
            id: 15,
            main_joins: 1,
            run: q15::run,
        },
        TpchQuery {
            id: 16,
            main_joins: 2,
            run: q16::run,
        },
        TpchQuery {
            id: 17,
            main_joins: 1,
            run: q17::run,
        },
        TpchQuery {
            id: 18,
            main_joins: 3,
            run: q18::run,
        },
        TpchQuery {
            id: 19,
            main_joins: 1,
            run: q19::run,
        },
        TpchQuery {
            id: 20,
            main_joins: 4,
            run: q20::run,
        },
        TpchQuery {
            id: 21,
            main_joins: 5,
            run: q21::run,
        },
        TpchQuery {
            id: 22,
            main_joins: 1,
            run: q22::run,
        },
    ]
}

/// Fetch one query by id.
pub fn query(id: u32) -> TpchQuery {
    all_queries()
        .into_iter()
        .find(|q| q.id == id)
        .unwrap_or_else(|| panic!("no such TPC-H query: {id}"))
}
