//! TPC-H Q20 — potential part promotion (forest% parts, CANADA, 1994).
//! The paper's LM showcase: the result's two text columns (s_name,
//! s_address) are only needed in the output, so late materialization cuts
//! the probe side by two thirds (§5.3.1).

use super::*;
use joinstudy_exec::ops::scan::TID_COLUMN;
use joinstudy_exec::ops::{AggFunc, AggSpec, SortKey};
use joinstudy_storage::types::{Date, Decimal};
use std::sync::Arc;

pub fn run(data: &TpchData, cfg: &QueryConfig, engine: &Engine) -> Table {
    let lo = Date::from_ymd(1994, 1, 1);
    let hi = lo.add_years(1);

    // Uncorrelated aggregate: half the shipped quantity per (part, supplier).
    let qty_plan = scan_where(
        &data.lineitem,
        &["l_partkey", "l_suppkey", "l_quantity", "l_shipdate"],
        |s| {
            Expr::and(vec![
                cx(s, "l_shipdate").ge(Expr::date(lo)),
                cx(s, "l_shipdate").lt(Expr::date(hi)),
            ])
        },
    )
    .aggregate(&[0, 1], vec![AggSpec::new(AggFunc::Sum, 2, "sum_qty")]);
    let half_plan = map_where(qty_plan, |s| {
        vec![
            (cx(s, "l_partkey"), "q_partkey"),
            (cx(s, "l_suppkey"), "q_suppkey"),
            (
                cx(s, "sum_qty").mul(Expr::dec(Decimal::from_parts(0, 50))),
                "half_qty",
            ),
        ]
    });
    let half = Arc::new(engine.run(&half_plan));

    // partsupp rows whose part is a forest% part (semi preserving partsupp).
    let forest = scan_where(&data.part, &["p_partkey", "p_name"], |s| {
        cx(s, "p_name").like("forest%")
    });
    let partsupp = Plan::scan(
        &data.partsupp,
        &["ps_partkey", "ps_suppkey", "ps_availqty"],
        None,
    );
    let ps = join_on(
        forest,
        partsupp,
        JoinType::ProbeSemi,
        &["p_partkey"],
        &["ps_partkey"],
    );

    // availqty > half of shipped quantity.
    let mut t = join_on(
        Plan::scan(&half, &["q_partkey", "q_suppkey", "half_qty"], None),
        ps,
        JoinType::Inner,
        &["q_partkey", "q_suppkey"],
        &["ps_partkey", "ps_suppkey"],
    );
    t = filter_where(t, |s| {
        cx(s, "ps_availqty").to_decimal().gt(cx(s, "half_qty"))
    });
    let tk = t.schema();
    let suppkeys = t.aggregate(
        &[tk.index_of("ps_suppkey")],
        vec![AggSpec::new(AggFunc::CountStar, 0, "n")],
    );

    // CANADA suppliers, optionally with late-materialized text columns.
    let nation = scan_where(&data.nation, &["n_nationkey", "n_name"], |s| {
        cx(s, "n_name").eq(Expr::str("CANADA"))
    });
    let supplier = if cfg.lm {
        Plan::scan_tid(&data.supplier, &["s_suppkey", "s_nationkey"], None)
    } else {
        Plan::scan(
            &data.supplier,
            &["s_suppkey", "s_name", "s_address", "s_nationkey"],
            None,
        )
    };
    let ns = join_on(
        nation,
        supplier,
        JoinType::Inner,
        &["n_nationkey"],
        &["s_nationkey"],
    );

    // Semi join preserving the supplier side.
    let mut result = join_on(
        suppkeys,
        ns,
        JoinType::ProbeSemi,
        &["ps_suppkey"],
        &["s_suppkey"],
    );
    if cfg.lm {
        let rs = result.schema();
        result = Plan::LateLoad {
            input: Box::new(result),
            table: Arc::clone(&data.supplier),
            tid_col: rs.index_of(TID_COLUMN),
            cols: vec![
                data.supplier.schema().index_of("s_name"),
                data.supplier.schema().index_of("s_address"),
            ],
        };
    }
    let projected = map_where(result, |s| {
        vec![
            (cx(s, "s_name"), "s_name"),
            (cx(s, "s_address"), "s_address"),
        ]
    });
    let mut plan = projected.sort(vec![SortKey::asc(0)], None);
    cfg.apply(&mut plan);
    engine.run(&plan)
}
