//! TPC-H Q11 — important stock identification (GERMANY). The largest
//! build side is ~480 KB, fitting L2 entirely: the paper's example of a
//! query where partitioning is redundant by construction (§5.3.1).

use super::*;
use joinstudy_exec::ops::{AggFunc, AggSpec, SortKey};
use joinstudy_storage::types::Decimal;

/// nation(GERMANY) ⋈ supplier ⋈ partsupp → (ps_partkey, value).
fn germany_chain(data: &TpchData) -> Plan {
    let nation = scan_where(&data.nation, &["n_nationkey", "n_name"], |s| {
        cx(s, "n_name").eq(Expr::str("GERMANY"))
    });
    let supplier = Plan::scan(&data.supplier, &["s_suppkey", "s_nationkey"], None);
    let ns = join_on(
        nation,
        supplier,
        JoinType::Inner,
        &["n_nationkey"],
        &["s_nationkey"],
    );
    let partsupp = Plan::scan(
        &data.partsupp,
        &["ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost"],
        None,
    );
    let t = join_on(
        ns,
        partsupp,
        JoinType::Inner,
        &["s_suppkey"],
        &["ps_suppkey"],
    );
    map_where(t, |s| {
        vec![
            (cx(s, "ps_partkey"), "ps_partkey"),
            (
                cx(s, "ps_supplycost").mul(cx(s, "ps_availqty").to_decimal()),
                "value",
            ),
        ]
    })
}

pub fn run(data: &TpchData, cfg: &QueryConfig, engine: &Engine) -> Table {
    // Scalar subquery: total German stock value (its own join chain).
    let mut sub = germany_chain(data).aggregate(&[], vec![AggSpec::new(AggFunc::Sum, 1, "total")]);
    cfg.apply_aux(&mut sub);
    let total = engine.run(&sub).column_by_name("total").as_i64()[0];
    let fraction = 0.0001 / data.sf;
    let threshold = Decimal((total as f64 * fraction) as i64);

    let mut plan =
        germany_chain(data).aggregate(&[0], vec![AggSpec::new(AggFunc::Sum, 1, "value")]);
    plan = filter_where(plan, |s| cx(s, "value").gt(Expr::dec(threshold)))
        .sort(vec![SortKey::desc(1)], None);
    cfg.apply(&mut plan);
    engine.run(&plan)
}
