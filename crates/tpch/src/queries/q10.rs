//! TPC-H Q10 — returned-item reporting. Dominated by scanning/selecting
//! the base tables (§5.3.1 "Otherwise dominated"), so the join choice
//! matters little at large scale factors.

use super::*;
use joinstudy_exec::ops::{AggFunc, AggSpec, SortKey};
use joinstudy_storage::types::Date;

pub fn run(data: &TpchData, cfg: &QueryConfig, engine: &Engine) -> Table {
    let lo = Date::from_ymd(1993, 10, 1);
    let hi = lo.add_months(3);

    let orders = scan_where(
        &data.orders,
        &["o_orderkey", "o_custkey", "o_orderdate"],
        |s| {
            Expr::and(vec![
                cx(s, "o_orderdate").ge(Expr::date(lo)),
                cx(s, "o_orderdate").lt(Expr::date(hi)),
            ])
        },
    );
    let customer = Plan::scan(
        &data.customer,
        &[
            "c_custkey",
            "c_name",
            "c_acctbal",
            "c_address",
            "c_phone",
            "c_comment",
            "c_nationkey",
        ],
        None,
    );
    let co = join_on(
        orders,
        customer,
        JoinType::Inner,
        &["o_custkey"],
        &["c_custkey"],
    );

    let lineitem = if cfg.lm {
        let idx: Vec<usize> = ["l_orderkey", "l_returnflag"]
            .iter()
            .map(|n| data.lineitem.schema().index_of(n))
            .collect();
        let schema = joinstudy_storage::table::Schema::new(
            idx.iter()
                .map(|&i| data.lineitem.schema().fields[i].clone())
                .collect(),
        );
        Plan::Scan {
            table: std::sync::Arc::clone(&data.lineitem),
            cols: idx,
            filter: Some(cx(&schema, "l_returnflag").eq(Expr::str("R"))),
            tid: true,
        }
    } else {
        scan_where(
            &data.lineitem,
            &[
                "l_orderkey",
                "l_extendedprice",
                "l_discount",
                "l_returnflag",
            ],
            |s| cx(s, "l_returnflag").eq(Expr::str("R")),
        )
    };
    let t = join_on(
        co,
        lineitem,
        JoinType::Inner,
        &["o_orderkey"],
        &["l_orderkey"],
    );

    let nation = Plan::scan(&data.nation, &["n_nationkey", "n_name"], None);
    let mut t2 = join_on(
        nation,
        t,
        JoinType::Inner,
        &["n_nationkey"],
        &["c_nationkey"],
    );
    if cfg.lm {
        t2 = late_load_lineitem(t2, data, &["l_extendedprice", "l_discount"]);
    }

    let projected = map_where(t2, |s| {
        vec![
            (cx(s, "c_custkey"), "c_custkey"),
            (cx(s, "c_name"), "c_name"),
            (cx(s, "c_acctbal"), "c_acctbal"),
            (cx(s, "n_name"), "n_name"),
            (cx(s, "c_address"), "c_address"),
            (cx(s, "c_phone"), "c_phone"),
            (cx(s, "c_comment"), "c_comment"),
            (revenue_expr(s), "revenue"),
        ]
    });
    let mut plan = projected
        .aggregate(
            &[0, 1, 2, 3, 4, 5, 6],
            vec![AggSpec::new(AggFunc::Sum, 7, "revenue")],
        )
        .sort(vec![SortKey::desc(7)], Some(20));
    cfg.apply(&mut plan);
    engine.run(&plan)
}
