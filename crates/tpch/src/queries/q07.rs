//! TPC-H Q7 — volume shipping between FRANCE and GERMANY. The topmost two
//! joins have large build *and* probe sides (§5.3.2): partitioning is too
//! expensive because build tuples exceed 48 B.

use super::*;
use joinstudy_exec::ops::{AggFunc, AggSpec, SortKey};
use joinstudy_storage::types::{Date, Value};

fn nations_filter(s: &Schema) -> Expr {
    cx(s, "n_name").in_list(vec![
        Value::Str("FRANCE".into()),
        Value::Str("GERMANY".into()),
    ])
}

pub fn run(data: &TpchData, cfg: &QueryConfig, engine: &Engine) -> Table {
    let lo = Date::from_ymd(1995, 1, 1);
    let hi = Date::from_ymd(1996, 12, 31);

    // Supplier side: nation(F/G) ⋈ supplier, renamed to supp_nation.
    let n1 = scan_where(&data.nation, &["n_nationkey", "n_name"], nations_filter);
    let supplier = Plan::scan(&data.supplier, &["s_suppkey", "s_nationkey"], None);
    let n1s = join_on(
        n1,
        supplier,
        JoinType::Inner,
        &["n_nationkey"],
        &["s_nationkey"],
    );
    let n1s = map_where(n1s, |s| {
        vec![
            (cx(s, "s_suppkey"), "s_suppkey"),
            (cx(s, "n_name"), "supp_nation"),
        ]
    });

    let date_filter = |s: &Schema| {
        Expr::and(vec![
            cx(s, "l_shipdate").ge(Expr::date(lo)),
            cx(s, "l_shipdate").le(Expr::date(hi)),
        ])
    };
    let lineitem = if cfg.lm {
        let idx: Vec<usize> = ["l_suppkey", "l_orderkey", "l_shipdate"]
            .iter()
            .map(|n| data.lineitem.schema().index_of(n))
            .collect();
        let schema = joinstudy_storage::table::Schema::new(
            idx.iter()
                .map(|&i| data.lineitem.schema().fields[i].clone())
                .collect(),
        );
        Plan::Scan {
            table: std::sync::Arc::clone(&data.lineitem),
            cols: idx,
            filter: Some(date_filter(&schema)),
            tid: true,
        }
    } else {
        scan_where(
            &data.lineitem,
            &[
                "l_suppkey",
                "l_orderkey",
                "l_shipdate",
                "l_extendedprice",
                "l_discount",
            ],
            date_filter,
        )
    };
    let sl = join_on(
        n1s,
        lineitem,
        JoinType::Inner,
        &["s_suppkey"],
        &["l_suppkey"],
    );

    // Large build ⋈ large probe: the filtered lineitem side against orders.
    let orders = Plan::scan(&data.orders, &["o_orderkey", "o_custkey"], None);
    let so = join_on(
        sl,
        orders,
        JoinType::Inner,
        &["l_orderkey"],
        &["o_orderkey"],
    );

    // Customer side: nation(F/G) ⋈ customer, renamed to cust_nation.
    let n2 = scan_where(&data.nation, &["n_nationkey", "n_name"], nations_filter);
    let customer = Plan::scan(&data.customer, &["c_custkey", "c_nationkey"], None);
    let n2c = join_on(
        n2,
        customer,
        JoinType::Inner,
        &["n_nationkey"],
        &["c_nationkey"],
    );
    let n2c = map_where(n2c, |s| {
        vec![
            (cx(s, "c_custkey"), "c_custkey"),
            (cx(s, "n_name"), "cust_nation"),
        ]
    });

    let mut t = join_on(n2c, so, JoinType::Inner, &["c_custkey"], &["o_custkey"]);
    if cfg.lm {
        t = late_load_lineitem(t, data, &["l_extendedprice", "l_discount"]);
    }

    // Only (FRANCE → GERMANY) and (GERMANY → FRANCE) flows count.
    let t = filter_where(t, |s| {
        Expr::or(vec![
            Expr::and(vec![
                cx(s, "supp_nation").eq(Expr::str("FRANCE")),
                cx(s, "cust_nation").eq(Expr::str("GERMANY")),
            ]),
            Expr::and(vec![
                cx(s, "supp_nation").eq(Expr::str("GERMANY")),
                cx(s, "cust_nation").eq(Expr::str("FRANCE")),
            ]),
        ])
    });

    let projected = map_where(t, |s| {
        vec![
            (cx(s, "supp_nation"), "supp_nation"),
            (cx(s, "cust_nation"), "cust_nation"),
            (cx(s, "l_shipdate").extract_year(), "l_year"),
            (revenue_expr(s), "volume"),
        ]
    });
    let mut plan = projected
        .aggregate(&[0, 1, 2], vec![AggSpec::new(AggFunc::Sum, 3, "revenue")])
        .sort(
            vec![SortKey::asc(0), SortKey::asc(1), SortKey::asc(2)],
            None,
        );
    cfg.apply(&mut plan);
    engine.run(&plan)
}
