//! TPC-H Q21 — suppliers who kept orders waiting (SAUDI ARABIA, status F).
//! The paper's deep-dive query (Figure 13): a left-deep five-join tree
//! whose joins span the full spectrum of build/probe characteristics.
//!
//! The correlated EXISTS / NOT EXISTS pair is decomposed into per-order
//! supplier counts: another supplier exists on the order iff the order has
//! ≥ 2 distinct suppliers; no *other* supplier was late iff the late
//! lineitems of the order involve exactly 1 distinct supplier (l1's own).

use super::*;
use joinstudy_exec::ops::{AggFunc, AggSpec, SortKey};
use std::sync::Arc;

pub fn run(data: &TpchData, cfg: &QueryConfig, engine: &Engine) -> Table {
    // Per-order distinct supplier counts (all lineitems / late lineitems).
    let all_counts = Plan::scan(&data.lineitem, &["l_orderkey", "l_suppkey"], None).aggregate(
        &[0],
        vec![AggSpec::new(AggFunc::CountDistinct, 1, "n_supp")],
    );
    let all_counts = Arc::new(engine.run(&all_counts));

    let late_counts = scan_where(
        &data.lineitem,
        &["l_orderkey", "l_suppkey", "l_receiptdate", "l_commitdate"],
        |s| cx(s, "l_receiptdate").gt(cx(s, "l_commitdate")),
    )
    .aggregate(
        &[0],
        vec![AggSpec::new(AggFunc::CountDistinct, 1, "n_late")],
    );
    let late_counts = Arc::new(engine.run(&late_counts));

    // Join 1: nation(SAUDI ARABIA) ⋈ supplier — a 12 B build side.
    let nation = scan_where(&data.nation, &["n_nationkey", "n_name"], |s| {
        cx(s, "n_name").eq(Expr::str("SAUDI ARABIA"))
    });
    let supplier = Plan::scan(
        &data.supplier,
        &["s_suppkey", "s_name", "s_nationkey"],
        None,
    );
    let ns = join_on(
        nation,
        supplier,
        JoinType::Inner,
        &["n_nationkey"],
        &["s_nationkey"],
    );

    // Join 2: the supplier's own late lineitems (1 MB ⋈ 6 GB in Fig 13).
    let l1 = scan_where(
        &data.lineitem,
        &["l_orderkey", "l_suppkey", "l_receiptdate", "l_commitdate"],
        |s| cx(s, "l_receiptdate").gt(cx(s, "l_commitdate")),
    );
    let t = join_on(ns, l1, JoinType::Inner, &["s_suppkey"], &["l_suppkey"]);

    // Join 3: only finalized orders.
    let orders = scan_where(&data.orders, &["o_orderkey", "o_orderstatus"], |s| {
        cx(s, "o_orderstatus").eq(Expr::str("F"))
    });
    let t = join_on(t, orders, JoinType::Inner, &["l_orderkey"], &["o_orderkey"]);

    // Join 4: EXISTS other-supplier ⟺ order has ≥ 2 distinct suppliers.
    let multi = scan_where(&all_counts, &["l_orderkey", "n_supp"], |s| {
        cx(s, "n_supp").ge(Expr::i64(2))
    });
    let multi = map_where(multi, |s| vec![(cx(s, "l_orderkey"), "mo_orderkey")]);
    let t = join_on(multi, t, JoinType::Inner, &["mo_orderkey"], &["o_orderkey"]);

    // Join 5: NOT EXISTS other late supplier ⟺ exactly 1 late supplier.
    let solo = scan_where(&late_counts, &["l_orderkey", "n_late"], |s| {
        cx(s, "n_late").eq(Expr::i64(1))
    });
    let solo = map_where(solo, |s| vec![(cx(s, "l_orderkey"), "so_orderkey")]);
    let t = join_on(solo, t, JoinType::Inner, &["so_orderkey"], &["o_orderkey"]);

    let ts = t.schema();
    let mut plan = t
        .aggregate(
            &[ts.index_of("s_name")],
            vec![AggSpec::new(AggFunc::CountStar, 0, "numwait")],
        )
        .sort(vec![SortKey::desc(1), SortKey::asc(0)], Some(100));
    cfg.apply(&mut plan);
    engine.run(&plan)
}
