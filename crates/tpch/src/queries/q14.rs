//! TPC-H Q14 — promotion effect (1995-09). Build and probe sides are
//! roughly equal in size, so both radix variants perform well at high SF
//! (§5.3.1). The paper's LM example where late materialization *hurts*:
//! it only removes 8 B from the build side but adds random access for all
//! surviving tuples.

use super::*;
use joinstudy_exec::ops::scan::TID_COLUMN;
use joinstudy_exec::ops::{AggFunc, AggSpec};
use joinstudy_storage::types::{Date, Decimal};

pub fn run(data: &TpchData, cfg: &QueryConfig, engine: &Engine) -> Table {
    let lo = Date::from_ymd(1995, 9, 1);
    let hi = lo.add_months(1);

    let date_filter = |s: &Schema| {
        Expr::and(vec![
            cx(s, "l_shipdate").ge(Expr::date(lo)),
            cx(s, "l_shipdate").lt(Expr::date(hi)),
        ])
    };
    let lineitem = if cfg.lm {
        // LM: defer the money columns past the join.
        let idx = ["l_partkey", "l_shipdate"]
            .iter()
            .map(|n| data.lineitem.schema().index_of(n))
            .collect::<Vec<_>>();
        let schema = Schema::new(
            idx.iter()
                .map(|&i| data.lineitem.schema().fields[i].clone())
                .collect(),
        );
        Plan::Scan {
            table: std::sync::Arc::clone(&data.lineitem),
            cols: idx,
            filter: Some(date_filter(&schema)),
            tid: true,
        }
    } else {
        scan_where(
            &data.lineitem,
            &["l_partkey", "l_shipdate", "l_extendedprice", "l_discount"],
            date_filter,
        )
    };

    let part = Plan::scan(&data.part, &["p_partkey", "p_type"], None);
    let mut t = join_on(
        lineitem,
        part,
        JoinType::Inner,
        &["l_partkey"],
        &["p_partkey"],
    );
    if cfg.lm {
        let ts = t.schema();
        t = Plan::LateLoad {
            input: Box::new(t),
            table: std::sync::Arc::clone(&data.lineitem),
            tid_col: ts.index_of(TID_COLUMN),
            cols: vec![
                data.lineitem.schema().index_of("l_extendedprice"),
                data.lineitem.schema().index_of("l_discount"),
            ],
        };
    }

    let projected = map_where(t, |s| {
        let rev = revenue_expr(s);
        vec![
            (
                Expr::case_when(
                    cx(s, "p_type").like("PROMO%"),
                    rev.clone(),
                    Expr::dec(Decimal::from_int(0)),
                ),
                "promo",
            ),
            (rev, "total"),
        ]
    });
    let agg = projected.aggregate(
        &[],
        vec![
            AggSpec::new(AggFunc::Sum, 0, "promo"),
            AggSpec::new(AggFunc::Sum, 1, "total"),
        ],
    );
    let mut plan = map_where(agg, |s| {
        vec![(
            Expr::dec(Decimal::from_int(100))
                .mul(cx(s, "promo"))
                .div(cx(s, "total")),
            "promo_revenue",
        )]
    });
    cfg.apply(&mut plan);
    engine.run(&plan)
}
