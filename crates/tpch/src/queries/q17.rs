//! TPC-H Q17 — small-quantity-order revenue (Brand#23, MED BOX).
//! The part⋈lineitem result is materialized once (a CTE, as an optimizer
//! would do for the correlated average) and reused for the per-part
//! quantity threshold; grouping dominates the runtime (§5.3.1).

use super::*;
use joinstudy_exec::ops::{AggFunc, AggSpec};
use joinstudy_storage::types::Decimal;
use std::sync::Arc;

pub fn run(data: &TpchData, cfg: &QueryConfig, engine: &Engine) -> Table {
    let part = scan_where(&data.part, &["p_partkey", "p_brand", "p_container"], |s| {
        Expr::and(vec![
            cx(s, "p_brand").eq(Expr::str("Brand#23")),
            cx(s, "p_container").eq(Expr::str("MED BOX")),
        ])
    });
    let lineitem = Plan::scan(
        &data.lineitem,
        &["l_partkey", "l_quantity", "l_extendedprice"],
        None,
    );
    let mut pl_plan = join_on(
        part,
        lineitem,
        JoinType::Inner,
        &["p_partkey"],
        &["l_partkey"],
    );
    cfg.apply(&mut pl_plan);
    let pl = Arc::new(engine.run(&pl_plan));

    // Per-part threshold: 0.2 × avg(l_quantity).
    let avg_plan = Plan::scan(&pl, &["p_partkey", "l_quantity"], None)
        .aggregate(&[0], vec![AggSpec::new(AggFunc::Avg, 1, "avg_qty")]);
    let avg = Arc::new(engine.run(&avg_plan));

    let thresholds = map_where(Plan::scan(&avg, &["p_partkey", "avg_qty"], None), |s| {
        vec![
            (cx(s, "p_partkey"), "t_partkey"),
            (
                cx(s, "avg_qty").mul(Expr::dec(Decimal::from_parts(0, 20))),
                "qty_limit",
            ),
        ]
    });
    let pl_scan = Plan::scan(&pl, &["p_partkey", "l_quantity", "l_extendedprice"], None);
    let mut joined = join_on(
        thresholds,
        pl_scan,
        JoinType::Inner,
        &["t_partkey"],
        &["p_partkey"],
    );
    joined = filter_where(joined, |s| cx(s, "l_quantity").lt(cx(s, "qty_limit")));
    let price_idx = joined.schema().index_of("l_extendedprice");
    let agg = joined.aggregate(&[], vec![AggSpec::new(AggFunc::Sum, price_idx, "total")]);
    // `total` is column 0 of the global aggregate; divide by 7 for the
    // average yearly figure.
    let agg_schema = agg.schema();
    let total_idx = agg_schema.index_of("total");
    let mut plan = agg.map(
        vec![Expr::col(total_idx).div(Expr::dec(Decimal::from_int(7)))],
        &["avg_yearly"],
    );
    cfg.apply(&mut plan);
    engine.run(&plan)
}
