//! TPC-H Q13 — customer distribution. EXTENSION beyond the paper's
//! measured set: the paper excludes Q13 because its system evaluates it
//! with a *groupjoin* (footnote 6) rather than a swappable hash join — so
//! we implement exactly that: customer ⟕ᵍ orders with a per-customer match
//! count (empty groups = customers without orders), then the distribution
//! aggregate on top. The groupjoin has one fixed implementation; the
//! `QueryConfig` algorithm selection deliberately has no effect here.

use super::*;
use joinstudy_core::groupjoin::GroupAggSpec;
use joinstudy_exec::ops::{AggFunc, AggSpec, SortKey};

pub fn run(data: &TpchData, cfg: &QueryConfig, engine: &Engine) -> Table {
    let customer = Plan::scan(&data.customer, &["c_custkey"], None);
    let orders = scan_where(&data.orders, &["o_custkey", "o_comment"], |s| {
        cx(s, "o_comment").like("%special%requests%").not()
    });
    let gj = customer.group_join(orders, &[0], &[0], vec![GroupAggSpec::count("c_count")]);

    let gs = gj.schema();
    let mut plan = gj
        .aggregate(
            &[gs.index_of("c_count")],
            vec![AggSpec::new(AggFunc::CountStar, 0, "custdist")],
        )
        .sort(vec![SortKey::desc(1), SortKey::desc(0)], None);
    cfg.apply(&mut plan);
    engine.run(&plan)
}
