//! TPC-H Q4 — order priority checking. One dominating semi join that
//! preserves the (filtered) orders build side; the Bloom filter discards
//! ~80% of lineitem probes before partitioning (§5.3.1 "Single Join").

use super::*;
use joinstudy_exec::ops::{AggFunc, AggSpec, SortKey};
use joinstudy_storage::types::Date;

pub fn run(data: &TpchData, cfg: &QueryConfig, engine: &Engine) -> Table {
    let lo = Date::from_ymd(1993, 7, 1);
    let hi = lo.add_months(3);

    let orders = scan_where(
        &data.orders,
        &["o_orderkey", "o_orderpriority", "o_orderdate"],
        |s| {
            Expr::and(vec![
                cx(s, "o_orderdate").ge(Expr::date(lo)),
                cx(s, "o_orderdate").lt(Expr::date(hi)),
            ])
        },
    );
    let lineitem = scan_where(
        &data.lineitem,
        &["l_orderkey", "l_commitdate", "l_receiptdate"],
        |s| cx(s, "l_commitdate").lt(cx(s, "l_receiptdate")),
    );
    // EXISTS(lineitem) preserving orders: a build-side semi join.
    let sj = join_on(
        orders,
        lineitem,
        JoinType::BuildSemi,
        &["o_orderkey"],
        &["l_orderkey"],
    );

    let ss = sj.schema();
    let mut plan = sj
        .aggregate(
            &[ss.index_of("o_orderpriority")],
            vec![AggSpec::new(AggFunc::CountStar, 0, "order_count")],
        )
        .sort(vec![SortKey::asc(0)], None);
    cfg.apply(&mut plan);
    engine.run(&plan)
}
