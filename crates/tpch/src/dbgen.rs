//! Deterministic TPC-H data generator.
//!
//! Follows the TPC-H 2.18 specification's schemas, cardinalities, key
//! structure and value distributions, with a float scale factor so tests
//! can run at SF 0.01 while benchmarks use SF 0.1–1+ (DESIGN.md §1 records
//! this substitution). Everything join-relevant is spec-faithful:
//!
//! * table cardinality ratios (10k suppliers : 200k parts : 800k partsupp :
//!   150k customers : 1.5M orders : ~6M lineitems per SF 1),
//! * sparse order keys (8 of every 32 key values used),
//! * one third of customers without orders,
//! * `l_suppkey`/`ps_suppkey` generated with the spec formula so every
//!   lineitem `(partkey, suppkey)` pair exists in partsupp (Q9's join),
//! * retail-price formula, date correlations (`commit`/`receipt`/`ship`),
//!   and the categorical vocabularies the query predicates select on.
//!
//! Comments are drawn from a compact vocabulary rather than the spec
//! grammar; the only query-visible pattern — `%Customer%Complaints%` in
//! supplier comments (Q16) — is injected at the spec's expected frequency.

use crate::text;
use joinstudy_storage::column::ColumnData;
use joinstudy_storage::gen::{Rng, Zipf};
use joinstudy_storage::table::{Schema, Table, TableBuilder};
use joinstudy_storage::types::{DataType, Date};
use std::sync::Arc;

/// The eight TPC-H relations plus generation metadata.
pub struct TpchData {
    pub sf: f64,
    pub region: Arc<Table>,
    pub nation: Arc<Table>,
    pub supplier: Arc<Table>,
    pub part: Arc<Table>,
    pub partsupp: Arc<Table>,
    pub customer: Arc<Table>,
    pub orders: Arc<Table>,
    pub lineitem: Arc<Table>,
}

impl TpchData {
    /// Total data set size in bytes.
    pub fn byte_size(&self) -> usize {
        self.region.byte_size()
            + self.nation.byte_size()
            + self.supplier.byte_size()
            + self.part.byte_size()
            + self.partsupp.byte_size()
            + self.customer.byte_size()
            + self.orders.byte_size()
            + self.lineitem.byte_size()
    }

    /// Look up a table by its TPC-H name.
    pub fn table(&self, name: &str) -> &Arc<Table> {
        match name {
            "region" => &self.region,
            "nation" => &self.nation,
            "supplier" => &self.supplier,
            "part" => &self.part,
            "partsupp" => &self.partsupp,
            "customer" => &self.customer,
            "orders" => &self.orders,
            "lineitem" => &self.lineitem,
            other => panic!("unknown TPC-H table {other:?}"),
        }
    }
}

/// Row counts at scale factor `sf`.
pub fn cardinalities(sf: f64) -> (usize, usize, usize, usize) {
    let suppliers = ((10_000.0 * sf) as usize).max(10);
    let parts = ((200_000.0 * sf) as usize).max(200);
    let customers = ((150_000.0 * sf) as usize).max(150);
    let orders = customers * 10;
    (suppliers, parts, customers, orders)
}

/// The spec's supplier-for-part formula: supplier `i ∈ 0..4` of part `pk`
/// (1-based keys). Guarantees lineitem ⋈ partsupp referential integrity.
pub fn supp_for_part(pk: i64, i: i64, supplier_count: i64) -> i64 {
    let s = supplier_count;
    (pk + i * (s / 4 + (pk - 1) / s)) % s + 1
}

/// Retail price of a part in cents (spec formula).
pub fn retail_price_cents(pk: i64) -> i64 {
    90_000 + (pk / 10) % 20_001 + 100 * (pk % 1_000)
}

fn comment(rng: &mut Rng, out: &mut String) {
    out.clear();
    let words = 3 + rng.u64_below(5);
    for w in 0..words {
        if w > 0 {
            out.push(' ');
        }
        match w % 3 {
            0 => out.push_str(rng.pick::<&str>(&text::ADVERBS)),
            1 => out.push_str(rng.pick::<&str>(&text::NOUNS)),
            _ => out.push_str(rng.pick::<&str>(&text::VERBS)),
        }
    }
}

fn phone(rng: &mut Rng, nationkey: i64, out: &mut String) {
    use std::fmt::Write;
    out.clear();
    let _ = write!(
        out,
        "{}-{:03}-{:03}-{:04}",
        10 + nationkey,
        100 + rng.u64_below(900),
        100 + rng.u64_below(900),
        1000 + rng.u64_below(9000)
    );
}

fn gen_region(rng: &mut Rng) -> Table {
    let schema = Schema::of(&[
        ("r_regionkey", DataType::Int64),
        ("r_name", DataType::Str),
        ("r_comment", DataType::Str),
    ]);
    let mut b = TableBuilder::with_capacity(schema, 5);
    let mut c = String::new();
    for (k, name) in text::REGIONS.iter().enumerate() {
        comment(rng, &mut c);
        push_i64(&mut b, 0, k as i64);
        push_str(&mut b, 1, name);
        push_str(&mut b, 2, &c);
    }
    b.finish()
}

fn gen_nation(rng: &mut Rng) -> Table {
    let schema = Schema::of(&[
        ("n_nationkey", DataType::Int64),
        ("n_name", DataType::Str),
        ("n_regionkey", DataType::Int64),
        ("n_comment", DataType::Str),
    ]);
    let mut b = TableBuilder::with_capacity(schema, 25);
    let mut c = String::new();
    for (k, (name, region)) in text::NATIONS.iter().enumerate() {
        comment(rng, &mut c);
        push_i64(&mut b, 0, k as i64);
        push_str(&mut b, 1, name);
        push_i64(&mut b, 2, *region);
        push_str(&mut b, 3, &c);
    }
    b.finish()
}

fn gen_supplier(rng: &mut Rng, n: usize) -> Table {
    let schema = Schema::of(&[
        ("s_suppkey", DataType::Int64),
        ("s_name", DataType::Str),
        ("s_address", DataType::Str),
        ("s_nationkey", DataType::Int64),
        ("s_phone", DataType::Str),
        ("s_acctbal", DataType::Decimal),
        ("s_comment", DataType::Str),
    ]);
    let mut b = TableBuilder::with_capacity(schema, n);
    let mut buf = String::new();
    for k in 1..=n as i64 {
        let nation = rng.u64_below(25) as i64;
        push_i64(&mut b, 0, k);
        push_str(&mut b, 1, &format!("Supplier#{k:09}"));
        rng.alpha_string(10, 30, &mut buf);
        push_str(&mut b, 2, &buf);
        push_i64(&mut b, 3, nation);
        phone(rng, nation, &mut buf);
        push_str(&mut b, 4, &buf);
        push_dec(&mut b, 5, rng.i64_range(-99_999, 999_999));
        // Q16's pattern: the spec injects complaints into 5 per 10k suppliers.
        if rng.bool(0.0005) {
            push_str(
                &mut b,
                6,
                "the slyly final Customer ironic Complaints sleep",
            );
        } else {
            comment(rng, &mut buf);
            push_str(&mut b, 6, &buf);
        }
    }
    b.finish()
}

fn gen_part(rng: &mut Rng, n: usize) -> Table {
    let schema = Schema::of(&[
        ("p_partkey", DataType::Int64),
        ("p_name", DataType::Str),
        ("p_mfgr", DataType::Str),
        ("p_brand", DataType::Str),
        ("p_type", DataType::Str),
        ("p_size", DataType::Int32),
        ("p_container", DataType::Str),
        ("p_retailprice", DataType::Decimal),
        ("p_comment", DataType::Str),
    ]);
    let mut b = TableBuilder::with_capacity(schema, n);
    let mut buf = String::new();
    for k in 1..=n as i64 {
        push_i64(&mut b, 0, k);
        // p_name: five distinct color words.
        buf.clear();
        let mut used = [usize::MAX; 5];
        for w in 0..5 {
            let mut idx;
            loop {
                idx = rng.u64_below(text::COLORS.len() as u64) as usize;
                if !used[..w].contains(&idx) {
                    break;
                }
            }
            used[w] = idx;
            if w > 0 {
                buf.push(' ');
            }
            buf.push_str(text::COLORS[idx]);
        }
        push_str(&mut b, 1, &buf);
        let mfgr = 1 + rng.u64_below(5);
        push_str(&mut b, 2, &format!("Manufacturer#{mfgr}"));
        push_str(
            &mut b,
            3,
            &format!("Brand#{}{}", mfgr, 1 + rng.u64_below(5)),
        );
        let ptype = format!(
            "{} {} {}",
            *rng.pick::<&str>(&text::TYPE_S1),
            *rng.pick::<&str>(&text::TYPE_S2),
            *rng.pick::<&str>(&text::TYPE_S3)
        );
        push_str(&mut b, 4, &ptype);
        push_i32(&mut b, 5, rng.i32_range(1, 50));
        let container = format!(
            "{} {}",
            *rng.pick::<&str>(&text::CONTAINER_S1),
            *rng.pick::<&str>(&text::CONTAINER_S2)
        );
        push_str(&mut b, 6, &container);
        push_dec(&mut b, 7, retail_price_cents(k));
        comment(rng, &mut buf);
        push_str(&mut b, 8, &buf);
    }
    b.finish()
}

fn gen_partsupp(rng: &mut Rng, parts: usize, suppliers: usize) -> Table {
    let schema = Schema::of(&[
        ("ps_partkey", DataType::Int64),
        ("ps_suppkey", DataType::Int64),
        ("ps_availqty", DataType::Int32),
        ("ps_supplycost", DataType::Decimal),
        ("ps_comment", DataType::Str),
    ]);
    let mut b = TableBuilder::with_capacity(schema, parts * 4);
    let mut buf = String::new();
    for pk in 1..=parts as i64 {
        for i in 0..4 {
            push_i64(&mut b, 0, pk);
            push_i64(&mut b, 1, supp_for_part(pk, i, suppliers as i64));
            push_i32(&mut b, 2, rng.i32_range(1, 9_999));
            push_dec(&mut b, 3, rng.i64_range(100, 100_000));
            comment(rng, &mut buf);
            push_str(&mut b, 4, &buf);
        }
    }
    b.finish()
}

fn gen_customer(rng: &mut Rng, n: usize) -> Table {
    let schema = Schema::of(&[
        ("c_custkey", DataType::Int64),
        ("c_name", DataType::Str),
        ("c_address", DataType::Str),
        ("c_nationkey", DataType::Int64),
        ("c_phone", DataType::Str),
        ("c_acctbal", DataType::Decimal),
        ("c_mktsegment", DataType::Str),
        ("c_comment", DataType::Str),
    ]);
    let mut b = TableBuilder::with_capacity(schema, n);
    let mut buf = String::new();
    for k in 1..=n as i64 {
        let nation = rng.u64_below(25) as i64;
        push_i64(&mut b, 0, k);
        push_str(&mut b, 1, &format!("Customer#{k:09}"));
        rng.alpha_string(10, 40, &mut buf);
        push_str(&mut b, 2, &buf);
        push_i64(&mut b, 3, nation);
        phone(rng, nation, &mut buf);
        push_str(&mut b, 4, &buf);
        push_dec(&mut b, 5, rng.i64_range(-99_999, 999_999));
        push_str(&mut b, 6, rng.pick::<&str>(&text::SEGMENTS));
        comment(rng, &mut buf);
        push_str(&mut b, 7, &buf);
    }
    b.finish()
}

/// Foreign-key skew configuration (the JCC-H-style extension the paper's
/// footnote 11 points at: "JCC-H provides a more realistic drop-in
/// replacement for TPC-H with skew. It puts even more pressure on the
/// radix join"). `None` = spec-uniform foreign keys.
struct FkSkew {
    cust: Zipf,
    cust_perm: Vec<u64>,
    part: Zipf,
    part_perm: Vec<u64>,
}

/// Orders + lineitem are generated together (l_* dates derive from
/// o_orderdate; o_totalprice and o_orderstatus derive from the lineitems).
fn gen_orders_lineitem(
    rng: &mut Rng,
    orders_n: usize,
    customers: usize,
    parts: usize,
    suppliers: usize,
    skew: Option<&FkSkew>,
) -> (Table, Table) {
    let o_schema = Schema::of(&[
        ("o_orderkey", DataType::Int64),
        ("o_custkey", DataType::Int64),
        ("o_orderstatus", DataType::Str),
        ("o_totalprice", DataType::Decimal),
        ("o_orderdate", DataType::Date),
        ("o_orderpriority", DataType::Str),
        ("o_clerk", DataType::Str),
        ("o_shippriority", DataType::Int32),
        ("o_comment", DataType::Str),
    ]);
    let l_schema = Schema::of(&[
        ("l_orderkey", DataType::Int64),
        ("l_partkey", DataType::Int64),
        ("l_suppkey", DataType::Int64),
        ("l_linenumber", DataType::Int32),
        ("l_quantity", DataType::Decimal),
        ("l_extendedprice", DataType::Decimal),
        ("l_discount", DataType::Decimal),
        ("l_tax", DataType::Decimal),
        ("l_returnflag", DataType::Str),
        ("l_linestatus", DataType::Str),
        ("l_shipdate", DataType::Date),
        ("l_commitdate", DataType::Date),
        ("l_receiptdate", DataType::Date),
        ("l_shipinstruct", DataType::Str),
        ("l_shipmode", DataType::Str),
        ("l_comment", DataType::Str),
    ]);
    let mut ob = TableBuilder::with_capacity(o_schema, orders_n);
    let mut lb = TableBuilder::with_capacity(l_schema, orders_n * 4);
    let mut buf = String::new();

    let date_lo = Date::from_ymd(1992, 1, 1).0;
    // Last order date: 1998-08-02 (spec: end - 151 days).
    let date_hi = Date::from_ymd(1998, 8, 2).0;
    let current = Date::from_ymd(1995, 6, 17).0;
    let clerks = ((orders_n / 1000).max(1)) as i64;

    for i in 0..orders_n as i64 {
        // Sparse keys: 8 used out of every 32 consecutive values.
        let orderkey = (i / 8) * 32 + i % 8 + 1;
        // A third of the customers place no orders (custkey % 3 == 0).
        let custkey = loop {
            let c = match skew {
                None => 1 + rng.u64_below(customers as u64) as i64,
                Some(s) => 1 + s.cust_perm[(s.cust.sample(rng) - 1) as usize] as i64,
            };
            if c % 3 != 0 || customers < 3 {
                break c;
            }
        };
        let orderdate = rng.i32_range(date_lo, date_hi);

        let nlines = 1 + rng.u64_below(7) as i32;
        let mut total = 0i64;
        let mut any_open = false;
        let mut any_fulfilled = false;
        for ln in 1..=nlines {
            let partkey = match skew {
                None => 1 + rng.u64_below(parts as u64) as i64,
                Some(s) => 1 + s.part_perm[(s.part.sample(rng) - 1) as usize] as i64,
            };
            let suppkey = supp_for_part(partkey, rng.u64_below(4) as i64, suppliers as i64);
            let qty = rng.i64_range(1, 50);
            let extprice = qty * retail_price_cents(partkey);
            let discount = rng.i64_range(0, 10); // 0.00 – 0.10
            let tax = rng.i64_range(0, 8);
            let shipdate = orderdate + rng.i32_range(1, 121);
            let commitdate = orderdate + rng.i32_range(30, 90);
            let receiptdate = shipdate + rng.i32_range(1, 30);
            let returnflag = if receiptdate <= current {
                if rng.bool(0.5) {
                    "R"
                } else {
                    "A"
                }
            } else {
                "N"
            };
            let linestatus = if shipdate > current { "O" } else { "F" };
            if linestatus == "O" {
                any_open = true;
            } else {
                any_fulfilled = true;
            }
            total += extprice * (100 - discount) / 100 * (100 + tax) / 100;

            push_i64(&mut lb, 0, orderkey);
            push_i64(&mut lb, 1, partkey);
            push_i64(&mut lb, 2, suppkey);
            push_i32(&mut lb, 3, ln);
            push_dec(&mut lb, 4, qty * 100);
            push_dec(&mut lb, 5, extprice);
            push_dec(&mut lb, 6, discount);
            push_dec(&mut lb, 7, tax);
            push_str(&mut lb, 8, returnflag);
            push_str(&mut lb, 9, linestatus);
            push_date(&mut lb, 10, shipdate);
            push_date(&mut lb, 11, commitdate);
            push_date(&mut lb, 12, receiptdate);
            push_str(&mut lb, 13, rng.pick::<&str>(&text::INSTRUCTIONS));
            push_str(&mut lb, 14, rng.pick::<&str>(&text::MODES));
            comment(rng, &mut buf);
            push_str(&mut lb, 15, &buf);
        }

        let status = match (any_open, any_fulfilled) {
            (true, false) => "O",
            (false, true) => "F",
            _ => "P",
        };
        push_i64(&mut ob, 0, orderkey);
        push_i64(&mut ob, 1, custkey);
        push_str(&mut ob, 2, status);
        push_dec(&mut ob, 3, total);
        push_date(&mut ob, 4, orderdate);
        push_str(&mut ob, 5, rng.pick::<&str>(&text::PRIORITIES));
        push_str(
            &mut ob,
            6,
            &format!("Clerk#{:09}", 1 + rng.u64_below(clerks as u64)),
        );
        push_i32(&mut ob, 7, 0);
        comment(rng, &mut buf);
        push_str(&mut ob, 8, &buf);
    }
    (ob.finish(), lb.finish())
}

// Typed push helpers (hot path: no Value boxing).

fn push_i64(b: &mut TableBuilder, col: usize, v: i64) {
    match b.column_mut(col) {
        ColumnData::Int64(c) => c.push(v),
        _ => unreachable!(),
    }
}

fn push_i32(b: &mut TableBuilder, col: usize, v: i32) {
    match b.column_mut(col) {
        ColumnData::Int32(c) => c.push(v),
        _ => unreachable!(),
    }
}

fn push_dec(b: &mut TableBuilder, col: usize, cents: i64) {
    match b.column_mut(col) {
        ColumnData::Decimal(c) => c.push(cents),
        _ => unreachable!(),
    }
}

fn push_date(b: &mut TableBuilder, col: usize, days: i32) {
    match b.column_mut(col) {
        ColumnData::Date(c) => c.push(days),
        _ => unreachable!(),
    }
}

fn push_str(b: &mut TableBuilder, col: usize, v: &str) {
    match b.column_mut(col) {
        ColumnData::Str(c) => c.push(v),
        _ => unreachable!(),
    }
}

/// Generate the full data set at scale factor `sf`, deterministically from
/// `seed`.
pub fn generate(sf: f64, seed: u64) -> TpchData {
    generate_with_skew(sf, seed, None)
}

/// Generate with Zipf-skewed foreign keys (`o_custkey`, `l_partkey` drawn
/// Zipf(z) over permuted key domains) — a JCC-H-flavoured variant that
/// preserves referential integrity (the `(l_partkey, l_suppkey)` pairs are
/// still derived with the spec formula). Footnote 11 of the paper.
pub fn generate_skewed(sf: f64, seed: u64, zipf: f64) -> TpchData {
    generate_with_skew(sf, seed, Some(zipf))
}

fn generate_with_skew(sf: f64, seed: u64, zipf: Option<f64>) -> TpchData {
    let mut root = Rng::new(seed ^ 0x7063_6854 /* "TPch" */);
    let (suppliers, parts, customers, orders_n) = cardinalities(sf);

    let region = gen_region(&mut root.fork());
    let nation = gen_nation(&mut root.fork());
    let supplier = gen_supplier(&mut root.fork(), suppliers);
    let part = gen_part(&mut root.fork(), parts);
    let partsupp = gen_partsupp(&mut root.fork(), parts, suppliers);
    let customer = gen_customer(&mut root.fork(), customers);
    let skew = zipf.map(|z| {
        let mut srng = root.fork();
        FkSkew {
            cust: Zipf::new(customers as u64, z),
            cust_perm: srng.permutation(customers),
            part: Zipf::new(parts as u64, z),
            part_perm: srng.permutation(parts),
        }
    });
    let (orders, lineitem) = gen_orders_lineitem(
        &mut root.fork(),
        orders_n,
        customers,
        parts,
        suppliers,
        skew.as_ref(),
    );

    TpchData {
        sf,
        region: Arc::new(region),
        nation: Arc::new(nation),
        supplier: Arc::new(supplier),
        part: Arc::new(part),
        partsupp: Arc::new(partsupp),
        customer: Arc::new(customer),
        orders: Arc::new(orders),
        lineitem: Arc::new(lineitem),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TpchData {
        generate(0.01, 42)
    }

    #[test]
    fn cardinalities_scale() {
        let d = small();
        assert_eq!(d.region.num_rows(), 5);
        assert_eq!(d.nation.num_rows(), 25);
        assert_eq!(d.supplier.num_rows(), 100);
        assert_eq!(d.part.num_rows(), 2000);
        assert_eq!(d.partsupp.num_rows(), 8000);
        assert_eq!(d.customer.num_rows(), 1500);
        assert_eq!(d.orders.num_rows(), 15_000);
        // 1–7 lineitems per order, average 4.
        let l = d.lineitem.num_rows();
        assert!((45_000..=75_000).contains(&l), "lineitem rows: {l}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(0.01, 7);
        let b = generate(0.01, 7);
        assert_eq!(a.lineitem.num_rows(), b.lineitem.num_rows());
        assert_eq!(
            a.lineitem.column_by_name("l_partkey").as_i64()[..100],
            b.lineitem.column_by_name("l_partkey").as_i64()[..100]
        );
        let c = generate(0.01, 8);
        assert_ne!(
            a.lineitem.column_by_name("l_partkey").as_i64()[..100],
            c.lineitem.column_by_name("l_partkey").as_i64()[..100]
        );
    }

    #[test]
    fn referential_integrity_lineitem_partsupp() {
        // Every (l_partkey, l_suppkey) must exist in partsupp (Q9's join).
        let d = small();
        let ps_pk = d.partsupp.column_by_name("ps_partkey").as_i64();
        let ps_sk = d.partsupp.column_by_name("ps_suppkey").as_i64();
        let pairs: std::collections::HashSet<(i64, i64)> =
            ps_pk.iter().zip(ps_sk).map(|(&p, &s)| (p, s)).collect();
        let l_pk = d.lineitem.column_by_name("l_partkey").as_i64();
        let l_sk = d.lineitem.column_by_name("l_suppkey").as_i64();
        for (i, (&p, &s)) in l_pk.iter().zip(l_sk).enumerate().step_by(97) {
            assert!(
                pairs.contains(&(p, s)),
                "lineitem {i}: ({p},{s}) not in partsupp"
            );
            let _ = i;
        }
    }

    #[test]
    fn orders_skip_every_third_customer() {
        let d = small();
        let custkeys = d.orders.column_by_name("o_custkey").as_i64();
        assert!(custkeys.iter().all(|&c| c % 3 != 0));
        assert!(custkeys.iter().all(|&c| (1..=1500).contains(&c)));
    }

    #[test]
    fn order_keys_are_sparse_and_unique() {
        let d = small();
        let mut keys = d.orders.column_by_name("o_orderkey").as_i64().to_vec();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), d.orders.num_rows(), "order keys must be unique");
        // Sparse: max key ≈ 4 × count.
        let max = *keys.last().unwrap();
        assert!(max > 3 * keys.len() as i64, "keys not sparse: max {max}");
    }

    #[test]
    fn date_correlations_hold() {
        let d = small();
        let ship = d.lineitem.column_by_name("l_shipdate").as_i32();
        let receipt = d.lineitem.column_by_name("l_receiptdate").as_i32();
        let odate_by_key: std::collections::HashMap<i64, i32> = {
            let keys = d.orders.column_by_name("o_orderkey").as_i64();
            let dates = d.orders.column_by_name("o_orderdate").as_i32();
            keys.iter().zip(dates).map(|(&k, &v)| (k, v)).collect()
        };
        let l_ok = d.lineitem.column_by_name("l_orderkey").as_i64();
        for i in (0..d.lineitem.num_rows()).step_by(101) {
            assert!(receipt[i] > ship[i], "receipt must follow ship");
            let od = odate_by_key[&l_ok[i]];
            assert!(ship[i] > od && ship[i] <= od + 121);
        }
    }

    #[test]
    fn retail_price_formula_matches_spec() {
        assert_eq!(retail_price_cents(1), 90_000 + 100);
        assert_eq!(retail_price_cents(1000), (90_000 + 100));
        let d = small();
        let pk = d.part.column_by_name("p_partkey").as_i64();
        let price = d.part.column_by_name("p_retailprice").as_i64();
        for i in (0..pk.len()).step_by(37) {
            assert_eq!(price[i], retail_price_cents(pk[i]));
        }
    }

    #[test]
    fn lineitem_prices_match_part_prices() {
        let d = small();
        let l_pk = d.lineitem.column_by_name("l_partkey").as_i64();
        let qty = d.lineitem.column_by_name("l_quantity").as_i64();
        let ext = d.lineitem.column_by_name("l_extendedprice").as_i64();
        for i in (0..l_pk.len()).step_by(53) {
            assert_eq!(ext[i], (qty[i] / 100) * retail_price_cents(l_pk[i]));
        }
    }

    #[test]
    fn query_predicate_vocabulary_present() {
        let d = small();
        // Q9/Q20 rely on color words; Q16 on the complaints pattern shape;
        // Q12 on ship modes; Q3 on segments.
        let names = d.part.column_by_name("p_name").as_str();
        let green = (0..names.len())
            .filter(|&i| names.get(i).contains("green"))
            .count();
        assert!(green > 0, "no green parts generated");
        let forest = (0..names.len())
            .filter(|&i| names.get(i).starts_with("forest"))
            .count();
        assert!(forest > 0, "no forest-prefixed parts generated");
        let types = d.part.column_by_name("p_type").as_str();
        assert!((0..types.len()).any(|i| types.get(i).ends_with("BRASS")));
        let seg = d.customer.column_by_name("c_mktsegment").as_str();
        assert!((0..seg.len()).any(|i| seg.get(i) == "BUILDING"));
    }

    #[test]
    fn supp_for_part_stays_in_range() {
        for pk in 1..=1000i64 {
            for i in 0..4 {
                let s = supp_for_part(pk, i, 100);
                assert!((1..=100).contains(&s), "supp {s} for part {pk}");
            }
        }
    }
}

#[cfg(test)]
mod skew_tests {
    use super::*;

    #[test]
    fn skewed_generation_preserves_integrity() {
        let d = generate_skewed(0.01, 42, 1.5);
        // Referential integrity must survive the skew.
        let ps_pk = d.partsupp.column_by_name("ps_partkey").as_i64();
        let ps_sk = d.partsupp.column_by_name("ps_suppkey").as_i64();
        let pairs: std::collections::HashSet<(i64, i64)> =
            ps_pk.iter().zip(ps_sk).map(|(&p, &s)| (p, s)).collect();
        let l_pk = d.lineitem.column_by_name("l_partkey").as_i64();
        let l_sk = d.lineitem.column_by_name("l_suppkey").as_i64();
        for (&p, &s) in l_pk.iter().zip(l_sk).step_by(101) {
            assert!(pairs.contains(&(p, s)));
        }
        let custkeys = d.orders.column_by_name("o_custkey").as_i64();
        assert!(custkeys
            .iter()
            .all(|&c| c % 3 != 0 && (1..=1500).contains(&c)));
    }

    #[test]
    fn skew_concentrates_foreign_keys() {
        let uniform = generate(0.01, 7);
        let skewed = generate_skewed(0.01, 7, 1.5);
        let hottest = |t: &Table, col: &str| -> usize {
            let mut counts = std::collections::HashMap::new();
            for &k in t.column_by_name(col).as_i64() {
                *counts.entry(k).or_insert(0usize) += 1;
            }
            counts.values().max().copied().unwrap_or(0)
        };
        let hot_u = hottest(&uniform.lineitem, "l_partkey");
        let hot_s = hottest(&skewed.lineitem, "l_partkey");
        assert!(
            hot_s > hot_u * 10,
            "skewed hottest part {hot_s} vs uniform {hot_u}"
        );
    }
}
