//! Deterministic TPC-H data generator.
//!
//! Follows the TPC-H 2.18 specification's schemas, cardinalities, key
//! structure and value distributions, with a float scale factor so tests
//! can run at SF 0.01 while benchmarks use SF 0.1–1+ (DESIGN.md §1 records
//! this substitution). Everything join-relevant is spec-faithful:
//!
//! * table cardinality ratios (10k suppliers : 200k parts : 800k partsupp :
//!   150k customers : 1.5M orders : ~6M lineitems per SF 1),
//! * sparse order keys (8 of every 32 key values used),
//! * one third of customers without orders,
//! * `l_suppkey`/`ps_suppkey` generated with the spec formula so every
//!   lineitem `(partkey, suppkey)` pair exists in partsupp (Q9's join),
//! * retail-price formula, date correlations (`commit`/`receipt`/`ship`),
//!   and the categorical vocabularies the query predicates select on.
//!
//! Comments are drawn from a compact vocabulary rather than the spec
//! grammar; the only query-visible pattern — `%Customer%Complaints%` in
//! supplier comments (Q16) — is injected at the spec's expected frequency.
//!
//! Since the streaming generator landed ([`crate::stream`]), this module is
//! a thin materializing facade: all row generation lives in per-unit-seeded
//! chunk code shared with the constant-memory streaming path.

use crate::stream::{StreamGen, TpchTable};
use joinstudy_storage::table::Table;
use std::sync::Arc;

/// The eight TPC-H relations plus generation metadata.
pub struct TpchData {
    pub sf: f64,
    pub region: Arc<Table>,
    pub nation: Arc<Table>,
    pub supplier: Arc<Table>,
    pub part: Arc<Table>,
    pub partsupp: Arc<Table>,
    pub customer: Arc<Table>,
    pub orders: Arc<Table>,
    pub lineitem: Arc<Table>,
}

impl TpchData {
    /// Total data set size in bytes.
    pub fn byte_size(&self) -> usize {
        self.region.byte_size()
            + self.nation.byte_size()
            + self.supplier.byte_size()
            + self.part.byte_size()
            + self.partsupp.byte_size()
            + self.customer.byte_size()
            + self.orders.byte_size()
            + self.lineitem.byte_size()
    }

    /// Look up a table by its TPC-H name.
    pub fn table(&self, name: &str) -> &Arc<Table> {
        match name {
            "region" => &self.region,
            "nation" => &self.nation,
            "supplier" => &self.supplier,
            "part" => &self.part,
            "partsupp" => &self.partsupp,
            "customer" => &self.customer,
            "orders" => &self.orders,
            "lineitem" => &self.lineitem,
            other => panic!("unknown TPC-H table {other:?}"),
        }
    }
}

/// Row counts at scale factor `sf`.
pub fn cardinalities(sf: f64) -> (usize, usize, usize, usize) {
    let suppliers = ((10_000.0 * sf) as usize).max(10);
    let parts = ((200_000.0 * sf) as usize).max(200);
    let customers = ((150_000.0 * sf) as usize).max(150);
    let orders = customers * 10;
    (suppliers, parts, customers, orders)
}

/// The spec's supplier-for-part formula: supplier `i ∈ 0..4` of part `pk`
/// (1-based keys). Guarantees lineitem ⋈ partsupp referential integrity.
pub fn supp_for_part(pk: i64, i: i64, supplier_count: i64) -> i64 {
    let s = supplier_count;
    (pk + i * (s / 4 + (pk - 1) / s)) % s + 1
}

/// Retail price of a part in cents (spec formula).
pub fn retail_price_cents(pk: i64) -> i64 {
    90_000 + (pk / 10) % 20_001 + 100 * (pk % 1_000)
}

/// Generate the full data set at scale factor `sf`, deterministically from
/// `seed`.
pub fn generate(sf: f64, seed: u64) -> TpchData {
    materialize(StreamGen::new(sf, seed))
}

/// Generate with Zipf-skewed foreign keys (`o_custkey`, `l_partkey` drawn
/// Zipf(z) over permuted key domains) — a JCC-H-flavoured variant that
/// preserves referential integrity (the `(l_partkey, l_suppkey)` pairs are
/// still derived with the spec formula). Footnote 11 of the paper.
pub fn generate_skewed(sf: f64, seed: u64, zipf: f64) -> TpchData {
    materialize(StreamGen::skewed(sf, seed, zipf))
}

/// One materializing pass over the chunk generator — the streaming and
/// materializing paths are literally the same code, so SF-for-SF they
/// produce identical rows (asserted in `tests/stream_determinism.rs`).
fn materialize(gen: StreamGen) -> TpchData {
    let (orders, lineitem) = gen.materialize_orders_lineitem();
    TpchData {
        sf: gen.sf(),
        region: Arc::new(gen.materialize(TpchTable::Region)),
        nation: Arc::new(gen.materialize(TpchTable::Nation)),
        supplier: Arc::new(gen.materialize(TpchTable::Supplier)),
        part: Arc::new(gen.materialize(TpchTable::Part)),
        partsupp: Arc::new(gen.materialize(TpchTable::Partsupp)),
        customer: Arc::new(gen.materialize(TpchTable::Customer)),
        orders: Arc::new(orders),
        lineitem: Arc::new(lineitem),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TpchData {
        generate(0.01, 42)
    }

    #[test]
    fn cardinalities_scale() {
        let d = small();
        assert_eq!(d.region.num_rows(), 5);
        assert_eq!(d.nation.num_rows(), 25);
        assert_eq!(d.supplier.num_rows(), 100);
        assert_eq!(d.part.num_rows(), 2000);
        assert_eq!(d.partsupp.num_rows(), 8000);
        assert_eq!(d.customer.num_rows(), 1500);
        assert_eq!(d.orders.num_rows(), 15_000);
        // 1–7 lineitems per order, average 4.
        let l = d.lineitem.num_rows();
        assert!((45_000..=75_000).contains(&l), "lineitem rows: {l}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(0.01, 7);
        let b = generate(0.01, 7);
        assert_eq!(a.lineitem.num_rows(), b.lineitem.num_rows());
        assert_eq!(
            a.lineitem.column_by_name("l_partkey").as_i64()[..100],
            b.lineitem.column_by_name("l_partkey").as_i64()[..100]
        );
        let c = generate(0.01, 8);
        assert_ne!(
            a.lineitem.column_by_name("l_partkey").as_i64()[..100],
            c.lineitem.column_by_name("l_partkey").as_i64()[..100]
        );
    }

    #[test]
    fn referential_integrity_lineitem_partsupp() {
        // Every (l_partkey, l_suppkey) must exist in partsupp (Q9's join).
        let d = small();
        let ps_pk = d.partsupp.column_by_name("ps_partkey").as_i64();
        let ps_sk = d.partsupp.column_by_name("ps_suppkey").as_i64();
        let pairs: std::collections::HashSet<(i64, i64)> =
            ps_pk.iter().zip(ps_sk).map(|(&p, &s)| (p, s)).collect();
        let l_pk = d.lineitem.column_by_name("l_partkey").as_i64();
        let l_sk = d.lineitem.column_by_name("l_suppkey").as_i64();
        for (i, (&p, &s)) in l_pk.iter().zip(l_sk).enumerate().step_by(97) {
            assert!(
                pairs.contains(&(p, s)),
                "lineitem {i}: ({p},{s}) not in partsupp"
            );
            let _ = i;
        }
    }

    #[test]
    fn orders_skip_every_third_customer() {
        let d = small();
        let custkeys = d.orders.column_by_name("o_custkey").as_i64();
        assert!(custkeys.iter().all(|&c| c % 3 != 0));
        assert!(custkeys.iter().all(|&c| (1..=1500).contains(&c)));
    }

    #[test]
    fn order_keys_are_sparse_and_unique() {
        let d = small();
        let mut keys = d.orders.column_by_name("o_orderkey").as_i64().to_vec();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), d.orders.num_rows(), "order keys must be unique");
        // Sparse: max key ≈ 4 × count.
        let max = *keys.last().unwrap();
        assert!(max > 3 * keys.len() as i64, "keys not sparse: max {max}");
    }

    #[test]
    fn date_correlations_hold() {
        let d = small();
        let ship = d.lineitem.column_by_name("l_shipdate").as_i32();
        let receipt = d.lineitem.column_by_name("l_receiptdate").as_i32();
        let odate_by_key: std::collections::HashMap<i64, i32> = {
            let keys = d.orders.column_by_name("o_orderkey").as_i64();
            let dates = d.orders.column_by_name("o_orderdate").as_i32();
            keys.iter().zip(dates).map(|(&k, &v)| (k, v)).collect()
        };
        let l_ok = d.lineitem.column_by_name("l_orderkey").as_i64();
        for i in (0..d.lineitem.num_rows()).step_by(101) {
            assert!(receipt[i] > ship[i], "receipt must follow ship");
            let od = odate_by_key[&l_ok[i]];
            assert!(ship[i] > od && ship[i] <= od + 121);
        }
    }

    #[test]
    fn retail_price_formula_matches_spec() {
        assert_eq!(retail_price_cents(1), 90_000 + 100);
        assert_eq!(retail_price_cents(1000), (90_000 + 100));
        let d = small();
        let pk = d.part.column_by_name("p_partkey").as_i64();
        let price = d.part.column_by_name("p_retailprice").as_i64();
        for i in (0..pk.len()).step_by(37) {
            assert_eq!(price[i], retail_price_cents(pk[i]));
        }
    }

    #[test]
    fn lineitem_prices_match_part_prices() {
        let d = small();
        let l_pk = d.lineitem.column_by_name("l_partkey").as_i64();
        let qty = d.lineitem.column_by_name("l_quantity").as_i64();
        let ext = d.lineitem.column_by_name("l_extendedprice").as_i64();
        for i in (0..l_pk.len()).step_by(53) {
            assert_eq!(ext[i], (qty[i] / 100) * retail_price_cents(l_pk[i]));
        }
    }

    #[test]
    fn query_predicate_vocabulary_present() {
        let d = small();
        // Q9/Q20 rely on color words; Q16 on the complaints pattern shape;
        // Q12 on ship modes; Q3 on segments.
        let names = d.part.column_by_name("p_name").as_str();
        let green = (0..names.len())
            .filter(|&i| names.get(i).contains("green"))
            .count();
        assert!(green > 0, "no green parts generated");
        let forest = (0..names.len())
            .filter(|&i| names.get(i).starts_with("forest"))
            .count();
        assert!(forest > 0, "no forest-prefixed parts generated");
        let types = d.part.column_by_name("p_type").as_str();
        assert!((0..types.len()).any(|i| types.get(i).ends_with("BRASS")));
        let seg = d.customer.column_by_name("c_mktsegment").as_str();
        assert!((0..seg.len()).any(|i| seg.get(i) == "BUILDING"));
    }

    #[test]
    fn supp_for_part_stays_in_range() {
        for pk in 1..=1000i64 {
            for i in 0..4 {
                let s = supp_for_part(pk, i, 100);
                assert!((1..=100).contains(&s), "supp {s} for part {pk}");
            }
        }
    }
}

#[cfg(test)]
mod skew_tests {
    use super::*;

    #[test]
    fn skewed_generation_preserves_integrity() {
        let d = generate_skewed(0.01, 42, 1.5);
        // Referential integrity must survive the skew.
        let ps_pk = d.partsupp.column_by_name("ps_partkey").as_i64();
        let ps_sk = d.partsupp.column_by_name("ps_suppkey").as_i64();
        let pairs: std::collections::HashSet<(i64, i64)> =
            ps_pk.iter().zip(ps_sk).map(|(&p, &s)| (p, s)).collect();
        let l_pk = d.lineitem.column_by_name("l_partkey").as_i64();
        let l_sk = d.lineitem.column_by_name("l_suppkey").as_i64();
        for (&p, &s) in l_pk.iter().zip(l_sk).step_by(101) {
            assert!(pairs.contains(&(p, s)));
        }
        let custkeys = d.orders.column_by_name("o_custkey").as_i64();
        assert!(custkeys
            .iter()
            .all(|&c| c % 3 != 0 && (1..=1500).contains(&c)));
    }

    #[test]
    fn skew_concentrates_foreign_keys() {
        let uniform = generate(0.01, 7);
        let skewed = generate_skewed(0.01, 7, 1.5);
        let hottest = |t: &Table, col: &str| -> usize {
            let mut counts = std::collections::HashMap::new();
            for &k in t.column_by_name(col).as_i64() {
                *counts.entry(k).or_insert(0usize) += 1;
            }
            counts.values().max().copied().unwrap_or(0)
        };
        let hot_u = hottest(&uniform.lineitem, "l_partkey");
        let hot_s = hottest(&skewed.lineitem, "l_partkey");
        assert!(
            hot_s > hot_u * 10,
            "skewed hottest part {hot_s} vs uniform {hot_u}"
        );
    }
}
