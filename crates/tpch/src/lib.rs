//! TPC-H for the join study: a deterministic data generator plus physical
//! plans for every join-bearing TPC-H query, parameterized by join
//! implementation — the paper's §5.3 evaluation harness.

pub mod dbgen;
pub mod queries;
pub mod stream;
pub mod text;

pub use dbgen::{generate, generate_skewed, TpchData};
pub use queries::{all_queries, query, QueryConfig, TpchQuery};
pub use stream::{StreamGen, StreamScan, TpchTable};
