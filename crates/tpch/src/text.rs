//! TPC-H text building blocks (spec §4.2.2/§4.2.3): value lists for the
//! categorical columns and the color-word vocabulary behind `p_name` (which
//! queries 9 and 20 pattern-match with `%green%` / `forest%`).

/// The 92 color words of the spec's P_NAME vocabulary.
pub const COLORS: [&str; 92] = [
    "almond",
    "antique",
    "aquamarine",
    "azure",
    "beige",
    "bisque",
    "black",
    "blanched",
    "blue",
    "blush",
    "brown",
    "burlywood",
    "burnished",
    "chartreuse",
    "chiffon",
    "chocolate",
    "coral",
    "cornflower",
    "cornsilk",
    "cream",
    "cyan",
    "dark",
    "deep",
    "dim",
    "dodger",
    "drab",
    "firebrick",
    "floral",
    "forest",
    "frosted",
    "gainsboro",
    "ghost",
    "goldenrod",
    "green",
    "grey",
    "honeydew",
    "hot",
    "indian",
    "ivory",
    "khaki",
    "lace",
    "lavender",
    "lawn",
    "lemon",
    "light",
    "lime",
    "linen",
    "magenta",
    "maroon",
    "medium",
    "metallic",
    "midnight",
    "mint",
    "misty",
    "moccasin",
    "navajo",
    "navy",
    "olive",
    "orange",
    "orchid",
    "pale",
    "papaya",
    "peach",
    "peru",
    "pink",
    "plum",
    "powder",
    "puff",
    "purple",
    "red",
    "rose",
    "rosy",
    "royal",
    "saddle",
    "salmon",
    "sandy",
    "seashell",
    "sienna",
    "sky",
    "slate",
    "smoke",
    "snow",
    "spring",
    "steel",
    "tan",
    "thistle",
    "tomato",
    "turquoise",
    "violet",
    "wheat",
    "white",
    "yellow",
];

/// P_TYPE syllable 1.
pub const TYPE_S1: [&str; 6] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
/// P_TYPE syllable 2.
pub const TYPE_S2: [&str; 5] = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
/// P_TYPE syllable 3.
pub const TYPE_S3: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];

/// P_CONTAINER syllable 1.
pub const CONTAINER_S1: [&str; 5] = ["SM", "LG", "MED", "JUMBO", "WRAP"];
/// P_CONTAINER syllable 2.
pub const CONTAINER_S2: [&str; 8] = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"];

/// C_MKTSEGMENT values.
pub const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];

/// O_ORDERPRIORITY values.
pub const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];

/// L_SHIPINSTRUCT values.
pub const INSTRUCTIONS: [&str; 4] = [
    "DELIVER IN PERSON",
    "COLLECT COD",
    "NONE",
    "TAKE BACK RETURN",
];

/// L_SHIPMODE values.
pub const MODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];

/// The 25 nations with their region assignment (spec Table: N_NATIONKEY,
/// N_NAME, N_REGIONKEY).
pub const NATIONS: [(&str, i64); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];

/// The 5 regions (R_REGIONKEY, R_NAME).
pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// Filler vocabulary for comment columns.
pub const NOUNS: [&str; 16] = [
    "packages",
    "requests",
    "accounts",
    "deposits",
    "foxes",
    "ideas",
    "theodolites",
    "pinto",
    "instructions",
    "dependencies",
    "excuses",
    "platelets",
    "asymptotes",
    "courts",
    "dolphins",
    "multipliers",
];

/// Filler vocabulary for comment columns.
pub const VERBS: [&str; 12] = [
    "sleep",
    "wake",
    "haggle",
    "nag",
    "cajole",
    "detect",
    "integrate",
    "snooze",
    "doze",
    "boost",
    "breach",
    "dazzle",
];

/// Filler vocabulary for comment columns.
pub const ADVERBS: [&str; 11] = [
    "quickly",
    "slowly",
    "carefully",
    "blithely",
    "furiously",
    "silently",
    "ruthlessly",
    "boldly",
    "daringly",
    "evenly",
    "special",
];
