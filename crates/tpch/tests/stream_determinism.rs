//! Determinism guarantees of the streaming TPC-H generator: every (scale,
//! seed) pair produces identical rows regardless of chunk size — and hence
//! regardless of worker count or poll order, since each chunk derives its
//! rows from per-unit RNG streams — and the materializing `dbgen` facade
//! (which is built on the same streams) agrees exactly, row counts included.

use joinstudy_storage::table::Table;
use joinstudy_storage::types::Value;
use joinstudy_tpch::stream::TABLES;
use joinstudy_tpch::{dbgen, StreamGen, TpchTable};

const SF: f64 = 0.004;
const SEED: u64 = 42;

/// Flatten a sequence of tables into one row-major value matrix so chunked
/// and materialized outputs compare directly.
fn rows_of<'a>(tables: impl IntoIterator<Item = &'a Table>) -> Vec<Vec<Value>> {
    let mut out = Vec::new();
    for t in tables {
        for r in 0..t.num_rows() {
            out.push(
                (0..t.columns().len())
                    .map(|c| t.column(c).value(r))
                    .collect(),
            );
        }
    }
    out
}

fn chunked(gen: &StreamGen, table: TpchTable) -> Vec<Vec<Value>> {
    let chunks: Vec<Table> = (0..gen.chunk_count(table))
        .map(|i| gen.chunk(table, i))
        .collect();
    rows_of(&chunks)
}

#[test]
fn chunk_size_does_not_change_row_content() {
    let small = StreamGen::new(SF, SEED).with_chunk_units(37);
    let large = StreamGen::new(SF, SEED).with_chunk_units(4096);
    for table in TABLES {
        assert_eq!(
            chunked(&small, table),
            chunked(&large, table),
            "{} rows must not depend on chunk size",
            table.name()
        );
    }
}

#[test]
fn chunked_stream_matches_materializing_generator() {
    let gen = StreamGen::new(SF, SEED).with_chunk_units(53);
    let data = dbgen::generate(SF, SEED);
    for table in TABLES {
        assert_eq!(
            chunked(&gen, table),
            rows_of([data.table(table.name()).as_ref()]),
            "streamed {} must equal dbgen output",
            table.name()
        );
    }
}

#[test]
fn lineitem_stream_is_identical_with_and_without_orders() {
    // A lineitem-only stream must draw the same per-order values as the
    // combined orders+lineitem materialization: order-level draws are hoisted
    // ahead of the lineitem loop regardless of which outputs are requested.
    let gen = StreamGen::new(SF, SEED).with_chunk_units(61);
    let (_, lineitem) = gen.materialize_orders_lineitem();
    assert_eq!(chunked(&gen, TpchTable::Lineitem), rows_of([&lineitem]));
}

#[test]
fn row_counts_match_spec_cardinalities() {
    let sf = 0.01;
    let gen = StreamGen::new(sf, SEED);
    let data = dbgen::generate(sf, SEED);
    for table in TABLES {
        let streamed: usize = (0..gen.chunk_count(table))
            .map(|i| gen.chunk(table, i).num_rows())
            .sum();
        assert_eq!(
            streamed,
            data.table(table.name()).num_rows(),
            "{} cardinality",
            table.name()
        );
    }
}

#[test]
fn est_rows_brackets_actual_rows() {
    let gen = StreamGen::new(0.01, SEED);
    for table in TABLES {
        let actual: usize = (0..gen.chunk_count(table))
            .map(|i| gen.chunk(table, i).num_rows())
            .sum();
        let est = gen.est_rows(table);
        assert!(
            est >= actual as f64 * 0.5 && est <= actual as f64 * 2.0,
            "{}: est {} vs actual {}",
            table.name(),
            est,
            actual
        );
    }
}
