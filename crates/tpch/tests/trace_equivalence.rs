//! TPC-H Q3 smoke test for the worker-timeline tracer: every join
//! implementation must return identical results with tracing on or off,
//! every recorded trace must satisfy the structural invariants (spans
//! nest, fit in the wall clock, busy + idle <= wall per worker), and the
//! traces must tell the paper's story — the RJ/BRJ timelines contain the
//! radix partition phases and partition-barrier idle spans that the
//! non-partitioned BHJ timeline does not have.

use joinstudy_core::{Engine, JoinAlgo};
use joinstudy_exec::trace::{QueryTrace, SpanKind};
use joinstudy_storage::table::Table;
use joinstudy_tpch::queries::{all_queries, QueryConfig, TpchQuery};
use joinstudy_tpch::{generate, TpchData};
use std::sync::{Mutex, OnceLock};

/// The tracer is process-global (one trace at a time), so tests that
/// enable it serialize here.
static TRACE_LOCK: Mutex<()> = Mutex::new(());

fn data() -> &'static TpchData {
    static DATA: OnceLock<TpchData> = OnceLock::new();
    DATA.get_or_init(|| generate(0.01, 20260706))
}

fn q3() -> TpchQuery {
    all_queries()
        .into_iter()
        .find(|q| q.id == 3)
        .expect("Q3 is registered")
}

/// Canonical form: the multiset of row renderings, sorted.
fn canonical(t: &Table) -> Vec<String> {
    let mut rows: Vec<String> = (0..t.num_rows())
        .map(|r| {
            t.row(r)
                .iter()
                .map(|v| format!("{v}"))
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    rows.sort();
    rows
}

fn run_traced(engine: &Engine, algo: JoinAlgo) -> (Vec<String>, QueryTrace) {
    engine.ctx.set_tracing(true);
    let result = (q3().run)(data(), &QueryConfig::new(algo), engine);
    engine.ctx.set_tracing(false);
    let trace = engine
        .take_trace()
        .unwrap_or_else(|| panic!("no trace recorded under {algo:?}"));
    (canonical(&result), trace)
}

#[test]
fn q3_results_identical_with_tracing_on_and_off() {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let engine = Engine::new(4);
    let mut reference: Option<Vec<String>> = None;
    for algo in [JoinAlgo::Bhj, JoinAlgo::Rj, JoinAlgo::Brj] {
        let untraced = canonical(&(q3().run)(data(), &QueryConfig::new(algo), &engine));
        assert!(
            engine.take_trace().is_none(),
            "{algo:?} recorded a trace with tracing off"
        );
        let (traced, trace) = run_traced(&engine, algo);
        assert_eq!(traced, untraced, "{algo:?} result changed under tracing");
        match &reference {
            None => reference = Some(untraced),
            Some(r) => assert_eq!(&traced, r, "{algo:?} result differs from BHJ"),
        }
        trace
            .validate()
            .unwrap_or_else(|e| panic!("{algo:?} trace invalid: {e}"));
        assert!(
            trace.spans.iter().any(|s| s.kind == SpanKind::Morsel),
            "{algo:?} trace has no morsel spans"
        );
        assert!(
            !trace.pipelines.is_empty(),
            "{algo:?} trace has no pipelines"
        );
    }
}

#[test]
fn rj_trace_shows_partition_work_absent_from_bhj() {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let engine = Engine::new(4);
    let (_, bhj) = run_traced(&engine, JoinAlgo::Bhj);
    let (_, rj) = run_traced(&engine, JoinAlgo::Rj);
    let (_, brj) = run_traced(&engine, JoinAlgo::Brj);

    let has = |t: &QueryTrace, needle: &str| t.spans.iter().any(|s| s.name.contains(needle));

    // The partitioned joins do radix work the non-partitioned join never
    // does: histogram scans, scatter passes, and workers parked at the
    // partition barrier (idle spans of the partition pipelines).
    for (tag, t) in [("RJ", &rj), ("BRJ", &brj)] {
        assert!(
            has(t, "radix histogram scan"),
            "{tag} trace lacks histogram-scan phase spans"
        );
        assert!(
            has(t, "radix partition pass 2"),
            "{tag} trace lacks scatter phase spans"
        );
        assert!(
            t.spans
                .iter()
                .any(|s| s.kind == SpanKind::Idle && s.name.contains("partition")),
            "{tag} trace lacks partition-pipeline idle spans"
        );
    }
    assert!(has(&brj, "bloom build"), "BRJ trace lacks bloom-build span");
    for needle in ["radix", "partition", "bloom"] {
        assert!(
            !bhj.spans
                .iter()
                .any(|s| s.name.to_ascii_lowercase().contains(needle)),
            "BHJ trace unexpectedly mentions {needle:?}"
        );
    }
    assert!(has(&bhj, "BHJ build finalize"), "BHJ finalize span missing");

    // The Chrome export carries per-worker tracks for each trace.
    for t in [&bhj, &rj, &brj] {
        let json = t.to_chrome_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"thread_name\""));
    }
}
