//! TPC-H Q3 smoke test for the hardware-counter subsystem: every join
//! implementation must return identical results with counters on or off —
//! on hosts where `perf_event_open` works *and* on hosts where it is
//! denied (the CI `pmu` job re-runs this with `JOINSTUDY_NO_PMU=1` to pin
//! the degraded path). Counter sampling must also leave EXPLAIN ANALYZE
//! byte-identical when the PMU is unavailable: zero samples ⇒ zero `hw_*`
//! details.

use joinstudy_core::{Engine, JoinAlgo};
use joinstudy_exec::pmu;
use joinstudy_storage::table::Table;
use joinstudy_tpch::queries::{all_queries, QueryConfig, TpchQuery};
use joinstudy_tpch::{generate, TpchData};
use std::sync::{Mutex, OnceLock};

/// The pmu enable flag is process-global, so tests that flip it serialize
/// here (same discipline as the tracer tests).
static PMU_LOCK: Mutex<()> = Mutex::new(());

fn data() -> &'static TpchData {
    static DATA: OnceLock<TpchData> = OnceLock::new();
    DATA.get_or_init(|| generate(0.01, 20260706))
}

fn q3() -> TpchQuery {
    all_queries()
        .into_iter()
        .find(|q| q.id == 3)
        .expect("Q3 is registered")
}

/// Canonical form: the multiset of row renderings, sorted.
fn canonical(t: &Table) -> Vec<String> {
    let mut rows: Vec<String> = (0..t.num_rows())
        .map(|r| {
            t.row(r)
                .iter()
                .map(|v| format!("{v}"))
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    rows.sort();
    rows
}

#[test]
fn q3_results_identical_with_counters_on_and_off() {
    let _guard = PMU_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let engine = Engine::new(4);
    for algo in [JoinAlgo::Bhj, JoinAlgo::Rj, JoinAlgo::Brj] {
        let off = canonical(&(q3().run)(data(), &QueryConfig::new(algo), &engine));

        // Both opt-in routes at once, like `Session::set_counters(true)`.
        engine.ctx.set_counters(true);
        pmu::set_enabled(true);
        let on = canonical(&(q3().run)(data(), &QueryConfig::new(algo), &engine));
        pmu::set_enabled(false);
        engine.ctx.set_counters(false);

        assert_eq!(on, off, "{algo:?} result changed under counter sampling");
    }
}

/// Counter sampling composes with profiling, and with the PMU unavailable
/// the profile must be *byte-identical* to a counters-off profile: the
/// graceful-degradation contract says zero worker samples, hence no `hw_*`
/// details anywhere in the plan tree.
#[test]
fn q3_profile_carries_hw_details_only_where_pmu_works() {
    let _guard = PMU_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let engine = Engine::new(4);
    let cfg = QueryConfig::new(JoinAlgo::Rj);

    engine.ctx.set_profiling(true);
    let plain = (q3().run)(data(), &cfg, &engine);
    let profile_off = engine.take_profile().expect("profile recorded");

    engine.ctx.set_counters(true);
    pmu::set_enabled(true);
    let counted = (q3().run)(data(), &cfg, &engine);
    let profile_on = engine.take_profile().expect("profile recorded");
    pmu::set_enabled(false);
    engine.ctx.set_counters(false);
    engine.ctx.set_profiling(false);

    assert_eq!(canonical(&plain), canonical(&counted));
    let has_hw = |p: &joinstudy_exec::profile::QueryProfile| {
        p.nodes()
            .iter()
            .any(|n| n.details.iter().any(|(k, _)| k.starts_with("hw_")))
    };
    assert!(
        !has_hw(&profile_off),
        "hw_* details leaked with counters off"
    );
    if pmu::probe() {
        assert!(
            has_hw(&profile_on),
            "PMU available but no hw_* details in EXPLAIN ANALYZE"
        );
    } else {
        // Degraded hosts: the render must match a counters-off run exactly
        // apart from timings — structurally, no hw_* keys at all.
        assert!(
            !has_hw(&profile_on),
            "PMU unavailable yet hw_* details appeared"
        );
    }
}

/// Tracing with counters on must stay valid and only carry counter samples
/// where the PMU works.
#[test]
fn q3_trace_counter_samples_follow_availability() {
    let _guard = PMU_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let engine = Engine::new(4);
    let cfg = QueryConfig::new(JoinAlgo::Rj);

    engine.ctx.set_tracing(true);
    engine.ctx.set_counters(true);
    pmu::set_enabled(true);
    let result = (q3().run)(data(), &cfg, &engine);
    pmu::set_enabled(false);
    engine.ctx.set_counters(false);
    engine.ctx.set_tracing(false);
    std::hint::black_box(result);

    let trace = engine.take_trace().expect("trace recorded");
    trace
        .validate()
        .expect("trace invariants hold with counters");
    let json = trace.to_chrome_json();
    if pmu::probe() {
        assert!(
            !trace.counters.is_empty(),
            "PMU available but the trace recorded no counter samples"
        );
        assert!(
            json.contains("\"hw.cycles\""),
            "Perfetto export lacks counter tracks"
        );
    } else {
        assert!(
            trace.counters.is_empty(),
            "PMU unavailable yet counter samples were recorded"
        );
        assert!(!json.contains("\"hw."), "counter tracks leaked into export");
    }
}
