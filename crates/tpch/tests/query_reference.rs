#![allow(clippy::needless_range_loop)] // reference code indexes many parallel columns

//! Exact cross-validation of TPC-H queries against independent,
//! hand-written Rust reference implementations that scan the raw generated
//! tables directly — no shared engine code beyond the data itself. If the
//! engine's scans, expressions, joins or aggregates are subtly wrong, these
//! disagree.

use joinstudy_core::{Engine, JoinAlgo};
use joinstudy_storage::table::Table;
use joinstudy_storage::types::Date;
use joinstudy_tpch::queries::QueryConfig;
use joinstudy_tpch::{generate, TpchData};
use std::collections::HashMap;
use std::sync::OnceLock;

fn data() -> &'static TpchData {
    static DATA: OnceLock<TpchData> = OnceLock::new();
    DATA.get_or_init(|| generate(0.01, 424242))
}

fn run(id: u32) -> Table {
    let engine = Engine::new(2);
    (joinstudy_tpch::query(id).run)(data(), &QueryConfig::new(JoinAlgo::Brj), &engine)
}

#[test]
fn q4_matches_reference() {
    let d = data();
    // Reference: orders in [1993-07-01, +3m) with EXISTS(lineitem where
    // commit < receipt), counted per priority.
    let lo = Date::from_ymd(1993, 7, 1).0;
    let hi = Date::from_ymd(1993, 10, 1).0;
    let l_ok = d.lineitem.column_by_name("l_orderkey").as_i64();
    let l_commit = d.lineitem.column_by_name("l_commitdate").as_i32();
    let l_receipt = d.lineitem.column_by_name("l_receiptdate").as_i32();
    let mut late_orders = std::collections::HashSet::new();
    for i in 0..d.lineitem.num_rows() {
        if l_commit[i] < l_receipt[i] {
            late_orders.insert(l_ok[i]);
        }
    }
    let o_key = d.orders.column_by_name("o_orderkey").as_i64();
    let o_date = d.orders.column_by_name("o_orderdate").as_i32();
    let o_prio = d.orders.column_by_name("o_orderpriority").as_str();
    let mut want: HashMap<String, i64> = HashMap::new();
    for i in 0..d.orders.num_rows() {
        if o_date[i] >= lo && o_date[i] < hi && late_orders.contains(&o_key[i]) {
            *want.entry(o_prio.get(i).to_owned()).or_default() += 1;
        }
    }

    let t = run(4);
    assert_eq!(t.num_rows(), want.len());
    for r in 0..t.num_rows() {
        let prio = t.column(0).as_str().get(r);
        assert_eq!(t.column(1).as_i64()[r], want[prio], "priority {prio}");
    }
}

#[test]
fn q12_matches_reference() {
    let d = data();
    let lo = Date::from_ymd(1994, 1, 1).0;
    let hi = Date::from_ymd(1995, 1, 1).0;
    let l = &d.lineitem;
    let ok = l.column_by_name("l_orderkey").as_i64();
    let mode = l.column_by_name("l_shipmode").as_str();
    let ship = l.column_by_name("l_shipdate").as_i32();
    let commit = l.column_by_name("l_commitdate").as_i32();
    let receipt = l.column_by_name("l_receiptdate").as_i32();
    let prio_by_order: HashMap<i64, String> = {
        let keys = d.orders.column_by_name("o_orderkey").as_i64();
        let p = d.orders.column_by_name("o_orderpriority").as_str();
        keys.iter()
            .enumerate()
            .map(|(i, &k)| (k, p.get(i).to_owned()))
            .collect()
    };
    let mut want: HashMap<&str, (i64, i64)> = HashMap::new();
    for i in 0..l.num_rows() {
        let m = mode.get(i);
        if (m == "MAIL" || m == "SHIP")
            && commit[i] < receipt[i]
            && ship[i] < commit[i]
            && receipt[i] >= lo
            && receipt[i] < hi
        {
            let prio = &prio_by_order[&ok[i]];
            let high = prio == "1-URGENT" || prio == "2-HIGH";
            let e = want
                .entry(if m == "MAIL" { "MAIL" } else { "SHIP" })
                .or_default();
            if high {
                e.0 += 1;
            } else {
                e.1 += 1;
            }
        }
    }

    let t = run(12);
    assert_eq!(t.num_rows(), want.len());
    for r in 0..t.num_rows() {
        let m = t.column(0).as_str().get(r);
        let (h, lo_c) = want[m];
        assert_eq!(t.column_by_name("high_line_count").as_i64()[r], h, "{m}");
        assert_eq!(t.column_by_name("low_line_count").as_i64()[r], lo_c, "{m}");
    }
}

#[test]
fn q14_matches_reference() {
    let d = data();
    let lo = Date::from_ymd(1995, 9, 1).0;
    let hi = Date::from_ymd(1995, 10, 1).0;
    let l = &d.lineitem;
    let pk = l.column_by_name("l_partkey").as_i64();
    let ship = l.column_by_name("l_shipdate").as_i32();
    let price = l.column_by_name("l_extendedprice").as_i64();
    let disc = l.column_by_name("l_discount").as_i64();
    let type_by_part: HashMap<i64, bool> = {
        let keys = d.part.column_by_name("p_partkey").as_i64();
        let types = d.part.column_by_name("p_type").as_str();
        keys.iter()
            .enumerate()
            .map(|(i, &k)| (k, types.get(i).starts_with("PROMO")))
            .collect()
    };
    let mut promo = 0i64;
    let mut total = 0i64;
    for i in 0..l.num_rows() {
        if ship[i] >= lo && ship[i] < hi {
            // revenue = price * (1 - disc), decimal arithmetic (truncating).
            let rev = (i128::from(price[i]) * i128::from(100 - disc[i]) / 100) as i64;
            total += rev;
            if type_by_part[&pk[i]] {
                promo += rev;
            }
        }
    }
    // 100.00 * promo / total in decimal arithmetic.
    let want = (i128::from(10_000i64) * i128::from(promo) * 100 / i128::from(total) / 100) as i64;

    let t = run(14);
    assert_eq!(t.num_rows(), 1);
    let got = t.column_by_name("promo_revenue").as_i64()[0];
    assert_eq!(got, want, "promo revenue mismatch: {got} vs {want}");
}

#[test]
fn q22_matches_reference() {
    let d = data();
    const CODES: [&str; 7] = ["13", "31", "23", "29", "30", "18", "17"];
    let c = &d.customer;
    let phone = c.column_by_name("c_phone").as_str();
    let bal = c.column_by_name("c_acctbal").as_i64();
    let key = c.column_by_name("c_custkey").as_i64();

    // avg positive balance among the codes.
    let mut sum: i64 = 0;
    let mut cnt: i64 = 0;
    for i in 0..c.num_rows() {
        let code = &phone.get(i)[..2];
        if bal[i] > 0 && CODES.contains(&code) {
            sum += bal[i];
            cnt += 1;
        }
    }
    let avg = sum * 100 / cnt * 100 / 10_000; // Decimal::div semantics: (sum*100)/cnt_scaled
                                              // Recompute exactly as Decimal::div would: (sum * 100) / (cnt * 100).
    let avg = {
        let _ = avg;
        (i128::from(sum) * 100 / i128::from(cnt * 100)) as i64
    };

    let has_order: std::collections::HashSet<i64> = d
        .orders
        .column_by_name("o_custkey")
        .as_i64()
        .iter()
        .copied()
        .collect();

    let mut want: HashMap<String, (i64, i64)> = HashMap::new();
    for i in 0..c.num_rows() {
        let code = &phone.get(i)[..2];
        if CODES.contains(&code) && bal[i] > avg && !has_order.contains(&key[i]) {
            let e = want.entry(code.to_owned()).or_default();
            e.0 += 1;
            e.1 += bal[i];
        }
    }

    let t = run(22);
    assert_eq!(t.num_rows(), want.len());
    for r in 0..t.num_rows() {
        let code = t.column(0).as_str().get(r);
        let (n, total) = want[code];
        assert_eq!(t.column_by_name("numcust").as_i64()[r], n, "code {code}");
        assert_eq!(
            t.column_by_name("totacctbal").as_i64()[r],
            total,
            "code {code}"
        );
    }
}

#[test]
fn q3_matches_reference_top_rows() {
    let d = data();
    let cutoff = Date::from_ymd(1995, 3, 15).0;
    let building: std::collections::HashSet<i64> = {
        let c = &d.customer;
        let seg = c.column_by_name("c_mktsegment").as_str();
        c.column_by_name("c_custkey")
            .as_i64()
            .iter()
            .enumerate()
            .filter(|(i, _)| seg.get(*i) == "BUILDING")
            .map(|(_, &k)| k)
            .collect()
    };
    struct OrderInfo {
        date: i32,
        prio: i32,
    }
    let orders: HashMap<i64, OrderInfo> = {
        let o = &d.orders;
        let key = o.column_by_name("o_orderkey").as_i64();
        let cust = o.column_by_name("o_custkey").as_i64();
        let date = o.column_by_name("o_orderdate").as_i32();
        let ship = o.column_by_name("o_shippriority").as_i32();
        (0..o.num_rows())
            .filter(|&i| date[i] < cutoff && building.contains(&cust[i]))
            .map(|i| {
                (
                    key[i],
                    OrderInfo {
                        date: date[i],
                        prio: ship[i],
                    },
                )
            })
            .collect()
    };
    let l = &d.lineitem;
    let ok = l.column_by_name("l_orderkey").as_i64();
    let ship = l.column_by_name("l_shipdate").as_i32();
    let price = l.column_by_name("l_extendedprice").as_i64();
    let disc = l.column_by_name("l_discount").as_i64();
    let mut revenue: HashMap<i64, i64> = HashMap::new();
    for i in 0..l.num_rows() {
        if ship[i] > cutoff && orders.contains_key(&ok[i]) {
            let rev = (i128::from(price[i]) * i128::from(100 - disc[i]) / 100) as i64;
            *revenue.entry(ok[i]).or_default() += rev;
        }
    }
    let mut want: Vec<(i64, i64, i32, i32)> = revenue
        .iter()
        .map(|(&k, &r)| {
            let o = &orders[&k];
            (k, r, o.date, o.prio)
        })
        .collect();
    // ORDER BY revenue DESC, o_orderdate ASC, LIMIT 10 (ties broken the
    // same way is not guaranteed; compare as sets of (revenue, date)).
    want.sort_by(|a, b| b.1.cmp(&a.1).then(a.2.cmp(&b.2)));
    want.truncate(10);

    let t = run(3);
    assert_eq!(t.num_rows(), want.len().min(10));
    for r in 0..t.num_rows() {
        assert_eq!(
            t.column_by_name("revenue").as_i64()[r],
            want[r].1,
            "row {r}"
        );
        assert_eq!(
            t.column_by_name("o_orderdate").as_i32()[r],
            want[r].2,
            "row {r}"
        );
    }
}

#[test]
fn q5_matches_reference() {
    let d = data();
    let lo = Date::from_ymd(1994, 1, 1).0;
    let hi = Date::from_ymd(1995, 1, 1).0;

    // ASIA nations.
    let asia_region: i64 = {
        let r = &d.region;
        let names = r.column_by_name("r_name").as_str();
        (0..r.num_rows())
            .find(|&i| names.get(i) == "ASIA")
            .map(|i| r.column_by_name("r_regionkey").as_i64()[i])
            .unwrap()
    };
    let asia_nations: HashMap<i64, String> = {
        let n = &d.nation;
        let names = n.column_by_name("n_name").as_str();
        let regions = n.column_by_name("n_regionkey").as_i64();
        (0..n.num_rows())
            .filter(|&i| regions[i] == asia_region)
            .map(|i| {
                (
                    n.column_by_name("n_nationkey").as_i64()[i],
                    names.get(i).to_owned(),
                )
            })
            .collect()
    };
    // Customers in ASIA: custkey → nationkey.
    let cust_nation: HashMap<i64, i64> = {
        let c = &d.customer;
        let nk = c.column_by_name("c_nationkey").as_i64();
        c.column_by_name("c_custkey")
            .as_i64()
            .iter()
            .enumerate()
            .filter(|(i, _)| asia_nations.contains_key(&nk[*i]))
            .map(|(i, &k)| (k, nk[i]))
            .collect()
    };
    // Orders in 1994 by those customers: orderkey → customer nation.
    let order_nation: HashMap<i64, i64> = {
        let o = &d.orders;
        let date = o.column_by_name("o_orderdate").as_i32();
        let cust = o.column_by_name("o_custkey").as_i64();
        o.column_by_name("o_orderkey")
            .as_i64()
            .iter()
            .enumerate()
            .filter(|(i, _)| date[*i] >= lo && date[*i] < hi)
            .filter_map(|(i, &k)| cust_nation.get(&cust[i]).map(|&n| (k, n)))
            .collect()
    };
    // Supplier nations.
    let supp_nation: HashMap<i64, i64> = {
        let s = &d.supplier;
        s.column_by_name("s_suppkey")
            .as_i64()
            .iter()
            .zip(s.column_by_name("s_nationkey").as_i64())
            .map(|(&k, &n)| (k, n))
            .collect()
    };
    // Lineitems where supplier nation == customer nation.
    let l = &d.lineitem;
    let ok = l.column_by_name("l_orderkey").as_i64();
    let sk = l.column_by_name("l_suppkey").as_i64();
    let price = l.column_by_name("l_extendedprice").as_i64();
    let disc = l.column_by_name("l_discount").as_i64();
    let mut want: HashMap<String, i64> = HashMap::new();
    for i in 0..l.num_rows() {
        if let Some(&cn) = order_nation.get(&ok[i]) {
            if supp_nation[&sk[i]] == cn {
                let rev = (i128::from(price[i]) * i128::from(100 - disc[i]) / 100) as i64;
                *want.entry(asia_nations[&cn].clone()).or_default() += rev;
            }
        }
    }

    let t = run(5);
    assert_eq!(t.num_rows(), want.len(), "nation count");
    for r in 0..t.num_rows() {
        let nation = t.column(0).as_str().get(r);
        assert_eq!(
            t.column_by_name("revenue").as_i64()[r],
            want[nation],
            "{nation}"
        );
    }
    // Sorted by revenue descending.
    let rev = t.column_by_name("revenue").as_i64();
    assert!(rev.windows(2).all(|w| w[0] >= w[1]));
}

#[test]
fn q16_matches_reference() {
    let d = data();
    const SIZES: [i32; 8] = [49, 14, 23, 45, 19, 3, 36, 9];
    // Complaint suppliers.
    let bad: std::collections::HashSet<i64> = {
        let s = &d.supplier;
        let comments = s.column_by_name("s_comment").as_str();
        s.column_by_name("s_suppkey")
            .as_i64()
            .iter()
            .enumerate()
            .filter(|(i, _)| {
                let c = comments.get(*i);
                // %Customer%Complaints%
                c.find("Customer")
                    .map(|p| c[p..].contains("Complaints"))
                    .unwrap_or(false)
            })
            .map(|(_, &k)| k)
            .collect()
    };
    // Qualifying parts.
    struct PartInfo {
        brand: String,
        ptype: String,
        size: i32,
    }
    let parts: HashMap<i64, PartInfo> = {
        let p = &d.part;
        let brand = p.column_by_name("p_brand").as_str();
        let ptype = p.column_by_name("p_type").as_str();
        let size = p.column_by_name("p_size").as_i32();
        (0..p.num_rows())
            .filter(|&i| {
                brand.get(i) != "Brand#45"
                    && !ptype.get(i).starts_with("MEDIUM POLISHED")
                    && SIZES.contains(&size[i])
            })
            .map(|i| {
                (
                    p.column_by_name("p_partkey").as_i64()[i],
                    PartInfo {
                        brand: brand.get(i).to_owned(),
                        ptype: ptype.get(i).to_owned(),
                        size: size[i],
                    },
                )
            })
            .collect()
    };
    // Distinct good suppliers per (brand, type, size).
    let ps = &d.partsupp;
    let ps_pk = ps.column_by_name("ps_partkey").as_i64();
    let ps_sk = ps.column_by_name("ps_suppkey").as_i64();
    let mut groups: HashMap<(String, String, i32), std::collections::HashSet<i64>> = HashMap::new();
    for i in 0..ps.num_rows() {
        if bad.contains(&ps_sk[i]) {
            continue;
        }
        if let Some(info) = parts.get(&ps_pk[i]) {
            groups
                .entry((info.brand.clone(), info.ptype.clone(), info.size))
                .or_default()
                .insert(ps_sk[i]);
        }
    }

    let t = run(16);
    assert_eq!(t.num_rows(), groups.len(), "group count");
    for r in 0..t.num_rows() {
        let key = (
            t.column_by_name("p_brand").as_str().get(r).to_owned(),
            t.column_by_name("p_type").as_str().get(r).to_owned(),
            t.column_by_name("p_size").as_i32()[r],
        );
        assert_eq!(
            t.column_by_name("supplier_cnt").as_i64()[r] as usize,
            groups[&key].len(),
            "{key:?}"
        );
    }
}
